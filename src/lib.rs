//! HeteroOS reproduction — facade crate.
//!
//! Re-exports the public API of the workspace so downstream users can depend
//! on a single crate. See the individual crates for details:
//!
//! * [`hetero_core`] — the HeteroOS policies and simulators, from
//!   single-VM engines up to the rack-scale [`hetero_core::cluster`]
//!   layer with inter-host live migration (start here),
//! * [`hetero_workloads`] — the datacenter application models,
//! * [`hetero_guest`] / [`hetero_vmm`] — the guest-OS and hypervisor substrates,
//! * [`hetero_mem`] — the heterogeneous-memory hardware model,
//! * [`hetero_sim`] — clock, RNG and statistics plumbing,
//! * [`hetero_faults`] — deterministic fault injection and invariant
//!   auditing (the chaos-soak substrate).

#![forbid(unsafe_code)]

pub use hetero_core as core;
pub use hetero_faults as faults;
pub use hetero_guest as guest;
pub use hetero_mem as mem;
pub use hetero_sim as sim;
pub use hetero_vmm as vmm;
pub use hetero_workloads as workloads;
