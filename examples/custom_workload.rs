//! Define your own workload and evaluate tiering policies on it.
//!
//! The library is not limited to the paper's six applications: any
//! `WorkloadSpec` — footprint, access mix, hotness, churn — can be run
//! through the same engine. This example models an in-memory analytics
//! service with a large cold archive and a small hot index.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use heteroos::core::{run_app, Policy, SimConfig};
use heteroos::workloads::{AccessMix, Footprint, WorkloadSpec};

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

fn analytics_service() -> WorkloadSpec {
    WorkloadSpec {
        name: "analytics-service",
        mpki: 9.0,
        cpi_base: 2.2,
        mlp: 3.0,
        threads: 4.0,
        clock_ghz: 2.67,
        total_instructions: 60_000_000_000,
        instructions_per_epoch: 500_000_000,
        footprint: Footprint {
            heap: 6 * GB,          // mostly a cold columnar archive
            page_cache: 512 * MB,  // ingest buffers
            buffer_cache: 64 * MB,
            slab: 64 * MB,
            net_buf: 128 * MB,     // query responses
        },
        access_mix: AccessMix {
            heap: 0.70,
            page_cache: 0.12,
            buffer_cache: 0.02,
            slab: 0.04,
            net_buf: 0.12,
        },
        hot_wss_bytes: 512 * MB, // the index is the hot set
        hot_access_fraction: 0.9,
        hot_page_fraction: 0.08, // tiny hot fraction of a big archive
        fresh_hot_fraction: 0.6,
        write_fraction: 0.25,
        heap_churn_per_sec: 0.004,
        io_churn_per_sec: 0.02,
        kernel_buf_churn_per_sec: 0.02,
        ramp_fraction: 0.15,
    }
}

fn main() {
    let spec = analytics_service();
    // A skewed service like this wants very little FastMem: try 1/8.
    let cfg = SimConfig::paper_default().with_capacity_ratio(1, 8);
    let slow = run_app(&cfg, Policy::SlowMemOnly, spec.clone());
    println!(
        "{} on 1 GB FastMem / 8 GB SlowMem — gains over SlowMem-only:",
        spec.name
    );
    for policy in [
        Policy::HeapOd,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::HeteroCoordinated,
        Policy::FastMemOnly,
    ] {
        let r = run_app(&cfg, policy, spec.clone());
        println!(
            "  {:<22} {:>6.1}%   miss-ratio {:.2}",
            policy.name(),
            r.gain_percent_vs(&slow),
            r.fast_alloc_miss_ratio
        );
    }
    println!(
        "\nDemand prioritization roughly halves the FastMem allocation miss \
         ratio for this service; compare ratios and policies for your own \
         workload the same way."
    );
}
