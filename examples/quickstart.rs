//! Quickstart: evaluate one tiering policy against the paper's baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use heteroos::core::{run_app, Policy, SimConfig};
use heteroos::workloads::apps;

fn main() {
    // The paper's single-VM platform (§5.1): 8 GB SlowMem at (L:5, B:9),
    // FastMem set to a quarter of it.
    let cfg = SimConfig::paper_default().with_capacity_ratio(1, 4);

    // GraphChi (PageRank over the Orkut graph), shortened for a demo.
    let mut spec = apps::graphchi();
    spec.total_instructions /= 8;

    println!("app: {}  (MPKI {}, {} epochs)", spec.name, spec.mpki, spec.epochs());
    println!("platform: FastMem {} MiB / SlowMem {} MiB\n",
        cfg.fast_bytes >> 20, cfg.slow_bytes >> 20);

    let slow = run_app(&cfg, Policy::SlowMemOnly, spec.clone());
    let fast = run_app(&cfg, Policy::FastMemOnly, spec.clone());
    println!("{:<22} {:>10} {:>12}", "policy", "runtime", "gain vs slow");
    println!("{:<22} {:>10} {:>11.1}%", "SlowMem-only", slow.runtime.to_string(), 0.0);

    for policy in [
        Policy::NumaPreferred,
        Policy::HeapOd,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::HeteroCoordinated,
    ] {
        let r = run_app(&cfg, policy, spec.clone());
        println!(
            "{:<22} {:>10} {:>11.1}%   ({} migrations, {:.1}% mgmt overhead)",
            policy.name(),
            r.runtime.to_string(),
            r.gain_percent_vs(&slow),
            r.migrations,
            r.overhead_percent(),
        );
    }
    println!(
        "{:<22} {:>10} {:>11.1}%   (ideal)",
        "FastMem-only",
        fast.runtime.to_string(),
        fast.gain_percent_vs(&slow)
    );
}
