//! Rack-scale consolidation: a small cluster with live migration.
//!
//! Runs the §6 datacenter scenario in miniature: a Poisson stream of
//! VMs drawn from the four datacenter templates lands on a rack of
//! hosts, each with its own FastMem/SlowMem pools and DRF fair-share
//! ledger. The consolidation balancer live-migrates VMs off loaded
//! hosts with the classic pre-copy loop, priced through the Table 6
//! cost model. The run is byte-identical for any worker-thread count.
//!
//! ```text
//! cargo run --release --example cluster_fleet
//! ```

use heteroos::core::cluster::Cluster;
use heteroos::core::experiments::{cluster, ExpOptions};
use heteroos::core::Policy;
use heteroos::core::SimConfig;
use heteroos::vmm::SharePolicy;

const GB: u64 = 1 << 30;

fn main() {
    let opts = ExpOptions {
        quick: true,
        ..ExpOptions::default()
    };
    let cfg = SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB)
        .with_seed(opts.seed);

    let spec = cluster::fleet_spec(&opts);
    println!(
        "rack: {} hosts x (4 GB FastMem + 8 GB SlowMem), {} VM arrivals\n",
        spec.hosts,
        match &spec.arrivals {
            heteroos::core::cluster::ArrivalProcess::Poisson { count, .. } => *count,
            heteroos::core::cluster::ArrivalProcess::Trace(t) => t.len(),
        }
    );

    let outcome = Cluster::new(
        cfg,
        SharePolicy::paper_drf(),
        Policy::HeteroCoordinated,
        spec,
        0, // available parallelism; any value yields the same bytes
    )
    .run();

    print!("{}", cluster::fleet_table(&outcome));

    println!("\nfirst migrations (pre-copy, priced per round):");
    for m in outcome.migrations.iter().take(5) {
        println!(
            "  t={} vm{} host{}->host{}: {} rounds, {} pages, downtime {}",
            m.at, m.vm, m.from, m.to, m.precopy_rounds, m.pages_copied, m.downtime
        );
    }
}
