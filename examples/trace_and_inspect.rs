//! Record a workload trace, replay it under two policies, and inspect the
//! engine's event log.
//!
//! Traces decouple *what the application did* from *how memory was
//! managed*: the exact same demand stream runs under every policy, and the
//! event log shows the management actions each policy took.
//!
//! ```text
//! cargo run --release --example trace_and_inspect
//! ```

use heteroos::core::engine::SingleVmSim;
use heteroos::core::{Policy, SimConfig};
use heteroos::sim::SimRng;
use heteroos::workloads::{apps, AppWorkload, WorkloadTrace};

fn main() {
    // 1. Record Redis's demand stream (shortened for the demo).
    let mut spec = apps::redis();
    spec.total_instructions /= 20;
    let cfg = SimConfig {
        trace_events: 16,
        ..SimConfig::paper_default().with_capacity_ratio(1, 8)
    };
    let recording = WorkloadTrace::record(
        AppWorkload::new(spec, cfg.page_size, cfg.scale),
        &mut SimRng::seed_from(42),
    );
    println!(
        "recorded {} epochs of {} (serialises to {} KiB of text)\n",
        recording.len(),
        recording.spec.name,
        recording.to_text().len() / 1024
    );

    // 2. Replay the identical stream under two policies.
    for policy in [Policy::HeapIoSlabOd, Policy::HeteroCoordinated] {
        let mut sim = SingleVmSim::new(
            cfg.clone(),
            policy,
            recording.clone().into_workload(),
        );
        while sim.step() {}
        let report = sim.report();
        println!(
            "{:<22} runtime {:>10}   {} migrations, {:.1}% overhead",
            policy.name(),
            report.runtime.to_string(),
            report.migrations,
            report.overhead_percent()
        );
        if let Some(log) = sim.events() {
            for event in log.iter().take(4) {
                println!("    {event}");
            }
            if log.dropped() > 0 {
                println!("    … ({} earlier events dropped)", log.dropped());
            }
        }
        println!();
    }
    println!("Same demand stream, different management — compare the logs.");
}
