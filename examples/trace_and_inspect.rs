//! Record a workload trace, replay it under two policies, and inspect the
//! engine's event log and telemetry.
//!
//! Traces decouple *what the application did* from *how memory was
//! managed*: the exact same demand stream runs under every policy, the
//! event log shows the management actions each policy took, and the
//! telemetry registry + span trace show where the simulated time went.
//!
//! ```text
//! cargo run --release --example trace_and_inspect
//! ```

use heteroos::core::engine::SingleVmSim;
use heteroos::core::{Policy, SimConfig};
use heteroos::sim::SimRng;
use heteroos::workloads::{apps, AppWorkload, WorkloadTrace};

fn main() {
    // 1. Record Redis's demand stream (shortened for the demo).
    let mut spec = apps::redis();
    spec.total_instructions /= 20;
    let cfg = SimConfig {
        trace_events: 16,
        ..SimConfig::paper_default().with_capacity_ratio(1, 8)
    }
    .with_telemetry(true);
    let recording = WorkloadTrace::record(
        AppWorkload::new(spec, cfg.page_size, cfg.scale),
        &mut SimRng::seed_from(42),
    );
    println!(
        "recorded {} epochs of {} (serialises to {} KiB of text)\n",
        recording.len(),
        recording.spec.name,
        recording.to_text().len() / 1024
    );

    // 2. Replay the identical stream under two policies.
    for policy in [Policy::HeapIoSlabOd, Policy::HeteroCoordinated] {
        let mut sim = SingleVmSim::new(
            cfg.clone(),
            policy,
            recording.clone().into_workload(),
        );
        while sim.step() {}
        let report = sim.report();
        println!(
            "{:<22} runtime {:>10}   {} migrations, {:.1}% overhead",
            policy.name(),
            report.runtime.to_string(),
            report.migrations,
            report.overhead_percent()
        );
        if let Some(log) = sim.events() {
            for event in log.iter().take(4) {
                println!("    {event}");
            }
            if log.dropped() > 0 {
                println!("    … ({} earlier events dropped)", log.dropped());
            }
        }
        // 3. Telemetry: named counters sampled from every subsystem, and a
        // hierarchical span trace (epoch → guest-ops / vmm-decision) that
        // shows where simulated time went. `snapshot_json()` exports the
        // whole thing machine-readably (see `repro --json-out`).
        if let Some(tel) = sim.telemetry() {
            for name in [
                "guest.lru.activations",
                "guest.pcp.fast_path_hits",
                "vmm.scan.passes",
                "vmm.scan.frames",
            ] {
                println!("    {name} = {}", tel.registry.counter(name));
            }
            for span in tel.spans.finished().take(4) {
                println!("    {span}");
            }
            println!(
                "    ({} spans recorded, {} metrics, {} B of snapshot JSON)",
                tel.spans.len(),
                tel.registry.len(),
                tel.snapshot_json().len()
            );
        }
        println!();
    }
    println!("Same demand stream, different management — compare the logs.");
}
