//! Multi-VM heterogeneous-memory sharing: weighted DRF versus max-min.
//!
//! Reproduces the §5.5 scenario in miniature: a Graphchi VM and a
//! memory-hungry Metis VM fight over 4 GB FastMem + 8 GB SlowMem. Under
//! single-resource max-min the Metis VM balloons away the Graphchi VM's
//! SlowMem; weighted DRF protects the per-type reservation.
//!
//! ```text
//! cargo run --release --example multi_vm_fair_sharing
//! ```

use heteroos::core::experiments::sharing;
use heteroos::core::experiments::ExpOptions;
use heteroos::core::multivm::MultiVmSim;
use heteroos::core::{Policy, SimConfig};
use heteroos::vmm::SharePolicy;

const GB: u64 = 1 << 30;

fn main() {
    let opts = ExpOptions {
        quick: true,
        ..ExpOptions::default()
    };
    let cfg = SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB);

    println!("machine: 4 GB FastMem + 8 GB SlowMem");
    println!("VM0: Graphchi (Twitter), reservation <2*1GB fast, 1*4GB slow>");
    println!("VM1: Metis (8 GB heap),  reservation <2*3GB fast, 1*4GB slow>\n");

    for (label, share) in [
        ("single-resource max-min", SharePolicy::MaxMin),
        ("weighted DRF (fast=2, slow=1)", SharePolicy::paper_drf()),
    ] {
        let reports = MultiVmSim::new(
            cfg.clone(),
            share,
            Policy::HeteroCoordinated,
            sharing::paper_setups(&opts),
        )
        .run();
        println!("-- {label} --");
        for r in &reports {
            println!(
                "  {:<10} runtime {:>10}   {:>6.1}% mgmt overhead",
                r.app,
                r.runtime.to_string(),
                r.overhead_percent()
            );
        }
        println!();
    }
    println!("Lower Graphchi runtime under DRF = the reservation actually held.");
}
