//! Chaos demo: run the coordinated policy under a seeded fault plan and
//! watch it degrade gracefully instead of falling over.
//!
//! ```text
//! cargo run --release --example chaos_injection            # default seed
//! cargo run --release --example chaos_injection -- 42      # pick a seed
//! ```
//!
//! The same seed always produces the same fault trace — rerun it and diff.

use heteroos::core::{Policy, SimConfig, SingleVmSim};
use heteroos::faults::{FaultInjector, FaultPlan};
use heteroos::workloads::{apps, AppWorkload};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(7);

    let cfg = SimConfig::paper_default()
        .with_capacity_ratio(1, 4)
        .with_seed(seed)
        .with_audit_invariants(true);
    let mut spec = apps::graphchi();
    spec.total_instructions /= 10;
    let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);

    let mut sim = SingleVmSim::new(cfg, Policy::HeteroCoordinated, wl);
    sim.set_fault_injector(FaultInjector::new(FaultPlan::for_seed(seed)));
    while sim.step() {}

    let report = sim.report();
    println!(
        "seed {seed}: {} epochs, runtime {:.2} s",
        report.epochs,
        report.runtime.as_secs_f64()
    );
    println!(
        "fast-alloc miss ratio {:.1}%, migrations {}, events dropped {}",
        report.fast_alloc_miss_ratio * 100.0,
        report.migrations,
        report.events_dropped,
    );
    println!("invariant violations: {}", sim.violations().len());

    let trace = sim.fault_injector().expect("armed above").trace();
    println!("\n--- fault trace ({} records) ---", trace.len());
    print!("{}", trace.to_text());
}
