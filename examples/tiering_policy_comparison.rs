//! Compare every management policy on a chosen application across FastMem
//! capacity ratios — a miniature Fig 9/11 for one workload.
//!
//! ```text
//! cargo run --release --example tiering_policy_comparison -- leveldb
//! ```
//!
//! Accepted apps: graphchi, xstream, metis, leveldb, redis, nginx.

use heteroos::core::{run_app, Policy, SimConfig};
use heteroos::workloads::{apps, WorkloadSpec};

fn pick(name: &str) -> Option<WorkloadSpec> {
    match name {
        "graphchi" => Some(apps::graphchi()),
        "xstream" | "x-stream" => Some(apps::x_stream()),
        "metis" => Some(apps::metis()),
        "leveldb" => Some(apps::leveldb()),
        "redis" => Some(apps::redis()),
        "nginx" => Some(apps::nginx()),
        _ => None,
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "leveldb".into());
    let Some(mut spec) = pick(&name) else {
        eprintln!("unknown app '{name}' (try graphchi/xstream/metis/leveldb/redis/nginx)");
        std::process::exit(1);
    };
    spec.total_instructions /= 8;

    println!("== {} — gains (%) over SlowMem-only ==", spec.name);
    print!("{:<22}", "policy");
    for den in [2u64, 4, 8] {
        print!(" {:>8}", format!("1/{den}"));
    }
    println!();

    let policies = [
        Policy::NumaPreferred,
        Policy::HeapOd,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::VmmExclusive,
        Policy::HeteroCoordinated,
        Policy::FastMemOnly,
    ];
    // Baselines per ratio.
    let mut rows: Vec<(Policy, Vec<f64>)> = policies.iter().map(|&p| (p, Vec::new())).collect();
    for den in [2u64, 4, 8] {
        let cfg = SimConfig::paper_default().with_capacity_ratio(1, den);
        let slow = run_app(&cfg, Policy::SlowMemOnly, spec.clone());
        for (p, gains) in &mut rows {
            let r = run_app(&cfg, *p, spec.clone());
            gains.push(r.gain_percent_vs(&slow));
        }
    }
    for (p, gains) in rows {
        print!("{:<22}", p.name());
        for g in gains {
            print!(" {:>7.1}%", g);
        }
        println!();
    }
}
