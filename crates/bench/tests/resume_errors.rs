//! `repro --resume` failure modes must exit nonzero with a descriptive
//! message on stderr — never panic, never succeed on bad bytes.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A scratch file path unique to this test binary run.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-resume-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn run_expect_failure(args: &[&str], needle: &str) {
    let out = repro().args(args).output().expect("repro spawns");
    assert!(
        !out.status.success(),
        "`repro {}` unexpectedly succeeded",
        args.join(" ")
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "`repro {}` stderr missing '{needle}':\n{stderr}",
        args.join(" ")
    );
    assert!(
        !stderr.contains("panicked"),
        "`repro {}` panicked instead of failing cleanly:\n{stderr}",
        args.join(" ")
    );
}

#[test]
fn missing_snapshot_file_fails_cleanly() {
    run_expect_failure(
        &["--quick", "--resume", "/nonexistent/no-such.snap", "cluster"],
        "cannot read snapshot",
    );
}

#[test]
fn garbage_snapshot_fails_cleanly() {
    let path = scratch("garbage.snap");
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    run_expect_failure(
        &["--quick", "--resume", path.to_str().unwrap(), "cluster"],
        "magic",
    );
}

#[test]
fn truncated_and_version_flipped_snapshots_fail_cleanly() {
    // Forge a tiny but real snapshot through the library, then corrupt it
    // the two ways the acceptance gate cares about.
    let opts = hetero_core::experiments::ExpOptions::quick();
    let mut sim = hetero_core::experiments::checkpoint::single_sim(
        &opts,
        hetero_core::Policy::HeteroCoordinated,
    );
    assert!(sim.step());
    let bytes = sim.save();

    let trunc = scratch("truncated.snap");
    std::fs::write(&trunc, &bytes[..bytes.len() / 2]).unwrap();
    run_expect_failure(
        &["--quick", "--resume", trunc.to_str().unwrap(), "ckpt-single"],
        "truncated",
    );

    let mut flipped = bytes;
    flipped[4] ^= 0xFF; // the version byte right after the 4-byte magic
    let vflip = scratch("version-flip.snap");
    std::fs::write(&vflip, &flipped).unwrap();
    run_expect_failure(
        &["--quick", "--resume", vflip.to_str().unwrap(), "ckpt-single"],
        "version mismatch",
    );
}

#[test]
fn wrong_layer_snapshot_fails_cleanly() {
    let opts = hetero_core::experiments::ExpOptions::quick();
    let mut sim = hetero_core::experiments::checkpoint::single_sim(
        &opts,
        hetero_core::Policy::HeteroCoordinated,
    );
    assert!(sim.step());
    let path = scratch("single.snap");
    std::fs::write(&path, sim.save()).unwrap();
    run_expect_failure(
        &["--quick", "--resume", path.to_str().unwrap(), "cluster"],
        "layer mismatch",
    );
}

#[test]
fn checkpoint_flags_reject_bad_usage() {
    run_expect_failure(
        &["--quick", "--checkpoint-every", "5", "fig9"],
        "not checkpointable",
    );
    run_expect_failure(
        &["--quick", "--checkpoint-every", "5", "ckpt-single", "cluster"],
        "exactly one target",
    );
    run_expect_failure(&["--quick", "--checkpoint-every", "0", "cluster"], "positive");
    run_expect_failure(&["--quick", "--resume"], "requires a snapshot file");
}
