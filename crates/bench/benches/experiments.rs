//! Criterion wrappers for the table/figure regenerations — one benchmark
//! per paper artifact, in quick mode, so `cargo bench` demonstrates the
//! full harness end to end. (Use the `repro` binary for the full-length
//! published numbers.)

use criterion::{criterion_group, criterion_main, Criterion};

use bench::run_experiment;
use hetero_core::experiments::ExpOptions;

fn bench_tables(c: &mut Criterion) {
    let opts = ExpOptions::quick();
    let mut group = c.benchmark_group("tables");
    for t in ["table1", "table3", "table4", "table5", "table6"] {
        group.bench_function(t, |b| {
            b.iter(|| run_experiment(t, &opts).expect("known target"))
        });
    }
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut opts = ExpOptions::quick();
    // Benches run each figure repeatedly; shrink further than test-quick.
    opts.seed = 7;
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    // One cheap figure per experiment family keeps `cargo bench` minutes-
    // scale; the repro binary covers the rest identically.
    for t in ["fig7", "fig12"] {
        group.bench_function(t, |b| {
            b.iter(|| run_experiment(t, &opts).expect("known target"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
