//! Criterion benchmarks of the simulation engine itself: how fast each
//! policy executes epochs, and the VMM scan path. One benchmark per
//! evaluation axis keeps `cargo bench` fast while still covering every
//! policy family used by the paper's tables and figures.

use criterion::{criterion_group, criterion_main, Criterion};

use hetero_core::engine::SingleVmSim;
use hetero_core::{Policy, SimConfig};
use hetero_workloads::{apps, AppWorkload};

fn short_cfg() -> SimConfig {
    SimConfig::paper_default().with_capacity_ratio(1, 4)
}

fn short_spec() -> hetero_workloads::WorkloadSpec {
    let mut s = apps::redis();
    s.total_instructions /= 40;
    s
}

fn bench_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_epoch");
    group.sample_size(10);
    for policy in [
        Policy::SlowMemOnly,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::VmmExclusive,
        Policy::HeteroCoordinated,
    ] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let cfg = short_cfg();
                let wl = AppWorkload::new(short_spec(), cfg.page_size, cfg.scale);
                let mut sim = SingleVmSim::new(cfg, policy, wl);
                let mut steps = 0u32;
                while sim.step() && steps < 30 {
                    steps += 1;
                }
                sim.report().runtime
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
