//! Wall-clock benchmark baseline (`cargo bench -p bench`).
//!
//! Unlike the opt-in criterion benches (`--features criterion-bench`),
//! this harness runs offline with zero extra dependencies: plain
//! `std::time::Instant` timing around the hot paths PR 2 optimised —
//! buddy churn, full-VM hotness scans, LRU transitions, end-to-end `repro`
//! epochs, and the object-traffic microbench in both scalar and bulk
//! dispatch modes.
//!
//! Output: per-op nanoseconds on stdout, and (in full mode) a
//! machine-readable `BENCH_substrate.json` at the repo root with
//! `{bench_name: {ns_per_op, ops}}` entries.
//!
//! Flags (after `--`):
//! * `--smoke` — reduced iteration counts for CI smoke runs;
//! * `--check` — compare the measured gate benches (object traffic,
//!   `repro_epochs`, `idle_fleet`, `cluster_step`, snapshot save/restore)
//!   against the committed
//!   `BENCH_substrate.json` and exit non-zero on a >2x regression. Does
//!   **not** rewrite the committed baseline.

use std::time::Instant;

use hetero_core::experiments::{checkpoint, cluster, placement, ExpOptions};
use hetero_core::multivm::{MultiVmSim, VmSetup};
use hetero_core::{Policy, SimConfig, SingleVmSim};
use hetero_guest::buddy::BuddyAllocator;
use hetero_guest::kernel::{GuestConfig, GuestKernel};
use hetero_guest::page::Gfn;
use hetero_guest::SlabClass;
use hetero_mem::MemKind;
use hetero_vmm::hotness::ScanOutcome;
use hetero_vmm::{HotnessTracker, SharePolicy};
use hetero_workloads::{apps, AppWorkload};

/// Committed baseline path: `<repo root>/BENCH_substrate.json`.
const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_substrate.json");

/// Regression gate for `--check`.
const MAX_REGRESSION: f64 = 2.0;

struct BenchResult {
    name: &'static str,
    ns_per_op: f64,
    ops: u64,
}

/// Times `iters` calls of `f` (after a short warmup); `f` returns the
/// number of primitive operations it performed.
fn run_bench(name: &'static str, iters: u64, mut f: impl FnMut() -> u64) -> BenchResult {
    for _ in 0..(iters / 10).max(1) {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    let mut ops = 0u64;
    for _ in 0..iters {
        ops += std::hint::black_box(f());
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let ns_per_op = elapsed / ops.max(1) as f64;
    println!("{name:<24} {ns_per_op:>10.1} ns/op  ({ops} ops)");
    BenchResult { name, ns_per_op, ops }
}

fn bench_buddy_churn(iters: u64) -> BenchResult {
    let mut buddy = BuddyAllocator::new(0, 1 << 16);
    let mut pages: Vec<Gfn> = Vec::with_capacity(256);
    run_bench("buddy_churn", iters, move || {
        pages.clear();
        buddy.alloc_pages_bulk(256, &mut pages);
        buddy.free_pages_bulk(pages.drain(..));
        512
    })
}

fn bench_full_vm_scan(iters: u64) -> BenchResult {
    let mut kernel = GuestKernel::new(GuestConfig {
        frames: vec![(MemKind::Fast, 4096), (MemKind::Slow, 16384)],
        cpus: 4,
        page_size: 4096,
    });
    kernel
        .mmap_heap(12_000, std::iter::repeat(180), &[MemKind::Slow, MemKind::Fast])
        .expect("capacity");
    let total = kernel.memmap().total_frames();
    let mut tracker = HotnessTracker::new(2);
    let mut outcome = ScanOutcome::default();
    let mut flip = false;
    run_bench("full_vm_scan", iters, move || {
        flip = !flip;
        let touched = flip;
        let mut oracle = move |_: &hetero_guest::page::Page| touched;
        tracker.scan_full_into(&kernel, &mut oracle, total, &mut outcome);
        outcome.scanned
    })
}

fn bench_lru_transitions(iters: u64) -> BenchResult {
    let mut kernel = GuestKernel::new(GuestConfig {
        frames: vec![(MemKind::Fast, 8192)],
        cpus: 2,
        page_size: 4096,
    });
    let (vma, _) = kernel
        .mmap_heap(4096, std::iter::repeat(200), &[MemKind::Fast])
        .expect("capacity");
    let gfns: Vec<Gfn> = (vma.start..vma.end())
        .map(|v| kernel.page_table().translate(v).expect("mapped"))
        .collect();
    run_bench("lru_transitions", iters, move || {
        for &g in &gfns {
            kernel.deactivate_page(g);
        }
        for &g in &gfns {
            kernel.activate_page(g);
        }
        gfns.len() as u64 * 2
    })
}

fn bench_repro_epochs(name: &'static str, iters: u64, bulk_ops: bool) -> BenchResult {
    run_bench(name, iters, move || {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(42)
            .with_bulk_ops(bulk_ops);
        let mut spec = apps::graphchi();
        spec.total_instructions /= 50;
        let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::HeteroCoordinated, wl);
        let mut epochs = 0u64;
        while sim.step() {
            epochs += 1;
        }
        epochs
    })
}

/// Object-traffic kernel: a standing partial slab page absorbs alternating
/// alloc-12 / free-12 object bursts, so the traffic is pure carve/release
/// with no page-level churn — the engine's hottest per-object pattern.
fn object_traffic_kernel() -> GuestKernel {
    let mut kernel = GuestKernel::new(GuestConfig {
        frames: vec![(MemKind::Fast, 8192)],
        cpus: 1,
        page_size: 4096,
    });
    for _ in 0..4 {
        kernel
            .slab_alloc(SlabClass::FsMeta, 224, &[MemKind::Fast])
            .expect("capacity");
    }
    kernel
}

fn bench_object_traffic_scalar(iters: u64) -> BenchResult {
    let mut kernel = object_traffic_kernel();
    run_bench("object_traffic_scalar", iters, move || {
        for _ in 0..12 {
            kernel
                .slab_alloc(SlabClass::FsMeta, 224, &[MemKind::Fast])
                .expect("capacity");
        }
        for _ in 0..12 {
            assert!(kernel.slab_free_any(SlabClass::FsMeta));
        }
        24
    })
}

fn bench_object_traffic_bulk(iters: u64) -> BenchResult {
    let mut kernel = object_traffic_kernel();
    run_bench("object_traffic_bulk", iters, move || {
        assert_eq!(
            kernel.slab_alloc_bulk(SlabClass::FsMeta, 12, 224, &[MemKind::Fast]),
            12
        );
        assert_eq!(kernel.slab_free_bulk(SlabClass::FsMeta, 12), 12);
        24
    })
}

/// A datacenter-shaped fleet: `active` guests run a real workload slice
/// while `idle` guests finish theirs within the first few epochs and go
/// quiescent. The event scheduler's runnable set drops finished guests, so
/// fleet cost should track the busy guests, not the booted count — the
/// `idle_fleet` / `idle_fleet_busy` pair is the committed evidence that
/// cost is sub-linear in idle-VM count. Construction and boot-ballooning
/// run untimed; `run()` is timed end-to-end. Ops = VM-epochs stepped.
fn bench_idle_fleet(name: &'static str, active: usize, idle: usize) -> BenchResult {
    const GB: u64 = 1 << 30;
    let mut setups = Vec::with_capacity(active + idle);
    for i in 0..active + idle {
        let mut spec = apps::graphchi();
        if i < active {
            spec.total_instructions /= 20;
        } else {
            // A short-lived batch job: tiny instruction budget and a
            // matching tiny footprint, so it finishes (and goes quiescent)
            // within its first few epochs.
            spec.total_instructions /= 50_000;
            spec.footprint.heap /= 100;
            spec.footprint.page_cache /= 100;
            spec.footprint.buffer_cache /= 100;
            spec.footprint.slab /= 100;
            spec.footprint.net_buf /= 100;
            spec.hot_wss_bytes /= 100;
        }
        setups.push(VmSetup::new(spec, GB / 16, GB / 8, GB / 8, GB / 4));
    }
    let cfg = SimConfig::paper_default()
        .with_fast_bytes(8 * GB)
        .with_slow_bytes(24 * GB)
        .with_seed(42);
    let sim = MultiVmSim::new(cfg, SharePolicy::paper_drf(), Policy::HeteroCoordinated, setups);
    let start = Instant::now();
    let reports = sim.run();
    let elapsed = start.elapsed().as_nanos() as f64;
    let ops: u64 = reports.iter().map(|r| r.epochs).sum::<u64>().max(1);
    let ns_per_op = elapsed / ops as f64;
    println!("{name:<24} {ns_per_op:>10.1} ns/op  ({ops} ops)");
    BenchResult { name, ns_per_op, ops }
}

/// One quick-mode cluster consolidation run (120 VM arrivals over 4
/// hosts with the balancer and live migration armed), timed end-to-end
/// on one worker thread. Ops = guest epochs stepped cluster-wide, so the
/// committed gate tracks per-epoch stepping cost through the round loop
/// — admission, sharded stepping, retirement, balancing — rather than
/// raw fleet size.
fn bench_cluster_step() -> BenchResult {
    let opts = ExpOptions::quick().with_jobs(1);
    let start = Instant::now();
    let outcome = cluster::fleet_outcome(&opts);
    let elapsed = start.elapsed().as_nanos() as f64;
    let ops = outcome.report.epochs.max(1);
    let ns_per_op = elapsed / ops as f64;
    println!("{:<24} {ns_per_op:>10.1} ns/op  ({ops} ops)", "cluster_step");
    BenchResult { name: "cluster_step", ns_per_op, ops }
}

/// Steps the canonical `ckpt-single` scenario a few dozen epochs in, so
/// the snapshot benches measure a *mid-run* engine with live ledgers,
/// queues and RNG streams — the state a `--checkpoint-every` run pays to
/// serialize — not a freshly booted one.
fn midrun_single_sim() -> SingleVmSim<AppWorkload> {
    let opts = ExpOptions::quick();
    let mut sim = checkpoint::single_sim(&opts, Policy::HeteroCoordinated);
    for _ in 0..64 {
        if !sim.step() {
            break;
        }
    }
    sim
}

/// Full versioned serialization of a mid-run engine. Ops = snapshot
/// bytes, so the committed entry tracks per-byte encode cost.
fn bench_snapshot_save(iters: u64) -> BenchResult {
    let sim = midrun_single_sim();
    run_bench("snapshot_save", iters, move || {
        std::hint::black_box(sim.save()).len() as u64
    })
}

/// Parse + rebuild of the same snapshot. Ops = snapshot bytes.
fn bench_snapshot_restore(iters: u64) -> BenchResult {
    let bytes = midrun_single_sim().save();
    run_bench("snapshot_restore", iters, move || {
        let restored = SingleVmSim::restore(&bytes).expect("valid snapshot");
        std::hint::black_box(restored.now());
        bytes.len() as u64
    })
}

/// One full quick-mode Fig 9 sweep on `jobs` worker threads, timed
/// end-to-end (a single iteration — the sweep is seconds, not nanos). The
/// `jobs = 1` / `jobs = 0` (available parallelism) pair is the committed
/// evidence that the deterministic runner actually buys wall-clock.
fn bench_fig9_jobs(name: &'static str, jobs: usize) -> BenchResult {
    let opts = ExpOptions::quick().with_jobs(jobs);
    let start = Instant::now();
    let set = placement::fig9(&opts);
    std::hint::black_box(set.to_json().len());
    let ns_per_op = start.elapsed().as_nanos() as f64;
    println!("{name:<24} {ns_per_op:>10.1} ns/op  (1 ops)");
    BenchResult { name, ns_per_op, ops: 1 }
}

fn write_json(results: &[BenchResult]) {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{}\": {{ \"ns_per_op\": {:.1}, \"ops\": {} }}{comma}\n",
            r.name, r.ns_per_op, r.ops
        ));
    }
    out.push_str("}\n");
    std::fs::write(BASELINE, out).expect("write BENCH_substrate.json");
    println!("wrote {BASELINE}");
}

/// Minimal extraction of `"<name>": {{ "ns_per_op": <float>` from the
/// committed baseline (hand-rolled: the repo adds no JSON dependency).
fn baseline_ns_per_op(json: &str, name: &str) -> Option<f64> {
    let entry = json.split(&format!("\"{name}\"")).nth(1)?;
    let after = entry.split("\"ns_per_op\":").nth(1)?;
    let value: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    value.parse().ok()
}

fn check_regression(results: &[BenchResult]) -> bool {
    let Ok(json) = std::fs::read_to_string(BASELINE) else {
        eprintln!("--check: no committed {BASELINE}; skipping gate");
        return true;
    };
    let mut ok = true;
    for name in [
        "object_traffic_bulk",
        "object_traffic_scalar",
        "repro_epochs",
        "idle_fleet",
        "cluster_step",
        "snapshot_save",
        "snapshot_restore",
    ] {
        let Some(committed) = baseline_ns_per_op(&json, name) else {
            eprintln!("--check: baseline has no entry for {name}; skipping");
            continue;
        };
        let measured = results
            .iter()
            .find(|r| r.name == name)
            .expect("bench always runs")
            .ns_per_op;
        let ratio = measured / committed.max(f64::MIN_POSITIVE);
        if ratio > MAX_REGRESSION {
            eprintln!(
                "REGRESSION: {name} measured {measured:.1} ns/op vs committed \
                 {committed:.1} ns/op ({ratio:.2}x > {MAX_REGRESSION}x)"
            );
            ok = false;
        } else {
            println!("check {name}: {ratio:.2}x of committed baseline — ok");
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let scale = if smoke { 20 } else { 1 };

    let mut results = vec![
        bench_buddy_churn(2_000 / scale),
        bench_full_vm_scan(60 / scale),
        bench_lru_transitions(100 / scale),
        bench_repro_epochs("repro_epochs", (10 / scale).max(1), true),
        bench_repro_epochs("repro_epochs_scalar", (10 / scale).max(1), false),
        bench_object_traffic_scalar(20_000 / scale),
        bench_object_traffic_bulk(20_000 / scale),
        bench_idle_fleet("idle_fleet", 6, 58),
        bench_idle_fleet("idle_fleet_busy", 6, 0),
        bench_cluster_step(),
        bench_snapshot_save((200 / scale).max(1)),
        bench_snapshot_restore((200 / scale).max(1)),
    ];
    // The end-to-end Fig 9 sweep takes seconds per iteration; only the
    // full (baseline-writing) mode pays for it. `--check` never gates on
    // the fig9 entries, so smoke runs lose nothing.
    if !smoke {
        results.push(bench_fig9_jobs("fig9_jobs1", 1));
        results.push(bench_fig9_jobs("fig9_jobsN", 0));
    }

    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .expect("bench always runs")
            .ns_per_op
    };
    println!(
        "object_traffic speedup: {:.2}x (scalar/bulk)",
        ns_of("object_traffic_scalar") / ns_of("object_traffic_bulk")
    );
    println!(
        "repro_epochs speedup:   {:.2}x (scalar/bulk)",
        ns_of("repro_epochs_scalar") / ns_of("repro_epochs")
    );
    // Wall-clock growth from +58 idle guests; linear scheduling would cost
    // ~(64/6)x, the runnable set should keep this near 1x.
    let wall = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ns_per_op * r.ops as f64)
            .expect("bench always runs")
    };
    println!(
        "idle_fleet cost:        {:.2}x of busy-only wall clock (+58 idle VMs; linear ~10.7x)",
        wall("idle_fleet") / wall("idle_fleet_busy")
    );
    if !smoke {
        println!(
            "fig9 runner speedup:    {:.2}x (jobs=1 / jobs=available)",
            ns_of("fig9_jobs1") / ns_of("fig9_jobsN")
        );
    }

    if check {
        if !check_regression(&results) {
            std::process::exit(1);
        }
    } else {
        write_json(&results);
    }
}
