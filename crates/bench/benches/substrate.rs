//! Criterion benchmarks of the substrate operations every policy's costs
//! are built from: buddy allocation, per-CPU lists, page-table walks and
//! scans, LRU transitions, slab churn, DRF requests and page migration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use hetero_guest::buddy::BuddyAllocator;
use hetero_guest::kernel::{GuestConfig, GuestKernel};
use hetero_guest::page::Gfn;
use hetero_guest::pagetable::PageTable;
use hetero_guest::pcp::PerCpuLists;
use hetero_guest::SlabClass;
use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;
use hetero_vmm::drf::{FairShare, GuestId, SharePolicy};

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_order0", |b| {
        let mut buddy = BuddyAllocator::new(0, 1 << 16);
        b.iter(|| {
            let g = buddy.alloc_page().expect("capacity");
            buddy.free_page(g);
        });
    });
    c.bench_function("buddy_alloc_free_order5", |b| {
        let mut buddy = BuddyAllocator::new(0, 1 << 16);
        b.iter(|| {
            let g = buddy.alloc(5).expect("capacity");
            buddy.free(g, 5);
        });
    });
}

fn bench_pcp(c: &mut Criterion) {
    c.bench_function("pcp_alloc_free_fast_path", |b| {
        let mut buddy = BuddyAllocator::new(0, 1 << 16);
        let mut pcp = PerCpuLists::new(4);
        // Warm the list so the fast path is measured.
        let g = pcp.alloc(0, MemKind::Fast, &mut buddy).expect("capacity");
        pcp.free(0, MemKind::Fast, g, &mut buddy);
        b.iter(|| {
            let g = pcp.alloc(0, MemKind::Fast, &mut buddy).expect("capacity");
            pcp.free(0, MemKind::Fast, g, &mut buddy);
        });
    });
}

fn bench_pagetable(c: &mut Criterion) {
    c.bench_function("pagetable_map_unmap", |b| {
        let mut pt = PageTable::new();
        let mut vpn = 0u64;
        b.iter(|| {
            pt.map(vpn % (1 << 20), Gfn(vpn));
            pt.unmap(vpn % (1 << 20));
            vpn += 1;
        });
    });
    c.bench_function("pagetable_scan_4k_entries", |b| {
        let mut pt = PageTable::new();
        for vpn in 0..4096 {
            pt.map(vpn, Gfn(vpn));
        }
        b.iter(|| {
            let mut hot = 0u64;
            pt.scan_and_reset(0, 4096, |_, accessed, _| hot += u64::from(accessed));
            hot
        });
    });
}

fn bench_kernel_paths(c: &mut Criterion) {
    let config = GuestConfig {
        frames: vec![(MemKind::Fast, 8192), (MemKind::Slow, 32768)],
        cpus: 4,
        page_size: 4096,
    };
    c.bench_function("kernel_alloc_free_page", |b| {
        let mut k = GuestKernel::new(config.clone());
        b.iter(|| {
            let (g, _) = k
                .alloc_page(
                    hetero_guest::PageType::HeapAnon,
                    128,
                    &[MemKind::Fast, MemKind::Slow],
                )
                .expect("capacity");
            k.free_page(g);
        });
    });
    c.bench_function("kernel_migrate_page", |b| {
        b.iter_batched(
            || {
                let mut k = GuestKernel::new(config.clone());
                let (vma, _) = k
                    .mmap_heap(64, std::iter::repeat(200), &[MemKind::Fast])
                    .expect("capacity");
                let gfns: Vec<Gfn> = (vma.start..vma.end())
                    .map(|v| k.page_table().translate(v).expect("mapped"))
                    .collect();
                (k, gfns)
            },
            |(mut k, gfns)| {
                for g in gfns {
                    k.migrate_page(g, MemKind::Slow).expect("room on slow");
                }
                k
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("kernel_slab_alloc_free", |b| {
        let mut k = GuestKernel::new(config.clone());
        b.iter(|| {
            k.slab_alloc(SlabClass::Skbuff, 224, &[MemKind::Fast])
                .expect("capacity");
            k.slab_free_any(SlabClass::Skbuff);
        });
    });
}

fn bench_drf(c: &mut Criterion) {
    c.bench_function("drf_request_release", |b| {
        let mut total: KindMap<u64> = KindMap::default();
        total[MemKind::Fast] = 1 << 20;
        total[MemKind::Slow] = 1 << 22;
        let mut fs = FairShare::new(SharePolicy::paper_drf(), total);
        for i in 0..8 {
            fs.register(GuestId(i), KindMap::default());
        }
        let mut demand: KindMap<u64> = KindMap::default();
        demand[MemKind::Fast] = 64;
        b.iter(|| {
            let g = fs.request(GuestId(3), demand);
            fs.release(GuestId(3), MemKind::Fast, 64);
            g
        });
    });
}

fn bench_reclaim_and_swap(c: &mut Criterion) {
    use hetero_guest::kswapd::Kswapd;
    use hetero_guest::pagecache::FileId;
    c.bench_function("kswapd_balance_pass", |b| {
        b.iter_batched(
            || {
                let mut k = GuestKernel::new(GuestConfig {
                    frames: vec![(MemKind::Fast, 512), (MemKind::Slow, 512)],
                    cpus: 1,
                    page_size: 4096,
                });
                let d = Kswapd::for_kernel(&k);
                let mut off = 0;
                while k.free_frames(MemKind::Fast) > 8 {
                    let (g, _) = k
                        .page_in(FileId(1), off, 200, &[MemKind::Fast])
                        .expect("capacity");
                    k.io_complete(g);
                    off += 1;
                }
                (k, d)
            },
            |(mut k, mut d)| {
                d.balance(&mut k, MemKind::Fast);
                (k, d)
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("swap_out_in_roundtrip", |b| {
        b.iter_batched(
            || {
                let mut k = GuestKernel::new(GuestConfig {
                    frames: vec![(MemKind::Fast, 256), (MemKind::Slow, 256)],
                    cpus: 1,
                    page_size: 4096,
                });
                let (vma, _) = k
                    .mmap_heap(64, std::iter::repeat(100), &[MemKind::Fast])
                    .expect("capacity");
                (k, vma)
            },
            |(mut k, vma)| {
                for vpn in vma.start..vma.end() {
                    let g = k.page_table().translate(vpn).expect("mapped");
                    k.swap_out(g);
                }
                k.swap_in_any(64, &[MemKind::Fast]);
                k
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_trace(c: &mut Criterion) {
    use hetero_sim::SimRng;
    use hetero_workloads::{apps, AppWorkload, WorkloadTrace};
    c.bench_function("trace_record_and_roundtrip", |b| {
        b.iter(|| {
            let mut spec = apps::nginx();
            spec.total_instructions /= 100;
            let wl = AppWorkload::new(spec, 4096, 64);
            let mut rng = SimRng::seed_from(3);
            let t = WorkloadTrace::record(wl, &mut rng);
            let text = t.to_text();
            WorkloadTrace::from_text(&text, t.spec.clone()).expect("roundtrip")
        });
    });
}

criterion_group!(
    benches,
    bench_buddy,
    bench_pcp,
    bench_pagetable,
    bench_kernel_paths,
    bench_drf,
    bench_reclaim_and_swap,
    bench_trace
);
criterion_main!(benches);
