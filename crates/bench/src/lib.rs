//! Benchmark harness for the HeteroOS reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run --release -p bench --bin repro -- all`)
//!   regenerates every table and figure of the paper's evaluation and
//!   prints them as text tables — see [`run_experiment`] for the available
//!   targets;
//! * the **criterion benches** (`cargo bench -p bench`) measure the
//!   substrate operations themselves (buddy allocation, page-table scans,
//!   LRU transitions, DRF requests, end-to-end epochs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hetero_core::experiments::{
    ablations, capacity, coordinated, distribution, extensions, micro, overhead, placement,
    sensitivity, sharing, tables, ExpOptions,
};

/// Every experiment target the `repro` binary accepts, in paper order.
pub const TARGETS: [&str; 17] = [
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
];

/// Ablation targets (beyond the paper's own experiments).
pub const ABLATIONS: [&str; 4] = [
    "ablation-lru",
    "ablation-interval",
    "ablation-scope",
    "ablation-drf",
];

/// §4.3 extension experiments (the paper's future work, built out).
pub const EXTENSIONS: [&str; 4] =
    ["ext-multitier", "ext-wear", "ext-baremetal", "ext-hints"];

/// Runs one experiment by name and returns its rendered output.
///
/// # Errors
///
/// Returns an error message for unknown targets.
pub fn run_experiment(target: &str, opts: &ExpOptions) -> Result<String, String> {
    let out = match target {
        "table1" => tables::table1(),
        "table3" => tables::table3(),
        "table4" => tables::table4(),
        "table5" => tables::table5(),
        "table6" => tables::table6(),
        "fig1" => sensitivity::fig1(opts).to_string(),
        "fig2" => sensitivity::fig2(opts).to_string(),
        "fig3" => capacity::fig3(opts).to_string(),
        "fig4" => distribution::fig4_table(opts),
        "fig6" => micro::fig6(opts).to_string(),
        "fig7" => micro::fig7(opts).to_string(),
        "fig8" => overhead::fig8(opts).to_string(),
        "fig9" => placement::fig9(opts).to_string(),
        "fig10" => placement::fig10(opts).to_string(),
        "fig11" => coordinated::fig11(opts).to_string(),
        "fig12" => coordinated::fig12_table(opts),
        "fig13" => sharing::fig13(opts).to_string(),
        "ablation-lru" => ablations::ablation_lru_eviction(opts).to_string(),
        "ablation-interval" => ablations::ablation_adaptive_interval(opts).to_string(),
        "ablation-scope" => ablations::ablation_tracking_scope(opts).to_string(),
        "ablation-drf" => ablations::ablation_drf_weights(opts).to_string(),
        "ext-multitier" => extensions::ext_multitier(opts).to_string(),
        "ext-wear" => extensions::ext_wear(opts).to_string(),
        "ext-baremetal" => extensions::ext_baremetal(opts).to_string(),
        "ext-hints" => extensions::ext_hints(opts).to_string(),
        other => return Err(format!("unknown experiment target '{other}'")),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_target_runs_in_quick_mode() {
        // Tables are cheap; run them all. Figures are validated by their
        // own module tests — here just verify dispatch for one of each
        // kind.
        let opts = ExpOptions::quick();
        for t in ["table1", "table3", "table4", "table5", "table6"] {
            assert!(run_experiment(t, &opts).is_ok(), "{t}");
        }
        assert!(run_experiment("nope", &opts).is_err());
    }
}
