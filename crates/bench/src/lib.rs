//! Benchmark harness for the HeteroOS reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run --release -p bench --bin repro -- all`)
//!   regenerates every table and figure of the paper's evaluation and
//!   prints them as text tables — see [`run_experiment`] for the available
//!   targets;
//! * the **criterion benches** (`cargo bench -p bench`) measure the
//!   substrate operations themselves (buddy allocation, page-table scans,
//!   LRU transitions, DRF requests, end-to-end epochs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hetero_core::experiments::{
    ablations, capacity, checkpoint, cluster, coordinated, distribution, extensions, micro,
    overhead, placement, recovery, sensitivity, sharing, tables, tiers, ExpOptions,
};
use hetero_core::multivm::MultiVmSim;
use hetero_core::{AuditLevel, Cluster, Policy, RunReport, SingleVmSim};
use hetero_sim::export::json_string;
use hetero_sim::{Runner, SeriesSet};

/// Every experiment target the `repro` binary accepts, in paper order.
pub const TARGETS: [&str; 17] = [
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
];

/// Ablation targets (beyond the paper's own experiments).
pub const ABLATIONS: [&str; 4] = [
    "ablation-lru",
    "ablation-interval",
    "ablation-scope",
    "ablation-drf",
];

/// §4.3 extension experiments (the paper's future work, built out).
pub const EXTENSIONS: [&str; 4] =
    ["ext-multitier", "ext-wear", "ext-baremetal", "ext-hints"];

/// Crash-consistency and recovery experiments over the NVM tier
/// (see `hetero_core::experiments::recovery`; honors `--persist` and
/// `--faults`).
pub const RECOVERY: [&str; 3] = ["rec-time", "rec-overhead", "rec-ablation"];

/// Rack-scale cluster experiments (see
/// `hetero_core::experiments::cluster`; honors `--hosts` and
/// `--arrival`).
pub const CLUSTER: [&str; 1] = ["cluster"];

/// The N-tier device-profile scenario family (see
/// `hetero_core::experiments::tiers`; composes with `--tier-profile` and
/// `--tracking` on every other single-VM target too).
pub const TIERS: [&str; 1] = ["tiers"];

/// Targets the checkpoint/restore driver accepts (`repro
/// --checkpoint-every N` / `--resume FILE`) — one canonical scenario per
/// simulation layer (see `hetero_core::experiments::checkpoint`).
/// `ckpt-single` and `ckpt-fleet` also run standalone as plain targets.
pub const CHECKPOINTABLE: [&str; 3] = ["ckpt-single", "ckpt-fleet", "cluster"];

/// A structured experiment result: either a rendered text table or a
/// figure's underlying data series (plot-ready, exportable as JSON/CSV).
pub enum Artifact {
    /// A plain-text table, already rendered for terminal output.
    Table(String),
    /// A figure's data series.
    Figure(SeriesSet),
    /// A raw artifact carrying both a rendered text summary and its own
    /// pre-serialized JSON document (the cluster experiment: the JSON is
    /// the full outcome — report, per-VM summaries, migration trace —
    /// and is the byte-identity surface the determinism gates diff).
    Raw {
        /// Rendered terminal summary.
        text: String,
        /// Full machine-readable JSON document.
        json: String,
    },
}

impl Artifact {
    /// The human-readable rendering (what the `repro` binary prints).
    pub fn render(&self) -> String {
        match self {
            Artifact::Table(text) => text.clone(),
            Artifact::Figure(set) => set.to_string(),
            Artifact::Raw { text, .. } => text.clone(),
        }
    }

    /// Machine-readable JSON: the full series set for figures, a
    /// `{"type":"table","text":...}` wrapper for text tables, the
    /// carried document for raw artifacts.
    pub fn to_json(&self) -> String {
        match self {
            Artifact::Table(text) => {
                format!("{{\"type\":\"table\",\"text\":{}}}", json_string(text))
            }
            Artifact::Figure(set) => set.to_json(),
            Artifact::Raw { json, .. } => json.clone(),
        }
    }

    /// CSV for figures; `None` for text tables and raw artifacts (those
    /// export as `.txt`).
    pub fn to_csv(&self) -> Option<String> {
        match self {
            Artifact::Table(_) | Artifact::Raw { .. } => None,
            Artifact::Figure(set) => Some(set.to_csv()),
        }
    }
}

/// Runs one experiment by name and returns its structured result —
/// the underlying [`SeriesSet`] for figures, rendered text for tables.
///
/// # Errors
///
/// Returns an error message for unknown targets.
pub fn run_artifact(target: &str, opts: &ExpOptions) -> Result<Artifact, String> {
    use Artifact::{Figure, Table};
    let out = match target {
        "table1" => Table(tables::table1()),
        "table3" => Table(tables::table3()),
        "table4" => Table(tables::table4()),
        "table5" => Table(tables::table5()),
        "table6" => Table(tables::table6()),
        "fig1" => Figure(sensitivity::fig1(opts)),
        "fig2" => Figure(sensitivity::fig2(opts)),
        "fig3" => Figure(capacity::fig3(opts)),
        "fig4" => Table(distribution::fig4_table(opts)),
        "fig6" => Figure(micro::fig6(opts)),
        "fig7" => Figure(micro::fig7(opts)),
        "fig8" => Figure(overhead::fig8(opts)),
        "fig9" => Figure(placement::fig9(opts)),
        "fig10" => Figure(placement::fig10(opts)),
        "fig11" => Figure(coordinated::fig11(opts)),
        "fig12" => Table(coordinated::fig12_table(opts)),
        "fig13" => Figure(sharing::fig13(opts)),
        "ablation-lru" => Figure(ablations::ablation_lru_eviction(opts)),
        "ablation-interval" => Figure(ablations::ablation_adaptive_interval(opts)),
        "ablation-scope" => Figure(ablations::ablation_tracking_scope(opts)),
        "ablation-drf" => Figure(ablations::ablation_drf_weights(opts)),
        "ext-multitier" => Figure(extensions::ext_multitier(opts)),
        "ext-wear" => Figure(extensions::ext_wear(opts)),
        "ext-baremetal" => Figure(extensions::ext_baremetal(opts)),
        "ext-hints" => Figure(extensions::ext_hints(opts)),
        "tiers" => Figure(tiers::tiers_matrix(opts)),
        "rec-time" => Figure(recovery::rec_time(opts)),
        "rec-overhead" => Table(recovery::rec_overhead(opts)),
        "rec-ablation" => Table(recovery::rec_ablation(opts)),
        "cluster" => {
            let outcome = cluster::fleet_outcome(opts);
            Artifact::Raw {
                text: cluster::fleet_table(&outcome),
                json: outcome.to_json(),
            }
        }
        "ckpt-single" | "ckpt-fleet" => {
            run_checkpointable(target, opts, None, None, &mut |_, _| Ok(()))?
        }
        other => return Err(format!("unknown experiment target '{other}'")),
    };
    Ok(out)
}

/// Where periodic checkpoints go: called with `(step, snapshot bytes)`
/// after every `--checkpoint-every` interval; an `Err` aborts the run
/// (a snapshot that cannot be written is not a checkpoint).
pub type SnapshotSink<'a> = &'a mut dyn FnMut(u64, &[u8]) -> Result<(), String>;

/// Mirrors the engine's end-of-run audit check, but as a recoverable
/// error instead of a panic: the `repro` binary turns it into a
/// nonzero exit with the violation list on stderr.
fn fail_on_violations(
    audit: AuditLevel,
    what: &str,
    violations: &[impl std::fmt::Display],
) -> Result<(), String> {
    if audit == AuditLevel::Off || violations.is_empty() {
        return Ok(());
    }
    let mut msg = format!(
        "invariant sanitizer ({audit} level) found {} violation(s) in {what} run:",
        violations.len(),
    );
    for v in violations {
        msg.push_str("\n  - ");
        msg.push_str(&v.to_string());
    }
    Err(msg)
}

fn single_text(r: &RunReport) -> String {
    format!(
        "ckpt-single: {} under {} — runtime {:.2} ms, {} epochs, \
         {} migrations, {:.2}% overhead\n",
        r.app,
        r.policy,
        r.runtime.as_millis_f64(),
        r.epochs,
        r.migrations,
        r.overhead_percent(),
    )
}

fn fleet_text(reports: &[RunReport]) -> String {
    let mut out = String::from("ckpt-fleet: co-scheduled VM templates on one DRF host\n");
    for r in reports {
        out.push_str(&format!(
            "  {:<12} {:<18} {:>12.2} ms {:>8} epochs {:>8} migrations\n",
            r.app,
            r.policy,
            r.runtime.as_millis_f64(),
            r.epochs,
            r.migrations,
        ));
    }
    out
}

fn fleet_json(reports: &[RunReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&r.to_json());
    }
    out.push_str("\n]");
    out
}

/// Runs a checkpointable target with optional periodic snapshots and
/// optional resume-from-snapshot, returning the same artifact shape the
/// straight run produces (byte-identical when resumed mid-run).
///
/// * `every = Some(n)` calls `on_snapshot(step, bytes)` after every `n`
///   engine steps (single/fleet) or cluster rounds; the callback decides
///   where the bytes go (the `repro` binary writes `<target>-<k>.snap`).
/// * `resume = Some(bytes)` restores the run from a snapshot instead of
///   booting fresh; layer/version mismatches and truncation surface as
///   descriptive `Err`s, never panics.
///
/// The cluster target restores with `opts.jobs` boot workers — thread
/// count is a restore-time parameter, never part of the snapshot, and
/// the outcome is byte-identical at any value.
///
/// # Errors
///
/// Unknown or non-checkpointable targets, undecodable snapshots, failed
/// snapshot writes (propagated from `on_snapshot`) and audit violations
/// all come back as error strings.
pub fn run_checkpointable(
    target: &str,
    opts: &ExpOptions,
    every: Option<u64>,
    resume: Option<&[u8]>,
    on_snapshot: SnapshotSink<'_>,
) -> Result<Artifact, String> {
    let due = |step: u64| matches!(every, Some(n) if n > 0 && step.is_multiple_of(n));
    match target {
        "ckpt-single" => {
            let mut sim = match resume {
                Some(bytes) => SingleVmSim::restore(bytes)
                    .map_err(|e| format!("cannot resume '{target}': {e}"))?,
                None => checkpoint::single_sim(opts, Policy::HeteroCoordinated),
            };
            let mut steps = 0u64;
            while sim.step() {
                steps += 1;
                if due(steps) {
                    on_snapshot(steps, &sim.save())?;
                }
            }
            fail_on_violations(opts.audit, target, sim.violations())?;
            let report = sim.report();
            Ok(Artifact::Raw {
                text: single_text(&report),
                json: report.to_json(),
            })
        }
        "ckpt-fleet" => {
            let mut sim = match resume {
                Some(bytes) => MultiVmSim::restore(bytes)
                    .map_err(|e| format!("cannot resume '{target}': {e}"))?,
                None => checkpoint::fleet_sim(opts, Policy::HeteroCoordinated),
            };
            let mut steps = 0u64;
            while sim.step_fleet() {
                steps += 1;
                if due(steps) {
                    on_snapshot(steps, &sim.save())?;
                }
            }
            let (reports, violations) = sim.into_results();
            fail_on_violations(opts.audit, target, &violations)?;
            Ok(Artifact::Raw {
                text: fleet_text(&reports),
                json: fleet_json(&reports),
            })
        }
        "cluster" => {
            let mut c = match resume {
                Some(bytes) => Cluster::restore(bytes, opts.jobs.max(1))
                    .map_err(|e| format!("cannot resume '{target}': {e}"))?,
                None => checkpoint::cluster_sim(opts),
            };
            let mut rounds = 0u64;
            while c.step_round() {
                rounds += 1;
                if due(rounds) {
                    on_snapshot(rounds, &c.save())?;
                }
            }
            let (outcome, violations) = c.finish();
            fail_on_violations(opts.audit, target, &violations)?;
            Ok(Artifact::Raw {
                text: cluster::fleet_table(&outcome),
                json: outcome.to_json(),
            })
        }
        other => Err(format!(
            "'{other}' is not checkpointable (expected one of: {})",
            CHECKPOINTABLE.join(", ")
        )),
    }
}

/// Runs many experiment targets with a total parallelism budget of `jobs`
/// OS threads (`0` = available parallelism).
///
/// The budget is split between across-target workers and within-target run
/// sweeps: with `T` targets, `min(jobs, T)` targets execute concurrently
/// and each target's experiment runs its own sweep on `jobs / min(jobs, T)`
/// inner workers. Results come back in the given target order, and every
/// artifact is byte-identical to a `jobs = 1` run — parallelism only
/// changes the wall-clock, never the output (see
/// `hetero_sim::runner`'s determinism contract).
pub fn run_artifacts(
    targets: &[String],
    opts: &ExpOptions,
    jobs: usize,
) -> Vec<(String, Result<Artifact, String>)> {
    let jobs = if jobs == 0 {
        hetero_sim::runner::available_jobs()
    } else {
        jobs
    };
    let outer = jobs.min(targets.len()).max(1);
    let inner_opts = opts.with_jobs((jobs / outer).max(1));
    Runner::new(outer).run(targets.to_vec(), move |target| {
        let result = run_artifact(&target, &inner_opts);
        (target, result)
    })
}

/// Runs one experiment by name and returns its rendered output.
///
/// # Errors
///
/// Returns an error message for unknown targets.
pub fn run_experiment(target: &str, opts: &ExpOptions) -> Result<String, String> {
    run_artifact(target, opts).map(|a| a.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_target_runs_in_quick_mode() {
        // Tables are cheap; run them all. Figures are validated by their
        // own module tests — here just verify dispatch for one of each
        // kind.
        let opts = ExpOptions::quick();
        for t in ["table1", "table3", "table4", "table5", "table6"] {
            assert!(run_experiment(t, &opts).is_ok(), "{t}");
        }
        assert!(run_experiment("nope", &opts).is_err());
    }

    #[test]
    fn run_artifacts_preserves_order_and_is_jobs_invariant() {
        let opts = ExpOptions::quick();
        let targets: Vec<String> = ["table3", "fig8", "table1"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let seq = run_artifacts(&targets, &opts, 1);
        let par = run_artifacts(&targets, &opts, 4);
        assert_eq!(seq.len(), targets.len());
        for (i, ((ts, rs), (tp, rp))) in seq.iter().zip(&par).enumerate() {
            assert_eq!(ts, &targets[i]);
            assert_eq!(ts, tp);
            let (a, b) = (rs.as_ref().unwrap(), rp.as_ref().unwrap());
            assert_eq!(a.to_json(), b.to_json(), "{ts}");
            assert_eq!(a.render(), b.render(), "{ts}");
        }
    }

    #[test]
    fn run_artifacts_reports_unknown_targets_in_place() {
        let opts = ExpOptions::quick();
        let targets = vec!["table1".to_string(), "bogus".to_string()];
        let out = run_artifacts(&targets, &opts, 2);
        assert!(out[0].1.is_ok());
        assert!(out[1].1.is_err());
    }

    #[test]
    fn table_artifacts_wrap_as_json_and_have_no_csv() {
        let opts = ExpOptions::quick();
        let art = run_artifact("table1", &opts).unwrap();
        assert!(matches!(art, Artifact::Table(_)));
        let json = art.to_json();
        assert!(json.starts_with("{\"type\":\"table\",\"text\":\""), "{json}");
        assert!(json.ends_with("\"}"), "{json}");
        assert!(art.to_csv().is_none());
        assert_eq!(art.render(), tables::table1());
    }
}
