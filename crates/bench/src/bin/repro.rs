//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seed N] <target>...
//! repro all            # every table and figure
//! repro ablations      # the design-choice ablations
//! repro fig9 fig10     # specific targets
//! ```

use std::process::ExitCode;

use bench::{run_experiment, ABLATIONS, EXTENSIONS, TARGETS};
use hetero_core::experiments::ExpOptions;

fn main() -> ExitCode {
    let mut opts = ExpOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => opts.seed = seed,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "all" => targets.extend(TARGETS.iter().map(|s| s.to_string())),
            "ablations" => targets.extend(ABLATIONS.iter().map(|s| s.to_string())),
            "extensions" => targets.extend(EXTENSIONS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--seed N] <target>...");
                println!("targets: all ablations extensions {}", TARGETS.join(" "));
                println!("         {} {}", ABLATIONS.join(" "), EXTENSIONS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("no targets; try `repro all` or `repro --help`");
        return ExitCode::FAILURE;
    }
    for target in targets {
        match run_experiment(&target, &opts) {
            Ok(out) => {
                println!("==================== {target} ====================");
                println!("{out}");
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
