//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seed N] [--jobs N] [--sched MODE] [--audit LEVEL]
//!       [--persist MODE] [--faults KIND] [--hosts N] [--arrival MODE]
//!       [--tier-profile NAME] [--tracking MODE] [--json-out DIR] <target>...
//! repro all                      # every table and figure
//! repro ablations                # the design-choice ablations
//! repro fig9 fig10               # specific targets
//! repro --json-out out/ all      # also write machine-readable exports
//! repro --jobs 8 all             # spread runs over 8 OS threads
//! repro --sched dense fig9       # force the dense per-epoch scheduler
//! repro --audit epoch fig9       # cross-check invariants every epoch
//! repro recovery                 # the crash-consistency experiments
//! repro --persist epoch --faults host-power-loss rec-ablation
//! repro cluster                  # 1,000-VM/16-host consolidation run
//! repro --hosts 8 --arrival trace cluster
//! repro tiers                    # device-profile topology × tracking matrix
//! repro --tier-profile optane-dc --tracking access-bit ckpt-single
//! repro --checkpoint-every 10 cluster        # snapshot every 10 rounds
//! repro --resume checkpoints/cluster-3.snap cluster   # resume one
//! ```
//!
//! `--jobs N` spreads the work over `N` OS threads (default: available
//! parallelism; `--jobs 1` forces sequential). Output is byte-identical
//! for every job count — parallelism only changes the wall-clock.
//!
//! `--sched MODE` (`event` or `dense`) selects the epoch scheduler: `event`
//! (the default) pops management work off a deterministic timer queue and
//! skips epochs with nothing due, `dense` re-checks every subsystem each
//! epoch. Exports are byte-identical either way — the mode is a pure
//! performance lever, and the equivalence is pinned by the scheduler
//! test matrix.
//!
//! `--audit LEVEL` (`off`, `epoch` or `paranoid`) runs the invariant
//! sanitizer and shadow reference model over every simulation. Auditing is
//! observational — exports stay byte-identical — but any violation makes
//! the offending run panic instead of silently reporting wrong numbers.
//!
//! `--persist MODE` (`off`, `eager`, `epoch` or `on-evict`) selects the
//! NVM write-behind flush policy for the `recovery` experiment family, and
//! `--faults KIND` (`host-power-loss` or `guest-crash-persist`) picks the
//! crash its fault-arming drivers inject mid-run. Every other target
//! ignores both flags, so its exports are unchanged by them.
//!
//! `--hosts N` and `--arrival MODE` (`poisson` or `trace`) shape the
//! `cluster` target — the rack-scale consolidation run with inter-host
//! pre-copy live migration (`--hosts 0` keeps the experiment default of
//! 16 hosts, 4 in quick mode). Every other target ignores both flags.
//!
//! `--tier-profile NAME` (`table1-trio`, `optane-dc` or `cxl`) replaces
//! the throttle-derived node parameters of the checkpointable scenarios
//! with a named device profile — Optane DC carries asymmetric load/store
//! latency *and* separate read/write bandwidth — and `--tracking MODE`
//! (`none`, `full-vm`, `guided` or `access-bit`) overrides each policy's
//! hotness-tracking discipline (`access-bit` harvests real page-table A/D
//! bits). The `tiers` target sweeps the whole topology × policy ×
//! tracking matrix in one run.
//!
//! `--checkpoint-every N` snapshots the run every `N` steps (cluster
//! rounds for the `cluster` target) into `--checkpoint-dir DIR` (default
//! `checkpoints/`) as versioned binary snapshots named `<target>-<k>.snap`,
//! and `--resume FILE` restores a run from one such snapshot instead of
//! booting fresh. Both accept exactly one checkpointable target
//! (`ckpt-single`, `ckpt-fleet` or `cluster`) per invocation. A resumed
//! run finishes **byte-identically** to an uninterrupted one — same
//! rendered output, same JSON exports. A missing, truncated or
//! version-mismatched snapshot exits nonzero with a descriptive message.
//!
//! With `--json-out DIR`, every target additionally writes machine-readable
//! files into `DIR`: `<target>.json` for all targets, plus `<target>.csv`
//! for figures and `<target>.txt` for text tables. A `telemetry.json`
//! snapshot (metrics registry + span trace of an instrumented quick run)
//! is written alongside them.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::{
    run_artifacts, run_checkpointable, Artifact, ABLATIONS, CHECKPOINTABLE, CLUSTER, EXTENSIONS,
    RECOVERY, TARGETS, TIERS,
};
use hetero_core::experiments::ExpOptions;
use hetero_faults::FaultKind;
use hetero_mem::TierProfile;
use hetero_core::{Policy, SimConfig, SingleVmSim};
use hetero_workloads::{apps, AppWorkload};

/// Runs a short instrumented simulation and returns its telemetry
/// snapshot (metrics + spans) as a JSON document.
fn telemetry_snapshot(seed: u64) -> String {
    let mut spec = apps::redis();
    spec.total_instructions /= 20;
    let cfg = SimConfig {
        seed,
        ..SimConfig::paper_default().with_capacity_ratio(1, 8)
    }
    .with_telemetry(true);
    let workload = AppWorkload::new(spec, cfg.page_size, cfg.scale);
    let mut sim = SingleVmSim::new(cfg, Policy::HeteroCoordinated, workload);
    while sim.step() {}
    sim.telemetry()
        .expect("telemetry was enabled in the config")
        .snapshot_json()
}

fn write_file(dir: &std::path::Path, name: &str, body: &str) -> Result<(), String> {
    let path = dir.join(name);
    std::fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Is `target` one of the names `run_artifact` accepts?
fn is_known_target(target: &str) -> bool {
    TARGETS.contains(&target)
        || ABLATIONS.contains(&target)
        || EXTENSIONS.contains(&target)
        || RECOVERY.contains(&target)
        || CLUSTER.contains(&target)
        || TIERS.contains(&target)
        || CHECKPOINTABLE.contains(&target)
}

/// Prints one artifact and, with `--json-out`, writes the same export
/// set as a straight run (`<target>.json` + `.csv`/`.txt` +
/// `telemetry.json`) so determinism gates can `diff -r` a checkpointed
/// or resumed run against an uninterrupted one.
fn emit(
    target: &str,
    artifact: &Artifact,
    json_out: Option<&std::path::Path>,
    seed: u64,
) -> ExitCode {
    let rendered = artifact.render();
    println!("==================== {target} ====================");
    println!("{rendered}");
    if let Some(dir) = json_out {
        let result = write_file(dir, &format!("{target}.json"), &artifact.to_json())
            .and_then(|()| match artifact.to_csv() {
                Some(csv) => write_file(dir, &format!("{target}.csv"), &csv),
                None => write_file(dir, &format!("{target}.txt"), &rendered),
            })
            .and_then(|()| write_file(dir, "telemetry.json", &telemetry_snapshot(seed)));
        if let Err(e) = result {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("machine-readable exports written to {}", dir.display());
    }
    ExitCode::SUCCESS
}

/// Parses a `--faults` crash kind by its display name.
fn parse_crash_kind(s: &str) -> Result<FaultKind, String> {
    match s {
        "host-power-loss" | "power-loss" => Ok(FaultKind::HostPowerLoss),
        "guest-crash-persist" | "crash-persist" => Ok(FaultKind::GuestCrashPersist),
        other => Err(format!(
            "unknown crash kind '{other}' (expected host-power-loss or guest-crash-persist)"
        )),
    }
}

fn main() -> ExitCode {
    let mut opts = ExpOptions::default();
    // The CLI defaults to available parallelism; `--jobs 1` forces the
    // sequential path. Either way the output bytes are identical.
    let mut jobs: usize = 0;
    let mut targets: Vec<String> = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_dir = PathBuf::from("checkpoints");
    let mut resume: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => opts.seed = seed,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs requires an integer (0 = available parallelism)");
                    return ExitCode::FAILURE;
                }
            },
            "--audit" => match args.next().map(|s| s.parse()) {
                Some(Ok(level)) => opts.audit = level,
                Some(Err(e)) => {
                    eprintln!("--audit: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--audit requires a level (off, epoch or paranoid)");
                    return ExitCode::FAILURE;
                }
            },
            "--sched" => match args.next().map(|s| s.parse()) {
                Some(Ok(mode)) => opts.sched = mode,
                Some(Err(e)) => {
                    eprintln!("--sched: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--sched requires a mode (event or dense)");
                    return ExitCode::FAILURE;
                }
            },
            "--json-out" => match args.next() {
                Some(dir) => json_out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json-out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--persist" => match args.next().map(|s| s.parse()) {
                Some(Ok(policy)) => opts.persist = policy,
                Some(Err(e)) => {
                    eprintln!("--persist: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--persist requires a mode (off, eager, epoch or on-evict)");
                    return ExitCode::FAILURE;
                }
            },
            "--faults" => match args.next().as_deref().map(parse_crash_kind) {
                Some(Ok(kind)) => opts.faults = Some(kind),
                Some(Err(e)) => {
                    eprintln!("--faults: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "--faults requires a crash kind \
                         (host-power-loss or guest-crash-persist)"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--hosts" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.hosts = n,
                None => {
                    eprintln!("--hosts requires an integer (0 = experiment default)");
                    return ExitCode::FAILURE;
                }
            },
            "--arrival" => match args.next().map(|s| s.parse()) {
                Some(Ok(mode)) => opts.arrival = mode,
                Some(Err(e)) => {
                    eprintln!("--arrival: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--arrival requires a mode (poisson or trace)");
                    return ExitCode::FAILURE;
                }
            },
            "--tier-profile" => match args.next().map(|s| s.parse::<TierProfile>()) {
                Some(Ok(profile)) => opts.tier_profile = Some(profile),
                Some(Err(e)) => {
                    eprintln!("--tier-profile: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "--tier-profile requires a name ({})",
                        TierProfile::names().join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--tracking" => match args.next().map(|s| s.parse()) {
                Some(Ok(mode)) => opts.tracking = Some(mode),
                Some(Err(e)) => {
                    eprintln!("--tracking: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "--tracking requires a mode (none, full-vm, guided or access-bit)"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-every" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => checkpoint_every = Some(n),
                _ => {
                    eprintln!("--checkpoint-every requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-dir" => match args.next() {
                Some(dir) => checkpoint_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--checkpoint-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => match args.next() {
                Some(file) => resume = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--resume requires a snapshot file");
                    return ExitCode::FAILURE;
                }
            },
            "all" => targets.extend(TARGETS.iter().map(|s| s.to_string())),
            "ablations" => targets.extend(ABLATIONS.iter().map(|s| s.to_string())),
            "extensions" => targets.extend(EXTENSIONS.iter().map(|s| s.to_string())),
            "recovery" => targets.extend(RECOVERY.iter().map(|s| s.to_string())),
            "cluster" => targets.extend(CLUSTER.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--seed N] [--jobs N] [--sched MODE] \
                     [--audit LEVEL] [--persist MODE] [--faults KIND] \
                     [--hosts N] [--arrival MODE] [--tier-profile NAME] \
                     [--tracking MODE] [--json-out DIR] \
                     [--checkpoint-every N] [--checkpoint-dir DIR] \
                     [--resume FILE] <target>..."
                );
                println!("sched modes: event dense");
                println!("audit levels: off epoch paranoid");
                println!("persist modes: off eager epoch on-evict");
                println!("fault kinds: host-power-loss guest-crash-persist");
                println!("arrival modes: poisson trace (cluster target only)");
                println!("tier profiles: {}", TierProfile::names().join(" "));
                println!("tracking modes: none full-vm guided access-bit");
                println!(
                    "checkpointable targets (--checkpoint-every/--resume): {}",
                    CHECKPOINTABLE.join(" ")
                );
                println!(
                    "targets: all ablations extensions recovery cluster tiers {}",
                    TARGETS.join(" ")
                );
                println!(
                    "         {} {} {}",
                    ABLATIONS.join(" "),
                    EXTENSIONS.join(" "),
                    RECOVERY.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("no targets; try `repro all` or `repro --help`");
        return ExitCode::FAILURE;
    }
    // Validate every target before running anything, so a typo at the end
    // of the list cannot waste minutes of completed experiments first.
    let unknown: Vec<&str> = targets
        .iter()
        .map(String::as_str)
        .filter(|t| !is_known_target(t))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment target(s): {}", unknown.join(", "));
        eprintln!(
            "valid targets: all ablations extensions recovery cluster tiers {}",
            TARGETS.join(" ")
        );
        eprintln!(
            "               {} {} {}",
            ABLATIONS.join(" "),
            EXTENSIONS.join(" "),
            RECOVERY.join(" ")
        );
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &json_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if checkpoint_every.is_some() || resume.is_some() {
        // Checkpoint/resume mode drives exactly one run step by step; a
        // multi-target sweep has no single stream of snapshots to name.
        let target = match targets.as_slice() {
            [t] if CHECKPOINTABLE.contains(&t.as_str()) => t.clone(),
            [t] => {
                eprintln!(
                    "'{t}' is not checkpointable; --checkpoint-every/--resume \
                     accept one of: {}",
                    CHECKPOINTABLE.join(", ")
                );
                return ExitCode::FAILURE;
            }
            _ => {
                eprintln!(
                    "--checkpoint-every/--resume accept exactly one target \
                     (one of: {})",
                    CHECKPOINTABLE.join(", ")
                );
                return ExitCode::FAILURE;
            }
        };
        let resume_bytes = match &resume {
            Some(path) => match std::fs::read(path) {
                Ok(bytes) => Some(bytes),
                Err(e) => {
                    eprintln!("cannot read snapshot {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        if checkpoint_every.is_some() {
            if let Err(e) = std::fs::create_dir_all(&checkpoint_dir) {
                eprintln!("cannot create {}: {e}", checkpoint_dir.display());
                return ExitCode::FAILURE;
            }
        }
        let run_jobs = if jobs == 0 {
            hetero_sim::runner::available_jobs()
        } else {
            jobs
        };
        let run_opts = opts.with_jobs(run_jobs);
        let mut seq = 0u64;
        let result = run_checkpointable(
            &target,
            &run_opts,
            checkpoint_every,
            resume_bytes.as_deref(),
            &mut |step, bytes| {
                seq += 1;
                let path = checkpoint_dir.join(format!("{target}-{seq}.snap"));
                std::fs::write(&path, bytes)
                    .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
                println!("checkpoint {seq} at step {step} -> {}", path.display());
                Ok(())
            },
        );
        let artifact = match result {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        return emit(&target, &artifact, json_out.as_deref(), opts.seed);
    }
    for (target, result) in run_artifacts(&targets, &opts, jobs) {
        let artifact = match result {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let rendered = artifact.render();
        println!("==================== {target} ====================");
        println!("{rendered}");
        if let Some(dir) = &json_out {
            let result = write_file(dir, &format!("{target}.json"), &artifact.to_json())
                .and_then(|()| match artifact.to_csv() {
                    Some(csv) => write_file(dir, &format!("{target}.csv"), &csv),
                    None => write_file(dir, &format!("{target}.txt"), &rendered),
                });
            if let Err(e) = result {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &json_out {
        if let Err(e) = write_file(dir, "telemetry.json", &telemetry_snapshot(opts.seed)) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("machine-readable exports written to {}", dir.display());
    }
    ExitCode::SUCCESS
}
