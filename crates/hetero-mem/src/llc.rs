//! Last-level-cache model.
//!
//! The paper evaluates on two platforms: the throttling testbed with a 16 MB
//! LLC (Fig 1) and Intel's NVM emulator with a 48 MB LLC (Fig 2), observing
//! that the larger cache lowers every application's slowdown. The engine
//! needs only one thing from the cache: *how many of an application's
//! accesses reach memory*. [`LlcModel`] answers that with a standard
//! working-set coverage argument.
//!
//! Applications publish a baseline MPKI (Table 4) measured on the 16 MB
//! testbed; [`LlcModel::mpki_scale`] rescales it for a different cache size
//! by comparing the *uncovered* fraction of the application's hot working
//! set under both caches.

/// Cache size of the paper's throttling testbed (Intel X5560, §2.2 Fig 1).
pub const TESTBED_LLC_BYTES: u64 = 16 << 20;
/// Cache size of Intel's NVM emulator platform (E5-4620 v2, §2.2 Fig 2).
pub const EMULATOR_LLC_BYTES: u64 = 48 << 20;

/// Fraction of misses that no cache can remove (cold/coherence misses).
const COMPULSORY_FLOOR: f64 = 0.05;

/// A last-level cache of a given size.
///
/// # Examples
///
/// ```
/// use hetero_mem::LlcModel;
///
/// let small = LlcModel::testbed();
/// let large = LlcModel::intel_emulator();
/// let hot = 256 << 20; // 256 MB hot working set
/// // The bigger cache absorbs more of the hot set, so MPKI shrinks.
/// assert!(large.mpki_scale(hot) < small.mpki_scale(hot));
/// // Both scales are 1.0 relative to themselves at calibration size.
/// assert!((small.mpki_scale(hot) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcModel {
    size_bytes: u64,
}

impl LlcModel {
    /// Creates a cache model of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "cache size must be non-zero");
        LlcModel { size_bytes }
    }

    /// The 16 MB testbed cache (Fig 1 platform). MPKI values in Table 4 are
    /// calibrated against this configuration.
    pub fn testbed() -> Self {
        LlcModel::new(TESTBED_LLC_BYTES)
    }

    /// The 48 MB Intel NVM emulator cache (Fig 2 platform).
    pub fn intel_emulator() -> Self {
        LlcModel::new(EMULATOR_LLC_BYTES)
    }

    /// Cache size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Fraction of accesses to a hot working set of `hot_bytes` that miss
    /// this cache, in `[COMPULSORY_FLOOR, 1.0]`.
    pub fn miss_fraction(&self, hot_bytes: u64) -> f64 {
        if hot_bytes == 0 {
            return COMPULSORY_FLOOR;
        }
        let uncovered = 1.0 - (self.size_bytes as f64 / hot_bytes as f64).min(1.0);
        uncovered.max(COMPULSORY_FLOOR)
    }

    /// Multiplier converting a Table 4 (testbed-calibrated) MPKI into this
    /// cache's effective MPKI, given the application's hot working set.
    pub fn mpki_scale(&self, hot_bytes: u64) -> f64 {
        let calib = LlcModel::testbed().miss_fraction(hot_bytes);
        self.miss_fraction(hot_bytes) / calib
    }
}

impl hetero_sim::snap::Snap for LlcModel {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u64(self.size_bytes);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        let size_bytes = r.take_u64()?;
        if size_bytes == 0 {
            return Err(hetero_sim::snap::SnapshotError::corrupt(
                "LlcModel size must be non-zero",
            ));
        }
        Ok(LlcModel { size_bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_set_inside_cache_hits_floor() {
        let llc = LlcModel::testbed();
        assert_eq!(llc.miss_fraction(1 << 20), COMPULSORY_FLOOR);
        assert_eq!(llc.miss_fraction(0), COMPULSORY_FLOOR);
    }

    #[test]
    fn miss_fraction_grows_with_hot_set() {
        let llc = LlcModel::testbed();
        let f1 = llc.miss_fraction(32 << 20);
        let f2 = llc.miss_fraction(64 << 20);
        let f3 = llc.miss_fraction(1 << 30);
        assert!(f1 < f2 && f2 < f3);
        assert!(f3 <= 1.0);
    }

    #[test]
    fn mpki_scale_is_one_at_calibration() {
        let llc = LlcModel::testbed();
        for hot in [1u64 << 20, 64 << 20, 4 << 30] {
            assert!((llc.mpki_scale(hot) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bigger_cache_helps_small_hot_sets_most() {
        let large = LlcModel::intel_emulator();
        // 64 MB hot set: 48 MB cache covers most of it.
        let small_ws = large.mpki_scale(64 << 20);
        // 4 GB hot set: cache coverage is negligible either way.
        let big_ws = large.mpki_scale(4 << 30);
        assert!(small_ws < big_ws);
        assert!(big_ws <= 1.0 + 1e-12);
        assert!(big_ws > 0.95, "huge working sets barely notice the LLC");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        LlcModel::new(0);
    }
}
