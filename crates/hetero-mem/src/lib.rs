//! Heterogeneous-memory hardware substrate for the HeteroOS reproduction.
//!
//! The paper (§2.1) sidesteps unavailable NVM/3D-DRAM hardware by *emulating*
//! two generic memory types — **FastMem** (high bandwidth, low latency,
//! limited capacity) and **SlowMem** (low bandwidth, high latency, large
//! capacity) — via DRAM thermal throttling, parameterised by the
//! latency/bandwidth factors of Table 3. This crate is the software analogue
//! of that emulation testbed:
//!
//! * [`kind`] — memory tiers ([`MemKind`]) and node identifiers ([`NodeId`]),
//! * [`tech`] — the Table 1 technology characteristics,
//! * [`throttle`] — the Table 3 (L:x, B:y) throttle configurations,
//! * [`tier`] — named device-profile tier topologies ([`TierProfile`],
//!   selected via `repro --tier-profile`): the Table-1 trio, Optane DC,
//!   CXL,
//! * [`node`] — memory-node timing (latency + bandwidth dilation),
//! * [`frames`] — machine-frame pools ([`Mfn`], [`FramePool`]),
//! * [`llc`] — a last-level-cache model (16 MB testbed vs 48 MB Intel
//!   emulator, Figs 1–2),
//! * [`cost`] — the software cost model for scans, walks, copies and TLB
//!   flushes (Table 6, Fig 8),
//! * [`persist`] — the NVM persistence domain: per-frame flush state,
//!   `clflush`/`sfence` write-behind policies, crash survivors,
//! * [`machine`] — a whole machine: a set of nodes with frame accounting.
//!
//! # Examples
//!
//! ```
//! use hetero_mem::{MachineMemory, MemKind, ThrottleConfig};
//!
//! let machine = MachineMemory::builder()
//!     .fast_mem(4 << 30, ThrottleConfig::fast_mem())
//!     .slow_mem(8 << 30, ThrottleConfig::from_factors(5.0, 9.0))
//!     .build();
//! assert_eq!(machine.capacity_bytes(MemKind::Fast), 4 << 30);
//! assert!(machine.node_params(MemKind::Slow).unwrap().load_latency
//!     > machine.node_params(MemKind::Fast).unwrap().load_latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod frames;
pub mod heatgen;
pub mod kind;
pub mod llc;
pub mod machine;
pub mod node;
pub mod persist;
pub mod tech;
pub mod throttle;
pub mod tier;

pub use cost::{CostModel, MigrationBatch};
pub use heatgen::ColdLedger;
pub use persist::{FlushPolicy, PersistDomain};
pub use frames::{FramePool, Mfn};
pub use kind::{MemKind, NodeId};
pub use llc::LlcModel;
pub use machine::{MachineMemory, MachineMemoryBuilder};
pub use node::NodeParams;
pub use tech::TechProfile;
pub use throttle::ThrottleConfig;
pub use tier::{NodeSpec, TierProfile, TierSpec};
