//! Throttle configurations (paper Table 3).
//!
//! The paper emulates SlowMem by throttling a DRAM socket: a configuration
//! `(L:x, B:y)` increases latency by factor `x` and cuts bandwidth by factor
//! `y` relative to unthrottled DRAM. Table 3 reports the *measured* outcome
//! for four anchor configurations; intermediate configurations used by
//! Figures 1–2 (`L:5,B:7`, `L:5,B:9`) are interpolated the same way the
//! throttling hardware behaves: bandwidth scales as `24/y` and latency picks
//! up a surcharge as bandwidth throttling deepens past the latency factor.

use hetero_sim::Nanos;

/// Unthrottled DRAM load latency in ns (Table 3, `L:1,B:1`).
pub const BASE_LATENCY_NS: u64 = 60;
/// Unthrottled DRAM bandwidth in GB/s (Table 3, `L:1,B:1`).
pub const BASE_BANDWIDTH_GBPS: f64 = 24.0;

/// Measured Table 3 anchors: `(l, b, latency_ns, bandwidth_gbps)`.
const ANCHORS: [(f64, f64, u64, f64); 4] = [
    (1.0, 1.0, 60, 24.0),
    (2.0, 2.0, 128, 12.4),
    (5.0, 5.0, 354, 5.1),
    (5.0, 12.0, 960, 1.38),
];

/// Latency surcharge (ns) per unit of bandwidth factor beyond the latency
/// factor, fitted from the `(5,5) → (5,12)` anchors: `(960-354)/7`.
const BW_LATENCY_SURCHARGE_NS: f64 = (960.0 - 354.0) / 7.0;

/// A `(L:x, B:y)` throttle configuration resolved to concrete node timing.
///
/// # Examples
///
/// ```
/// use hetero_mem::ThrottleConfig;
///
/// let t = ThrottleConfig::from_factors(5.0, 12.0);
/// assert_eq!(t.latency.as_nanos(), 960);       // Table 3 anchor
/// assert!((t.bandwidth_gbps - 1.38).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Latency increase factor `x` in `(L:x, B:y)`.
    pub latency_factor: f64,
    /// Bandwidth reduction factor `y` in `(L:x, B:y)`.
    pub bandwidth_factor: f64,
    /// Resolved load latency.
    pub latency: Nanos,
    /// Resolved bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl ThrottleConfig {
    /// The unthrottled FastMem baseline `(L:1, B:1)`.
    pub fn fast_mem() -> Self {
        Self::from_factors(1.0, 1.0)
    }

    /// The paper's main SlowMem evaluation point `(L:5, B:9)` (§5.1).
    pub fn slow_mem_default() -> Self {
        Self::from_factors(5.0, 9.0)
    }

    /// A remote-NUMA-socket FastMem (Fig 1's "Remote NUMA" bar): roughly a
    /// 1.3× latency penalty and mildly reduced cross-socket bandwidth.
    pub fn remote_numa() -> Self {
        ThrottleConfig {
            latency_factor: 1.3,
            bandwidth_factor: 1.5,
            latency: Nanos::from_nanos(78),
            bandwidth_gbps: 16.0,
        }
    }

    /// Resolves a `(L:x, B:y)` configuration.
    ///
    /// Exact Table 3 anchors are returned verbatim; everything else uses the
    /// fitted model. Factors below 1 are clamped to 1.
    ///
    /// # Panics
    ///
    /// Panics if either factor is NaN.
    pub fn from_factors(latency_factor: f64, bandwidth_factor: f64) -> Self {
        assert!(
            !latency_factor.is_nan() && !bandwidth_factor.is_nan(),
            "throttle factors must not be NaN"
        );
        let l = latency_factor.max(1.0);
        let b = bandwidth_factor.max(1.0);
        for &(al, ab, lat, bw) in &ANCHORS {
            if (al - l).abs() < 1e-9 && (ab - b).abs() < 1e-9 {
                return ThrottleConfig {
                    latency_factor: l,
                    bandwidth_factor: b,
                    latency: Nanos::from_nanos(lat),
                    bandwidth_gbps: bw,
                };
            }
        }
        let base = Self::base_latency_for(l);
        let surcharge = (b - l).max(0.0) * BW_LATENCY_SURCHARGE_NS;
        ThrottleConfig {
            latency_factor: l,
            bandwidth_factor: b,
            latency: Nanos::from_nanos((base + surcharge).round() as u64),
            bandwidth_gbps: BASE_BANDWIDTH_GBPS / b,
        }
    }

    /// Measured base latency for a pure latency factor, interpolating the
    /// `(1,1)`, `(2,2)`, `(5,5)` anchors.
    fn base_latency_for(l: f64) -> f64 {
        let pts = [(1.0, 60.0), (2.0, 128.0), (5.0, 354.0)];
        if l <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if l <= x1 {
                return y0 + (y1 - y0) * (l - x0) / (x1 - x0);
            }
        }
        // Extrapolate past L:5 along the last segment's slope.
        let (x0, y0) = pts[1];
        let (x1, y1) = pts[2];
        y1 + (y1 - y0) / (x1 - x0) * (l - x1)
    }

    /// The Table 3 columns in presentation order.
    pub fn table3() -> [ThrottleConfig; 4] {
        [
            Self::from_factors(1.0, 1.0),
            Self::from_factors(2.0, 2.0),
            Self::from_factors(5.0, 5.0),
            Self::from_factors(5.0, 12.0),
        ]
    }

    /// The Figures 1–2 x-axis sweep.
    pub fn figure1_sweep() -> [ThrottleConfig; 5] {
        [
            Self::from_factors(2.0, 2.0),
            Self::from_factors(5.0, 5.0),
            Self::from_factors(5.0, 7.0),
            Self::from_factors(5.0, 9.0),
            Self::from_factors(5.0, 12.0),
        ]
    }

    /// Short label like `"L:5,B:9"`.
    pub fn label(&self) -> String {
        format!(
            "L:{},B:{}",
            format_factor(self.latency_factor),
            format_factor(self.bandwidth_factor)
        )
    }
}

fn format_factor(f: f64) -> String {
    if (f - f.round()).abs() < 1e-9 {
        format!("{}", f.round() as i64)
    } else {
        format!("{f:.1}")
    }
}

hetero_sim::impl_snap!(struct ThrottleConfig {
    latency_factor, bandwidth_factor, latency, bandwidth_gbps
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_anchors_are_exact() {
        let configs = ThrottleConfig::table3();
        let expect = [(60, 24.0), (128, 12.4), (354, 5.1), (960, 1.38)];
        for (cfg, (lat, bw)) in configs.iter().zip(expect) {
            assert_eq!(cfg.latency.as_nanos(), lat, "{}", cfg.label());
            assert!((cfg.bandwidth_gbps - bw).abs() < 1e-9, "{}", cfg.label());
        }
    }

    #[test]
    fn intermediate_configs_are_monotonic() {
        let sweep = ThrottleConfig::figure1_sweep();
        for w in sweep.windows(2) {
            assert!(
                w[1].latency >= w[0].latency,
                "{} vs {}",
                w[0].label(),
                w[1].label()
            );
            assert!(w[1].bandwidth_gbps <= w[0].bandwidth_gbps);
        }
    }

    #[test]
    fn l5_b7_and_b9_sit_between_anchors() {
        let b7 = ThrottleConfig::from_factors(5.0, 7.0);
        let b9 = ThrottleConfig::from_factors(5.0, 9.0);
        assert!(b7.latency.as_nanos() > 354 && b7.latency.as_nanos() < 960);
        assert!(b9.latency.as_nanos() > b7.latency.as_nanos());
        assert!(b7.bandwidth_gbps < 5.1 && b7.bandwidth_gbps > 1.38);
    }

    #[test]
    fn factors_below_one_clamp() {
        let t = ThrottleConfig::from_factors(0.1, 0.1);
        assert_eq!(t.latency.as_nanos(), 60);
        assert!((t.bandwidth_gbps - 24.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_factor_panics() {
        ThrottleConfig::from_factors(f64::NAN, 1.0);
    }

    #[test]
    fn remote_numa_is_mild() {
        let r = ThrottleConfig::remote_numa();
        let slow = ThrottleConfig::slow_mem_default();
        assert!(r.latency < slow.latency);
        assert!(r.latency > ThrottleConfig::fast_mem().latency);
    }

    #[test]
    fn labels_render() {
        assert_eq!(ThrottleConfig::from_factors(5.0, 12.0).label(), "L:5,B:12");
        assert_eq!(ThrottleConfig::remote_numa().label(), "L:1.3,B:1.5");
    }

    #[test]
    fn latency_extrapolates_past_l5() {
        let t = ThrottleConfig::from_factors(8.0, 8.0);
        assert!(t.latency.as_nanos() > 354);
    }
}
