//! Technology characteristics (paper Table 1).
//!
//! These are the published projections the paper's generic FastMem/SlowMem
//! abstraction is derived from. They are reported by `repro table1` and used
//! as sanity anchors for [`crate::ThrottleConfig`].

use hetero_sim::Nanos;

/// Characteristics of one memory technology (one column of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct TechProfile {
    /// Human-readable technology name.
    pub name: &'static str,
    /// Density relative to DRAM (min, max), e.g. `(4.0, 16.0)` for NVM.
    pub density_rel_dram: (f64, f64),
    /// Load latency range.
    pub load_latency: (Nanos, Nanos),
    /// Store latency range.
    pub store_latency: (Nanos, Nanos),
    /// Bandwidth range in GB/s.
    pub bandwidth_gbps: (f64, f64),
}

impl TechProfile {
    /// On-chip stacked 3D-DRAM (Table 1, column "Stacked-3D").
    pub fn stacked_3d() -> Self {
        TechProfile {
            name: "Stacked-3D",
            density_rel_dram: (0.25, 0.5), // 2x-4x lower capacity than DRAM
            load_latency: (Nanos::from_nanos(30), Nanos::from_nanos(50)),
            store_latency: (Nanos::from_nanos(30), Nanos::from_nanos(50)),
            bandwidth_gbps: (120.0, 200.0),
        }
    }

    /// Conventional DRAM (Table 1, column "DRAM").
    pub fn dram() -> Self {
        TechProfile {
            name: "DRAM",
            density_rel_dram: (1.0, 1.0),
            load_latency: (Nanos::from_nanos(60), Nanos::from_nanos(60)),
            store_latency: (Nanos::from_nanos(60), Nanos::from_nanos(60)),
            bandwidth_gbps: (15.0, 25.0),
        }
    }

    /// Phase-change-memory-like NVM (Table 1, column "NVM (PCM)").
    pub fn nvm_pcm() -> Self {
        TechProfile {
            name: "NVM (PCM)",
            density_rel_dram: (16.0, 64.0),
            load_latency: (Nanos::from_nanos(150), Nanos::from_nanos(150)),
            store_latency: (Nanos::from_nanos(300), Nanos::from_nanos(600)),
            bandwidth_gbps: (2.0, 2.0),
        }
    }

    /// All Table 1 columns in presentation order.
    pub fn table1() -> [TechProfile; 3] {
        [Self::stacked_3d(), Self::dram(), Self::nvm_pcm()]
    }

    /// Midpoint of the load-latency range.
    pub fn load_latency_mid(&self) -> Nanos {
        Nanos::from_nanos((self.load_latency.0.as_nanos() + self.load_latency.1.as_nanos()) / 2)
    }

    /// Midpoint of the bandwidth range in GB/s.
    pub fn bandwidth_mid(&self) -> f64 {
        (self.bandwidth_gbps.0 + self.bandwidth_gbps.1) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_ordering() {
        let [s3d, dram, pcm] = TechProfile::table1();
        // 3D-stacked is fastest and highest-bandwidth; PCM slowest.
        assert!(s3d.load_latency_mid() < dram.load_latency_mid());
        assert!(dram.load_latency_mid() < pcm.load_latency_mid());
        assert!(s3d.bandwidth_mid() > dram.bandwidth_mid());
        assert!(dram.bandwidth_mid() > pcm.bandwidth_mid());
    }

    #[test]
    fn pcm_write_read_asymmetry() {
        let pcm = TechProfile::nvm_pcm();
        // Table 1: PCM stores are 2x-4x more expensive than loads.
        assert!(pcm.store_latency.0 >= pcm.load_latency.1);
    }

    #[test]
    fn dram_is_density_baseline() {
        assert_eq!(TechProfile::dram().density_rel_dram, (1.0, 1.0));
    }

    #[test]
    fn pcm_density_exceeds_dram() {
        let pcm = TechProfile::nvm_pcm();
        assert!(pcm.density_rel_dram.0 >= 16.0);
    }
}
