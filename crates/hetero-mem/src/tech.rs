//! Technology characteristics (paper Table 1).
//!
//! These are the published projections the paper's generic FastMem/SlowMem
//! abstraction is derived from. They are reported by `repro table1` and used
//! as sanity anchors for [`crate::ThrottleConfig`].

use hetero_sim::Nanos;

/// Characteristics of one memory technology (one column of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct TechProfile {
    /// Human-readable technology name.
    pub name: &'static str,
    /// Density relative to DRAM (min, max), e.g. `(4.0, 16.0)` for NVM.
    pub density_rel_dram: (f64, f64),
    /// Load latency range.
    pub load_latency: (Nanos, Nanos),
    /// Store latency range.
    pub store_latency: (Nanos, Nanos),
    /// Bandwidth range in GB/s.
    pub bandwidth_gbps: (f64, f64),
}

impl TechProfile {
    /// On-chip stacked 3D-DRAM (Table 1, column "Stacked-3D").
    pub fn stacked_3d() -> Self {
        TechProfile {
            name: "Stacked-3D",
            density_rel_dram: (0.25, 0.5), // 2x-4x lower capacity than DRAM
            load_latency: (Nanos::from_nanos(30), Nanos::from_nanos(50)),
            store_latency: (Nanos::from_nanos(30), Nanos::from_nanos(50)),
            bandwidth_gbps: (120.0, 200.0),
        }
    }

    /// Conventional DRAM (Table 1, column "DRAM").
    pub fn dram() -> Self {
        TechProfile {
            name: "DRAM",
            density_rel_dram: (1.0, 1.0),
            load_latency: (Nanos::from_nanos(60), Nanos::from_nanos(60)),
            store_latency: (Nanos::from_nanos(60), Nanos::from_nanos(60)),
            bandwidth_gbps: (15.0, 25.0),
        }
    }

    /// Phase-change-memory-like NVM (Table 1, column "NVM (PCM)").
    pub fn nvm_pcm() -> Self {
        TechProfile {
            name: "NVM (PCM)",
            density_rel_dram: (16.0, 64.0),
            load_latency: (Nanos::from_nanos(150), Nanos::from_nanos(150)),
            store_latency: (Nanos::from_nanos(300), Nanos::from_nanos(600)),
            bandwidth_gbps: (2.0, 2.0),
        }
    }

    /// Intel Optane DC persistent memory, from Hirofuchi & Takano's
    /// measurements: asymmetric load/store latency (reads miss the
    /// on-DIMM buffer, stores complete into it) and a write bandwidth
    /// roughly a third of the read bandwidth. The bandwidth range spans
    /// write→read, which is the asymmetry the `optane-dc` tier profile
    /// threads through [`crate::NodeParams`].
    pub fn optane_dc() -> Self {
        TechProfile {
            name: "Optane-DC",
            density_rel_dram: (4.0, 8.0),
            load_latency: (Nanos::from_nanos(169), Nanos::from_nanos(400)),
            store_latency: (Nanos::from_nanos(90), Nanos::from_nanos(100)),
            bandwidth_gbps: (2.3, 6.6),
        }
    }

    /// All Table 1 columns in presentation order, plus the measured
    /// Optane DC column the device-profile registry adds.
    pub fn table1() -> [TechProfile; 4] {
        [
            Self::stacked_3d(),
            Self::dram(),
            Self::nvm_pcm(),
            Self::optane_dc(),
        ]
    }

    /// Midpoint of the load-latency range, rounded half-up in integer
    /// nanos (truncation used to shave the odd-sum midpoints, e.g.
    /// Optane's 169–400 ns range midpoint is 284.5 → 285, not 284).
    pub fn load_latency_mid(&self) -> Nanos {
        Self::mid(self.load_latency)
    }

    /// Midpoint of the store-latency range, rounded half-up.
    pub fn store_latency_mid(&self) -> Nanos {
        Self::mid(self.store_latency)
    }

    fn mid((lo, hi): (Nanos, Nanos)) -> Nanos {
        Nanos::from_nanos((lo.as_nanos() + hi.as_nanos()).div_ceil(2))
    }

    /// Midpoint of the bandwidth range in GB/s.
    pub fn bandwidth_mid(&self) -> f64 {
        (self.bandwidth_gbps.0 + self.bandwidth_gbps.1) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_ordering() {
        let [s3d, dram, pcm, optane] = TechProfile::table1();
        // 3D-stacked is fastest and highest-bandwidth; PCM slowest.
        assert!(s3d.load_latency_mid() < dram.load_latency_mid());
        assert!(dram.load_latency_mid() < pcm.load_latency_mid());
        assert!(s3d.bandwidth_mid() > dram.bandwidth_mid());
        assert!(dram.bandwidth_mid() > pcm.bandwidth_mid());
        // Measured Optane loads are slower than even the PCM *projection*,
        // but its buffered stores beat PCM stores by ~5x.
        assert!(dram.load_latency_mid() < optane.load_latency_mid());
        assert!(pcm.load_latency_mid() < optane.load_latency_mid());
        assert!(optane.store_latency_mid() < pcm.store_latency_mid());
    }

    #[test]
    fn latency_mids_round_half_up() {
        let optane = TechProfile::optane_dc();
        // (169 + 400) / 2 = 284.5: truncation used to report 284.
        assert_eq!(optane.load_latency_mid(), Nanos::from_nanos(285));
        assert_eq!(optane.store_latency_mid(), Nanos::from_nanos(95));
        // Even-sum ranges are exact either way — pinned so the rounding
        // change provably leaves the Table-1 trio untouched.
        let dram = TechProfile::dram();
        assert_eq!(dram.load_latency_mid(), Nanos::from_nanos(60));
        let pcm = TechProfile::nvm_pcm();
        assert_eq!(pcm.store_latency_mid(), Nanos::from_nanos(450));
    }

    #[test]
    fn optane_asymmetry_is_inverted_vs_pcm() {
        // Optane's buffered stores *complete faster* than its loads —
        // the opposite asymmetry to PCM — while write bandwidth trails
        // read bandwidth by ~3x.
        let o = TechProfile::optane_dc();
        assert!(o.store_latency_mid() < o.load_latency_mid());
        assert!(o.bandwidth_gbps.0 < o.bandwidth_gbps.1 / 2.0);
    }

    #[test]
    fn pcm_write_read_asymmetry() {
        let pcm = TechProfile::nvm_pcm();
        // Table 1: PCM stores are 2x-4x more expensive than loads.
        assert!(pcm.store_latency.0 >= pcm.load_latency.1);
    }

    #[test]
    fn dram_is_density_baseline() {
        assert_eq!(TechProfile::dram().density_rel_dram, (1.0, 1.0));
    }

    #[test]
    fn pcm_density_exceeds_dram() {
        let pcm = TechProfile::nvm_pcm();
        assert!(pcm.density_rel_dram.0 >= 16.0);
    }
}
