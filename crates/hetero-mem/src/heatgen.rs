//! Generation-stamped lazy hotness aging.
//!
//! The epoch engine cools page heat periodically; tracking which pages
//! have fallen below the LRU's cold threshold used to require a dense walk
//! of the active lists every epoch. This module provides the two lazy
//! primitives that replace the walk (DESIGN.md §13):
//!
//! * [`decay`] — the pure aging law: heat halves once per elapsed cooling
//!   generation, so a page stamped at generation `g` and visited at
//!   generation `g + k` carries `heat >> k` without any intermediate
//!   bookkeeping;
//! * [`ColdLedger`] — an O(1) per-tier count of *cold-active* pages
//!   (active-list pages whose heat sits below the configured threshold),
//!   maintained incrementally at every heat write and active-list
//!   transition. The LRU aging pass consults the ledger instead of walking:
//!   a zero count proves the walk would find nothing, and a non-zero count
//!   bounds how many candidates the walk needs before stopping early.
//!
//! The ledger is *advisory for scheduling, exact by construction*: the
//! memmap routes every heat mutation and every ACTIVE transition through
//! it, and the invariant sanitizer re-derives the counts densely behind
//! `SimConfig::audit` as the oracle.

use crate::kind::KindMap;
use crate::MemKind;

/// Maximum generations applied by [`decay`] — beyond this every `u8` heat
/// has reached zero, so larger gaps clamp instead of shifting further.
pub const MAX_DECAY_GENS: u64 = 8;

/// The lazy aging law: heat after `gens` elapsed cooling generations.
///
/// Heat halves per generation (`heat >> gens`), clamped at
/// [`MAX_DECAY_GENS`] — an 8-bit heat is extinct after eight halvings, so
/// arbitrarily stale stamps cost the same single shift.
///
/// # Examples
///
/// ```
/// use hetero_mem::heatgen::decay;
///
/// assert_eq!(decay(200, 0), 200);
/// assert_eq!(decay(200, 1), 100);
/// assert_eq!(decay(200, 3), 25);
/// assert_eq!(decay(255, 64), 0, "stale stamps clamp, not wrap");
/// ```
#[inline]
pub const fn decay(heat: u8, gens: u64) -> u8 {
    if gens >= MAX_DECAY_GENS {
        0
    } else {
        heat >> gens
    }
}

/// An O(1) ledger of cold-active pages per memory tier.
///
/// Unconfigured (no threshold) the ledger is inert: counts stay zero and
/// [`ColdLedger::is_configured`] lets callers fall back to dense walks.
/// Once configured with the LRU cold-heat threshold, the owner must report
/// every relevant transition via [`ColdLedger::adjust`]; the counts then
/// answer "would an aging walk find anything?" without touching a list.
///
/// # Examples
///
/// ```
/// use hetero_mem::heatgen::ColdLedger;
/// use hetero_mem::MemKind;
///
/// let mut ledger = ColdLedger::new();
/// ledger.configure(48);
/// assert!(ledger.is_cold(10));
/// ledger.adjust(MemKind::Fast, 1);
/// assert_eq!(ledger.cold_active(MemKind::Fast), 1);
/// ledger.adjust(MemKind::Fast, -1);
/// assert_eq!(ledger.cold_active(MemKind::Fast), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ColdLedger {
    /// Heat threshold below which an active page counts as cold;
    /// `None` = ledger not maintained (dense walks required).
    threshold: Option<u8>,
    /// Cold-active page count per tier.
    cold: KindMap<u64>,
    /// Cooling generation counter (bumped once per engine cooling pass);
    /// pairs with [`decay`] for generation-stamped lazy aging.
    generation: u64,
}

impl ColdLedger {
    /// Creates an inert (unconfigured) ledger.
    pub fn new() -> Self {
        ColdLedger::default()
    }

    /// Arms the ledger with the LRU cold-heat threshold and resets the
    /// counts. Must be called while the owning memmap holds no active
    /// pages (boot or post-recovery), so zero counts are trivially exact.
    pub fn configure(&mut self, threshold: u8) {
        self.threshold = Some(threshold);
        self.cold = KindMap::default();
    }

    /// Is the ledger maintained? When `false`, counts are meaningless and
    /// callers must use their dense fallback.
    pub fn is_configured(&self) -> bool {
        self.threshold.is_some()
    }

    /// The configured threshold, if any.
    pub fn threshold(&self) -> Option<u8> {
        self.threshold
    }

    /// Is `heat` below the configured threshold? Always `false` when
    /// unconfigured (nothing is tracked as cold).
    #[inline]
    pub fn is_cold(&self, heat: u8) -> bool {
        match self.threshold {
            Some(t) => heat < t,
            None => false,
        }
    }

    /// Cold-active pages currently on `kind`.
    #[inline]
    pub fn cold_active(&self, kind: MemKind) -> u64 {
        self.cold[kind]
    }

    /// Applies a cold-active count delta for `kind`.
    ///
    /// # Panics
    ///
    /// Panics on underflow — a negative adjustment without a matching
    /// positive one is an accounting bug, not a condition to absorb.
    #[inline]
    pub fn adjust(&mut self, kind: MemKind, delta: i64) {
        let c = &mut self.cold[kind];
        if delta >= 0 {
            *c += delta as u64;
        } else {
            *c = c
                .checked_sub((-delta) as u64)
                .expect("cold-active ledger underflow");
        }
    }

    /// The current cooling generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the cooling generation (one engine cooling pass).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Generations elapsed since `stamp`, saturating at zero for stamps
    /// from the future (which only a bug can produce).
    pub fn gens_since(&self, stamp: u64) -> u64 {
        self.generation.saturating_sub(stamp)
    }
}

hetero_sim::impl_snap!(struct ColdLedger { threshold, cold, generation });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_per_generation() {
        assert_eq!(decay(128, 0), 128);
        assert_eq!(decay(128, 1), 64);
        assert_eq!(decay(128, 7), 1);
        assert_eq!(decay(128, 8), 0);
        assert_eq!(decay(1, 1), 0);
        assert_eq!(decay(0, 0), 0);
    }

    #[test]
    fn decay_clamps_stale_stamps() {
        for gens in [MAX_DECAY_GENS, 9, 63, 64, 65, u64::MAX] {
            assert_eq!(decay(255, gens), 0, "gens={gens}");
        }
    }

    #[test]
    fn decay_is_monotone_in_generations() {
        let mut prev = 255u8;
        for gens in 0..=MAX_DECAY_GENS {
            let h = decay(255, gens);
            assert!(h <= prev, "decay must never increase heat");
            prev = h;
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn unconfigured_ledger_is_inert() {
        let ledger = ColdLedger::new();
        assert!(!ledger.is_configured());
        assert!(!ledger.is_cold(0), "nothing is cold without a threshold");
        assert_eq!(ledger.cold_active(MemKind::Fast), 0);
    }

    #[test]
    fn configure_sets_threshold_and_resets_counts() {
        let mut ledger = ColdLedger::new();
        ledger.configure(48);
        assert_eq!(ledger.threshold(), Some(48));
        assert!(ledger.is_cold(47));
        assert!(!ledger.is_cold(48), "threshold itself is not cold");
        ledger.adjust(MemKind::Slow, 3);
        ledger.configure(50);
        assert_eq!(ledger.cold_active(MemKind::Slow), 0, "reconfigure resets");
    }

    #[test]
    fn adjust_tracks_per_tier_counts() {
        let mut ledger = ColdLedger::new();
        ledger.configure(10);
        ledger.adjust(MemKind::Fast, 2);
        ledger.adjust(MemKind::Slow, 1);
        ledger.adjust(MemKind::Fast, -1);
        assert_eq!(ledger.cold_active(MemKind::Fast), 1);
        assert_eq!(ledger.cold_active(MemKind::Slow), 1);
        assert_eq!(ledger.cold_active(MemKind::Medium), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_is_a_bug_not_a_clamp() {
        let mut ledger = ColdLedger::new();
        ledger.configure(10);
        ledger.adjust(MemKind::Fast, -1);
    }

    #[test]
    fn generations_advance_and_measure() {
        let mut ledger = ColdLedger::new();
        assert_eq!(ledger.generation(), 0);
        ledger.bump_generation();
        ledger.bump_generation();
        assert_eq!(ledger.generation(), 2);
        assert_eq!(ledger.gens_since(0), 2);
        assert_eq!(ledger.gens_since(2), 0);
        assert_eq!(ledger.gens_since(5), 0, "future stamps saturate");
    }
}
