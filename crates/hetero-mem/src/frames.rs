//! Machine-frame pools.
//!
//! The VMM hands out *machine frames* (MFNs) to guests; each memory node owns
//! one [`FramePool`]. Frames have no contiguity requirement at this level —
//! the guest's buddy allocator manages guest-physical contiguity — so the
//! pool is a simple O(1) bump-plus-free-stack allocator.

use std::fmt;

/// A machine frame number, unique within one [`FramePool`]'s node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mfn(pub u64);

impl fmt::Display for Mfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

/// Error returned when a pool cannot satisfy an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfFrames {
    /// Frames requested.
    pub requested: u64,
    /// Frames available at the time of the request.
    pub available: u64,
}

impl fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of frames: requested {} but only {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfFrames {}

/// Allocator for the machine frames of one memory node.
///
/// # Examples
///
/// ```
/// use hetero_mem::FramePool;
///
/// let mut pool = FramePool::new(0x1000, 8);
/// let a = pool.alloc()?;
/// assert_eq!(pool.free_frames(), 7);
/// pool.free(a);
/// assert_eq!(pool.free_frames(), 8);
/// # Ok::<(), hetero_mem::frames::OutOfFrames>(())
/// ```
#[derive(Debug, Clone)]
pub struct FramePool {
    base: u64,
    total: u64,
    next_fresh: u64,
    recycled: Vec<Mfn>,
    allocated: u64,
}

impl FramePool {
    /// Creates a pool of `total` frames starting at machine frame `base`.
    pub fn new(base: u64, total: u64) -> Self {
        FramePool {
            base,
            total,
            next_fresh: 0,
            recycled: Vec::new(),
            allocated: 0,
        }
    }

    /// Total frames managed by the pool.
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.total - self.allocated
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// True if `mfn` lies within this pool's range.
    pub fn contains(&self, mfn: Mfn) -> bool {
        mfn.0 >= self.base && mfn.0 < self.base + self.total
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the pool is exhausted.
    pub fn alloc(&mut self) -> Result<Mfn, OutOfFrames> {
        if let Some(mfn) = self.recycled.pop() {
            self.allocated += 1;
            return Ok(mfn);
        }
        if self.next_fresh < self.total {
            let mfn = Mfn(self.base + self.next_fresh);
            self.next_fresh += 1;
            self.allocated += 1;
            Ok(mfn)
        } else {
            Err(OutOfFrames {
                requested: 1,
                available: 0,
            })
        }
    }

    /// Allocates `n` frames, all or nothing.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] (and allocates nothing) if fewer than `n`
    /// frames are free.
    pub fn alloc_many(&mut self, n: u64) -> Result<Vec<Mfn>, OutOfFrames> {
        if self.free_frames() < n {
            return Err(OutOfFrames {
                requested: n,
                available: self.free_frames(),
            });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.alloc().expect("free count checked above"));
        }
        Ok(out)
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `mfn` does not belong to this pool or is already free (a
    /// double free). Frame lifetimes are an internal invariant of the VMM, so
    /// violations are bugs rather than recoverable conditions.
    pub fn free(&mut self, mfn: Mfn) {
        assert!(self.contains(mfn), "{mfn} does not belong to this pool");
        debug_assert!(
            !self.recycled.contains(&mfn),
            "double free of {mfn} detected"
        );
        assert!(self.allocated > 0, "free with no outstanding allocations");
        self.allocated -= 1;
        self.recycled.push(mfn);
    }

    /// Returns many frames to the pool.
    ///
    /// # Panics
    ///
    /// As for [`FramePool::free`].
    pub fn free_many(&mut self, mfns: impl IntoIterator<Item = Mfn>) {
        for m in mfns {
            self.free(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = FramePool::new(100, 4);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert!(p.contains(a) && p.contains(b));
        assert_eq!(p.free_frames(), 2);
        p.free(a);
        p.free(b);
        assert_eq!(p.free_frames(), 4);
    }

    #[test]
    fn exhaustion_reports_error() {
        let mut p = FramePool::new(0, 2);
        p.alloc().unwrap();
        p.alloc().unwrap();
        let err = p.alloc().unwrap_err();
        assert_eq!(err.available, 0);
        assert!(err.to_string().contains("out of frames"));
    }

    #[test]
    fn recycled_frames_are_reused() {
        let mut p = FramePool::new(0, 1);
        let a = p.alloc().unwrap();
        p.free(a);
        let b = p.alloc().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut p = FramePool::new(0, 3);
        assert!(p.alloc_many(4).is_err());
        assert_eq!(p.free_frames(), 3, "failed alloc_many must not leak");
        let v = p.alloc_many(3).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(p.free_frames(), 0);
        p.free_many(v);
        assert_eq!(p.free_frames(), 3);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_frame_free_panics() {
        let mut p = FramePool::new(0, 2);
        p.alloc().unwrap();
        p.free(Mfn(999));
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)] // detection is a debug_assert
    fn double_free_panics_in_debug() {
        let mut p = FramePool::new(0, 2);
        let a = p.alloc().unwrap();
        p.alloc().unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn mfn_display() {
        assert_eq!(Mfn(0x10).to_string(), "mfn:0x10");
    }
}
