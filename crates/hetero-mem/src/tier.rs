//! Named device-profile tier topologies (the `--tier-profile` registry).
//!
//! The paper's evaluation anchors every experiment to the Table-1/Table-3
//! FastMem/SlowMem points. This module generalises that into a registry of
//! **named tier topologies**: each [`TierProfile`] resolves to a
//! [`TierSpec`] giving per-tier latency (load ≠ store where the device is
//! asymmetric) and bandwidth (read ≠ write where the device is asymmetric),
//! ready to become engine [`NodeParams`]:
//!
//! * `table1-trio` — the paper's three Table-1 technologies stacked as a
//!   3-tier topology (stacked 3D-DRAM / DRAM / PCM-like NVM),
//! * `optane-dc` — DRAM over Intel Optane DC, with the measured
//!   load/store latency asymmetry *and* the ~3× read-over-write
//!   bandwidth asymmetry (Hirofuchi & Takano),
//! * `cxl` — DRAM over a CXL-attached expander: DRAM-like media latency
//!   at ~1.75× plus a host-bridge bandwidth cap.
//!
//! Profiles are selected with `repro --tier-profile NAME` and compose with
//! every other run-shaping flag; the selector is a plain enum so it
//! snapshots as a single byte.

use std::fmt;
use std::str::FromStr;

use hetero_sim::Nanos;

use crate::kind::MemKind;
use crate::node::NodeParams;
use crate::tech::TechProfile;

/// Timing and bandwidth parameters of one tier in a named topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Uncontended load (read) latency.
    pub load_latency: Nanos,
    /// Uncontended store (write) latency.
    pub store_latency: Nanos,
    /// Sustainable read bandwidth in GB/s.
    pub read_bandwidth_gbps: f64,
    /// Sustainable write bandwidth in GB/s.
    pub write_bandwidth_gbps: f64,
}

impl NodeSpec {
    /// A direction-symmetric tier (same latency and bandwidth for loads
    /// and stores).
    pub fn symmetric(latency: Nanos, bandwidth_gbps: f64) -> Self {
        NodeSpec {
            load_latency: latency,
            store_latency: latency,
            read_bandwidth_gbps: bandwidth_gbps,
            write_bandwidth_gbps: bandwidth_gbps,
        }
    }

    /// The range midpoints of a Table-1 technology column.
    pub fn from_tech(t: &TechProfile) -> Self {
        NodeSpec {
            load_latency: t.load_latency_mid(),
            store_latency: t.store_latency_mid(),
            read_bandwidth_gbps: t.bandwidth_mid(),
            write_bandwidth_gbps: t.bandwidth_mid(),
        }
    }

    /// Resolves this spec into engine node parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero (a memory node must have
    /// capacity, same contract as [`NodeParams::new`]).
    pub fn node_params(&self, kind: MemKind, capacity_bytes: u64) -> NodeParams {
        assert!(capacity_bytes > 0, "memory node must have capacity");
        NodeParams {
            kind,
            capacity_bytes,
            load_latency: self.load_latency,
            store_latency: self.store_latency,
            bandwidth_gbps: self.read_bandwidth_gbps,
            write_bandwidth_gbps: self.write_bandwidth_gbps,
        }
    }
}

/// A named tier topology: device parameters for each tier it populates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSpec {
    /// Registry name (what `--tier-profile` parses).
    pub name: &'static str,
    /// One-line description for help text and docs.
    pub summary: &'static str,
    /// The fast tier.
    pub fast: NodeSpec,
    /// The middle tier, when the topology is three-tier.
    pub medium: Option<NodeSpec>,
    /// The slow tier.
    pub slow: NodeSpec,
}

impl TierSpec {
    /// The spec for one tier, if the topology populates it.
    pub fn tier(&self, kind: MemKind) -> Option<&NodeSpec> {
        match kind {
            MemKind::Fast => Some(&self.fast),
            MemKind::Medium => self.medium.as_ref(),
            MemKind::Slow => Some(&self.slow),
        }
    }

    /// True when the topology populates the middle tier.
    pub fn is_three_tier(&self) -> bool {
        self.medium.is_some()
    }
}

/// Selector for a registered tier topology.
///
/// This is the value that travels through `SimConfig` and snapshots: a
/// fieldless enum rather than the resolved [`TierSpec`], so the snapshot
/// stays one byte and the parameters stay single-sourced in [`Self::spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierProfile {
    /// The Table-1 trio as a 3-tier topology (3D-DRAM / DRAM / PCM).
    Table1Trio,
    /// DRAM over Intel Optane DC (asymmetric latency and bandwidth).
    OptaneDc,
    /// DRAM over a CXL-attached memory expander.
    Cxl,
}

impl TierProfile {
    /// Every registered profile, in presentation order.
    pub const ALL: [TierProfile; 3] =
        [TierProfile::Table1Trio, TierProfile::OptaneDc, TierProfile::Cxl];

    /// Registry name (what `--tier-profile` parses).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Looks a profile up by its registry name.
    pub fn by_name(name: &str) -> Option<TierProfile> {
        TierProfile::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Resolves the profile to its device parameters.
    pub fn spec(self) -> TierSpec {
        match self {
            TierProfile::Table1Trio => TierSpec {
                name: "table1-trio",
                summary: "Table-1 trio as 3 tiers: stacked 3D-DRAM / DRAM / PCM",
                fast: NodeSpec::from_tech(&TechProfile::stacked_3d()),
                medium: Some(NodeSpec::from_tech(&TechProfile::dram())),
                slow: NodeSpec::from_tech(&TechProfile::nvm_pcm()),
            },
            TierProfile::OptaneDc => TierSpec {
                name: "optane-dc",
                summary: "DRAM over Optane DC: 285/95 ns loads/stores, 6.6/2.3 GB/s reads/writes",
                fast: NodeSpec::from_tech(&TechProfile::dram()),
                medium: None,
                slow: NodeSpec {
                    load_latency: TechProfile::optane_dc().load_latency_mid(),
                    store_latency: TechProfile::optane_dc().store_latency_mid(),
                    // The Optane bandwidth range spans write→read: the
                    // read/write split is the point of this profile.
                    read_bandwidth_gbps: TechProfile::optane_dc().bandwidth_gbps.1,
                    write_bandwidth_gbps: TechProfile::optane_dc().bandwidth_gbps.0,
                },
            },
            TierProfile::Cxl => TierSpec {
                name: "cxl",
                summary: "DRAM over a CXL expander: DRAM latency at 1.75x, 11 GB/s bridge cap",
                fast: NodeSpec::from_tech(&TechProfile::dram()),
                medium: None,
                // CXL media is plain DRAM; the penalty is the link: ~1.75x
                // the 60 ns DRAM latency and a host-bridge cap well under
                // the local socket's sustainable bandwidth, symmetric in
                // both directions.
                slow: NodeSpec::symmetric(Nanos::from_nanos(105), 11.0),
            },
        }
    }

    /// All registry names, for help text and error messages.
    pub fn names() -> Vec<&'static str> {
        TierProfile::ALL.iter().map(|p| p.name()).collect()
    }
}

impl fmt::Display for TierProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TierProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TierProfile::by_name(s).ok_or_else(|| {
            format!(
                "unknown tier profile '{s}' (expected one of: {})",
                TierProfile::names().join(", ")
            )
        })
    }
}

hetero_sim::impl_snap!(enum TierProfile {
    0 => Table1Trio {},
    1 => OptaneDc {},
    2 => Cxl {},
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_round_trips_by_name() {
        for p in TierProfile::ALL {
            assert_eq!(TierProfile::by_name(p.name()), Some(p));
            assert_eq!(p.name().parse::<TierProfile>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert!("nope".parse::<TierProfile>().unwrap_err().contains("optane-dc"));
    }

    #[test]
    fn table1_trio_is_the_only_three_tier_profile() {
        assert!(TierProfile::Table1Trio.spec().is_three_tier());
        assert!(!TierProfile::OptaneDc.spec().is_three_tier());
        assert!(!TierProfile::Cxl.spec().is_three_tier());
        assert!(TierProfile::OptaneDc.spec().tier(MemKind::Medium).is_none());
        assert!(TierProfile::Table1Trio.spec().tier(MemKind::Medium).is_some());
    }

    #[test]
    fn optane_profile_is_asymmetric_both_ways() {
        let slow = TierProfile::OptaneDc.spec().slow;
        assert_eq!(slow.load_latency, Nanos::from_nanos(285));
        assert_eq!(slow.store_latency, Nanos::from_nanos(95));
        assert!((slow.read_bandwidth_gbps - 6.6).abs() < 1e-9);
        assert!((slow.write_bandwidth_gbps - 2.3).abs() < 1e-9);
    }

    #[test]
    fn cxl_profile_is_dram_like_but_capped() {
        let spec = TierProfile::Cxl.spec();
        let dram = NodeSpec::from_tech(&TechProfile::dram());
        let ratio = spec.slow.load_latency.as_nanos() as f64
            / dram.load_latency.as_nanos() as f64;
        assert!((1.5..=2.0).contains(&ratio), "CXL latency ratio {ratio}");
        assert_eq!(spec.slow.load_latency, spec.slow.store_latency);
        assert!(spec.slow.read_bandwidth_gbps < dram.read_bandwidth_gbps * 0.6);
    }

    #[test]
    fn specs_resolve_to_node_params() {
        let p = TierProfile::OptaneDc.spec().slow.node_params(MemKind::Slow, 8 << 30);
        assert_eq!(p.kind, MemKind::Slow);
        assert_eq!(p.load_latency, Nanos::from_nanos(285));
        assert!((p.write_bandwidth_gbps - 2.3).abs() < 1e-9);
        assert!((p.bandwidth_gbps - 6.6).abs() < 1e-9);
    }

    #[test]
    fn tiers_get_slower_down_the_stack() {
        for p in TierProfile::ALL {
            let spec = p.spec();
            let mut prev = spec.fast.load_latency;
            for k in [MemKind::Medium, MemKind::Slow] {
                if let Some(t) = spec.tier(k) {
                    assert!(t.load_latency >= prev, "{}: {k} got faster", spec.name);
                    prev = t.load_latency;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        TierProfile::Cxl.spec().fast.node_params(MemKind::Fast, 0);
    }
}
