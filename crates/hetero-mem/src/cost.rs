//! Software cost model for tiering management.
//!
//! §2.3 (Observation 4) and §5.2 of the paper quantify why reactive
//! hotness-tracking is expensive: page tables must be scanned, TLB entries
//! flushed to force re-set access bits, pages walked for validity checks,
//! and finally copied. Table 6 reports the measured per-page walk and move
//! costs at three migration batch sizes; Fig 8 reports the end-to-end
//! overhead of VMM-exclusive tracking. This module encodes those
//! measurements as an interpolated cost model that every policy pays
//! through.

use hetero_sim::Nanos;

/// Table 6 anchors: `(batch_pages, per-page move ns, per-page walk ns)`.
const TABLE6: [(u64, u64, u64); 3] = [
    (8 * 1024, 25_500, 43_210),
    (64 * 1024, 15_700, 26_320),
    (128 * 1024, 11_120, 10_250),
];

/// A batch of pages being migrated together.
///
/// Batching amortises the page-tree traversal and the TLB shoot-down, which
/// is why Table 6's per-page costs fall as the batch grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationBatch {
    /// Number of pages in the batch.
    pub pages: u64,
}

impl MigrationBatch {
    /// Creates a batch descriptor.
    pub fn new(pages: u64) -> Self {
        MigrationBatch { pages }
    }
}

/// The management cost model (Table 6 + Fig 8 calibration).
///
/// # Examples
///
/// ```
/// use hetero_mem::{CostModel, MigrationBatch};
///
/// let costs = CostModel::default();
/// // Table 6: per-page costs fall with batch size.
/// let small = costs.page_move_per_page(8 * 1024);
/// let large = costs.page_move_per_page(128 * 1024);
/// assert!(small > large);
/// // A full batch migration charges walk + move + one TLB shoot-down.
/// let total = costs.migration_cost(MigrationBatch::new(8 * 1024));
/// assert!(total > small.saturating_mul(8 * 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-page access-bit harvest cost during a hotness scan (PTE read,
    /// record, reset). Calibrated so a 32 K-page scan costs ≈ 40 ms,
    /// matching Fig 8's hot-page bars.
    pub scan_per_page: Nanos,
    /// Cost of one TLB shoot-down (stall of all cores on the VM's vCPUs).
    pub tlb_flush: Nanos,
    /// Fixed validity-check cost per page examined at migration time in the
    /// guest (page mapped? marked for deletion? dirty I/O page?).
    pub validity_check_per_page: Nanos,
    /// Cost of one `clflush`/`clwb` of a cache line to the NVM persistence
    /// domain (media write + controller round-trip; Optane DC measurements
    /// put an evicting flush near 100 ns).
    pub clflush_per_line: Nanos,
    /// Cost of one `sfence` ordering point closing a flush batch.
    pub sfence: Nanos,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_per_page: Nanos::from_nanos(1_250),
            tlb_flush: Nanos::from_micros(30),
            validity_check_per_page: Nanos::from_nanos(180),
            clflush_per_line: Nanos::from_nanos(100),
            sfence: Nanos::from_nanos(50),
        }
    }
}

/// Cache lines per 4 KiB page (64-byte lines) — the unit `clflush` works in.
pub const CACHE_LINES_PER_PAGE: u64 = 4096 / 64;

fn interp_table6(batch_pages: u64, select: impl Fn(&(u64, u64, u64)) -> u64) -> Nanos {
    let b = batch_pages.max(1);
    let first = &TABLE6[0];
    let last = &TABLE6[TABLE6.len() - 1];
    if b <= first.0 {
        return Nanos::from_nanos(select(first));
    }
    if b >= last.0 {
        return Nanos::from_nanos(select(last));
    }
    let lx = (b as f64).log2();
    for w in TABLE6.windows(2) {
        let (b0, b1) = (w[0].0, w[1].0);
        if b <= b1 {
            let (x0, x1) = ((b0 as f64).log2(), (b1 as f64).log2());
            let (y0, y1) = (select(&w[0]) as f64, select(&w[1]) as f64);
            let y = y0 + (y1 - y0) * (lx - x0) / (x1 - x0);
            return Nanos::from_nanos(y.round() as u64);
        }
    }
    unreachable!("bounds handled above")
}

impl CostModel {
    /// Per-page data-copy cost (`Tpage_move`, Table 6) for a batch of the
    /// given size, log-interpolated between the measured anchors.
    pub fn page_move_per_page(&self, batch_pages: u64) -> Nanos {
        interp_table6(batch_pages, |&(_, mv, _)| mv)
    }

    /// Per-page page-table-walk cost (`Tpage_walk`, Table 6).
    pub fn page_walk_per_page(&self, batch_pages: u64) -> Nanos {
        interp_table6(batch_pages, |&(_, _, walk)| walk)
    }

    /// Total cost of migrating one batch: per-page walk + copy, plus one TLB
    /// shoot-down for the remap.
    pub fn migration_cost(&self, batch: MigrationBatch) -> Nanos {
        if batch.pages == 0 {
            return Nanos::ZERO;
        }
        let per_page = self.page_move_per_page(batch.pages) + self.page_walk_per_page(batch.pages);
        per_page.saturating_mul(batch.pages) + self.tlb_flush
    }

    /// Cost of a hotness scan over `pages` page-table entries, including the
    /// TLB shoot-down required to force access-bit re-set on next touch.
    pub fn scan_cost(&self, pages: u64) -> Nanos {
        if pages == 0 {
            return Nanos::ZERO;
        }
        self.scan_per_page.saturating_mul(pages) + self.tlb_flush
    }

    /// Cost of guest-side validity checks over `pages` migration candidates.
    pub fn validity_cost(&self, pages: u64) -> Nanos {
        self.validity_check_per_page.saturating_mul(pages)
    }

    /// Cost of flushing `pages` dirty pages to the NVM persistence domain:
    /// one `clflush` per cache line, plus a single `sfence` closing the
    /// batch. Zero pages are free (no fence is issued for an empty batch).
    pub fn flush_cost(&self, pages: u64) -> Nanos {
        if pages == 0 {
            return Nanos::ZERO;
        }
        self.clflush_per_line
            .saturating_mul(pages.saturating_mul(CACHE_LINES_PER_PAGE))
            + self.sfence
    }
}

hetero_sim::impl_snap!(struct CostModel {
    scan_per_page, tlb_flush, validity_check_per_page, clflush_per_line, sfence
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_anchors_are_exact() {
        let m = CostModel::default();
        assert_eq!(m.page_move_per_page(8 * 1024), Nanos::from_nanos(25_500));
        assert_eq!(m.page_walk_per_page(8 * 1024), Nanos::from_nanos(43_210));
        assert_eq!(m.page_move_per_page(64 * 1024), Nanos::from_nanos(15_700));
        assert_eq!(m.page_walk_per_page(64 * 1024), Nanos::from_nanos(26_320));
        assert_eq!(m.page_move_per_page(128 * 1024), Nanos::from_nanos(11_120));
        assert_eq!(m.page_walk_per_page(128 * 1024), Nanos::from_nanos(10_250));
    }

    #[test]
    fn costs_clamp_outside_anchor_range() {
        let m = CostModel::default();
        assert_eq!(m.page_move_per_page(1), m.page_move_per_page(8 * 1024));
        assert_eq!(
            m.page_move_per_page(1 << 30),
            m.page_move_per_page(128 * 1024)
        );
    }

    #[test]
    fn per_page_cost_decreases_with_batch() {
        let m = CostModel::default();
        let batches = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024];
        for w in batches.windows(2) {
            assert!(m.page_move_per_page(w[0]) > m.page_move_per_page(w[1]));
            assert!(m.page_walk_per_page(w[0]) > m.page_walk_per_page(w[1]));
        }
    }

    #[test]
    fn walk_costs_more_than_move_at_small_batches() {
        // §5.2: "cost of page walk is even more expensive than actual
        // migration" — true at the 8K and 64K anchors.
        let m = CostModel::default();
        assert!(m.page_walk_per_page(8 * 1024) > m.page_move_per_page(8 * 1024));
        assert!(m.page_walk_per_page(64 * 1024) > m.page_move_per_page(64 * 1024));
    }

    #[test]
    fn zero_sized_work_is_free() {
        let m = CostModel::default();
        assert_eq!(m.migration_cost(MigrationBatch::new(0)), Nanos::ZERO);
        assert_eq!(m.scan_cost(0), Nanos::ZERO);
        assert_eq!(m.validity_cost(0), Nanos::ZERO);
        assert_eq!(m.flush_cost(0), Nanos::ZERO);
    }

    #[test]
    fn flush_cost_is_lines_plus_one_fence() {
        let m = CostModel::default();
        // One page: 64 lines × 100 ns + one 50 ns fence.
        assert_eq!(m.flush_cost(1), Nanos::from_nanos(64 * 100 + 50));
        // Batching shares the fence, never the line flushes.
        let ten = m.flush_cost(10);
        assert_eq!(ten, Nanos::from_nanos(10 * 64 * 100 + 50));
        assert!(ten < m.flush_cost(1).saturating_mul(10));
    }

    #[test]
    fn scan_of_32k_pages_is_about_40ms() {
        // Fig 8 calibration: 32K-page scans at 100ms intervals cost ~40%.
        let m = CostModel::default();
        let t = m.scan_cost(32 * 1024);
        let ms = t.as_millis_f64();
        assert!((35.0..50.0).contains(&ms), "scan cost {ms} ms");
    }

    #[test]
    fn migration_includes_flush() {
        let m = CostModel::default();
        let one = m.migration_cost(MigrationBatch::new(1));
        let per_page = m.page_move_per_page(1) + m.page_walk_per_page(1);
        assert_eq!(one, per_page + m.tlb_flush);
    }
}
