//! NVM persistence domain: per-frame flush state and write-behind policies.
//!
//! The paper's SlowMem tier is NVM-like (PCM projections, Table 1), which
//! means frames resident there can *survive a crash* — but only the portion
//! of a frame's data that has actually reached the media. A store that is
//! still sitting in a volatile CPU cache at power-loss is lost, leaving the
//! frame *torn*. Real persistent-memory software closes that window with
//! `clflush`/`clwb` + `sfence` sequences; this module models the same
//! contract at page granularity:
//!
//! * every write to an NVM-resident frame makes it **dirty-in-cache**,
//! * an explicit flush (costed through [`crate::CostModel::flush_cost`])
//!   moves it to **flushed**,
//! * at a [`power-loss`](PersistDomain::survivors) event, flushed frames
//!   survive byte-exact, dirty frames are torn and must be discarded.
//!
//! Three write-behind policies trade flush traffic against the size of the
//! torn window (selected via `SimConfig::persist` in `hetero-core`):
//! eager (flush every epoch), epoch-batched (amortise the fence over
//! [`FLUSH_BATCH_EPOCHS`] epochs), and on-evict (free-riding on natural
//! cache eviction: a frame not re-written for [`ON_EVICT_AGE`] epochs is
//! assumed to have left the cache hierarchy on its own — zero flush cost,
//! but recently-written frames stay vulnerable).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Epoch interval at which [`FlushPolicy::EpochBatched`] drains the dirty
/// set (the batch shares one `sfence`).
pub const FLUSH_BATCH_EPOCHS: u64 = 4;

/// Epochs a frame must go un-written before [`FlushPolicy::OnEvict`]
/// considers it naturally evicted from the cache hierarchy (and therefore
/// durable without an explicit flush).
pub const ON_EVICT_AGE: u32 = 2;

/// Write-behind flush policy for the NVM persistence domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlushPolicy {
    /// No persistence domain: a crash loses the slow tier too (the
    /// pre-persistence behaviour; zero overhead).
    #[default]
    Off,
    /// Flush every dirty frame at the end of every epoch. Smallest torn
    /// window, highest flush traffic.
    Eager,
    /// Flush the accumulated dirty set every [`FLUSH_BATCH_EPOCHS`] epochs.
    /// Amortises fences; frames dirtied since the last drain are torn.
    EpochBatched,
    /// Never flush explicitly: frames age to durable once un-written for
    /// [`ON_EVICT_AGE`] epochs. Free, but the write-hot set is always torn.
    OnEvict,
}

impl FlushPolicy {
    /// Every policy, in ablation presentation order.
    pub const ALL: [FlushPolicy; 4] = [
        FlushPolicy::Off,
        FlushPolicy::Eager,
        FlushPolicy::EpochBatched,
        FlushPolicy::OnEvict,
    ];

    /// True when a persistence domain should be maintained at all.
    #[inline]
    pub fn is_enabled(self) -> bool {
        self != FlushPolicy::Off
    }
}

impl fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlushPolicy::Off => "off",
            FlushPolicy::Eager => "eager",
            FlushPolicy::EpochBatched => "epoch",
            FlushPolicy::OnEvict => "on-evict",
        };
        f.write_str(s)
    }
}

impl FromStr for FlushPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(FlushPolicy::Off),
            "eager" => Ok(FlushPolicy::Eager),
            "epoch" | "epoch-batched" => Ok(FlushPolicy::EpochBatched),
            "on-evict" | "onevict" => Ok(FlushPolicy::OnEvict),
            other => Err(format!(
                "unknown flush policy '{other}' (expected off|eager|epoch|on-evict)"
            )),
        }
    }
}

/// Persistence state of one NVM-resident frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameState {
    /// Written since the last flush: cache lines may still be volatile.
    /// `clean_epochs` counts consecutive epochs without a (re)write.
    Dirty {
        /// Consecutive epochs the frame has gone un-written.
        clean_epochs: u32,
    },
    /// All lines reached the media: survives power loss byte-exact.
    Flushed,
}

/// The persistence domain of the NVM tier: tracks which resident frames are
/// dirty-in-cache versus flushed, drives the write-behind policy, and
/// answers the crash-time question "which frames survive?".
///
/// Frames are identified by their raw guest-frame index (`Gfn.0`); the
/// domain is deliberately ignorant of page types and reverse maps — the
/// engine owns that interpretation. All iteration orders are ascending
/// frame index, so every consumer is deterministic.
///
/// # Examples
///
/// ```
/// use hetero_mem::persist::{FlushPolicy, PersistDomain};
///
/// let mut d = PersistDomain::new(FlushPolicy::Eager);
/// d.observe(7, true); // frame 7 written this epoch
/// assert_eq!(d.dirty_frames(), 1);
/// let flushed = d.end_epoch(0);
/// assert_eq!(flushed, 1); // eager drains every epoch
/// assert_eq!(d.survivors(true), vec![7]); // now survives power loss
/// ```
#[derive(Debug, Clone)]
pub struct PersistDomain {
    policy: FlushPolicy,
    states: BTreeMap<u64, FrameState>,
    /// Frames explicitly flushed (costed through the cost model).
    pub flushes: u64,
    /// `sfence` ordering points issued.
    pub fences: u64,
    /// Frames that aged to durable under [`FlushPolicy::OnEvict`] (free).
    pub evict_flushes: u64,
    /// Frames discarded as torn at the most recent crash.
    pub torn_discards: u64,
}

impl PersistDomain {
    /// Creates an empty domain under `policy`.
    pub fn new(policy: FlushPolicy) -> Self {
        PersistDomain {
            policy,
            states: BTreeMap::new(),
            flushes: 0,
            fences: 0,
            evict_flushes: 0,
            torn_discards: 0,
        }
    }

    /// The active write-behind policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Observes one resident NVM frame for this epoch. A frame seen for the
    /// first time is dirty (its initial fill was a write); `written` marks a
    /// (re)write this epoch, which re-opens the torn window even for a
    /// previously flushed frame.
    pub fn observe(&mut self, frame: u64, written: bool) {
        match self.states.get_mut(&frame) {
            None => {
                self.states.insert(frame, FrameState::Dirty { clean_epochs: 0 });
            }
            Some(state) => {
                if written {
                    *state = FrameState::Dirty { clean_epochs: 0 };
                } else if let FrameState::Dirty { clean_epochs } = state {
                    *clean_epochs = clean_epochs.saturating_add(1);
                }
            }
        }
    }

    /// A frame left the NVM tier (freed, or migrated away): its persistence
    /// state dies with it.
    pub fn retire(&mut self, frame: u64) {
        self.states.remove(&frame);
    }

    /// Drops state for every frame not in the (ascending) resident set —
    /// the bulk form of [`PersistDomain::retire`] the engine uses after
    /// reclaim storms.
    pub fn retain_resident(&mut self, resident: &[u64]) {
        let keep: std::collections::BTreeSet<u64> = resident.iter().copied().collect();
        self.states.retain(|f, _| keep.contains(f));
    }

    /// Ends an epoch: runs the write-behind policy and returns how many
    /// frames were *explicitly* flushed (the caller charges
    /// [`crate::CostModel::flush_cost`] for exactly that count).
    /// `epoch` is the engine's epoch index, used by the batched policy.
    pub fn end_epoch(&mut self, epoch: u64) -> u64 {
        match self.policy {
            FlushPolicy::Off => 0,
            FlushPolicy::Eager => self.drain_dirty(),
            FlushPolicy::EpochBatched => {
                if (epoch + 1).is_multiple_of(FLUSH_BATCH_EPOCHS) {
                    self.drain_dirty()
                } else {
                    0
                }
            }
            FlushPolicy::OnEvict => {
                let mut aged = 0;
                for state in self.states.values_mut() {
                    if matches!(state, FrameState::Dirty { clean_epochs } if *clean_epochs >= ON_EVICT_AGE)
                    {
                        *state = FrameState::Flushed;
                        aged += 1;
                    }
                }
                self.evict_flushes += aged;
                0
            }
        }
    }

    fn drain_dirty(&mut self) -> u64 {
        let mut drained = 0;
        for state in self.states.values_mut() {
            if matches!(state, FrameState::Dirty { .. }) {
                *state = FrameState::Flushed;
                drained += 1;
            }
        }
        if drained > 0 {
            self.flushes += drained;
            self.fences += 1;
        }
        drained
    }

    /// Frames currently dirty-in-cache.
    pub fn dirty_frames(&self) -> u64 {
        self.states
            .values()
            .filter(|s| matches!(s, FrameState::Dirty { .. }))
            .count() as u64
    }

    /// Frames currently flushed (durable).
    pub fn flushed_frames(&self) -> u64 {
        self.states
            .values()
            .filter(|s| matches!(s, FrameState::Flushed))
            .count() as u64
    }

    /// Crash: returns the frames that survive, ascending. With
    /// `torn_lost = true` (host power loss) only flushed frames survive and
    /// dirty frames are counted into
    /// [`torn_discards`](PersistDomain::torn_discards); with `false` (guest
    /// crash under a live host, whose caches survive) every tracked frame
    /// survives. Either way the domain resets to empty — recovery re-seeds
    /// it from the recovered residency.
    pub fn survivors(&mut self, torn_lost: bool) -> Vec<u64> {
        let mut out = Vec::new();
        for (&frame, state) in &self.states {
            match state {
                FrameState::Flushed => out.push(frame),
                FrameState::Dirty { .. } => {
                    if torn_lost {
                        self.torn_discards += 1;
                    } else {
                        out.push(frame);
                    }
                }
            }
        }
        self.states.clear();
        out
    }

    /// Frames tracked (resident on the NVM tier as far as the domain knows).
    pub fn tracked(&self) -> u64 {
        self.states.len() as u64
    }
}

hetero_sim::impl_snap!(enum FlushPolicy {
    0 => Off {},
    1 => Eager {},
    2 => EpochBatched {},
    3 => OnEvict {},
});

hetero_sim::impl_snap!(enum FrameState {
    0 => Dirty { clean_epochs },
    1 => Flushed {},
});

hetero_sim::impl_snap!(struct PersistDomain {
    policy, states, flushes, fences, evict_flushes, torn_discards
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sight_is_dirty_and_eager_flushes_every_epoch() {
        let mut d = PersistDomain::new(FlushPolicy::Eager);
        d.observe(3, false);
        d.observe(1, false);
        assert_eq!(d.dirty_frames(), 2);
        assert_eq!(d.end_epoch(0), 2);
        assert_eq!(d.flushed_frames(), 2);
        assert_eq!(d.fences, 1);
        // No new writes: nothing to flush, no fence.
        d.observe(3, false);
        d.observe(1, false);
        assert_eq!(d.end_epoch(1), 0);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn rewrite_reopens_the_torn_window() {
        let mut d = PersistDomain::new(FlushPolicy::Eager);
        d.observe(5, true);
        d.end_epoch(0);
        assert_eq!(d.flushed_frames(), 1);
        d.observe(5, true);
        assert_eq!(d.dirty_frames(), 1);
        assert_eq!(d.flushed_frames(), 0);
    }

    #[test]
    fn epoch_batched_drains_on_the_interval() {
        let mut d = PersistDomain::new(FlushPolicy::EpochBatched);
        d.observe(9, true);
        for e in 0..FLUSH_BATCH_EPOCHS - 1 {
            assert_eq!(d.end_epoch(e), 0, "no drain before the interval");
        }
        assert_eq!(d.end_epoch(FLUSH_BATCH_EPOCHS - 1), 1);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn on_evict_ages_clean_frames_to_durable_for_free() {
        let mut d = PersistDomain::new(FlushPolicy::OnEvict);
        d.observe(2, true);
        assert_eq!(d.end_epoch(0), 0);
        // Two clean epochs age it out of the cache hierarchy.
        d.observe(2, false);
        assert_eq!(d.end_epoch(1), 0);
        d.observe(2, false);
        assert_eq!(d.end_epoch(2), 0);
        assert_eq!(d.flushed_frames(), 1);
        assert_eq!(d.evict_flushes, 1);
        assert_eq!(d.flushes, 0, "aging is free");
    }

    #[test]
    fn power_loss_tears_dirty_frames_only() {
        let mut d = PersistDomain::new(FlushPolicy::Eager);
        d.observe(1, true);
        d.observe(2, true);
        d.end_epoch(0);
        d.observe(3, true); // dirty at crash time
        assert_eq!(d.survivors(true), vec![1, 2]);
        assert_eq!(d.torn_discards, 1);
        assert_eq!(d.tracked(), 0, "domain resets at crash");
    }

    #[test]
    fn guest_crash_preserves_dirty_frames() {
        let mut d = PersistDomain::new(FlushPolicy::OnEvict);
        d.observe(4, true);
        d.observe(8, true);
        assert_eq!(d.survivors(false), vec![4, 8]);
        assert_eq!(d.torn_discards, 0);
    }

    #[test]
    fn retire_and_retain_drop_state() {
        let mut d = PersistDomain::new(FlushPolicy::Eager);
        for f in [1, 2, 3, 4] {
            d.observe(f, true);
        }
        d.retire(2);
        assert_eq!(d.tracked(), 3);
        d.retain_resident(&[1, 4]);
        assert_eq!(d.tracked(), 2);
        assert_eq!(d.survivors(false), vec![1, 4]);
    }

    #[test]
    fn policy_parsing_round_trips() {
        for p in FlushPolicy::ALL {
            assert_eq!(p.to_string().parse::<FlushPolicy>().unwrap(), p);
        }
        assert_eq!("epoch-batched".parse::<FlushPolicy>().unwrap(), FlushPolicy::EpochBatched);
        assert!("warm".parse::<FlushPolicy>().is_err());
        assert!(!FlushPolicy::Off.is_enabled());
        assert!(FlushPolicy::OnEvict.is_enabled());
    }
}
