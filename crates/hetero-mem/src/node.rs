//! Memory-node timing parameters and the bandwidth-dilation model.

use hetero_sim::Nanos;

use crate::kind::MemKind;
use crate::throttle::ThrottleConfig;

/// Store-latency multiplier for NVM-like slow tiers (Table 1: PCM stores
/// cost 2×–4× its loads). The *throttling* emulation of §2.1 is symmetric,
/// so [`NodeParams::new`] uses factor 1; [`NodeParams::nvm_like`] applies
/// this asymmetry for technology studies.
///
/// Kept as an integer so the latency path multiplies `Nanos` exactly: a
/// float factor would have to round through `mul_f64`, and the old
/// `NVM_STORE_FACTOR as u64` cast would silently truncate any non-integral
/// calibration (e.g. 2.5 → 2) where the two paths disagree.
pub const NVM_STORE_FACTOR: u64 = 2;

/// Resolved timing parameters of one memory node.
///
/// # Examples
///
/// ```
/// use hetero_mem::{MemKind, NodeParams, ThrottleConfig};
/// use hetero_sim::Nanos;
///
/// let slow = NodeParams::new(MemKind::Slow, 8 << 30, ThrottleConfig::slow_mem_default());
/// // Demanding twice the node's bandwidth doubles effective latency.
/// let relaxed = slow.effective_load_latency(slow.bandwidth_gbps * 0.5);
/// let saturated = slow.effective_load_latency(slow.bandwidth_gbps * 2.0);
/// assert_eq!(relaxed, slow.load_latency);
/// assert_eq!(saturated, slow.load_latency.saturating_mul(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Which tier this node belongs to.
    pub kind: MemKind,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Uncontended load (read) latency.
    pub load_latency: Nanos,
    /// Uncontended store (write) latency.
    pub store_latency: Nanos,
    /// Sustainable read bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Sustainable write bandwidth in GB/s. Equal to `bandwidth_gbps`
    /// for the symmetric throttling emulation of §2.1; device profiles
    /// like Optane DC set it lower (writes sustain ~a third of reads).
    pub write_bandwidth_gbps: f64,
}

impl NodeParams {
    /// Resolves node parameters from a throttle configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(kind: MemKind, capacity_bytes: u64, throttle: ThrottleConfig) -> Self {
        assert!(capacity_bytes > 0, "memory node must have capacity");
        NodeParams {
            kind,
            capacity_bytes,
            load_latency: throttle.latency,
            store_latency: throttle.latency,
            bandwidth_gbps: throttle.bandwidth_gbps,
            write_bandwidth_gbps: throttle.bandwidth_gbps,
        }
    }

    /// Like [`NodeParams::new`] but with the PCM store asymmetry of
    /// Table 1 applied ([`NVM_STORE_FACTOR`]).
    pub fn nvm_like(kind: MemKind, capacity_bytes: u64, throttle: ThrottleConfig) -> Self {
        let mut p = Self::new(kind, capacity_bytes, throttle);
        p.store_latency = p.store_latency.saturating_mul(NVM_STORE_FACTOR);
        p
    }

    /// Effective load latency under a given bandwidth demand (GB/s).
    ///
    /// When demand exceeds the node's sustainable bandwidth, latency dilates
    /// proportionally (an M/D/1-flavoured approximation that reproduces the
    /// paper's observation that only bandwidth-saturating workloads — the
    /// batch graph engines — are sensitive to `B:y`, §2.2 Observation 1).
    pub fn effective_load_latency(&self, demand_gbps: f64) -> Nanos {
        self.load_latency.mul_f64(self.dilation(demand_gbps))
    }

    /// Effective store latency under a given bandwidth demand (GB/s).
    pub fn effective_store_latency(&self, demand_gbps: f64) -> Nanos {
        self.store_latency.mul_f64(self.dilation(demand_gbps))
    }

    fn dilation(&self, demand_gbps: f64) -> f64 {
        if demand_gbps <= 0.0 || self.bandwidth_gbps <= 0.0 {
            return 1.0;
        }
        (demand_gbps / self.bandwidth_gbps).max(1.0)
    }

    /// Capacity expressed in pages of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn capacity_pages(&self, page_size: u64) -> u64 {
        assert!(page_size > 0, "page size must be non-zero");
        self.capacity_bytes / page_size
    }
}

hetero_sim::impl_snap!(struct NodeParams {
    kind, capacity_bytes, load_latency, store_latency, bandwidth_gbps,
    write_bandwidth_gbps
});

#[cfg(test)]
mod tests {
    use super::*;

    fn slow() -> NodeParams {
        NodeParams::new(MemKind::Slow, 8 << 30, ThrottleConfig::slow_mem_default())
    }

    fn fast() -> NodeParams {
        NodeParams::new(MemKind::Fast, 4 << 30, ThrottleConfig::fast_mem())
    }

    #[test]
    fn throttled_nodes_are_store_symmetric() {
        // §2.1's DRAM-throttling emulation affects loads and stores alike.
        let n = slow();
        assert_eq!(n.store_latency, n.load_latency);
        let f = fast();
        assert_eq!(f.store_latency, f.load_latency);
    }

    #[test]
    fn throttled_nodes_have_symmetric_bandwidth() {
        // Read/write bandwidth only split for measured device profiles;
        // the throttling constructors must stay exactly symmetric so the
        // roofline's legacy single-rail path keeps producing the same
        // bytes.
        for n in [slow(), fast()] {
            assert_eq!(n.write_bandwidth_gbps, n.bandwidth_gbps);
        }
        let nv = NodeParams::nvm_like(MemKind::Slow, 1 << 30, ThrottleConfig::slow_mem_default());
        assert_eq!(nv.write_bandwidth_gbps, nv.bandwidth_gbps);
    }

    #[test]
    fn nvm_like_nodes_have_store_asymmetry() {
        let n = NodeParams::nvm_like(MemKind::Slow, 1 << 30, ThrottleConfig::slow_mem_default());
        assert_eq!(
            n.store_latency,
            n.load_latency.saturating_mul(NVM_STORE_FACTOR)
        );
    }

    #[test]
    fn nvm_slow_tier_store_latency_is_pinned() {
        // The paper's main SlowMem point (L:5, B:9) resolves to a 700 ns
        // load; the PCM store asymmetry doubles it exactly. This pins the
        // integer latency path — a lossy float→int conversion anywhere in
        // it would shift these values.
        let n = NodeParams::nvm_like(MemKind::Slow, 1 << 30, ThrottleConfig::slow_mem_default());
        assert_eq!(n.load_latency, Nanos::from_nanos(700));
        assert_eq!(n.store_latency, Nanos::from_nanos(1_400));
        // And the Table 3 (L:5, B:12) anchor: 960 ns load → 1920 ns store.
        let a = NodeParams::nvm_like(MemKind::Slow, 1 << 30, ThrottleConfig::from_factors(5.0, 12.0));
        assert_eq!(a.store_latency, Nanos::from_nanos(1_920));
    }

    #[test]
    fn under_subscribed_bandwidth_is_free() {
        let n = fast();
        assert_eq!(n.effective_load_latency(0.0), n.load_latency);
        assert_eq!(n.effective_load_latency(n.bandwidth_gbps), n.load_latency);
    }

    #[test]
    fn oversubscription_dilates_proportionally() {
        let n = slow();
        let lat3 = n.effective_load_latency(n.bandwidth_gbps * 3.0);
        assert_eq!(lat3, n.load_latency.saturating_mul(3));
        let st2 = n.effective_store_latency(n.bandwidth_gbps * 2.0);
        assert_eq!(st2, n.store_latency.saturating_mul(2));
    }

    #[test]
    fn capacity_pages_divides() {
        let n = fast();
        assert_eq!(n.capacity_pages(4096), (4u64 << 30) / 4096);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        NodeParams::new(MemKind::Fast, 0, ThrottleConfig::fast_mem());
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_rejected() {
        fast().capacity_pages(0);
    }
}
