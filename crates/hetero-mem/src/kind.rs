//! Memory tiers and node identifiers.

use std::fmt;

/// A memory tier, ordered fastest-first.
///
/// The paper's core design is two-tier (FastMem/SlowMem, §2.1); `Medium`
/// exists for the §4.3 multi-level extension (FastMem → MediumMem → SlowMem
/// demotion) and is unused by the two-tier experiments.
///
/// # Examples
///
/// ```
/// use hetero_mem::MemKind;
///
/// assert!(MemKind::Fast.is_faster_than(MemKind::Slow));
/// assert_eq!(MemKind::Fast.next_slower(), Some(MemKind::Medium));
/// assert_eq!(MemKind::Slow.next_slower(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemKind {
    /// High-bandwidth, low-latency, capacity-limited tier (3D-DRAM-like).
    Fast,
    /// Intermediate tier (conventional DRAM in a three-tier setup).
    Medium,
    /// High-capacity, high-latency, low-bandwidth tier (NVM/PCM-like).
    Slow,
}

impl MemKind {
    /// All kinds, fastest first.
    pub const ALL: [MemKind; 3] = [MemKind::Fast, MemKind::Medium, MemKind::Slow];

    /// Tier rank: 0 is fastest.
    #[inline]
    pub const fn tier(self) -> u8 {
        match self {
            MemKind::Fast => 0,
            MemKind::Medium => 1,
            MemKind::Slow => 2,
        }
    }

    /// True if `self` is a strictly faster tier than `other`.
    #[inline]
    pub const fn is_faster_than(self, other: MemKind) -> bool {
        self.tier() < other.tier()
    }

    /// The next slower tier, or `None` for the slowest.
    #[inline]
    pub const fn next_slower(self) -> Option<MemKind> {
        match self {
            MemKind::Fast => Some(MemKind::Medium),
            MemKind::Medium => Some(MemKind::Slow),
            MemKind::Slow => None,
        }
    }

    /// The next faster tier, or `None` for the fastest.
    #[inline]
    pub const fn next_faster(self) -> Option<MemKind> {
        match self {
            MemKind::Fast => None,
            MemKind::Medium => Some(MemKind::Fast),
            MemKind::Slow => Some(MemKind::Medium),
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemKind::Fast => "FastMem",
            MemKind::Medium => "MediumMem",
            MemKind::Slow => "SlowMem",
        };
        f.write_str(s)
    }
}

/// Identifier of a memory node within a [`crate::MachineMemory`].
///
/// Mirrors the NUMA-node abstraction HeteroOS re-uses at the guest level
/// (Principle 1, §3): each memory type is exposed as one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A tiny map from [`MemKind`] to values, used pervasively for per-tier
/// accounting.
///
/// # Examples
///
/// ```
/// use hetero_mem::kind::KindMap;
/// use hetero_mem::MemKind;
///
/// let mut m: KindMap<u64> = KindMap::default();
/// m[MemKind::Fast] += 3;
/// assert_eq!(m[MemKind::Fast], 3);
/// assert_eq!(m.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindMap<T> {
    values: [T; 3],
}

impl<T> KindMap<T> {
    /// Builds a map by evaluating `f` for every kind.
    pub fn from_fn(mut f: impl FnMut(MemKind) -> T) -> Self {
        KindMap {
            values: [f(MemKind::Fast), f(MemKind::Medium), f(MemKind::Slow)],
        }
    }

    /// Iterates `(kind, &value)` fastest-first.
    pub fn iter(&self) -> impl Iterator<Item = (MemKind, &T)> {
        MemKind::ALL.iter().map(move |&k| (k, &self.values[k.tier() as usize]))
    }
}

impl<T: Copy + core::iter::Sum> KindMap<T> {
    /// Sum of all values.
    pub fn total(&self) -> T {
        self.values.iter().copied().sum()
    }
}

impl<T> std::ops::Index<MemKind> for KindMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, k: MemKind) -> &T {
        &self.values[k.tier() as usize]
    }
}

impl<T> std::ops::IndexMut<MemKind> for KindMap<T> {
    #[inline]
    fn index_mut(&mut self, k: MemKind) -> &mut T {
        &mut self.values[k.tier() as usize]
    }
}

impl hetero_sim::snap::Snap for MemKind {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u8(match self {
            MemKind::Fast => 0,
            MemKind::Medium => 1,
            MemKind::Slow => 2,
        });
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(MemKind::Fast),
            1 => Ok(MemKind::Medium),
            2 => Ok(MemKind::Slow),
            other => Err(hetero_sim::snap::SnapshotError::corrupt(format!(
                "invalid MemKind tag {other}"
            ))),
        }
    }
}

impl hetero_sim::snap::Snap for NodeId {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        Ok(NodeId(r.take_u32()?))
    }
}

impl<T: hetero_sim::snap::Snap> hetero_sim::snap::Snap for KindMap<T> {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        self.values.snap(w);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        Ok(KindMap {
            values: hetero_sim::snap::Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering() {
        assert!(MemKind::Fast.is_faster_than(MemKind::Medium));
        assert!(MemKind::Medium.is_faster_than(MemKind::Slow));
        assert!(!MemKind::Slow.is_faster_than(MemKind::Fast));
        assert!(!MemKind::Fast.is_faster_than(MemKind::Fast));
    }

    #[test]
    fn tier_walk_is_consistent() {
        for k in MemKind::ALL {
            if let Some(slower) = k.next_slower() {
                assert_eq!(slower.next_faster(), Some(k));
            }
            if let Some(faster) = k.next_faster() {
                assert_eq!(faster.next_slower(), Some(k));
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MemKind::Fast.to_string(), "FastMem");
        assert_eq!(MemKind::Slow.to_string(), "SlowMem");
        assert_eq!(NodeId(3).to_string(), "node3");
    }

    #[test]
    fn kind_map_indexing() {
        let mut m: KindMap<u32> = KindMap::default();
        m[MemKind::Slow] = 7;
        m[MemKind::Fast] = 1;
        assert_eq!(m[MemKind::Slow], 7);
        assert_eq!(m[MemKind::Medium], 0);
        assert_eq!(m.total(), 8);
    }

    #[test]
    fn kind_map_from_fn_and_iter() {
        let m = KindMap::from_fn(|k| k.tier() as u64 * 10);
        let collected: Vec<_> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(
            collected,
            vec![
                (MemKind::Fast, 0),
                (MemKind::Medium, 10),
                (MemKind::Slow, 20)
            ]
        );
    }
}
