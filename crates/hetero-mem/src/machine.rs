//! A whole machine: the set of heterogeneous memory nodes with frame
//! accounting, as seen by the VMM.

use std::fmt;

use crate::frames::{FramePool, Mfn, OutOfFrames};
use crate::kind::{MemKind, NodeId};
use crate::node::NodeParams;
use crate::throttle::ThrottleConfig;

/// Default page size (4 KiB), matching the paper's x86 testbed.
pub const PAGE_SIZE: u64 = 4096;

struct Node {
    id: NodeId,
    params: NodeParams,
    pool: FramePool,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("kind", &self.params.kind)
            .field("free", &self.pool.free_frames())
            .finish()
    }
}

/// The machine's heterogeneous memory: one node per configured tier.
///
/// Construct with [`MachineMemory::builder`]. Frames are allocated per tier;
/// the VMM layers per-guest reservations on top.
///
/// # Examples
///
/// ```
/// use hetero_mem::{MachineMemory, MemKind, ThrottleConfig};
///
/// let mut machine = MachineMemory::builder()
///     .fast_mem(1 << 30, ThrottleConfig::fast_mem())
///     .slow_mem(8 << 30, ThrottleConfig::slow_mem_default())
///     .page_size(4096)
///     .build();
/// let mfn = machine.alloc_frame(MemKind::Fast)?;
/// machine.free_frame(MemKind::Fast, mfn);
/// # Ok::<(), hetero_mem::frames::OutOfFrames>(())
/// ```
#[derive(Debug)]
pub struct MachineMemory {
    nodes: Vec<Node>,
    page_size: u64,
}

impl MachineMemory {
    /// Starts building a machine.
    pub fn builder() -> MachineMemoryBuilder {
        MachineMemoryBuilder::default()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    fn node(&self, kind: MemKind) -> Option<&Node> {
        self.nodes.iter().find(|n| n.params.kind == kind)
    }

    fn node_mut(&mut self, kind: MemKind) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.params.kind == kind)
    }

    /// Node identifier for a tier, if configured.
    pub fn node_id(&self, kind: MemKind) -> Option<NodeId> {
        self.node(kind).map(|n| n.id)
    }

    /// Timing parameters for a tier, if configured.
    pub fn node_params(&self, kind: MemKind) -> Option<&NodeParams> {
        self.node(kind).map(|n| &n.params)
    }

    /// Configured tiers, fastest first.
    pub fn kinds(&self) -> Vec<MemKind> {
        let mut ks: Vec<MemKind> = self.nodes.iter().map(|n| n.params.kind).collect();
        ks.sort();
        ks
    }

    /// Total capacity of a tier in bytes (0 when not configured).
    pub fn capacity_bytes(&self, kind: MemKind) -> u64 {
        self.node(kind).map_or(0, |n| n.params.capacity_bytes)
    }

    /// Total frames of a tier.
    pub fn total_frames(&self, kind: MemKind) -> u64 {
        self.node(kind).map_or(0, |n| n.pool.total_frames())
    }

    /// Free frames of a tier.
    pub fn free_frames(&self, kind: MemKind) -> u64 {
        self.node(kind).map_or(0, |n| n.pool.free_frames())
    }

    /// Allocates one frame from a tier.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when the tier is exhausted or not configured.
    pub fn alloc_frame(&mut self, kind: MemKind) -> Result<Mfn, OutOfFrames> {
        match self.node_mut(kind) {
            Some(n) => n.pool.alloc(),
            None => Err(OutOfFrames {
                requested: 1,
                available: 0,
            }),
        }
    }

    /// Allocates `n` frames from a tier, all or nothing.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when fewer than `n` frames are free.
    pub fn alloc_frames(&mut self, kind: MemKind, n: u64) -> Result<Vec<Mfn>, OutOfFrames> {
        match self.node_mut(kind) {
            Some(node) => node.pool.alloc_many(n),
            None => Err(OutOfFrames {
                requested: n,
                available: 0,
            }),
        }
    }

    /// Returns a frame to its tier.
    ///
    /// # Panics
    ///
    /// Panics if the tier is not configured or the frame does not belong to
    /// it (see [`FramePool::free`]).
    pub fn free_frame(&mut self, kind: MemKind, mfn: Mfn) {
        self.node_mut(kind)
            .unwrap_or_else(|| panic!("no {kind} node configured"))
            .pool
            .free(mfn);
    }

    /// Returns many frames to a tier.
    ///
    /// # Panics
    ///
    /// As for [`MachineMemory::free_frame`].
    pub fn free_frames_bulk(&mut self, kind: MemKind, mfns: impl IntoIterator<Item = Mfn>) {
        let node = self
            .node_mut(kind)
            .unwrap_or_else(|| panic!("no {kind} node configured"));
        node.pool.free_many(mfns);
    }
}

/// Builder for [`MachineMemory`].
#[derive(Debug, Default)]
pub struct MachineMemoryBuilder {
    tiers: Vec<(MemKind, u64, ThrottleConfig)>,
    page_size: Option<u64>,
}

impl MachineMemoryBuilder {
    /// Adds a FastMem tier of `capacity_bytes`.
    pub fn fast_mem(mut self, capacity_bytes: u64, throttle: ThrottleConfig) -> Self {
        self.tiers.push((MemKind::Fast, capacity_bytes, throttle));
        self
    }

    /// Adds a MediumMem tier (for the §4.3 multi-level extension).
    pub fn medium_mem(mut self, capacity_bytes: u64, throttle: ThrottleConfig) -> Self {
        self.tiers.push((MemKind::Medium, capacity_bytes, throttle));
        self
    }

    /// Adds a SlowMem tier of `capacity_bytes`.
    pub fn slow_mem(mut self, capacity_bytes: u64, throttle: ThrottleConfig) -> Self {
        self.tiers.push((MemKind::Slow, capacity_bytes, throttle));
        self
    }

    /// Overrides the page size (default [`PAGE_SIZE`]).
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.page_size = Some(bytes);
        self
    }

    /// Finalises the machine.
    ///
    /// # Panics
    ///
    /// Panics if no tiers were configured, a tier is duplicated, the page
    /// size is zero, or a tier's capacity is smaller than one page.
    pub fn build(self) -> MachineMemory {
        assert!(!self.tiers.is_empty(), "machine needs at least one tier");
        let page_size = self.page_size.unwrap_or(PAGE_SIZE);
        assert!(page_size > 0, "page size must be non-zero");
        let mut tiers = self.tiers;
        tiers.sort_by_key(|(k, _, _)| *k);
        let mut nodes = Vec::new();
        let mut base = 0u64;
        for (i, (kind, cap, throttle)) in tiers.into_iter().enumerate() {
            assert!(
                nodes
                    .iter()
                    .all(|n: &Node| n.params.kind != kind),
                "duplicate {kind} tier"
            );
            let params = NodeParams::new(kind, cap, throttle);
            let frames = cap / page_size;
            assert!(frames > 0, "{kind} capacity smaller than one page");
            nodes.push(Node {
                id: NodeId(i as u32),
                params,
                pool: FramePool::new(base, frames),
            });
            base += frames;
        }
        MachineMemory { nodes, page_size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> MachineMemory {
        MachineMemory::builder()
            .fast_mem(1 << 20, ThrottleConfig::fast_mem())
            .slow_mem(4 << 20, ThrottleConfig::slow_mem_default())
            .build()
    }

    #[test]
    fn builder_assigns_node_ids_fastest_first() {
        let m = MachineMemory::builder()
            .slow_mem(4 << 20, ThrottleConfig::slow_mem_default())
            .fast_mem(1 << 20, ThrottleConfig::fast_mem())
            .build();
        assert_eq!(m.node_id(MemKind::Fast), Some(NodeId(0)));
        assert_eq!(m.node_id(MemKind::Slow), Some(NodeId(1)));
        assert_eq!(m.kinds(), vec![MemKind::Fast, MemKind::Slow]);
    }

    #[test]
    fn capacities_and_frames() {
        let m = two_tier();
        assert_eq!(m.capacity_bytes(MemKind::Fast), 1 << 20);
        assert_eq!(m.total_frames(MemKind::Fast), (1 << 20) / PAGE_SIZE);
        assert_eq!(m.capacity_bytes(MemKind::Medium), 0);
        assert_eq!(m.free_frames(MemKind::Medium), 0);
    }

    #[test]
    fn alloc_and_free_track_counts() {
        let mut m = two_tier();
        let total = m.total_frames(MemKind::Fast);
        let a = m.alloc_frame(MemKind::Fast).unwrap();
        assert_eq!(m.free_frames(MemKind::Fast), total - 1);
        m.free_frame(MemKind::Fast, a);
        assert_eq!(m.free_frames(MemKind::Fast), total);
    }

    #[test]
    fn frames_of_different_tiers_do_not_collide() {
        let mut m = two_tier();
        let f = m.alloc_frame(MemKind::Fast).unwrap();
        let s = m.alloc_frame(MemKind::Slow).unwrap();
        assert_ne!(f, s);
    }

    #[test]
    fn unconfigured_tier_alloc_errors() {
        let mut m = two_tier();
        assert!(m.alloc_frame(MemKind::Medium).is_err());
        assert!(m.alloc_frames(MemKind::Medium, 3).is_err());
    }

    #[test]
    fn bulk_alloc_is_all_or_nothing() {
        let mut m = two_tier();
        let total = m.total_frames(MemKind::Fast);
        assert!(m.alloc_frames(MemKind::Fast, total + 1).is_err());
        assert_eq!(m.free_frames(MemKind::Fast), total);
        let v = m.alloc_frames(MemKind::Fast, total).unwrap();
        assert_eq!(m.free_frames(MemKind::Fast), 0);
        m.free_frames_bulk(MemKind::Fast, v);
        assert_eq!(m.free_frames(MemKind::Fast), total);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_tier_rejected() {
        MachineMemory::builder()
            .fast_mem(1 << 20, ThrottleConfig::fast_mem())
            .fast_mem(1 << 20, ThrottleConfig::fast_mem())
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_machine_rejected() {
        MachineMemory::builder().build();
    }

    #[test]
    #[should_panic(expected = "smaller than one page")]
    fn sub_page_capacity_rejected() {
        MachineMemory::builder()
            .fast_mem(1024, ThrottleConfig::fast_mem())
            .page_size(4096)
            .build();
    }
}
