//! Weighted Dominant Resource Fairness across memory types (Algorithm 1),
//! plus the single-resource max-min baseline it replaces.
//!
//! §4.2: each memory type is a resource; a guest's *dominant resource* is
//! the one where its (weighted) share of the total is largest. Allocation
//! requests are granted in order of smallest dominant share. Weights
//! counteract the capacity skew: with a small FastMem, unweighted DRF would
//! make SlowMem everyone's dominant resource (the paper uses FastMem
//! weight 2, SlowMem weight 1).

use std::collections::HashMap;
use std::fmt;

use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;

/// Identifier of a guest VM within the VMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GuestId(pub u32);

impl fmt::Display for GuestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Which fairness discipline arbitrates multi-VM memory sharing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SharePolicy {
    /// Single-resource max-min over *total* pages — the conventional VMM
    /// scheme the paper shows failing to protect Graphchi's SlowMem (§5.5).
    MaxMin,
    /// Weighted DRF (Algorithm 1). Default weights: FastMem 2, SlowMem 1.
    WeightedDrf {
        /// Per-tier weights used in the dominant-share computation.
        weights: KindMap<f64>,
    },
}

impl SharePolicy {
    /// Weighted DRF with the paper's evaluation weights (§4.2).
    pub fn paper_drf() -> Self {
        let mut weights = KindMap::from_fn(|_| 1.0);
        weights[MemKind::Fast] = 2.0;
        SharePolicy::WeightedDrf { weights }
    }
}

/// Outcome of an allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// Request fits: consume it.
    Granted,
    /// Capacity exhausted: the listed `(guest, tier, pages)` reclaims
    /// (balloon inflations) would free enough to grant; nothing was
    /// consumed yet.
    NeedsReclaim(Vec<(GuestId, MemKind, u64)>),
    /// Even reclaiming every page above other guests' minima cannot satisfy
    /// the request.
    Denied,
}

#[derive(Debug, Clone)]
struct GuestShare {
    /// Reserved floor per tier — never reclaimed.
    min: KindMap<u64>,
    /// Current allocation per tier.
    alloc: KindMap<u64>,
}

/// The VMM's fair-share ledger.
///
/// # Examples
///
/// ```
/// use hetero_mem::kind::KindMap;
/// use hetero_mem::MemKind;
/// use hetero_vmm::drf::{FairShare, Grant, GuestId, SharePolicy};
///
/// let mut total: KindMap<u64> = KindMap::default();
/// total[MemKind::Fast] = 100;
/// total[MemKind::Slow] = 200;
/// let mut fs = FairShare::new(SharePolicy::paper_drf(), total);
/// fs.register(GuestId(0), KindMap::default());
/// let mut demand: KindMap<u64> = KindMap::default();
/// demand[MemKind::Fast] = 10;
/// assert_eq!(fs.request(GuestId(0), demand), Grant::Granted);
/// assert_eq!(fs.allocated(GuestId(0))[MemKind::Fast], 10);
/// ```
#[derive(Debug, Clone)]
pub struct FairShare {
    policy: SharePolicy,
    /// R: total capacity per tier.
    total: KindMap<u64>,
    /// C: consumed capacity per tier.
    consumed: KindMap<u64>,
    guests: HashMap<GuestId, GuestShare>,
}

impl FairShare {
    /// Creates a ledger over the given per-tier totals.
    pub fn new(policy: SharePolicy, total: KindMap<u64>) -> Self {
        FairShare {
            policy,
            total,
            consumed: KindMap::default(),
            guests: HashMap::new(),
        }
    }

    /// Registers a guest with its reserved minimum per tier.
    ///
    /// The minimum is granted immediately (it was promised at boot).
    ///
    /// # Panics
    ///
    /// Panics if the guest is already registered or the minima oversubscribe
    /// the machine.
    pub fn register(&mut self, id: GuestId, min: KindMap<u64>) {
        assert!(
            !self.guests.contains_key(&id),
            "{id} is already registered"
        );
        for (k, &m) in min.iter() {
            assert!(
                self.consumed[k] + m <= self.total[k],
                "minimum reservations oversubscribe {k}"
            );
            self.consumed[k] += m;
        }
        self.guests.insert(
            id,
            GuestShare {
                min,
                alloc: min,
            },
        );
    }

    /// Removes a guest from the ledger (crash or shutdown), returning every
    /// page it held to the free pool. Unknown guests are a no-op returning
    /// `None`.
    pub fn unregister(&mut self, id: GuestId) -> Option<KindMap<u64>> {
        let g = self.guests.remove(&id)?;
        for (k, &a) in g.alloc.iter() {
            self.consumed[k] = self.consumed[k].saturating_sub(a);
        }
        Some(g.alloc)
    }

    /// True when the guest is registered.
    pub fn is_registered(&self, id: GuestId) -> bool {
        self.guests.contains_key(&id)
    }

    /// Current allocation vector of a guest.
    ///
    /// # Panics
    ///
    /// Panics for unknown guests.
    pub fn allocated(&self, id: GuestId) -> KindMap<u64> {
        self.guests[&id].alloc
    }

    /// Free capacity of a tier.
    pub fn free(&self, kind: MemKind) -> u64 {
        self.total[kind] - self.consumed[kind]
    }

    /// Pages currently granted per tier across all guests (the `C` vector
    /// of Algorithm 1). A host's load is `consumed().total()` over
    /// `totals().total()` — what cluster placement and migration balance.
    pub fn consumed(&self) -> KindMap<u64> {
        self.consumed
    }

    /// The per-tier capacity this ledger arbitrates (the `R` vector).
    pub fn totals(&self) -> KindMap<u64> {
        self.total
    }

    /// A guest's reserved minimum per tier.
    ///
    /// # Panics
    ///
    /// Panics for unknown guests.
    pub fn reserved_min(&self, id: GuestId) -> KindMap<u64> {
        self.guests[&id].min
    }

    /// Registered guests in ascending id order — a deterministic iteration
    /// surface over the internal hash map, for audits that compare ledgers
    /// across hosts.
    pub fn guest_ids(&self) -> Vec<GuestId> {
        let mut ids: Vec<GuestId> = self.guests.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Dominant share of a guest (Algorithm 1 line 10): the maximum over
    /// tiers of `weight * alloc / total`. Under max-min this degenerates to
    /// the guest's share of total pages.
    ///
    /// Zero-capacity tiers contribute share `0` — a single-tier machine
    /// (e.g. SlowMem total `0`) must yield finite shares, never `NaN` from
    /// a `0/0` division.
    pub fn dominant_share(&self, id: GuestId) -> f64 {
        let g = &self.guests[&id];
        match &self.policy {
            SharePolicy::MaxMin => {
                let total: u64 = MemKind::ALL.iter().map(|&k| self.total[k]).sum();
                if total == 0 {
                    0.0
                } else {
                    g.alloc.total() as f64 / total as f64
                }
            }
            SharePolicy::WeightedDrf { weights } => MemKind::ALL
                .iter()
                .filter(|&&k| self.total[k] > 0)
                .map(|&k| weights[k] * g.alloc[k] as f64 / self.total[k] as f64)
                .fold(0.0, f64::max),
        }
    }

    /// The registered guest with the smallest dominant share (Algorithm 1
    /// line 5) — the one whose request should be served next.
    pub fn next_in_queue<'a>(
        &self,
        queued: impl IntoIterator<Item = &'a GuestId>,
    ) -> Option<GuestId> {
        queued
            .into_iter()
            .copied()
            .filter(|id| self.guests.contains_key(id))
            .min_by(|a, b| {
                self.dominant_share(*a)
                    .partial_cmp(&self.dominant_share(*b))
                    .expect("shares are finite")
                    .then(a.cmp(b)) // deterministic tie-break
            })
    }

    /// Processes a demand vector for a guest (Algorithm 1 lines 6–12).
    ///
    /// # Panics
    ///
    /// Panics for unknown guests.
    pub fn request(&mut self, id: GuestId, demand: KindMap<u64>) -> Grant {
        assert!(self.guests.contains_key(&id), "{id} is not registered");
        let fits = MemKind::ALL
            .iter()
            .all(|&k| self.consumed[k] + demand[k] <= self.total[k]);
        if fits {
            for (k, &d) in demand.iter() {
                self.consumed[k] += d;
            }
            let g = self.guests.get_mut(&id).expect("checked above");
            for (k, &d) in demand.iter() {
                g.alloc[k] += d;
            }
            return Grant::Granted;
        }
        // Line 12: reclaim overcommitted pages from guests with the largest
        // dominant share first.
        let mut plan = Vec::new();
        for (k, &d) in demand.iter() {
            let shortfall = (self.consumed[k] + d).saturating_sub(self.total[k]);
            if shortfall == 0 {
                continue;
            }
            let mut remaining = shortfall;
            // Algorithm 1's discipline: requests are served smallest
            // dominant share first, so a guest may only displace guests
            // with a *larger* dominant share. Single-resource max-min has
            // no such cross-type protection — memory flows to whoever
            // demands it (the §5.5 failure).
            let my_share = self.dominant_share(id);
            let gated = matches!(self.policy, SharePolicy::WeightedDrf { .. });
            let mut donors: Vec<GuestId> = self
                .guests
                .keys()
                .copied()
                .filter(|&g| g != id && self.overcommit(g, k) > 0)
                .filter(|&g| !gated || self.dominant_share(g) > my_share)
                .collect();
            donors.sort_by(|a, b| {
                self.dominant_share(*b)
                    .partial_cmp(&self.dominant_share(*a))
                    .expect("shares are finite")
                    .then(a.cmp(b))
            });
            for donor in donors {
                if remaining == 0 {
                    break;
                }
                let take = self.overcommit(donor, k).min(remaining);
                plan.push((donor, k, take));
                remaining -= take;
            }
            if remaining > 0 {
                return Grant::Denied;
            }
        }
        Grant::NeedsReclaim(plan)
    }

    /// True when [`FairShare::reclaim`] would succeed: the guest is
    /// registered, holds the pages, and keeping its reservation floor
    /// intact. Callers on fallible paths (e.g. a balloon acknowledgement
    /// arriving over a lossy channel) check this first instead of risking
    /// the panic.
    pub fn can_reclaim(&self, id: GuestId, kind: MemKind, pages: u64) -> bool {
        let Some(g) = self.guests.get(&id) else {
            return false;
        };
        let Some(left) = g.alloc[kind].checked_sub(pages) else {
            return false;
        };
        match self.policy {
            SharePolicy::MaxMin => kind != MemKind::Fast || left >= g.min[kind],
            SharePolicy::WeightedDrf { .. } => left >= g.min[kind],
        }
    }

    /// True when [`FairShare::release`] would succeed.
    pub fn can_release(&self, id: GuestId, kind: MemKind, pages: u64) -> bool {
        self.guests
            .get(&id)
            .is_some_and(|g| g.alloc[kind] >= pages)
    }

    /// Applies a reclaim: `pages` of `kind` taken back from `id` (after the
    /// balloon actually inflated).
    ///
    /// # Panics
    ///
    /// Panics if this would take the guest below its reserved minimum.
    pub fn reclaim(&mut self, id: GuestId, kind: MemKind, pages: u64) {
        let maxmin = matches!(self.policy, SharePolicy::MaxMin);
        let g = self.guests.get_mut(&id).expect("guest registered");
        // checked_sub, not `alloc - pages >= min`: the bare subtraction
        // wraps in release builds when `pages > alloc`, silently passing
        // the guard it was meant to enforce.
        let left = g.alloc[kind].checked_sub(pages);
        if maxmin {
            if kind == MemKind::Fast {
                assert!(
                    left.is_some_and(|l| l >= g.min[kind]),
                    "reclaim below {id}'s FastMem reservation"
                );
            }
            assert!(left.is_some(), "{id} does not hold {pages} on {kind}");
        } else {
            assert!(
                left.is_some_and(|l| l >= g.min[kind]),
                "reclaim below {id}'s reserved minimum on {kind}"
            );
        }
        g.alloc[kind] -= pages;
        self.consumed[kind] -= pages;
    }

    /// Releases pages a guest returned voluntarily.
    ///
    /// # Panics
    ///
    /// Panics if the guest does not hold that many pages.
    pub fn release(&mut self, id: GuestId, kind: MemKind, pages: u64) {
        let g = self.guests.get_mut(&id).expect("guest registered");
        assert!(g.alloc[kind] >= pages, "{id} does not hold {pages} pages");
        g.alloc[kind] -= pages;
        self.consumed[kind] -= pages;
    }

    fn overcommit(&self, id: GuestId, kind: MemKind) -> u64 {
        let g = &self.guests[&id];
        match &self.policy {
            // DRF honours the per-type reservation vector.
            SharePolicy::WeightedDrf { .. } => g.alloc[kind].saturating_sub(g.min[kind]),
            // Single-resource max-min guarantees fairness of ONE resource —
            // FastMem, the scarce one. SlowMem has no per-guest floor: any
            // of it is reclaimable on demand, which is exactly the §5.5
            // failure mode where Metis balloons out the Graphchi VM's
            // SlowMem reservation.
            SharePolicy::MaxMin => match kind {
                MemKind::Fast => g.alloc[kind].saturating_sub(g.min[kind]),
                _ => g.alloc[kind],
            },
        }
    }
}

impl hetero_sim::snap::Snap for GuestId {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        Ok(GuestId(r.take_u32()?))
    }
}

hetero_sim::impl_snap!(enum SharePolicy {
    0 => MaxMin {},
    1 => WeightedDrf { weights },
});

hetero_sim::impl_snap!(struct GuestShare { min, alloc });

impl hetero_sim::snap::Snap for FairShare {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        self.policy.snap(w);
        self.total.snap(w);
        self.consumed.snap(w);
        // HashMap iteration order is unspecified; dump entries sorted by
        // guest id so the same ledger always produces the same bytes.
        let mut ids: Vec<&GuestId> = self.guests.keys().collect();
        ids.sort();
        w.put_u64(ids.len() as u64);
        for id in ids {
            id.snap(w);
            self.guests[id].snap(w);
        }
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        use hetero_sim::snap::Snap;
        let policy = Snap::unsnap(r)?;
        let total = Snap::unsnap(r)?;
        let consumed = Snap::unsnap(r)?;
        let n = r.take_u64()? as usize;
        let mut guests = HashMap::with_capacity(n);
        for _ in 0..n {
            let id: GuestId = Snap::unsnap(r)?;
            let share: GuestShare = Snap::unsnap(r)?;
            guests.insert(id, share);
        }
        Ok(FairShare {
            policy,
            total,
            consumed,
            guests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(fast: u64, slow: u64) -> KindMap<u64> {
        let mut t = KindMap::default();
        t[MemKind::Fast] = fast;
        t[MemKind::Slow] = slow;
        t
    }

    fn demand(fast: u64, slow: u64) -> KindMap<u64> {
        totals(fast, slow)
    }

    #[test]
    fn grants_within_capacity() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 200));
        fs.register(GuestId(0), KindMap::default());
        assert_eq!(fs.request(GuestId(0), demand(50, 50)), Grant::Granted);
        assert_eq!(fs.free(MemKind::Fast), 50);
        assert_eq!(fs.allocated(GuestId(0))[MemKind::Slow], 50);
    }

    #[test]
    fn weighted_dominant_share_prefers_fastmem_weight() {
        // Paper §5.5 configuration: 4 GB Fast, 8 GB Slow (in pages here).
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(4096, 8192));
        // Graphchi VM: <2*1GB Fast, 1*4GB Slow>.
        fs.register(GuestId(0), demand(1024, 4096));
        // Metis VM: <2*3GB Fast, 1*4GB Slow>.
        fs.register(GuestId(1), demand(3072, 4096));
        // Graphchi: fast share 2*1024/4096 = 0.5; slow 1*4096/8192 = 0.5.
        // Metis: fast 2*3072/4096 = 1.5 → Fast is Metis's dominant resource.
        assert!(fs.dominant_share(GuestId(1)) > fs.dominant_share(GuestId(0)));
        // Graphchi is served first from the queue.
        assert_eq!(
            fs.next_in_queue([GuestId(0), GuestId(1)].iter()),
            Some(GuestId(0))
        );
    }

    #[test]
    fn maxmin_counts_total_pages_only() {
        let mut fs = FairShare::new(SharePolicy::MaxMin, totals(100, 100));
        fs.register(GuestId(0), demand(90, 0));
        fs.register(GuestId(1), demand(0, 90));
        // Max-min cannot tell the two apart: both hold 90/200.
        let a = fs.dominant_share(GuestId(0));
        let b = fs.dominant_share(GuestId(1));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn reclaim_plan_targets_largest_share_first() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 100));
        fs.register(GuestId(0), demand(10, 0));
        fs.register(GuestId(1), demand(10, 0));
        // Guest 1 grabs most of FastMem beyond its floor.
        assert_eq!(fs.request(GuestId(1), demand(70, 0)), Grant::Granted);
        // Guest 0 wants 30 Fast: only 10 free → reclaim 20 from guest 1.
        match fs.request(GuestId(0), demand(30, 0)) {
            Grant::NeedsReclaim(plan) => {
                assert_eq!(plan, vec![(GuestId(1), MemKind::Fast, 20)]);
                fs.reclaim(GuestId(1), MemKind::Fast, 20);
                assert_eq!(fs.request(GuestId(0), demand(30, 0)), Grant::Granted);
            }
            other => panic!("expected reclaim plan, got {other:?}"),
        }
    }

    #[test]
    fn denied_when_minima_block_reclaim() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 100));
        fs.register(GuestId(0), demand(60, 0));
        fs.register(GuestId(1), demand(40, 0));
        // All FastMem is reserved minimum — nothing can be reclaimed.
        assert_eq!(fs.request(GuestId(1), demand(1, 0)), Grant::Denied);
    }

    #[test]
    fn release_returns_capacity() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 100));
        fs.register(GuestId(0), KindMap::default());
        fs.request(GuestId(0), demand(40, 0));
        fs.release(GuestId(0), MemKind::Fast, 40);
        assert_eq!(fs.free(MemKind::Fast), 100);
    }

    #[test]
    fn unregister_returns_capacity() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 100));
        fs.register(GuestId(0), demand(20, 10));
        fs.request(GuestId(0), demand(30, 0));
        let freed = fs.unregister(GuestId(0)).expect("was registered");
        assert_eq!(freed[MemKind::Fast], 50);
        assert_eq!(freed[MemKind::Slow], 10);
        assert_eq!(fs.free(MemKind::Fast), 100);
        assert_eq!(fs.free(MemKind::Slow), 100);
        assert!(!fs.is_registered(GuestId(0)));
        assert_eq!(fs.unregister(GuestId(0)), None);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn reclaim_more_than_held_panics() {
        let mut fs = FairShare::new(SharePolicy::MaxMin, totals(100, 100));
        fs.register(GuestId(0), KindMap::default());
        fs.request(GuestId(0), demand(0, 5));
        // 6 > 5 held: the checked_sub guard must fire, not wrap.
        fs.reclaim(GuestId(0), MemKind::Slow, 6);
    }

    #[test]
    #[should_panic(expected = "below")]
    fn reclaim_below_minimum_panics() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 100));
        fs.register(GuestId(0), demand(50, 0));
        fs.reclaim(GuestId(0), MemKind::Fast, 1);
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscribed_minima_panic() {
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(10, 10));
        fs.register(GuestId(0), demand(8, 0));
        fs.register(GuestId(1), demand(8, 0));
    }

    #[test]
    fn single_tier_machine_yields_finite_shares() {
        // A machine with no SlowMem at all: the zero-capacity tier must
        // contribute share 0, not poison the maximum with 0/0 = NaN.
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 0));
        fs.register(GuestId(0), demand(10, 0));
        let share = fs.dominant_share(GuestId(0));
        assert!(share.is_finite(), "share is {share}");
        assert!((share - 0.2).abs() < 1e-12, "2*10/100, got {share}");
        // The ordinary request path still works end-to-end on one tier...
        assert_eq!(fs.request(GuestId(0), demand(20, 0)), Grant::Granted);
        // ...and demand on the absent tier is denied, not granted by a
        // NaN comparison falling through.
        assert_eq!(fs.request(GuestId(0), demand(0, 1)), Grant::Denied);

        // Degenerate zero-capacity machine under max-min: share 0.
        let mut empty = FairShare::new(SharePolicy::MaxMin, totals(0, 0));
        empty.register(GuestId(1), KindMap::default());
        assert_eq!(empty.dominant_share(GuestId(1)), 0.0);
    }

    #[test]
    fn reclaim_plans_are_identical_across_registration_histories() {
        // `request` walks `self.guests` (a HashMap) to build its reclaim
        // plan. The donor sort's `(share desc, id)` ordering must fully
        // determine the plan — including between guests whose shares tie
        // exactly — no matter what internal table layout a particular
        // register/unregister history produced.
        use hetero_sim::SimRng;
        let build_and_request = |seed: u64| -> String {
            let mut rng = SimRng::seed_from(seed);
            let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(1000, 1000));
            // Register and later remove shuffled decoys to perturb the
            // HashMap's internal layout across seeds.
            let mut decoys: Vec<u32> = (10..30).collect();
            for i in (1..decoys.len()).rev() {
                let j = rng.next_range(0, (i + 1) as u64) as usize;
                decoys.swap(i, j);
            }
            for &d in &decoys {
                fs.register(GuestId(d), KindMap::default());
            }
            let mut order: Vec<u32> = (0..6).collect();
            for i in (1..order.len()).rev() {
                let j = rng.next_range(0, (i + 1) as u64) as usize;
                order.swap(i, j);
            }
            for &g in &order {
                fs.register(GuestId(g), demand(10, 10));
            }
            for &d in &decoys {
                fs.unregister(GuestId(d));
            }
            // Pairs (0,1), (2,3), (4,5) end with identical allocations, so
            // their dominant shares tie exactly.
            for g in 0..6u32 {
                let extra = 100 + u64::from(g / 2) * 40;
                assert_eq!(fs.request(GuestId(g), demand(extra, 50)), Grant::Granted);
            }
            // FastMem is now 900/1000 consumed; 150 more forces a reclaim
            // plan chosen among the tied donors.
            match fs.request(GuestId(0), demand(150, 0)) {
                Grant::NeedsReclaim(plan) => format!("{plan:?}"),
                other => panic!("expected a reclaim plan, got {other:?}"),
            }
        };
        let reference = build_and_request(0);
        assert!(reference.contains("Fast"), "plan is vacuous: {reference}");
        for seed in 1..16u64 {
            assert_eq!(
                build_and_request(seed),
                reference,
                "seed {seed}: reclaim plan depends on registration history"
            );
        }
    }

    #[test]
    fn strategy_proofness_lying_raises_dominant_share() {
        // §4.3: a guest lying about FastMem need raises its dominant ratio,
        // making it the first reclaim target.
        let mut fs = FairShare::new(SharePolicy::paper_drf(), totals(100, 1000));
        fs.register(GuestId(0), KindMap::default());
        fs.register(GuestId(1), KindMap::default());
        fs.request(GuestId(0), demand(10, 100)); // honest
        fs.request(GuestId(1), demand(60, 100)); // liar hoards FastMem
        assert!(fs.dominant_share(GuestId(1)) > fs.dominant_share(GuestId(0)));
        // Next in queue is the honest guest.
        assert_eq!(
            fs.next_in_queue([GuestId(0), GuestId(1)].iter()),
            Some(GuestId(0))
        );
    }
}
