//! VMM-level page hotness tracking.
//!
//! Software hotness tracking (§2.3) periodically scans page-table access
//! bits into a per-page history, then promotes pages whose history shows
//! sustained use and demotes pages that went cold. Two scan disciplines are
//! provided:
//!
//! * [`HotnessTracker::scan_full`] — the **VMM-exclusive** (HeteroVisor)
//!   discipline: walk the *entire* guest's resident memory in batches,
//!   blind to what the pages are used for;
//! * [`HotnessTracker::scan_tracked`] — the **coordinated** discipline
//!   (§4.1): walk only the VMA ranges on the guest-supplied tracking list,
//!   skipping page types on the exception list.
//!
//! The tracker does not know wall-clock time or workload internals; whether
//! a page "was touched since the last scan" is answered by a
//! [`TouchOracle`], which the simulation engine implements from the
//! workload's access model (and tests implement deterministically).

use hetero_guest::page::{Gfn, Page, PageType};
use hetero_guest::GuestKernel;
use hetero_mem::MemKind;

/// Answers "was this page referenced since the last scan?".
pub trait TouchOracle {
    /// True when the page's access bit would be found set.
    fn touched(&mut self, page: &Page) -> bool;
}

impl<F: FnMut(&Page) -> bool> TouchOracle for F {
    fn touched(&mut self, page: &Page) -> bool {
        self(page)
    }
}

/// Result of one scan pass.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Page-table entries / reverse-map slots visited (drives scan cost).
    pub scanned: u64,
    /// Pages on slower tiers whose history crossed the hot threshold.
    pub hot_candidates: Vec<Gfn>,
    /// FastMem pages whose history shows no recent use.
    pub cold_candidates: Vec<Gfn>,
}

/// Batched access-bit history tracker for one guest.
///
/// # Examples
///
/// ```
/// use hetero_guest::kernel::{GuestConfig, GuestKernel};
/// use hetero_mem::MemKind;
/// use hetero_vmm::hotness::HotnessTracker;
///
/// let mut kernel = GuestKernel::new(GuestConfig::default());
/// kernel.mmap_heap(32, std::iter::repeat(200), &[MemKind::Slow]).unwrap();
/// let mut tracker = HotnessTracker::new(2);
/// // Every page reads as touched: after two scans they are promotion-hot.
/// let mut always = |_: &hetero_guest::page::Page| true;
/// tracker.scan_full(&kernel, &mut always, 1 << 20);
/// let out = tracker.scan_full(&kernel, &mut always, 1 << 20);
/// assert!(!out.hot_candidates.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HotnessTracker {
    /// 8-bit shift-register history per frame, indexed by `Gfn` (bit 0 =
    /// most recent scan). Dense: guest frame numbers are contiguous, so a
    /// flat table replaces the former `HashMap<Gfn, u8>` — no hashing on
    /// the per-frame scan path, and batched scans walk it sequentially.
    history: Vec<u8>,
    /// 8-bit shift-register of harvested *dirty* bits per frame, parallel
    /// to `history`. Only A/D-harvest scans feed it ([`scan_harvest_into`]
    /// — oracle-driven scans have no write visibility); it supplies the
    /// write heat that the engine's write-aware ranking consumes.
    ///
    /// [`scan_harvest_into`]: HotnessTracker::scan_harvest_into
    write_history: Vec<u8>,
    /// Whether a frame has any recorded history. A history byte of 0 is a
    /// real state ("visited, never touched"), so presence needs its own bit.
    known: Vec<bool>,
    /// Count of `known` frames (diagnostic, kept so `tracked_pages` stays
    /// O(1)).
    tracked: usize,
    /// Number of set history bits required to call a page hot.
    hot_threshold: u32,
    /// Resume cursor for batched full-VM scans.
    cursor: u64,
    /// Resume cursor (virtual page) for batched tracked scans.
    tracked_cursor: u64,
    /// Reused buffer for the resident frames of the current full-scan batch.
    resident_scratch: Vec<Gfn>,
    /// Cumulative scan passes (full + tracked) since creation (telemetry).
    total_scans: u64,
    /// Cumulative frames/PTEs examined across all scans (telemetry).
    total_scanned_frames: u64,
}

impl HotnessTracker {
    /// Creates a tracker; a page is *hot* once `hot_threshold` of its last
    /// 8 scan intervals saw a reference.
    ///
    /// # Panics
    ///
    /// Panics if `hot_threshold` is 0 or greater than 8.
    pub fn new(hot_threshold: u32) -> Self {
        assert!(
            (1..=8).contains(&hot_threshold),
            "hot threshold must be in 1..=8"
        );
        HotnessTracker {
            history: Vec::new(),
            write_history: Vec::new(),
            known: Vec::new(),
            tracked: 0,
            hot_threshold,
            cursor: 0,
            tracked_cursor: 0,
            resident_scratch: Vec::new(),
            total_scans: 0,
            total_scanned_frames: 0,
        }
    }

    /// Pages with recorded history (diagnostic).
    pub fn tracked_pages(&self) -> usize {
        self.tracked
    }

    /// Scan passes performed since creation (survives [`reset`]).
    ///
    /// [`reset`]: HotnessTracker::reset
    pub fn total_scans(&self) -> u64 {
        self.total_scans
    }

    /// Frames/PTEs examined across all scans since creation.
    pub fn total_scanned_frames(&self) -> u64 {
        self.total_scanned_frames
    }

    /// Clears history (e.g. after a phase change).
    pub fn reset(&mut self) {
        self.history.clear();
        self.write_history.clear();
        self.known.clear();
        self.tracked = 0;
        self.cursor = 0;
        self.tracked_cursor = 0;
    }

    /// Grows the dense tables to cover `frames` guest frames.
    ///
    /// # Panics
    ///
    /// Panics when `frames` does not fit the platform's `usize` (a guest
    /// that large cannot have dense per-frame tables; truncating silently
    /// would alias distinct frames onto one slot).
    fn ensure_frames(&mut self, frames: u64) {
        let frames: usize = frames
            .try_into()
            .unwrap_or_else(|_| panic!("{frames} frames overflow the dense hotness tables"));
        if self.history.len() < frames {
            self.history.resize(frames, 0);
            self.write_history.resize(frames, 0);
            self.known.resize(frames, false);
        }
    }

    fn record(&mut self, gfn: Gfn, touched: bool) -> u8 {
        let i: usize = gfn
            .0
            .try_into()
            .unwrap_or_else(|_| panic!("{gfn:?} overflows the dense hotness tables"));
        if i >= self.history.len() {
            let frames = gfn
                .0
                .checked_add(1)
                .unwrap_or_else(|| panic!("{gfn:?} overflows the dense hotness tables"));
            self.ensure_frames(frames);
        }
        if !self.known[i] {
            self.known[i] = true;
            self.tracked += 1;
        }
        let h = &mut self.history[i];
        *h = (*h << 1) | u8::from(touched);
        *h
    }

    /// Records one harvested A/D observation: shifts `accessed` into the
    /// access history and `dirty` into the write history. Returns the
    /// updated access-history byte.
    fn record_harvest(&mut self, gfn: Gfn, accessed: bool, dirty: bool) -> u8 {
        let h = self.record(gfn, accessed);
        // `record` grew the tables, so the index is now in bounds.
        let i = gfn.0 as usize;
        let w = &mut self.write_history[i];
        *w = (*w << 1) | u8::from(dirty);
        h
    }

    /// The access-history byte for a frame (0 for never-seen frames).
    pub fn history_bits(&self, gfn: Gfn) -> u8 {
        usize::try_from(gfn.0)
            .ok()
            .and_then(|i| self.history.get(i).copied())
            .unwrap_or(0)
    }

    /// The harvested write-history byte for a frame (0 for never-seen
    /// frames; only A/D-harvest scans populate it).
    pub fn write_history_bits(&self, gfn: Gfn) -> u8 {
        usize::try_from(gfn.0)
            .ok()
            .and_then(|i| self.write_history.get(i).copied())
            .unwrap_or(0)
    }

    /// A/D-harvest scan: consumes one deterministic page-table harvest
    /// (`(gfn, accessed, dirty)` per visited PTE, as produced by
    /// `GuestKernel::harvest_ad_range`), shifting the access bit into the
    /// heat history and the dirty bit into the write history, then
    /// classifying hot/cold candidates exactly as the oracle-driven scans
    /// do. `scanned` is the number of PTEs the harvest walked (it can
    /// exceed `harvest.len()` when unmapped holes were visited); it drives
    /// the per-PTE scan cost. The outcome is cleared first.
    pub fn scan_harvest_into(
        &mut self,
        kernel: &GuestKernel,
        harvest: &[(Gfn, bool, bool)],
        scanned: u64,
        out: &mut ScanOutcome,
    ) {
        out.scanned = scanned;
        out.hot_candidates.clear();
        out.cold_candidates.clear();
        for &(gfn, accessed, dirty) in harvest {
            let h = self.record_harvest(gfn, accessed, dirty);
            self.classify(kernel, gfn, h, out);
        }
        self.total_scans += 1;
        self.total_scanned_frames += scanned;
    }

    fn classify(&self, kernel: &GuestKernel, gfn: Gfn, history: u8, out: &mut ScanOutcome) {
        // Even a guest-blind VMM knows which frames are page tables or DMA
        // regions (they are registered with it); those never migrate (§4.1).
        if !kernel.memmap().page(gfn).page_type.is_migratable() {
            return;
        }
        let kind = kernel.memmap().kind_of(gfn);
        let hot = history.count_ones() >= self.hot_threshold;
        if kind != MemKind::Fast && hot {
            out.hot_candidates.push(gfn);
        } else if kind == MemKind::Fast && history == 0 {
            out.cold_candidates.push(gfn);
        }
    }

    /// VMM-exclusive full scan: visits up to `batch` guest frames starting
    /// from the saved cursor (wrapping), recording history for every
    /// resident page regardless of type or state.
    pub fn scan_full(
        &mut self,
        kernel: &GuestKernel,
        oracle: &mut dyn TouchOracle,
        batch: u64,
    ) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        self.scan_full_into(kernel, oracle, batch, &mut out);
        out
    }

    /// As [`HotnessTracker::scan_full`], writing into a caller-owned
    /// [`ScanOutcome`] whose candidate buffers are reused across scans
    /// instead of reallocated. The outcome is cleared first.
    pub fn scan_full_into(
        &mut self,
        kernel: &GuestKernel,
        oracle: &mut dyn TouchOracle,
        batch: u64,
        out: &mut ScanOutcome,
    ) {
        let total = kernel.memmap().total_frames();
        out.scanned = batch.min(total);
        out.hot_candidates.clear();
        out.cold_candidates.clear();
        // The guest can shrink (ballooning, or a tracker reused across
        // differently-sized guests): a cursor past the end would silently
        // skip the first `cursor % total` frames on its next pass. Restart
        // from frame 0 instead.
        if self.cursor >= total {
            self.cursor = 0;
        }
        self.ensure_frames(total);
        let mut resident = std::mem::take(&mut self.resident_scratch);
        resident.clear();
        self.cursor = kernel.scan_resident_into(self.cursor, batch, &mut resident);
        for &gfn in &resident {
            let touched = oracle.touched(kernel.memmap().page(gfn));
            let h = self.record(gfn, touched);
            self.classify(kernel, gfn, h, out);
        }
        self.resident_scratch = resident;
        self.total_scans += 1;
        self.total_scanned_frames += out.scanned;
    }

    /// Coordinated scan: visits only the virtual ranges on `tracking` (the
    /// guest's tracking list), skipping page types in `exceptions` (the
    /// exception list), up to `batch` PTEs.
    pub fn scan_tracked(
        &mut self,
        kernel: &GuestKernel,
        tracking: &[(u64, u64)],
        exceptions: &[PageType],
        oracle: &mut dyn TouchOracle,
        batch: u64,
    ) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        self.scan_tracked_into(kernel, tracking, exceptions, oracle, batch, &mut out);
        out
    }

    /// As [`HotnessTracker::scan_tracked`], writing into a caller-owned,
    /// reused [`ScanOutcome`]. The outcome is cleared first.
    pub fn scan_tracked_into(
        &mut self,
        kernel: &GuestKernel,
        tracking: &[(u64, u64)],
        exceptions: &[PageType],
        oracle: &mut dyn TouchOracle,
        batch: u64,
        out: &mut ScanOutcome,
    ) {
        out.scanned = 0;
        out.hot_candidates.clear();
        out.cold_candidates.clear();
        self.total_scans += 1;
        if tracking.is_empty() {
            return;
        }
        // Resume where the previous batch stopped, wrapping over the list.
        let total_vpns: u64 = tracking.iter().map(|&(s, e)| e.saturating_sub(s)).sum();
        let mut visited_vpns = 0u64;
        let start_at = self.tracked_cursor;
        let mut started = false;
        'outer: loop {
            for &(start, end) in tracking {
                let from = if !started && start_at >= start && start_at < end {
                    started = true;
                    start_at
                } else if started || start_at < start {
                    started = true;
                    start
                } else {
                    continue; // still seeking the resume point
                };
                for vpn in from..end {
                    if out.scanned >= batch || visited_vpns >= total_vpns {
                        self.tracked_cursor = vpn;
                        break 'outer;
                    }
                    visited_vpns += 1;
                    let Some(gfn) = kernel.page_table().translate(vpn) else {
                        continue;
                    };
                    out.scanned += 1;
                    let page = kernel.memmap().page(gfn);
                    if exceptions.contains(&page.page_type) {
                        continue;
                    }
                    let touched = oracle.touched(page);
                    let h = self.record(gfn, touched);
                    self.classify(kernel, gfn, h, out);
                }
            }
            if !started {
                // Cursor beyond every range (regions unmapped): restart.
                self.tracked_cursor = tracking[0].0;
                started = true;
                continue;
            }
            // Wrapped past the last range: continue from the first.
            self.tracked_cursor = tracking[0].0;
            if out.scanned >= batch || visited_vpns >= total_vpns {
                break;
            }
        }
        self.total_scanned_frames += out.scanned;
    }

    /// Frames covered by the dense tables (invariant-audit input).
    pub fn table_frames(&self) -> u64 {
        self.known.len() as u64
    }

    /// Iterates every tracked frame and its access history, in ascending
    /// frame order (invariant-audit input).
    pub fn known_entries(&self) -> impl Iterator<Item = (Gfn, u8)> + '_ {
        self.known
            .iter()
            .enumerate()
            .filter(|(_, &known)| known)
            .map(|(i, _)| (Gfn(i as u64), self.history[i]))
    }

    /// Forgets pages that are no longer resident (called opportunistically
    /// to bound history size).
    ///
    /// # Panics
    ///
    /// Panics when the guest's frame count does not fit `usize` (see
    /// [`HotnessTracker::table_frames`]; dense tables cannot cover it).
    pub fn prune(&mut self, kernel: &GuestKernel) {
        let total = kernel.memmap().total_frames();
        let total: usize = total
            .try_into()
            .unwrap_or_else(|_| panic!("{total} frames overflow the dense hotness tables"));
        for i in 0..self.known.len() {
            if !self.known[i] {
                continue;
            }
            if i >= total || !kernel.memmap().page(Gfn(i as u64)).is_present() {
                self.known[i] = false;
                self.history[i] = 0;
                self.write_history[i] = 0;
                self.tracked -= 1;
            }
        }
    }
}

hetero_sim::impl_snap!(struct ScanOutcome { scanned, hot_candidates, cold_candidates });

hetero_sim::impl_snap!(struct HotnessTracker {
    history, write_history, known, tracked, hot_threshold, cursor,
    tracked_cursor, resident_scratch, total_scans, total_scanned_frames
});

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_guest::kernel::GuestConfig;
    use hetero_guest::pagecache::FileId;

    fn kernel_with_slow_heap(pages: u64) -> GuestKernel {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 64), (MemKind::Slow, 256)],
            cpus: 1,
            page_size: 4096,
        });
        k.mmap_heap(pages, std::iter::repeat(200), &[MemKind::Slow])
            .unwrap();
        k
    }

    #[test]
    fn hot_pages_need_threshold_scans() {
        let k = kernel_with_slow_heap(8);
        let mut t = HotnessTracker::new(3);
        let mut always = |_: &Page| true;
        let o1 = t.scan_full(&k, &mut always, 1 << 20);
        assert!(o1.hot_candidates.is_empty(), "one touch is not hot yet");
        t.scan_full(&k, &mut always, 1 << 20);
        let o3 = t.scan_full(&k, &mut always, 1 << 20);
        assert_eq!(o3.hot_candidates.len(), 8, "heap pages are hot after 3");
    }

    #[test]
    fn untouched_fast_pages_become_cold_candidates() {
        let mut k = GuestKernel::new(GuestConfig::default());
        k.mmap_heap(4, std::iter::repeat(10), &[MemKind::Fast])
            .unwrap();
        let mut t = HotnessTracker::new(2);
        let mut never = |_: &Page| false;
        let out = t.scan_full(&k, &mut never, 1 << 20);
        // Heap pages + page-table backing pages on Fast all read cold.
        assert!(out.cold_candidates.len() >= 4);
        assert!(out.hot_candidates.is_empty());
    }

    #[test]
    fn full_scan_is_batched_with_cursor() {
        let k = kernel_with_slow_heap(16);
        let total = k.memmap().total_frames();
        let mut t = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        let resident = k.memmap().resident_pages(PageType::HeapAnon) as usize;
        let half = t.scan_full(&k, &mut always, total / 2);
        assert_eq!(half.scanned, total / 2);
        let rest = t.scan_full(&k, &mut always, total / 2);
        // Between the two halves every resident (slow) page was seen once;
        // with threshold 1 each becomes a hot candidate exactly once.
        assert_eq!(
            half.hot_candidates.len() + rest.hot_candidates.len(),
            resident,
        );
    }

    #[test]
    fn tracked_scan_respects_lists() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 64), (MemKind::Slow, 256)],
            cpus: 1,
            page_size: 4096,
        });
        let (vma, _) = k
            .mmap_heap(8, std::iter::repeat(200), &[MemKind::Slow])
            .unwrap();
        // A page-cache page inside no tracked range.
        k.page_in(FileId(1), 0, 200, &[MemKind::Slow]).unwrap();
        let mut t = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        let tracking = vec![(vma.start, vma.end())];
        let out = t.scan_tracked(&k, &tracking, &[PageType::PageCache], &mut always, 1 << 20);
        assert_eq!(out.scanned, 8, "only tracked VPNs are visited");
        assert_eq!(out.hot_candidates.len(), 8);
    }

    #[test]
    fn tracked_scan_exception_list_skips_types() {
        let mut k = GuestKernel::new(GuestConfig::default());
        let (vma, _) = k
            .mmap_heap(4, std::iter::repeat(200), &[MemKind::Slow])
            .unwrap();
        let mut t = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        let out = t.scan_tracked(
            &k,
            &[(vma.start, vma.end())],
            &[PageType::HeapAnon],
            &mut always,
            1 << 20,
        );
        assert_eq!(out.scanned, 4, "PTEs are still walked");
        assert!(out.hot_candidates.is_empty(), "excepted types not tracked");
        assert_eq!(t.tracked_pages(), 0);
    }

    #[test]
    fn tracked_scan_honors_batch_limit() {
        let mut k = GuestKernel::new(GuestConfig::default());
        let (vma, _) = k
            .mmap_heap(32, std::iter::repeat(200), &[MemKind::Slow])
            .unwrap();
        let mut t = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        let out = t.scan_tracked(&k, &[(vma.start, vma.end())], &[], &mut always, 10);
        assert_eq!(out.scanned, 10);
    }

    #[test]
    fn prune_drops_freed_pages() {
        let mut k = kernel_with_slow_heap(8);
        let mut t = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        t.scan_full(&k, &mut always, 1 << 20);
        let before = t.tracked_pages();
        assert!(before > 0);
        // Free everything.
        let vma = *k.address_space().iter().next().unwrap();
        k.munmap(vma.start, vma.pages);
        t.prune(&k);
        assert!(t.tracked_pages() < before);
    }

    #[test]
    #[should_panic(expected = "hot threshold")]
    fn zero_threshold_rejected() {
        HotnessTracker::new(0);
    }

    #[test]
    fn cursor_resets_when_guest_shrinks_below_it() {
        // Advance the cursor deep into a large guest, then point the same
        // tracker at a much smaller guest. The stale cursor must restart at
        // frame 0 rather than skip the small guest's first frames.
        let big = kernel_with_slow_heap(16); // 320 frames total
        let mut t = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        let total_big = big.memmap().total_frames();
        t.scan_full(&big, &mut always, total_big - 10); // cursor = 310
        let mut small = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Slow, 64)],
            cpus: 1,
            page_size: 4096,
        });
        let (vma, _) = small
            .mmap_heap(8, std::iter::repeat(200), &[MemKind::Slow])
            .unwrap();
        let first: Vec<Gfn> = (vma.start..vma.end())
            .map(|v| small.page_table().translate(v).unwrap())
            .collect();
        let out = t.scan_full(&small, &mut always, small.memmap().total_frames());
        for gfn in &first {
            assert!(
                out.hot_candidates.contains(gfn),
                "frame {gfn:?} skipped by a stale cursor"
            );
        }
    }

    #[test]
    fn scan_into_reuses_buffers_and_matches_allocating_scan() {
        let k = kernel_with_slow_heap(16);
        let mut a = HotnessTracker::new(1);
        let mut b = HotnessTracker::new(1);
        let mut always = |_: &Page| true;
        let mut scratch = ScanOutcome::default();
        for _ in 0..3 {
            let fresh = a.scan_full(&k, &mut always, 100);
            b.scan_full_into(&k, &mut always, 100, &mut scratch);
            assert_eq!(fresh.scanned, scratch.scanned);
            assert_eq!(fresh.hot_candidates, scratch.hot_candidates);
            assert_eq!(fresh.cold_candidates, scratch.cold_candidates);
        }
        assert_eq!(a.tracked_pages(), b.tracked_pages());
    }

    #[test]
    fn harvest_scan_tracks_access_and_write_heat_separately() {
        let k = kernel_with_slow_heap(4);
        let gfns: Vec<Gfn> = {
            let vma = *k.address_space().iter().next().unwrap();
            (vma.start..vma.end())
                .map(|v| k.page_table().translate(v).unwrap())
                .collect()
        };
        let mut t = HotnessTracker::new(2);
        let mut out = ScanOutcome::default();
        // Two harvests: page 0 read each time, page 1 written each time.
        for _ in 0..2 {
            let harvest = vec![
                (gfns[0], true, false),
                (gfns[1], true, true),
                (gfns[2], false, false),
            ];
            t.scan_harvest_into(&k, &harvest, 4, &mut out);
        }
        assert_eq!(out.scanned, 4, "holes count toward the walked-PTE cost");
        assert_eq!(t.history_bits(gfns[0]), 0b11);
        assert_eq!(t.write_history_bits(gfns[0]), 0);
        assert_eq!(t.write_history_bits(gfns[1]), 0b11);
        assert_eq!(t.history_bits(gfns[2]), 0);
        assert_eq!(t.write_history_bits(Gfn(u64::MAX)), 0, "unseen frames are 0");
        // Both sustained pages crossed the threshold-2 hot bar.
        assert!(out.hot_candidates.contains(&gfns[0]));
        assert!(out.hot_candidates.contains(&gfns[1]));
        assert!(!out.hot_candidates.contains(&gfns[2]));
        assert_eq!(t.total_scans(), 2);
        assert_eq!(t.total_scanned_frames(), 8);
    }

    #[test]
    fn harvested_write_heat_decays() {
        let k = kernel_with_slow_heap(1);
        let gfn = {
            let vma = *k.address_space().iter().next().unwrap();
            k.page_table().translate(vma.start).unwrap()
        };
        let mut t = HotnessTracker::new(1);
        let mut out = ScanOutcome::default();
        t.scan_harvest_into(&k, &[(gfn, true, true)], 1, &mut out);
        assert_eq!(t.write_history_bits(gfn), 0b1);
        // Three clean harvests: the write bit shifts out of the low bits.
        for _ in 0..3 {
            t.scan_harvest_into(&k, &[(gfn, true, false)], 1, &mut out);
        }
        assert_eq!(t.write_history_bits(gfn), 0b1000);
        assert_eq!(t.history_bits(gfn), 0b1111);
    }

    /// Regression: `record` used to compute `gfn.0 + 1` in `u64` (overflow at
    /// the boundary) and index with `gfn.0 as usize` (silent truncation on
    /// 32-bit targets, aliasing distinct frames onto one history slot). Both
    /// must now refuse loudly — and crucially *before* any table resize, so
    /// the boundary case cannot first attempt an absurd allocation.
    #[test]
    #[should_panic(expected = "overflows the dense hotness tables")]
    fn record_at_u64_boundary_panics_instead_of_truncating() {
        let mut t = HotnessTracker::new(3);
        t.record(Gfn(u64::MAX), true);
    }

    #[test]
    fn record_at_table_edge_grows_exactly() {
        let mut t = HotnessTracker::new(3);
        assert_eq!(t.table_frames(), 0);
        t.record(Gfn(7), true);
        assert_eq!(t.table_frames(), 8, "tables cover gfn 0..=7");
        assert_eq!(t.tracked_pages(), 1);
        let entries: Vec<(Gfn, u8)> = t.known_entries().collect();
        assert_eq!(entries, vec![(Gfn(7), 1)]);
    }
}
