//! The VMM facade: machine-frame ownership, per-guest reservations with
//! type-specific ballooning, on-demand back-end, and fair sharing.
//!
//! Matches Fig 5's back-end boxes: the on-demand back-end "handles the
//! node-specific requests and also maintains the per-node machine page
//! number (MFN) mapping for each of the guests" (§3.1); the fair-share
//! manager implements weighted DRF (§4.2); the hot-page component lives in
//! [`crate::hotness`] and is driven per guest through this facade.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use hetero_guest::page::PageType;
use hetero_guest::GuestKernel;
use hetero_mem::kind::KindMap;
use hetero_mem::{MachineMemory, MemKind, Mfn};

use crate::channel::{BackMsg, FrontMsg, SharedRing};
use crate::drf::{FairShare, Grant, GuestId, SharePolicy};
use crate::hotness::{HotnessTracker, ScanOutcome, TouchOracle};

/// Per-guest memory contract: a reserved minimum and a balloonable maximum
/// per memory type (§4.2 "Extending ballooning").
#[derive(Debug, Clone, Copy, Default)]
pub struct GuestSpec {
    /// Reserved at boot; never reclaimed.
    pub min: KindMap<u64>,
    /// Hard cap; requests beyond it are clamped.
    pub max: KindMap<u64>,
}

/// Error registering or addressing a guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmmError {
    /// The guest id is not registered.
    UnknownGuest(GuestId),
    /// The guest id is already registered.
    DuplicateGuest(GuestId),
    /// The machine lacks frames for the guest's reserved minimum.
    InsufficientMachineMemory(MemKind),
    /// The fair-share ledger and the machine frame pools disagree — grant
    /// bookkeeping is corrupt and the operation was refused.
    LedgerInconsistent(GuestId, MemKind),
    /// A reclaim or release names more pages than the guest's backing (or
    /// its reservation floor) can cover — e.g. a stale or duplicated
    /// balloon acknowledgement.
    InvalidReclaim(GuestId, MemKind),
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::UnknownGuest(id) => write!(f, "unknown guest {id}"),
            VmmError::DuplicateGuest(id) => write!(f, "guest {id} already registered"),
            VmmError::InsufficientMachineMemory(k) => {
                write!(f, "machine cannot back the reserved minimum on {k}")
            }
            VmmError::LedgerInconsistent(id, k) => {
                write!(f, "share ledger and machine frames disagree for {id} on {k}")
            }
            VmmError::InvalidReclaim(id, k) => {
                write!(f, "reclaim/release exceeds what {id} holds on {k}")
            }
        }
    }
}

impl std::error::Error for VmmError {}

/// Result of an on-demand memory request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryGrant {
    /// Pages granted per tier (the fallback tier may appear here).
    pub granted: KindMap<u64>,
    /// Balloon reclaims the engine must drive before re-requesting, when
    /// the grant was partial due to contention.
    pub reclaim_plan: Vec<(GuestId, MemKind, u64)>,
}

struct GuestEntry {
    spec: GuestSpec,
    ring: SharedRing,
    tracker: HotnessTracker,
    tracking: Vec<(u64, u64)>,
    exceptions: Vec<PageType>,
    frames: KindMap<Vec<Mfn>>,
    /// Responses that found the back ring full: retried at the next pump
    /// instead of being dropped (a lost grant would leak frames forever).
    /// Bounded by outstanding grants, which the guest's `max` caps.
    pending_back: VecDeque<BackMsg>,
}

/// The hypervisor.
///
/// # Examples
///
/// ```
/// use hetero_mem::kind::KindMap;
/// use hetero_mem::{MachineMemory, MemKind, ThrottleConfig};
/// use hetero_vmm::drf::{GuestId, SharePolicy};
/// use hetero_vmm::vmm::{GuestSpec, Vmm};
///
/// let machine = MachineMemory::builder()
///     .fast_mem(1 << 24, ThrottleConfig::fast_mem())
///     .slow_mem(1 << 26, ThrottleConfig::slow_mem_default())
///     .build();
/// let mut vmm = Vmm::new(machine, SharePolicy::paper_drf());
/// let mut spec = GuestSpec::default();
/// spec.max[MemKind::Fast] = 1024;
/// spec.max[MemKind::Slow] = 8192;
/// vmm.register_guest(GuestId(0), spec)?;
/// let grant = vmm.request_memory(GuestId(0), MemKind::Fast, 256, None)?;
/// assert_eq!(grant.granted[MemKind::Fast], 256);
/// # Ok::<(), hetero_vmm::vmm::VmmError>(())
/// ```
pub struct Vmm {
    machine: MachineMemory,
    fair: FairShare,
    guests: HashMap<GuestId, GuestEntry>,
    /// Hot threshold handed to per-guest trackers.
    hot_threshold: u32,
    /// Cumulative fair-share ledger mutations (register/unregister, grants,
    /// reclaims, releases) — telemetry.
    ledger_ops: u64,
    /// In-flight channel messages destroyed by guest teardown: requests and
    /// responses still on the rings plus parked `pending_back` retries at
    /// `unregister_guest` time. A crash mid-conversation must account for
    /// the conversation it killed, not lose it silently.
    events_dropped: u64,
}

impl fmt::Debug for Vmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vmm")
            .field("guests", &self.guests.len())
            .field("free_fast", &self.machine.free_frames(MemKind::Fast))
            .field("free_slow", &self.machine.free_frames(MemKind::Slow))
            .finish()
    }
}

impl Vmm {
    /// Creates a VMM owning `machine`, sharing it under `policy`.
    pub fn new(machine: MachineMemory, policy: SharePolicy) -> Self {
        let totals = KindMap::from_fn(|k| machine.total_frames(k));
        Vmm {
            fair: FairShare::new(policy, totals),
            machine,
            guests: HashMap::new(),
            hot_threshold: 2,
            ledger_ops: 0,
            events_dropped: 0,
        }
    }

    /// Cumulative fair-share ledger mutations since creation.
    pub fn ledger_ops(&self) -> u64 {
        self.ledger_ops
    }

    /// In-flight channel messages destroyed by guest teardown so far.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Samples the VMM's cumulative statistics into a telemetry registry
    /// under the `vmm.*` namespace. Idempotent (uses `counter_set`);
    /// purely observational.
    pub fn export_telemetry(&self, reg: &mut hetero_sim::telemetry::Registry) {
        reg.counter_set("vmm.ledger.ops", self.ledger_ops);
        reg.counter_set("vmm.events.dropped", self.events_dropped);
        reg.counter_set("vmm.guests", self.guests.len() as u64);
        let (mut scans, mut frames, mut tracked) = (0u64, 0u64, 0u64);
        for e in self.guests.values() {
            scans += e.tracker.total_scans();
            frames += e.tracker.total_scanned_frames();
            tracked += e.tracker.tracked_pages() as u64;
        }
        reg.counter_set("vmm.scan.passes", scans);
        reg.counter_set("vmm.scan.frames", frames);
        reg.counter_set("vmm.scan.tracked_pages", tracked);
        for (kind, label) in [(MemKind::Fast, "fast"), (MemKind::Slow, "slow")] {
            let total = self.machine.total_frames(kind);
            if total > 0 {
                reg.gauge_set(
                    &format!("vmm.machine.free_fraction.{label}"),
                    self.machine.free_frames(kind) as f64 / total as f64,
                );
            }
        }
    }

    /// Overrides the hot-page threshold used by newly registered guests'
    /// trackers.
    pub fn set_hot_threshold(&mut self, threshold: u32) {
        self.hot_threshold = threshold;
    }

    /// Machine view (read-only).
    pub fn machine(&self) -> &MachineMemory {
        &self.machine
    }

    /// Registers a guest and backs its reserved minimum with machine frames.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::DuplicateGuest`] or
    /// [`VmmError::InsufficientMachineMemory`].
    pub fn register_guest(&mut self, id: GuestId, spec: GuestSpec) -> Result<(), VmmError> {
        if self.guests.contains_key(&id) {
            return Err(VmmError::DuplicateGuest(id));
        }
        let mut frames: KindMap<Vec<Mfn>> = KindMap::default();
        for (k, &m) in spec.min.iter() {
            if m == 0 {
                continue;
            }
            match self.machine.alloc_frames(k, m) {
                Ok(v) => frames[k] = v,
                Err(_) => {
                    // Roll back tiers already taken.
                    for (kk, taken) in frames.iter() {
                        if !taken.is_empty() {
                            self.machine.free_frames_bulk(kk, taken.iter().copied());
                        }
                    }
                    return Err(VmmError::InsufficientMachineMemory(k));
                }
            }
        }
        self.fair.register(id, spec.min);
        self.ledger_ops += 1;
        self.guests.insert(
            id,
            GuestEntry {
                spec,
                ring: SharedRing::new(64),
                tracker: HotnessTracker::new(self.hot_threshold),
                tracking: Vec::new(),
                exceptions: Vec::new(),
                frames,
                pending_back: VecDeque::new(),
            },
        );
        Ok(())
    }

    /// Unregisters a guest (shutdown or crash): every frame backing it goes
    /// back to the machine and its share is forgotten. Returns the pages
    /// that were reclaimed per tier. In-flight conversation state dies with
    /// the guest — unanswered ring messages in both directions and parked
    /// `pending_back` retries — and is counted into
    /// [`Vmm::events_dropped`] rather than vanishing silently.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn unregister_guest(&mut self, id: GuestId) -> Result<KindMap<u64>, VmmError> {
        let entry = self.guests.remove(&id).ok_or(VmmError::UnknownGuest(id))?;
        self.events_dropped += entry.ring.front_pending() as u64
            + entry.ring.back_pending() as u64
            + entry.pending_back.len() as u64;
        let mut reclaimed = KindMap::default();
        for (kind, frames) in entry.frames.iter() {
            reclaimed[kind] = frames.len() as u64;
            if !frames.is_empty() {
                self.machine.free_frames_bulk(kind, frames.iter().copied());
            }
        }
        self.fair.unregister(id);
        self.ledger_ops += 1;
        Ok(reclaimed)
    }

    /// Ids of every registered guest, in ascending order.
    pub fn guest_ids(&self) -> Vec<GuestId> {
        let mut ids: Vec<GuestId> = self.guests.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Machine frames currently backing a guest on a tier (invariant-audit
    /// input; must equal the fair-share ledger's grant).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn backing_frames(&self, id: GuestId, kind: MemKind) -> Result<u64, VmmError> {
        self.guests
            .get(&id)
            .map(|e| e.frames[kind].len() as u64)
            .ok_or(VmmError::UnknownGuest(id))
    }

    /// Responses waiting for space on a guest's back ring.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn pending_responses(&self, id: GuestId) -> Result<usize, VmmError> {
        self.guests
            .get(&id)
            .map(|e| e.pending_back.len())
            .ok_or(VmmError::UnknownGuest(id))
    }

    /// Pages currently granted to a guest per tier.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn granted(&self, id: GuestId) -> Result<KindMap<u64>, VmmError> {
        if !self.guests.contains_key(&id) {
            return Err(VmmError::UnknownGuest(id));
        }
        Ok(self.fair.allocated(id))
    }

    fn clamp_to_max(&self, id: GuestId, kind: MemKind, pages: u64) -> u64 {
        let entry = &self.guests[&id];
        let held = self.fair.allocated(id)[kind];
        pages.min(entry.spec.max[kind].saturating_sub(held))
    }

    /// On-demand back-end: requests `pages` of `kind` for a guest. The
    /// request is clamped to the guest's per-type maximum; under contention
    /// a reclaim plan is returned instead of pages; if `fallback` is given,
    /// unmet demand is retried on the fallback tier.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids, and
    /// [`VmmError::LedgerInconsistent`] if grant bookkeeping is corrupt
    /// (the grant is refused rather than aborting the process).
    pub fn request_memory(
        &mut self,
        id: GuestId,
        kind: MemKind,
        pages: u64,
        fallback: Option<MemKind>,
    ) -> Result<MemoryGrant, VmmError> {
        if !self.guests.contains_key(&id) {
            return Err(VmmError::UnknownGuest(id));
        }
        let mut grant = MemoryGrant {
            granted: KindMap::default(),
            reclaim_plan: Vec::new(),
        };
        let want = self.clamp_to_max(id, kind, pages);
        let got = self.try_grant(id, kind, want, &mut grant.reclaim_plan)?;
        grant.granted[kind] = got;
        let unmet = pages - got.min(pages);
        if unmet > 0 {
            if let Some(fb) = fallback.filter(|&fb| fb != kind) {
                let want_fb = self.clamp_to_max(id, fb, unmet);
                let got_fb = self.try_grant(id, fb, want_fb, &mut grant.reclaim_plan)?;
                grant.granted[fb] = got_fb;
            }
        }
        Ok(grant)
    }

    fn try_grant(
        &mut self,
        id: GuestId,
        kind: MemKind,
        pages: u64,
        plan: &mut Vec<(GuestId, MemKind, u64)>,
    ) -> Result<u64, VmmError> {
        if pages == 0 {
            return Ok(0);
        }
        // Grant as much as fits immediately (partial grants are fine).
        let immediate = pages.min(self.fair.free(kind));
        if immediate > 0 {
            let mut d = KindMap::default();
            d[kind] = immediate;
            self.ledger_ops += 1;
            match self.fair.request(id, d) {
                Grant::Granted => match self.machine.alloc_frames(kind, immediate) {
                    Ok(mfns) => {
                        self.guests
                            .get_mut(&id)
                            .expect("registered")
                            .frames[kind]
                            .extend(mfns);
                    }
                    Err(_) => {
                        // The share ledger said the pages were free but the
                        // machine disagrees. Undo the ledger movement and
                        // surface the inconsistency instead of aborting.
                        self.fair.release(id, kind, immediate);
                        self.ledger_ops += 1;
                        return Err(VmmError::LedgerInconsistent(id, kind));
                    }
                },
                // free() said it fits, yet the ledger refused: corrupt.
                _ => return Err(VmmError::LedgerInconsistent(id, kind)),
            }
        }
        let remaining = pages - immediate;
        if remaining > 0 {
            let mut d = KindMap::default();
            d[kind] = remaining;
            self.ledger_ops += 1;
            match self.fair.request(id, d) {
                // Capacity was exhausted a moment ago: corrupt ledger.
                Grant::Granted => return Err(VmmError::LedgerInconsistent(id, kind)),
                Grant::NeedsReclaim(p) => plan.extend(p),
                Grant::Denied => {}
            }
        }
        Ok(immediate)
    }

    /// Confirms a balloon reclaim: `pages` of `kind` returned by `donor`
    /// (after its kernel actually inflated). Frees the machine frames.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids and
    /// [`VmmError::InvalidReclaim`] when the acknowledgement names more
    /// pages than the donor holds above its floor (a stale or duplicated
    /// ack over a lossy channel) — nothing is mutated in that case.
    pub fn confirm_reclaim(
        &mut self,
        donor: GuestId,
        kind: MemKind,
        pages: u64,
    ) -> Result<(), VmmError> {
        let entry = self
            .guests
            .get_mut(&donor)
            .ok_or(VmmError::UnknownGuest(donor))?;
        if !self.fair.can_reclaim(donor, kind, pages)
            || (entry.frames[kind].len() as u64) < pages
        {
            return Err(VmmError::InvalidReclaim(donor, kind));
        }
        self.fair.reclaim(donor, kind, pages);
        self.ledger_ops += 1;
        for _ in 0..pages {
            let mfn = entry.frames[kind].pop().expect("length checked above");
            self.machine.free_frame(kind, mfn);
        }
        Ok(())
    }

    /// A guest voluntarily returns pages (balloon-driver release of
    /// on-demand pages under pressure, §3.1).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids and
    /// [`VmmError::InvalidReclaim`] when the guest does not hold that many
    /// pages — nothing is mutated in that case.
    pub fn release_memory(
        &mut self,
        id: GuestId,
        kind: MemKind,
        pages: u64,
    ) -> Result<(), VmmError> {
        let entry = self.guests.get_mut(&id).ok_or(VmmError::UnknownGuest(id))?;
        if !self.fair.can_release(id, kind, pages)
            || (entry.frames[kind].len() as u64) < pages
        {
            return Err(VmmError::InvalidReclaim(id, kind));
        }
        self.fair.release(id, kind, pages);
        self.ledger_ops += 1;
        for _ in 0..pages {
            let mfn = entry.frames[kind].pop().expect("length checked above");
            self.machine.free_frame(kind, mfn);
        }
        Ok(())
    }

    /// The guest-side ring of a guest.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn ring_mut(&mut self, id: GuestId) -> Result<&mut SharedRing, VmmError> {
        self.guests
            .get_mut(&id)
            .map(|e| &mut e.ring)
            .ok_or(VmmError::UnknownGuest(id))
    }

    /// Posts a response on a guest's back ring, queueing it when the ring
    /// is full so it is retried at the next pump rather than dropped.
    fn respond(entry: &mut GuestEntry, msg: BackMsg) {
        if let Err(crate::channel::RingFull) = entry.ring.post_back(msg.clone()) {
            entry.pending_back.push_back(msg);
        }
    }

    /// Retries responses that previously found the back ring full, in
    /// arrival order, stopping at the first that still does not fit.
    fn flush_pending_back(entry: &mut GuestEntry) {
        while let Some(msg) = entry.pending_back.front() {
            if entry.ring.post_back(msg.clone()).is_err() {
                break;
            }
            entry.pending_back.pop_front();
        }
    }

    /// Back-end message pump: drains a guest's pending requests, updating
    /// tracking/exception lists and answering on-demand requests with
    /// grants. Responses that find the back ring full are queued and
    /// retried at the next pump, never dropped. Returns the number of
    /// messages processed.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids, and
    /// propagates grant-path errors ([`VmmError::LedgerInconsistent`],
    /// [`VmmError::InvalidReclaim`]).
    pub fn process_guest_requests(&mut self, id: GuestId) -> Result<usize, VmmError> {
        if !self.guests.contains_key(&id) {
            return Err(VmmError::UnknownGuest(id));
        }
        Self::flush_pending_back(self.guests.get_mut(&id).expect("checked"));
        let mut handled = 0;
        while let Some(msg) = self
            .guests
            .get_mut(&id)
            .expect("checked")
            .ring
            .poll_front()
        {
            handled += 1;
            match msg {
                FrontMsg::OnDemand {
                    kind,
                    pages,
                    fallback,
                } => {
                    let grant = self.request_memory(id, kind, pages, fallback)?;
                    let entry = self.guests.get_mut(&id).expect("checked");
                    for (k, &n) in grant.granted.iter() {
                        if n > 0 {
                            Self::respond(entry, BackMsg::Grant { kind: k, pages: n });
                        }
                    }
                    for (donor, k, n) in grant.reclaim_plan {
                        if let Some(d) = self.guests.get_mut(&donor) {
                            Self::respond(d, BackMsg::BalloonRequest { kind: k, pages: n });
                        }
                    }
                }
                FrontMsg::TrackingList(ranges) => {
                    self.guests.get_mut(&id).expect("checked").tracking = ranges;
                }
                FrontMsg::ExceptionList(types) => {
                    self.guests.get_mut(&id).expect("checked").exceptions = types;
                }
                FrontMsg::MigrationDone(_) => {}
                FrontMsg::BalloonAck { kind, pages } => {
                    self.confirm_reclaim(id, kind, pages)?;
                }
            }
        }
        Ok(handled)
    }

    /// Runs one hotness scan for a guest. `coordinated` selects the
    /// guest-guided tracked scan (tracking + exception lists) versus the
    /// VMM-exclusive full scan.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn scan_guest(
        &mut self,
        id: GuestId,
        kernel: &GuestKernel,
        oracle: &mut dyn TouchOracle,
        batch: u64,
        coordinated: bool,
    ) -> Result<ScanOutcome, VmmError> {
        let entry = self.guests.get_mut(&id).ok_or(VmmError::UnknownGuest(id))?;
        let outcome = if coordinated {
            entry
                .tracker
                .scan_tracked(kernel, &entry.tracking, &entry.exceptions, oracle, batch)
        } else {
            entry.tracker.scan_full(kernel, oracle, batch)
        };
        Ok(outcome)
    }

    /// Clears a guest's hotness history (phase change).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnknownGuest`] for unregistered ids.
    pub fn reset_tracker(&mut self, id: GuestId) -> Result<(), VmmError> {
        self.guests
            .get_mut(&id)
            .map(|e| e.tracker.reset())
            .ok_or(VmmError::UnknownGuest(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_mem::ThrottleConfig;

    fn machine(fast_pages: u64, slow_pages: u64) -> MachineMemory {
        MachineMemory::builder()
            .fast_mem(fast_pages * 4096, ThrottleConfig::fast_mem())
            .slow_mem(slow_pages * 4096, ThrottleConfig::slow_mem_default())
            .build()
    }

    fn spec(min_f: u64, max_f: u64, min_s: u64, max_s: u64) -> GuestSpec {
        let mut s = GuestSpec::default();
        s.min[MemKind::Fast] = min_f;
        s.max[MemKind::Fast] = max_f;
        s.min[MemKind::Slow] = min_s;
        s.max[MemKind::Slow] = max_s;
        s
    }

    #[test]
    fn register_backs_minimum_with_frames() {
        let mut vmm = Vmm::new(machine(100, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(30, 60, 0, 100)).unwrap();
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 70);
        assert_eq!(vmm.granted(GuestId(0)).unwrap()[MemKind::Fast], 30);
    }

    #[test]
    fn duplicate_and_unknown_guests_error() {
        let mut vmm = Vmm::new(machine(10, 10), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(1), GuestSpec::default()).unwrap();
        assert_eq!(
            vmm.register_guest(GuestId(1), GuestSpec::default()),
            Err(VmmError::DuplicateGuest(GuestId(1)))
        );
        assert_eq!(
            vmm.granted(GuestId(9)),
            Err(VmmError::UnknownGuest(GuestId(9)))
        );
    }

    #[test]
    fn insufficient_machine_memory_rolls_back() {
        let mut vmm = Vmm::new(machine(10, 10), SharePolicy::paper_drf());
        let err = vmm.register_guest(GuestId(0), spec(5, 5, 20, 20));
        assert_eq!(err, Err(VmmError::InsufficientMachineMemory(MemKind::Slow)));
        // The Fast frames taken before the failure came back.
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 10);
    }

    #[test]
    fn request_clamps_to_guest_max() {
        let mut vmm = Vmm::new(machine(100, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 20, 0, 100)).unwrap();
        let g = vmm
            .request_memory(GuestId(0), MemKind::Fast, 50, None)
            .unwrap();
        assert_eq!(g.granted[MemKind::Fast], 20);
        assert!(g.reclaim_plan.is_empty());
    }

    #[test]
    fn fallback_tier_covers_unmet_demand() {
        let mut vmm = Vmm::new(machine(10, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 100, 0, 100)).unwrap();
        let g = vmm
            .request_memory(GuestId(0), MemKind::Fast, 30, Some(MemKind::Slow))
            .unwrap();
        assert_eq!(g.granted[MemKind::Fast], 10);
        assert_eq!(g.granted[MemKind::Slow], 20);
    }

    #[test]
    fn contention_produces_reclaim_plan_and_confirm_executes_it() {
        let mut vmm = Vmm::new(machine(100, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(10, 100, 0, 100)).unwrap();
        vmm.register_guest(GuestId(1), spec(10, 100, 0, 100)).unwrap();
        // Guest 1 hoards FastMem.
        let g = vmm
            .request_memory(GuestId(1), MemKind::Fast, 80, None)
            .unwrap();
        assert_eq!(g.granted[MemKind::Fast], 80);
        // Guest 0 wants 30: none free → reclaim plan against guest 1.
        let g = vmm
            .request_memory(GuestId(0), MemKind::Fast, 30, None)
            .unwrap();
        assert_eq!(g.granted[MemKind::Fast], 0);
        assert_eq!(g.reclaim_plan, vec![(GuestId(1), MemKind::Fast, 30)]);
        vmm.confirm_reclaim(GuestId(1), MemKind::Fast, 30).unwrap();
        assert_eq!(vmm.granted(GuestId(1)).unwrap()[MemKind::Fast], 60);
        let g = vmm
            .request_memory(GuestId(0), MemKind::Fast, 30, None)
            .unwrap();
        assert_eq!(g.granted[MemKind::Fast], 30);
    }

    #[test]
    fn release_returns_frames_to_machine() {
        let mut vmm = Vmm::new(machine(50, 50), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 50, 0, 50)).unwrap();
        vmm.request_memory(GuestId(0), MemKind::Fast, 25, None)
            .unwrap();
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 25);
        vmm.release_memory(GuestId(0), MemKind::Fast, 25).unwrap();
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 50);
    }

    #[test]
    fn unregister_returns_every_backing_frame() {
        let mut vmm = Vmm::new(machine(100, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(10, 100, 5, 100)).unwrap();
        vmm.request_memory(GuestId(0), MemKind::Fast, 15, None)
            .unwrap();
        let reclaimed = vmm.unregister_guest(GuestId(0)).unwrap();
        assert_eq!(reclaimed[MemKind::Fast], 25);
        assert_eq!(reclaimed[MemKind::Slow], 5);
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 100);
        assert_eq!(vmm.machine().free_frames(MemKind::Slow), 100);
        assert!(vmm.guest_ids().is_empty());
        assert_eq!(
            vmm.unregister_guest(GuestId(0)),
            Err(VmmError::UnknownGuest(GuestId(0)))
        );
        // The id can be reused after a crash-restart.
        vmm.register_guest(GuestId(0), spec(10, 100, 5, 100)).unwrap();
        assert_eq!(vmm.granted(GuestId(0)).unwrap()[MemKind::Fast], 10);
    }

    #[test]
    fn full_back_ring_queues_responses_until_next_pump() {
        let mut vmm = Vmm::new(machine(100, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 100, 0, 100)).unwrap();
        {
            let ring = vmm.ring_mut(GuestId(0)).unwrap();
            while ring.post_back(BackMsg::HotPages(Vec::new())).is_ok() {}
            ring.post_front(FrontMsg::OnDemand {
                kind: MemKind::Fast,
                pages: 4,
                fallback: None,
            })
            .unwrap();
        }
        vmm.process_guest_requests(GuestId(0)).unwrap();
        // The grant itself succeeded; only its notification is parked.
        assert_eq!(vmm.granted(GuestId(0)).unwrap()[MemKind::Fast], 4);
        assert_eq!(vmm.pending_responses(GuestId(0)).unwrap(), 1);
        // Guest drains the jam; the next pump delivers the parked grant.
        {
            let ring = vmm.ring_mut(GuestId(0)).unwrap();
            while ring.back_pending() > 0 {
                ring.poll_back();
            }
        }
        vmm.process_guest_requests(GuestId(0)).unwrap();
        assert_eq!(vmm.pending_responses(GuestId(0)).unwrap(), 0);
        assert_eq!(
            vmm.ring_mut(GuestId(0)).unwrap().poll_back(),
            Some(BackMsg::Grant {
                kind: MemKind::Fast,
                pages: 4
            })
        );
    }

    #[test]
    fn crash_with_pending_responses_counts_dropped_events() {
        let mut vmm = Vmm::new(machine(100, 100), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 100, 0, 100)).unwrap();
        assert_eq!(vmm.events_dropped(), 0);
        {
            let ring = vmm.ring_mut(GuestId(0)).unwrap();
            // Jam the back ring so the grant response parks in pending_back…
            while ring.post_back(BackMsg::HotPages(Vec::new())).is_ok() {}
            ring.post_front(FrontMsg::OnDemand {
                kind: MemKind::Fast,
                pages: 4,
                fallback: None,
            })
            .unwrap();
        }
        vmm.process_guest_requests(GuestId(0)).unwrap();
        assert_eq!(vmm.pending_responses(GuestId(0)).unwrap(), 1);
        let jammed = vmm.ring_mut(GuestId(0)).unwrap().back_pending() as u64;
        // …and leave one unprocessed request on the front ring too.
        vmm.ring_mut(GuestId(0))
            .unwrap()
            .post_front(FrontMsg::MigrationDone(7))
            .unwrap();
        // Crash: everything in flight dies with the guest, but is counted.
        vmm.unregister_guest(GuestId(0)).unwrap();
        assert_eq!(vmm.events_dropped(), jammed + 1 + 1);
        // A clean teardown with empty rings drops nothing further.
        vmm.register_guest(GuestId(1), spec(0, 10, 0, 10)).unwrap();
        let before = vmm.events_dropped();
        vmm.unregister_guest(GuestId(1)).unwrap();
        assert_eq!(vmm.events_dropped(), before);
    }

    #[test]
    fn stale_balloon_ack_is_an_error_not_an_abort() {
        let mut vmm = Vmm::new(machine(40, 40), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 40, 0, 40)).unwrap();
        vmm.request_memory(GuestId(0), MemKind::Fast, 10, None)
            .unwrap();
        // An ack for more pages than the guest holds (duplicated or stale).
        assert_eq!(
            vmm.confirm_reclaim(GuestId(0), MemKind::Fast, 50),
            Err(VmmError::InvalidReclaim(GuestId(0), MemKind::Fast))
        );
        // Nothing was mutated by the refused ack.
        assert_eq!(vmm.granted(GuestId(0)).unwrap()[MemKind::Fast], 10);
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 30);
        assert_eq!(
            vmm.release_memory(GuestId(0), MemKind::Fast, 11),
            Err(VmmError::InvalidReclaim(GuestId(0), MemKind::Fast))
        );
    }

    #[test]
    fn ring_pump_answers_on_demand_requests() {
        let mut vmm = Vmm::new(machine(40, 40), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 40, 0, 40)).unwrap();
        vmm.ring_mut(GuestId(0))
            .unwrap()
            .post_front(FrontMsg::OnDemand {
                kind: MemKind::Fast,
                pages: 8,
                fallback: None,
            })
            .unwrap();
        let handled = vmm.process_guest_requests(GuestId(0)).unwrap();
        assert_eq!(handled, 1);
        let resp = vmm.ring_mut(GuestId(0)).unwrap().poll_back();
        assert_eq!(
            resp,
            Some(BackMsg::Grant {
                kind: MemKind::Fast,
                pages: 8
            })
        );
    }

    #[test]
    fn ring_pump_updates_tracking_lists_and_scans_coordinated() {
        let mut vmm = Vmm::new(machine(64, 256), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), GuestSpec::default()).unwrap();
        let mut kernel = GuestKernel::new(hetero_guest::GuestConfig {
            frames: vec![(MemKind::Fast, 64), (MemKind::Slow, 256)],
            cpus: 1,
            page_size: 4096,
        });
        let (vma, _) = kernel
            .mmap_heap(8, std::iter::repeat(200), &[MemKind::Slow])
            .unwrap();
        let ring = vmm.ring_mut(GuestId(0)).unwrap();
        ring.post_front(FrontMsg::TrackingList(vec![(vma.start, vma.end())]))
            .unwrap();
        ring.post_front(FrontMsg::ExceptionList(vec![PageType::PageCache]))
            .unwrap();
        vmm.process_guest_requests(GuestId(0)).unwrap();
        let mut always = |_: &hetero_guest::page::Page| true;
        // Threshold 2 (default): two scans to become hot.
        vmm.scan_guest(GuestId(0), &kernel, &mut always, 1 << 20, true)
            .unwrap();
        let out = vmm
            .scan_guest(GuestId(0), &kernel, &mut always, 1 << 20, true)
            .unwrap();
        assert_eq!(out.scanned, 8);
        assert_eq!(out.hot_candidates.len(), 8);
    }

    #[test]
    fn balloon_ack_message_confirms_reclaim() {
        let mut vmm = Vmm::new(machine(40, 40), SharePolicy::paper_drf());
        vmm.register_guest(GuestId(0), spec(0, 40, 0, 40)).unwrap();
        vmm.request_memory(GuestId(0), MemKind::Fast, 20, None)
            .unwrap();
        vmm.ring_mut(GuestId(0))
            .unwrap()
            .post_front(FrontMsg::BalloonAck {
                kind: MemKind::Fast,
                pages: 20,
            })
            .unwrap();
        vmm.process_guest_requests(GuestId(0)).unwrap();
        assert_eq!(vmm.granted(GuestId(0)).unwrap()[MemKind::Fast], 0);
        assert_eq!(vmm.machine().free_frames(MemKind::Fast), 40);
    }
}
