//! Hypervisor (VMM) substrate for the HeteroOS reproduction.
//!
//! Stand-in for the paper's modified Xen: it owns the machine's
//! heterogeneous memory, backs guest reservations, and provides the
//! privileged services HeteroOS delegates to the VMM (§4):
//!
//! * [`drf`] — weighted Dominant Resource Fairness across memory types
//!   (Algorithm 1) and the max-min baseline,
//! * [`hotness`] — batched access-bit hotness tracking, in both the
//!   VMM-exclusive (full-VM) and coordinated (guest-guided) disciplines,
//! * [`channel`] — the split-driver shared ring between guest front-ends
//!   and VMM back-ends (Fig 5),
//! * [`vmm`] — the [`Vmm`] facade: registration, on-demand grants with
//!   per-type ballooning limits, reclaim plans, and the message pump.
//!
//! # Examples
//!
//! ```
//! use hetero_mem::{MachineMemory, MemKind, ThrottleConfig};
//! use hetero_vmm::drf::{GuestId, SharePolicy};
//! use hetero_vmm::vmm::{GuestSpec, Vmm};
//!
//! let machine = MachineMemory::builder()
//!     .fast_mem(64 << 20, ThrottleConfig::fast_mem())
//!     .slow_mem(256 << 20, ThrottleConfig::slow_mem_default())
//!     .build();
//! let mut vmm = Vmm::new(machine, SharePolicy::paper_drf());
//! let mut spec = GuestSpec::default();
//! spec.max[MemKind::Fast] = 4096;
//! vmm.register_guest(GuestId(0), spec)?;
//! # Ok::<(), hetero_vmm::vmm::VmmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod drf;
pub mod hotness;
pub mod vmm;

pub use drf::{FairShare, Grant, GuestId, SharePolicy};
pub use hotness::{HotnessTracker, ScanOutcome, TouchOracle};
pub use vmm::{GuestSpec, MemoryGrant, Vmm, VmmError};
