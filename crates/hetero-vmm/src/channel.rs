//! The split-driver shared-memory channel between a guest front-end and the
//! VMM back-end (Fig 5).
//!
//! HeteroOS's on-demand allocation driver and coordinated management both
//! run over a front-end/back-end pair connected by shared rings: the guest
//! posts requests (page grants, tracking/exception lists), the VMM posts
//! responses (grants, hot-page notifications, balloon requests). The ring
//! is bounded, as a real grant-table ring would be.

use std::collections::VecDeque;
use std::fmt;

use hetero_guest::page::{Gfn, PageType};
use hetero_mem::MemKind;

/// Messages the guest front-end sends to the VMM back-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontMsg {
    /// On-demand allocation request: `pages` of `kind` (steps 1–2, Fig 5).
    OnDemand {
        /// Requested tier.
        kind: MemKind,
        /// Pages requested.
        pages: u64,
        /// Tier to fall back to when `kind` cannot be granted (§3.1: "the
        /// front-end can also specify a fallback strategy").
        fallback: Option<MemKind>,
    },
    /// Replace the VMM's tracking list with these virtual ranges (§4.1).
    TrackingList(Vec<(u64, u64)>),
    /// Replace the exception list with these page types (§4.1).
    ExceptionList(Vec<PageType>),
    /// Guest finished migrating these many pages (step 9 feedback).
    MigrationDone(u64),
    /// Balloon inflation completed: `pages` of `kind` returned to the VMM.
    BalloonAck {
        /// Tier released.
        kind: MemKind,
        /// Pages released.
        pages: u64,
    },
}

/// Messages the VMM back-end sends to the guest front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackMsg {
    /// Grant of `pages` of `kind` (step 2 response).
    Grant {
        /// Granted tier.
        kind: MemKind,
        /// Pages granted (may be less than requested).
        pages: u64,
    },
    /// Hot pages found by VMM tracking, for guest-side migration (step 6).
    HotPages(Vec<Gfn>),
    /// Ask the guest to balloon out `pages` of `kind`.
    BalloonRequest {
        /// Tier to release from.
        kind: MemKind,
        /// Pages wanted.
        pages: u64,
    },
}

/// Error posting to a full ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl fmt::Display for RingFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("shared ring is full")
    }
}

impl std::error::Error for RingFull {}

/// A bounded bidirectional ring.
///
/// # Examples
///
/// ```
/// use hetero_vmm::channel::{FrontMsg, SharedRing};
/// use hetero_mem::MemKind;
///
/// let mut ring = SharedRing::new(8);
/// ring.post_front(FrontMsg::OnDemand {
///     kind: MemKind::Fast, pages: 16, fallback: Some(MemKind::Slow),
/// })?;
/// assert!(ring.poll_front().is_some());
/// # Ok::<(), hetero_vmm::channel::RingFull>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedRing {
    front_to_back: VecDeque<FrontMsg>,
    back_to_front: VecDeque<BackMsg>,
    capacity: usize,
}

impl SharedRing {
    /// Creates a ring with `capacity` slots per direction.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        SharedRing {
            front_to_back: VecDeque::with_capacity(capacity),
            back_to_front: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Guest → VMM post.
    ///
    /// # Errors
    ///
    /// Returns [`RingFull`] when the direction is at capacity.
    pub fn post_front(&mut self, msg: FrontMsg) -> Result<(), RingFull> {
        if self.front_to_back.len() >= self.capacity {
            return Err(RingFull);
        }
        self.front_to_back.push_back(msg);
        Ok(())
    }

    /// VMM side: next guest request.
    pub fn poll_front(&mut self) -> Option<FrontMsg> {
        self.front_to_back.pop_front()
    }

    /// VMM → guest post.
    ///
    /// # Errors
    ///
    /// Returns [`RingFull`] when the direction is at capacity.
    pub fn post_back(&mut self, msg: BackMsg) -> Result<(), RingFull> {
        if self.back_to_front.len() >= self.capacity {
            return Err(RingFull);
        }
        self.back_to_front.push_back(msg);
        Ok(())
    }

    /// Guest side: next VMM response.
    pub fn poll_back(&mut self) -> Option<BackMsg> {
        self.back_to_front.pop_front()
    }

    /// Pending guest requests.
    pub fn front_pending(&self) -> usize {
        self.front_to_back.len()
    }

    /// Pending VMM responses.
    pub fn back_pending(&self) -> usize {
        self.back_to_front.len()
    }
}

hetero_sim::impl_snap!(enum FrontMsg {
    0 => OnDemand { kind, pages, fallback },
    1 => TrackingList(ranges),
    2 => ExceptionList(types),
    3 => MigrationDone(pages),
    4 => BalloonAck { kind, pages },
});

hetero_sim::impl_snap!(enum BackMsg {
    0 => Grant { kind, pages },
    1 => HotPages(gfns),
    2 => BalloonRequest { kind, pages },
});

hetero_sim::impl_snap!(struct SharedRing { front_to_back, back_to_front, capacity });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_per_direction() {
        let mut r = SharedRing::new(4);
        r.post_front(FrontMsg::MigrationDone(1)).unwrap();
        r.post_front(FrontMsg::MigrationDone(2)).unwrap();
        assert_eq!(r.poll_front(), Some(FrontMsg::MigrationDone(1)));
        assert_eq!(r.poll_front(), Some(FrontMsg::MigrationDone(2)));
        assert_eq!(r.poll_front(), None);
    }

    #[test]
    fn directions_are_independent() {
        let mut r = SharedRing::new(1);
        r.post_front(FrontMsg::MigrationDone(0)).unwrap();
        r.post_back(BackMsg::Grant {
            kind: MemKind::Fast,
            pages: 1,
        })
        .unwrap();
        assert_eq!(r.front_pending(), 1);
        assert_eq!(r.back_pending(), 1);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = SharedRing::new(1);
        r.post_front(FrontMsg::MigrationDone(0)).unwrap();
        assert_eq!(r.post_front(FrontMsg::MigrationDone(1)), Err(RingFull));
        r.poll_front();
        assert!(r.post_front(FrontMsg::MigrationDone(1)).is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        SharedRing::new(0);
    }
}
