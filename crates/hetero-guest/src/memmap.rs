//! The guest memmap: one [`Page`] descriptor per guest frame, plus the
//! per-(type, tier) resident accounting the HeteroOS allocator's
//! demand-based prioritization consumes (§3.2).
//!
//! Guest frame numbers are statically partitioned into per-tier ranges at
//! boot (the boot allocator "initializes one NUMA node and its related data
//! structures for each memory type", §3.1), so a `Gfn`'s tier never changes.

use hetero_mem::heatgen::ColdLedger;
use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;

use crate::page::{Gfn, Page, PageFlags, PageType};

/// Aggregate residency of one `(page type, tier)` bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Residency {
    /// Pages currently allocated in the bucket.
    pub pages: u64,
    /// Sum of the pages' heat values (drives simulated access splitting).
    pub heat: u64,
    /// Sum of the pages' write-heat values (drives store splitting).
    pub write_heat: u64,
}

/// The guest's page-descriptor array and tier layout.
///
/// # Examples
///
/// ```
/// use hetero_guest::memmap::MemMap;
/// use hetero_guest::page::{Gfn, PageType};
/// use hetero_mem::MemKind;
///
/// let mut mm = MemMap::new(&[(MemKind::Fast, 16), (MemKind::Slow, 64)]);
/// let gfn = Gfn(mm.range(MemKind::Fast).start);
/// mm.set_allocated(gfn, PageType::HeapAnon, 200);
/// assert_eq!(mm.residency(PageType::HeapAnon, MemKind::Fast).pages, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemMap {
    pages: Vec<Page>,
    ranges: Vec<(MemKind, std::ops::Range<u64>)>,
    residency: [KindMap<Residency>; PageType::COUNT],
    /// O(1) cold-active page counts (lazy LRU aging, DESIGN.md §13).
    /// Inert until [`MemMap::configure_cold_ledger`] arms it; every heat
    /// write and ACTIVE transition below keeps it exact.
    ledger: ColdLedger,
}

impl MemMap {
    /// Builds a memmap with the given per-tier frame counts, laid out
    /// fastest tier first.
    ///
    /// # Panics
    ///
    /// Panics on duplicate tiers or an empty layout.
    pub fn new(layout: &[(MemKind, u64)]) -> Self {
        assert!(!layout.is_empty(), "memmap needs at least one tier");
        let mut sorted: Vec<(MemKind, u64)> = layout.to_vec();
        sorted.sort_by_key(|(k, _)| *k);
        for w in sorted.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate tier {}", w[0].0);
        }
        let mut pages = Vec::new();
        let mut ranges = Vec::new();
        let mut base = 0u64;
        for (kind, frames) in sorted {
            ranges.push((kind, base..base + frames));
            pages.extend((0..frames).map(|_| Page::free_on(kind)));
            base += frames;
        }
        MemMap {
            pages,
            ranges,
            residency: [KindMap::default(); PageType::COUNT],
            ledger: ColdLedger::new(),
        }
    }

    /// Arms the cold-active ledger with the LRU cold-heat threshold.
    ///
    /// Call at boot (or right after a crash rebuild), before any page goes
    /// on an active list — the reset-to-zero counts are exact only for an
    /// active-free map. Unconfigured maps keep legacy behaviour: the
    /// ledger stays inert and LRU aging uses its dense walk.
    pub fn configure_cold_ledger(&mut self, threshold: u8) {
        self.ledger.configure(threshold);
    }

    /// The cold-active ledger (threshold, per-tier counts, generation).
    pub fn cold_ledger(&self) -> &ColdLedger {
        &self.ledger
    }

    /// Exclusive access to the ledger's generation counter (the cooling
    /// pass bumps it; counts are maintained internally).
    pub fn cold_ledger_mut(&mut self) -> &mut ColdLedger {
        &mut self.ledger
    }

    /// Cold-active pages currently on `kind` — exact when the ledger is
    /// configured with the aging threshold in use, zero otherwise.
    #[inline]
    pub fn cold_active(&self, kind: MemKind) -> u64 {
        self.ledger.cold_active(kind)
    }

    /// Dense recount of cold-active pages per tier — the audit oracle for
    /// the incremental ledger. Walks every frame; only the sanitizer
    /// should call this on hot paths.
    pub fn recount_cold_active(&self) -> KindMap<u64> {
        let mut out: KindMap<u64> = KindMap::default();
        if !self.ledger.is_configured() {
            return out;
        }
        for p in &self.pages {
            if p.flags.contains(PageFlags::ACTIVE) && self.ledger.is_cold(p.heat) {
                out[p.kind] += 1;
            }
        }
        out
    }

    /// Moves a present page on or off an active LRU list, keeping the
    /// cold-active ledger in sync. The LRU registry routes **every**
    /// `ACTIVE` transition through here; flipping the flag via
    /// [`MemMap::page_mut`] desynchronises the ledger.
    ///
    /// # Panics
    ///
    /// Panics if the page is not present.
    #[inline]
    pub fn set_active(&mut self, gfn: Gfn, on: bool) {
        let p = &mut self.pages[gfn.index()];
        assert!(p.is_present(), "{gfn} is not allocated");
        let was = p.flags.contains(PageFlags::ACTIVE);
        if was == on {
            return;
        }
        p.flags.set(PageFlags::ACTIVE, on);
        if self.ledger.is_cold(p.heat) {
            let kind = p.kind;
            self.ledger.adjust(kind, if on { 1 } else { -1 });
        }
    }

    /// Total number of guest frames.
    pub fn total_frames(&self) -> u64 {
        self.pages.len() as u64
    }

    /// The `Gfn` range of a tier (empty range when not configured).
    pub fn range(&self, kind: MemKind) -> std::ops::Range<u64> {
        self.ranges
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| r.clone())
            .unwrap_or(0..0)
    }

    /// The tier a frame belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `gfn` is out of range.
    pub fn kind_of(&self, gfn: Gfn) -> MemKind {
        self.page(gfn).kind
    }

    /// Shared access to a page descriptor.
    ///
    /// # Panics
    ///
    /// Panics when `gfn` is out of range.
    #[inline]
    pub fn page(&self, gfn: Gfn) -> &Page {
        &self.pages[gfn.index()]
    }

    /// Exclusive access to a page descriptor.
    ///
    /// Mutating `page_type`, `kind`, `heat` or `PRESENT` through this
    /// reference without going through [`MemMap::set_allocated`] /
    /// [`MemMap::set_free`] / [`MemMap::set_heat`] desynchronises the
    /// residency accounting, and flipping `ACTIVE` without
    /// [`MemMap::set_active`] desynchronises the cold-active ledger; use
    /// it for the remaining flags, rmap and LRU links only.
    ///
    /// # Panics
    ///
    /// Panics when `gfn` is out of range.
    #[inline]
    pub fn page_mut(&mut self, gfn: Gfn) -> &mut Page {
        &mut self.pages[gfn.index()]
    }

    /// Marks a free page as allocated with the given type and heat,
    /// updating residency accounting.
    ///
    /// # Panics
    ///
    /// Panics if the page is already present.
    pub fn set_allocated(&mut self, gfn: Gfn, page_type: PageType, heat: u8) {
        let kind = {
            let p = &mut self.pages[gfn.index()];
            assert!(!p.is_present(), "{gfn} is already allocated");
            p.flags = PageFlags::PRESENT;
            p.page_type = page_type;
            p.heat = heat;
            p.write_heat = 0;
            p.lru_prev = None;
            p.lru_next = None;
            p.rmap = crate::page::RMap::None;
            p.kind
        };
        let r = &mut self.residency[page_type.index()][kind];
        r.pages += 1;
        r.heat += heat as u64;
    }

    /// One-borrow fast path for the bulk allocators: marks a free page
    /// allocated *and* applies the LRU descriptor half of a head-insert
    /// (`LRU` flag, `lru_prev = None`, `lru_next` = the list's current
    /// head) plus the reverse map, in a single descriptor access. The
    /// caller completes the insert with
    /// [`crate::lru::LruList::push_front_prelinked`].
    ///
    /// State-equivalent to [`MemMap::set_allocated`] followed by
    /// [`MemMap::set_active`]`(gfn, active)` and the descriptor writes of
    /// an `LruList` head-insert — including the cold-active ledger charge
    /// an activation of a cold page incurs. Returns the frame's tier.
    ///
    /// # Panics
    ///
    /// Panics if the page is already present.
    pub fn set_allocated_linked(
        &mut self,
        gfn: Gfn,
        page_type: PageType,
        heat: u8,
        active: bool,
        lru_next: Option<Gfn>,
        rmap: crate::page::RMap,
    ) -> MemKind {
        let kind = {
            let p = &mut self.pages[gfn.index()];
            assert!(!p.is_present(), "{gfn} is already allocated");
            let mut flags = PageFlags::PRESENT | PageFlags::LRU;
            if active {
                flags.insert(PageFlags::ACTIVE);
            }
            p.flags = flags;
            p.page_type = page_type;
            p.heat = heat;
            p.write_heat = 0;
            p.lru_prev = None;
            p.lru_next = lru_next;
            p.rmap = rmap;
            p.kind
        };
        let r = &mut self.residency[page_type.index()][kind];
        r.pages += 1;
        r.heat += heat as u64;
        if active && self.ledger.is_cold(heat) {
            self.ledger.adjust(kind, 1);
        }
        kind
    }

    /// Marks an allocated page free, updating residency accounting.
    ///
    /// # Panics
    ///
    /// Panics if the page is not present.
    pub fn set_free(&mut self, gfn: Gfn) {
        let (kind, page_type, heat, write_heat) = {
            let p = &mut self.pages[gfn.index()];
            assert!(p.is_present(), "{gfn} is not allocated");
            let prev = (p.kind, p.page_type, p.heat, p.write_heat);
            if p.flags.contains(PageFlags::ACTIVE) && self.ledger.is_cold(p.heat) {
                self.ledger.adjust(p.kind, -1);
            }
            p.flags = PageFlags::empty();
            p.heat = 0;
            p.write_heat = 0;
            p.lru_prev = None;
            p.lru_next = None;
            p.rmap = crate::page::RMap::None;
            prev
        };
        let r = &mut self.residency[page_type.index()][kind];
        r.pages -= 1;
        r.heat -= heat as u64;
        r.write_heat -= write_heat as u64;
    }

    /// Updates a present page's heat, keeping accounting in sync.
    ///
    /// # Panics
    ///
    /// Panics if the page is not present.
    pub fn set_heat(&mut self, gfn: Gfn, heat: u8) {
        let (kind, page_type, old) = {
            let p = &mut self.pages[gfn.index()];
            assert!(p.is_present(), "{gfn} is not allocated");
            let old = p.heat;
            p.heat = heat;
            if p.flags.contains(PageFlags::ACTIVE) {
                let crossed =
                    self.ledger.is_cold(heat) as i64 - self.ledger.is_cold(old) as i64;
                if crossed != 0 {
                    self.ledger.adjust(p.kind, crossed);
                }
            }
            (p.kind, p.page_type, old)
        };
        let r = &mut self.residency[page_type.index()][kind];
        r.heat = r.heat - old as u64 + heat as u64;
    }

    /// Updates a present page's write heat, keeping accounting in sync.
    ///
    /// # Panics
    ///
    /// Panics if the page is not present.
    pub fn set_write_heat(&mut self, gfn: Gfn, write_heat: u8) {
        let (kind, page_type, old) = {
            let p = &mut self.pages[gfn.index()];
            assert!(p.is_present(), "{gfn} is not allocated");
            let old = p.write_heat;
            p.write_heat = write_heat;
            (p.kind, p.page_type, old)
        };
        let r = &mut self.residency[page_type.index()][kind];
        r.write_heat = r.write_heat - old as u64 + write_heat as u64;
    }

    /// Total write heat on a tier for one type.
    pub fn write_heat_on(&self, page_type: PageType, kind: MemKind) -> u64 {
        self.residency(page_type, kind).write_heat
    }

    /// Residency of one `(type, tier)` bucket.
    pub fn residency(&self, page_type: PageType, kind: MemKind) -> Residency {
        self.residency[page_type.index()][kind]
    }

    /// Total resident pages of a type across tiers.
    pub fn resident_pages(&self, page_type: PageType) -> u64 {
        MemKind::ALL
            .iter()
            .map(|&k| self.residency(page_type, k).pages)
            .sum()
    }

    /// Total resident pages on a tier across types.
    pub fn resident_on(&self, kind: MemKind) -> u64 {
        PageType::ALL
            .iter()
            .map(|&t| self.residency(t, kind).pages)
            .sum()
    }

    /// Total heat on a tier for one type.
    pub fn heat_on(&self, page_type: PageType, kind: MemKind) -> u64 {
        self.residency(page_type, kind).heat
    }

    /// Iterates the frames of one tier.
    pub fn iter_kind(&self, kind: MemKind) -> impl Iterator<Item = Gfn> + '_ {
        self.range(kind).map(Gfn)
    }
}

hetero_sim::impl_snap!(struct Residency { pages, heat, write_heat });

hetero_sim::impl_snap!(struct MemMap { pages, ranges, residency, ledger });

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MemMap {
        MemMap::new(&[(MemKind::Fast, 8), (MemKind::Slow, 16)])
    }

    #[test]
    fn layout_is_fastest_first_and_contiguous() {
        let m = MemMap::new(&[(MemKind::Slow, 16), (MemKind::Fast, 8)]);
        assert_eq!(m.range(MemKind::Fast), 0..8);
        assert_eq!(m.range(MemKind::Slow), 8..24);
        assert_eq!(m.total_frames(), 24);
        assert_eq!(m.range(MemKind::Medium), 0..0);
    }

    #[test]
    fn kind_of_respects_ranges() {
        let m = mm();
        assert_eq!(m.kind_of(Gfn(0)), MemKind::Fast);
        assert_eq!(m.kind_of(Gfn(7)), MemKind::Fast);
        assert_eq!(m.kind_of(Gfn(8)), MemKind::Slow);
    }

    #[test]
    fn allocate_free_roundtrip_keeps_accounting() {
        let mut m = mm();
        m.set_allocated(Gfn(1), PageType::Slab, 10);
        m.set_allocated(Gfn(9), PageType::Slab, 20);
        assert_eq!(m.residency(PageType::Slab, MemKind::Fast).pages, 1);
        assert_eq!(m.residency(PageType::Slab, MemKind::Fast).heat, 10);
        assert_eq!(m.residency(PageType::Slab, MemKind::Slow).heat, 20);
        assert_eq!(m.resident_pages(PageType::Slab), 2);
        assert_eq!(m.resident_on(MemKind::Fast), 1);
        m.set_free(Gfn(1));
        assert_eq!(m.residency(PageType::Slab, MemKind::Fast), Residency::default());
        assert_eq!(m.resident_pages(PageType::Slab), 1);
    }

    #[test]
    fn set_heat_rebalances_sums() {
        let mut m = mm();
        m.set_allocated(Gfn(0), PageType::HeapAnon, 100);
        m.set_heat(Gfn(0), 30);
        assert_eq!(m.heat_on(PageType::HeapAnon, MemKind::Fast), 30);
        assert_eq!(m.page(Gfn(0)).heat, 30);
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocate_panics() {
        let mut m = mm();
        m.set_allocated(Gfn(0), PageType::HeapAnon, 1);
        m.set_allocated(Gfn(0), PageType::HeapAnon, 1);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn free_of_free_page_panics() {
        let mut m = mm();
        m.set_free(Gfn(0));
    }

    #[test]
    #[should_panic(expected = "duplicate tier")]
    fn duplicate_tier_rejected() {
        MemMap::new(&[(MemKind::Fast, 4), (MemKind::Fast, 4)]);
    }

    #[test]
    fn cold_ledger_tracks_active_transitions_and_heat_crossings() {
        let mut m = mm();
        m.configure_cold_ledger(48);
        m.set_allocated(Gfn(0), PageType::HeapAnon, 100);
        m.set_allocated(Gfn(1), PageType::HeapAnon, 10);
        assert_eq!(m.cold_active(MemKind::Fast), 0, "allocation is not activation");
        m.set_active(Gfn(0), true); // hot-active: not cold
        m.set_active(Gfn(1), true); // cold-active
        assert_eq!(m.cold_active(MemKind::Fast), 1);
        m.set_heat(Gfn(0), 20); // hot page cools below the threshold
        assert_eq!(m.cold_active(MemKind::Fast), 2);
        m.set_heat(Gfn(1), 200); // cold page reheats
        assert_eq!(m.cold_active(MemKind::Fast), 1);
        m.set_active(Gfn(0), false); // deactivation removes it
        assert_eq!(m.cold_active(MemKind::Fast), 0);
        m.set_active(Gfn(0), false); // idempotent
        assert_eq!(m.cold_active(MemKind::Fast), 0);
    }

    #[test]
    fn cold_ledger_decrements_on_free_of_cold_active_page() {
        let mut m = mm();
        m.configure_cold_ledger(48);
        m.set_allocated(Gfn(9), PageType::PageCache, 5);
        m.set_active(Gfn(9), true);
        assert_eq!(m.cold_active(MemKind::Slow), 1);
        m.set_free(Gfn(9));
        assert_eq!(m.cold_active(MemKind::Slow), 0);
    }

    #[test]
    fn unconfigured_ledger_counts_nothing() {
        let mut m = mm();
        m.set_allocated(Gfn(0), PageType::HeapAnon, 1);
        m.set_active(Gfn(0), true);
        assert_eq!(m.cold_active(MemKind::Fast), 0);
        assert!(!m.cold_ledger().is_configured());
        assert_eq!(m.recount_cold_active()[MemKind::Fast], 0);
    }

    #[test]
    fn recount_matches_incremental_ledger() {
        let mut m = mm();
        m.configure_cold_ledger(48);
        for (i, heat) in [100u8, 10, 47, 48, 0].iter().enumerate() {
            m.set_allocated(Gfn(i as u64), PageType::HeapAnon, *heat);
            m.set_active(Gfn(i as u64), true);
        }
        m.set_active(Gfn(4), false);
        m.set_heat(Gfn(0), 3);
        let recount = m.recount_cold_active();
        for k in MemKind::ALL {
            assert_eq!(recount[k], m.cold_active(k), "{k}");
        }
        assert_eq!(m.cold_active(MemKind::Fast), 3, "heats 3, 10, 47 active-cold");
    }

    #[test]
    fn iter_kind_yields_tier_frames() {
        let m = mm();
        let fast: Vec<Gfn> = m.iter_kind(MemKind::Fast).collect();
        assert_eq!(fast.len(), 8);
        assert!(fast.iter().all(|&g| m.kind_of(g) == MemKind::Fast));
    }
}
