//! The filesystem page cache index.
//!
//! Storage-intensive applications (LevelDB, X-Stream) lean on the page cache
//! for read-ahead and write buffering; HeteroOS found that placing these
//! pages in FastMem "can significantly hide the bottlenecks of slower disks
//! and network" (§3.2). The cache itself is a straightforward
//! `(file, offset) → page` index — allocation, placement and eviction policy
//! live in the kernel facade.

use std::collections::BTreeMap;

use crate::page::Gfn;

/// Identifier of an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// The page-cache index.
///
/// # Examples
///
/// ```
/// use hetero_guest::pagecache::{FileId, PageCache};
/// use hetero_guest::page::Gfn;
///
/// let mut cache = PageCache::new();
/// cache.insert(FileId(1), 0, Gfn(7));
/// assert_eq!(cache.lookup(FileId(1), 0), Some(Gfn(7)));
/// assert_eq!(cache.remove(FileId(1), 0), Some(Gfn(7)));
/// assert!(cache.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    /// `BTreeMap` so bulk observations ([`PageCache::remove_file`],
    /// [`PageCache::iter`]) walk entries in `(file, offset)` order rather
    /// than a per-process hash order — dropped pages re-enter the page
    /// allocator in a reproducible sequence.
    index: BTreeMap<(FileId, u64), Gfn>,
    /// Cache hits since creation.
    pub hits: u64,
    /// Cache misses since creation.
    pub misses: u64,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up a page, recording hit/miss statistics.
    pub fn lookup(&mut self, file: FileId, offset_page: u64) -> Option<Gfn> {
        match self.index.get(&(file, offset_page)) {
            Some(&g) => {
                self.hits += 1;
                Some(g)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a page, returning any page it displaced.
    pub fn insert(&mut self, file: FileId, offset_page: u64, gfn: Gfn) -> Option<Gfn> {
        self.index.insert((file, offset_page), gfn)
    }

    /// Removes one page from the index.
    pub fn remove(&mut self, file: FileId, offset_page: u64) -> Option<Gfn> {
        self.index.remove(&(file, offset_page))
    }

    /// Drops every page of a file (file close / truncate), returning them
    /// in ascending offset order.
    pub fn remove_file(&mut self, file: FileId) -> Vec<Gfn> {
        let keys: Vec<(FileId, u64)> = self
            .index
            .range((file, 0)..=(file, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        keys.iter()
            .map(|k| self.index.remove(k).expect("key collected above"))
            .collect()
    }

    /// Every `(file, offset, frame)` entry, in ascending `(file, offset)`
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, u64, Gfn)> + '_ {
        self.index.iter().map(|(&(f, off), &g)| (f, off, g))
    }

    /// Hit ratio since creation, `0.0` before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_tracks_hits_and_misses() {
        let mut c = PageCache::new();
        assert_eq!(c.lookup(FileId(1), 0), None);
        c.insert(FileId(1), 0, Gfn(5));
        assert_eq!(c.lookup(FileId(1), 0), Some(Gfn(5)));
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_returns_displaced_page() {
        let mut c = PageCache::new();
        assert_eq!(c.insert(FileId(1), 3, Gfn(10)), None);
        assert_eq!(c.insert(FileId(1), 3, Gfn(11)), Some(Gfn(10)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_file_drops_only_that_file() {
        let mut c = PageCache::new();
        c.insert(FileId(1), 0, Gfn(1));
        c.insert(FileId(1), 1, Gfn(2));
        c.insert(FileId(2), 0, Gfn(3));
        let mut dropped = c.remove_file(FileId(1));
        dropped.sort();
        assert_eq!(dropped, vec![Gfn(1), Gfn(2)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(FileId(2), 0), Some(Gfn(3)));
    }

    #[test]
    fn offsets_are_independent() {
        let mut c = PageCache::new();
        c.insert(FileId(1), 0, Gfn(1));
        c.insert(FileId(1), 1, Gfn(2));
        assert_eq!(c.remove(FileId(1), 0), Some(Gfn(1)));
        assert_eq!(c.lookup(FileId(1), 1), Some(Gfn(2)));
    }

    #[test]
    fn empty_cache_ratio_is_zero() {
        assert_eq!(PageCache::new().hit_ratio(), 0.0);
    }
}
