//! The filesystem page cache index.
//!
//! Storage-intensive applications (LevelDB, X-Stream) lean on the page cache
//! for read-ahead and write buffering; HeteroOS found that placing these
//! pages in FastMem "can significantly hide the bottlenecks of slower disks
//! and network" (§3.2). The cache itself is a straightforward
//! `(file, offset) → page` index — allocation, placement and eviction policy
//! live in the kernel facade.

use std::collections::{BTreeMap, VecDeque};

use crate::page::Gfn;

/// Identifier of an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Empty-slot sentinel inside [`FileSlots`]. Frame numbers are array
/// indices into the machine's page array, so `u64::MAX` can never name a
/// real frame.
const EMPTY: u64 = u64::MAX;

/// Dense per-file offset index — the moral equivalent of Linux's per-inode
/// xarray. Streaming I/O probes consecutive offsets, so a slot vector
/// anchored at the lowest live offset answers lookup/insert/remove in O(1)
/// where a comparison tree pays a full descent per touched page.
///
/// The window `[base, base + slots.len())` spans the live offsets; both
/// ends are trimmed as removals land, so memory tracks the resident span
/// (evictions are oldest-first in practice) rather than the total offsets
/// ever touched.
#[derive(Debug, Clone, Default)]
struct FileSlots {
    /// Offset backing `slots[0]`.
    base: u64,
    /// `Gfn.0` per offset, [`EMPTY`] for holes.
    slots: VecDeque<u64>,
    /// Number of non-[`EMPTY`] slots.
    live: usize,
}

impl FileSlots {
    fn get(&self, off: u64) -> Option<Gfn> {
        let idx = off.checked_sub(self.base)? as usize;
        match self.slots.get(idx) {
            Some(&g) if g != EMPTY => Some(Gfn(g)),
            _ => None,
        }
    }

    fn set(&mut self, off: u64, gfn: Gfn) -> Option<Gfn> {
        if self.slots.is_empty() {
            self.base = off;
        } else if off < self.base {
            for _ in 0..(self.base - off) {
                self.slots.push_front(EMPTY);
            }
            self.base = off;
        }
        let idx = (off - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, EMPTY);
        }
        let prev = std::mem::replace(&mut self.slots[idx], gfn.0);
        if prev == EMPTY {
            self.live += 1;
            None
        } else {
            Some(Gfn(prev))
        }
    }

    fn clear(&mut self, off: u64) -> Option<Gfn> {
        let idx = off.checked_sub(self.base)? as usize;
        let slot = self.slots.get_mut(idx)?;
        let prev = std::mem::replace(slot, EMPTY);
        if prev == EMPTY {
            return None;
        }
        self.live -= 1;
        // Trim dead window edges so the deque tracks the live span. Each
        // popped slot was pushed exactly once — amortized O(1).
        while self.slots.front() == Some(&EMPTY) {
            self.slots.pop_front();
            self.base += 1;
        }
        while self.slots.back() == Some(&EMPTY) {
            self.slots.pop_back();
        }
        Some(Gfn(prev))
    }

    /// Live `(offset, frame)` entries in ascending offset order.
    fn iter(&self) -> impl Iterator<Item = (u64, Gfn)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g != EMPTY)
            .map(|(i, &g)| (self.base + i as u64, Gfn(g)))
    }
}

/// The page-cache index.
///
/// # Examples
///
/// ```
/// use hetero_guest::pagecache::{FileId, PageCache};
/// use hetero_guest::page::Gfn;
///
/// let mut cache = PageCache::new();
/// cache.insert(FileId(1), 0, Gfn(7));
/// assert_eq!(cache.lookup(FileId(1), 0), Some(Gfn(7)));
/// assert_eq!(cache.remove(FileId(1), 0), Some(Gfn(7)));
/// assert!(cache.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    /// `BTreeMap` keyed by file so bulk observations
    /// ([`PageCache::remove_file`], [`PageCache::iter`]) walk entries in
    /// `(file, offset)` order rather than a per-process hash order —
    /// dropped pages re-enter the page allocator in a reproducible
    /// sequence. A handful of files exist at once; per-offset work inside
    /// each file is O(1) via [`FileSlots`].
    files: BTreeMap<u64, FileSlots>,
    /// Live entries across all files.
    total: usize,
    /// Cache hits since creation.
    pub hits: u64,
    /// Cache misses since creation.
    pub misses: u64,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Looks up a page, recording hit/miss statistics.
    pub fn lookup(&mut self, file: FileId, offset_page: u64) -> Option<Gfn> {
        match self.files.get(&file.0).and_then(|f| f.get(offset_page)) {
            Some(g) => {
                self.hits += 1;
                Some(g)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a page, returning any page it displaced.
    pub fn insert(&mut self, file: FileId, offset_page: u64, gfn: Gfn) -> Option<Gfn> {
        let prev = self
            .files
            .entry(file.0)
            .or_default()
            .set(offset_page, gfn);
        if prev.is_none() {
            self.total += 1;
        }
        prev
    }

    /// Removes one page from the index.
    pub fn remove(&mut self, file: FileId, offset_page: u64) -> Option<Gfn> {
        let slots = self.files.get_mut(&file.0)?;
        let prev = slots.clear(offset_page)?;
        self.total -= 1;
        if slots.live == 0 {
            self.files.remove(&file.0);
        }
        Some(prev)
    }

    /// Drops every page of a file (file close / truncate), returning them
    /// in ascending offset order.
    pub fn remove_file(&mut self, file: FileId) -> Vec<Gfn> {
        match self.files.remove(&file.0) {
            Some(slots) => {
                self.total -= slots.live;
                slots.iter().map(|(_, g)| g).collect()
            }
            None => Vec::new(),
        }
    }

    /// Every `(file, offset, frame)` entry, in ascending `(file, offset)`
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, u64, Gfn)> + '_ {
        self.files
            .iter()
            .flat_map(|(&f, slots)| slots.iter().map(move |(off, g)| (FileId(f), off, g)))
    }

    /// Hit ratio since creation, `0.0` before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl hetero_sim::snap::Snap for FileId {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        Ok(FileId(r.take_u64()?))
    }
}

hetero_sim::impl_snap!(struct FileSlots { base, slots, live });

hetero_sim::impl_snap!(struct PageCache { files, total, hits, misses });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_tracks_hits_and_misses() {
        let mut c = PageCache::new();
        assert_eq!(c.lookup(FileId(1), 0), None);
        c.insert(FileId(1), 0, Gfn(5));
        assert_eq!(c.lookup(FileId(1), 0), Some(Gfn(5)));
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_returns_displaced_page() {
        let mut c = PageCache::new();
        assert_eq!(c.insert(FileId(1), 3, Gfn(10)), None);
        assert_eq!(c.insert(FileId(1), 3, Gfn(11)), Some(Gfn(10)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_file_drops_only_that_file() {
        let mut c = PageCache::new();
        c.insert(FileId(1), 0, Gfn(1));
        c.insert(FileId(1), 1, Gfn(2));
        c.insert(FileId(2), 0, Gfn(3));
        let mut dropped = c.remove_file(FileId(1));
        dropped.sort();
        assert_eq!(dropped, vec![Gfn(1), Gfn(2)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(FileId(2), 0), Some(Gfn(3)));
    }

    #[test]
    fn offsets_are_independent() {
        let mut c = PageCache::new();
        c.insert(FileId(1), 0, Gfn(1));
        c.insert(FileId(1), 1, Gfn(2));
        assert_eq!(c.remove(FileId(1), 0), Some(Gfn(1)));
        assert_eq!(c.lookup(FileId(1), 1), Some(Gfn(2)));
    }

    #[test]
    fn empty_cache_ratio_is_zero() {
        assert_eq!(PageCache::new().hit_ratio(), 0.0);
    }

    #[test]
    fn misses_count_above_below_and_inside_the_window() {
        let mut c = PageCache::new();
        c.insert(FileId(1), 10, Gfn(1));
        assert_eq!(c.lookup(FileId(1), 11), None);
        assert_eq!(c.lookup(FileId(2), 0), None);
        assert_eq!(c.lookup(FileId(1), 3), None);
        assert_eq!((c.hits, c.misses), (0, 3));
        c.remove(FileId(1), 10);
        assert_eq!(c.lookup(FileId(1), 10), None);
        assert_eq!(c.misses, 4);
    }

    #[test]
    fn window_trims_as_removals_land() {
        let mut c = PageCache::new();
        for off in 0..100 {
            c.insert(FileId(1), off, Gfn(off));
        }
        // Oldest-first removals (streaming eviction order) drag the window
        // base forward instead of leaving dead slots behind.
        for off in 0..90 {
            assert_eq!(c.remove(FileId(1), off), Some(Gfn(off)));
        }
        let f = c.files.get(&1).expect("file still live");
        assert_eq!((f.base, f.slots.len(), f.live), (90, 10, 10));
        // Removing the newest end trims from the back too.
        assert_eq!(c.remove(FileId(1), 99), Some(Gfn(99)));
        assert_eq!(c.files.get(&1).expect("file still live").slots.len(), 9);
    }

    #[test]
    fn insert_below_the_window_grows_the_front() {
        let mut c = PageCache::new();
        c.insert(FileId(1), 50, Gfn(5));
        c.insert(FileId(1), 47, Gfn(4));
        assert_eq!(c.lookup(FileId(1), 47), Some(Gfn(4)));
        assert_eq!(c.lookup(FileId(1), 50), Some(Gfn(5)));
        assert_eq!(c.len(), 2);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(
            entries,
            vec![(FileId(1), 47, Gfn(4)), (FileId(1), 50, Gfn(5))]
        );
    }

    #[test]
    fn last_removal_drops_the_file_entry() {
        let mut c = PageCache::new();
        c.insert(FileId(7), 3, Gfn(1));
        assert_eq!(c.remove(FileId(7), 3), Some(Gfn(1)));
        assert!(c.is_empty());
        assert!(c.files.is_empty());
    }
}
