//! Guest-OS substrate for the HeteroOS reproduction.
//!
//! This crate is the reproduction's stand-in for the modified Linux guest of
//! the paper: a heterogeneity-aware virtual memory manager built from the
//! same parts the paper extends (§3):
//!
//! * [`memmap`] — the `struct page` array with per-(type, tier) residency
//!   accounting,
//! * [`buddy`] — a real binary buddy allocator, one per memory-type NUMA
//!   node,
//! * [`pcp`] — multi-dimensional per-CPU free lists (HeteroOS's redesign),
//! * [`vma`] / [`pagetable`] — the address space and a 4-level radix page
//!   table with accessed/dirty bits for hotness scans,
//! * [`lru`] — split active/inactive LRUs per tier (HeteroOS-LRU substrate),
//! * [`kswapd`] — background reclaim with per-tier watermarks,
//! * [`swap`] — the swap map anonymous pages spill to under balloon
//!   pressure,
//! * [`pagecache`] / [`slab`] — the I/O page classes HeteroOS prioritizes,
//! * [`stats`] — the allocation hit/miss windows behind demand-based
//!   FastMem prioritization,
//! * [`kernel`] — the [`GuestKernel`] facade gluing it together
//!   (allocation with tier preference, migration with §4.1 validity checks,
//!   ballooning).
//!
//! # Examples
//!
//! ```
//! use hetero_guest::kernel::{GuestConfig, GuestKernel};
//! use hetero_mem::MemKind;
//!
//! let mut kernel = GuestKernel::new(GuestConfig::default());
//! // Allocate a heap region preferring FastMem with SlowMem fallback.
//! let (vma, placed) = kernel.mmap_heap(
//!     64,
//!     std::iter::repeat(128),
//!     &[MemKind::Fast, MemKind::Slow],
//! )?;
//! assert_eq!(placed.total(), 64);
//! kernel.munmap(vma.start, vma.pages);
//! # Ok::<(), hetero_guest::kernel::AllocFailed>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buddy;
pub mod kernel;
pub mod kswapd;
pub mod lru;
pub mod memmap;
pub mod page;
pub mod pagecache;
pub mod pagetable;
pub mod pcp;
pub mod slab;
pub mod stats;
pub mod swap;
pub mod vma;

pub use kernel::{GuestConfig, GuestKernel, SlabClass};
pub use page::{Gfn, PageType};
