//! Virtual memory areas and the guest address space.
//!
//! HeteroOS extracts its VMM *tracking list* from "address ranges of
//! contiguous memory regions … using the virtual memory area (VMA)
//! structure" (§4.1), and its LRU eagerly demotes pages of regions being
//! unmapped (§3.3). This module provides the VMA tree those mechanisms walk:
//! an ordered map of non-overlapping regions with mmap/munmap (including
//! partial unmaps with splitting).

use std::collections::BTreeMap;
use std::fmt;

use hetero_mem::MemKind;

/// What a VMA backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Anonymous memory (heap, stacks).
    Anon,
    /// A file mapping (`mmap` of I/O data — X-Stream's input graph, LevelDB's
    /// memory-mapped database).
    FileMap,
}

/// One virtual memory area: `[start, start + pages)` in virtual page numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First virtual page number.
    pub start: u64,
    /// Length in pages.
    pub pages: u64,
    /// Region kind.
    pub kind: VmaKind,
    /// Optional explicit tier placement from an extended `mmap()` flag
    /// (§3.1 — supported, but "HeteroOS is not dependent on such
    /// application-level changes").
    pub mem_hint: Option<MemKind>,
}

impl Vma {
    /// One-past-the-end virtual page number.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.pages
    }

    /// True if `vpn` falls inside this region.
    #[inline]
    pub fn contains(&self, vpn: u64) -> bool {
        (self.start..self.end()).contains(&vpn)
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vma[{:#x}..{:#x}) {:?}",
            self.start,
            self.end(),
            self.kind
        )
    }
}

/// Error returned by [`AddressSpace::mmap`] when no gap is large enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoVirtualSpace {
    /// Pages requested.
    pub pages: u64,
}

impl fmt::Display for NoVirtualSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no virtual address gap of {} pages", self.pages)
    }
}

impl std::error::Error for NoVirtualSpace {}

/// A process address space: ordered, non-overlapping VMAs.
///
/// # Examples
///
/// ```
/// use hetero_guest::vma::{AddressSpace, VmaKind};
///
/// let mut space = AddressSpace::new(1 << 20);
/// let vma = space.mmap(16, VmaKind::Anon, None)?;
/// assert_eq!(space.mapped_pages(), 16);
/// let removed = space.munmap(vma.start + 4, 4);
/// assert_eq!(removed, 4);
/// assert_eq!(space.mapped_pages(), 12);
/// # Ok::<(), hetero_guest::vma::NoVirtualSpace>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    limit: u64,
}

impl AddressSpace {
    /// Creates an address space of `limit` virtual pages.
    pub fn new(limit: u64) -> Self {
        AddressSpace {
            vmas: BTreeMap::new(),
            limit,
        }
    }

    /// Number of mapped pages across all VMAs.
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.pages).sum()
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Iterates VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// The VMA containing `vpn`, if any.
    pub fn find(&self, vpn: u64) -> Option<&Vma> {
        self.vmas
            .range(..=vpn)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vpn))
    }

    /// Maps a new region of `pages` pages in the first sufficient gap.
    ///
    /// # Errors
    ///
    /// Returns [`NoVirtualSpace`] when no gap fits (or `pages` is zero).
    pub fn mmap(
        &mut self,
        pages: u64,
        kind: VmaKind,
        mem_hint: Option<MemKind>,
    ) -> Result<Vma, NoVirtualSpace> {
        if pages == 0 || pages > self.limit {
            return Err(NoVirtualSpace { pages });
        }
        let mut cursor = 0u64;
        for v in self.vmas.values() {
            if v.start >= cursor && v.start - cursor >= pages {
                break;
            }
            cursor = cursor.max(v.end());
        }
        if self.limit - cursor < pages {
            return Err(NoVirtualSpace { pages });
        }
        let vma = Vma {
            start: cursor,
            pages,
            kind,
            mem_hint,
        };
        self.vmas.insert(vma.start, vma);
        Ok(vma)
    }

    /// Unmaps `[vpn, vpn + pages)`, splitting partially covered VMAs.
    ///
    /// Returns the number of previously mapped pages removed (pages in the
    /// range that were not mapped are skipped, like POSIX `munmap`).
    pub fn munmap(&mut self, vpn: u64, pages: u64) -> u64 {
        if pages == 0 {
            return 0;
        }
        let end = vpn + pages;
        // Collect affected VMAs (any overlapping [vpn, end)).
        let affected: Vec<Vma> = self
            .vmas
            .values()
            .filter(|v| v.start < end && v.end() > vpn)
            .copied()
            .collect();
        let mut removed = 0;
        for v in affected {
            self.vmas.remove(&v.start);
            let cut_start = v.start.max(vpn);
            let cut_end = v.end().min(end);
            removed += cut_end - cut_start;
            if v.start < cut_start {
                let left = Vma {
                    start: v.start,
                    pages: cut_start - v.start,
                    ..v
                };
                self.vmas.insert(left.start, left);
            }
            if v.end() > cut_end {
                let right = Vma {
                    start: cut_end,
                    pages: v.end() - cut_end,
                    ..v
                };
                self.vmas.insert(right.start, right);
            }
        }
        removed
    }

    /// The tracking list HeteroOS exports to the VMM (§4.1): address ranges
    /// of regions worth hotness-tracking. File mappings of I/O data are
    /// excluded only by the caller's exception-list logic; this returns all
    /// regions of the requested kind.
    pub fn ranges_of(&self, kind: VmaKind) -> Vec<(u64, u64)> {
        self.vmas
            .values()
            .filter(|v| v.kind == kind)
            .map(|v| (v.start, v.end()))
            .collect()
    }
}

hetero_sim::impl_snap!(enum VmaKind {
    0 => Anon {},
    1 => FileMap {},
});

hetero_sim::impl_snap!(struct Vma { start, pages, kind, mem_hint });

hetero_sim::impl_snap!(struct AddressSpace { vmas, limit });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_finds_first_gap() {
        let mut s = AddressSpace::new(100);
        let a = s.mmap(10, VmaKind::Anon, None).unwrap();
        let b = s.mmap(10, VmaKind::Anon, None).unwrap();
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 10);
        s.munmap(a.start, a.pages);
        let c = s.mmap(5, VmaKind::Anon, None).unwrap();
        assert_eq!(c.start, 0, "gap from unmapped region should be reused");
    }

    #[test]
    fn mmap_rejects_overflow_and_zero() {
        let mut s = AddressSpace::new(16);
        assert!(s.mmap(0, VmaKind::Anon, None).is_err());
        assert!(s.mmap(17, VmaKind::Anon, None).is_err());
        s.mmap(16, VmaKind::Anon, None).unwrap();
        let err = s.mmap(1, VmaKind::Anon, None).unwrap_err();
        assert!(err.to_string().contains("no virtual address gap"));
    }

    #[test]
    fn find_locates_containing_vma() {
        let mut s = AddressSpace::new(100);
        let v = s.mmap(10, VmaKind::FileMap, Some(MemKind::Fast)).unwrap();
        assert_eq!(s.find(v.start + 5).copied(), Some(v));
        assert!(s.find(v.end()).is_none());
    }

    #[test]
    fn munmap_middle_splits_vma() {
        let mut s = AddressSpace::new(100);
        let v = s.mmap(10, VmaKind::Anon, None).unwrap();
        let removed = s.munmap(v.start + 3, 4);
        assert_eq!(removed, 4);
        assert_eq!(s.vma_count(), 2);
        assert_eq!(s.mapped_pages(), 6);
        assert!(s.find(v.start + 2).is_some());
        assert!(s.find(v.start + 4).is_none());
        assert!(s.find(v.start + 8).is_some());
    }

    #[test]
    fn munmap_spanning_multiple_vmas() {
        let mut s = AddressSpace::new(100);
        let a = s.mmap(10, VmaKind::Anon, None).unwrap();
        let b = s.mmap(10, VmaKind::Anon, None).unwrap();
        // Unmap the last 5 of a and the first 5 of b.
        let removed = s.munmap(a.start + 5, 10);
        assert_eq!(removed, 10);
        assert_eq!(s.mapped_pages(), 10);
        assert!(s.find(a.start + 4).is_some());
        assert!(s.find(b.start + 4).is_none());
        assert!(s.find(b.start + 6).is_some());
    }

    #[test]
    fn munmap_of_unmapped_range_is_noop() {
        let mut s = AddressSpace::new(100);
        s.mmap(10, VmaKind::Anon, None).unwrap();
        assert_eq!(s.munmap(50, 10), 0);
        assert_eq!(s.mapped_pages(), 10);
    }

    #[test]
    fn ranges_of_filters_by_kind() {
        let mut s = AddressSpace::new(100);
        let a = s.mmap(4, VmaKind::Anon, None).unwrap();
        let f = s.mmap(8, VmaKind::FileMap, None).unwrap();
        assert_eq!(s.ranges_of(VmaKind::Anon), vec![(a.start, a.end())]);
        assert_eq!(s.ranges_of(VmaKind::FileMap), vec![(f.start, f.end())]);
    }

    #[test]
    fn display_formats() {
        let v = Vma {
            start: 0x10,
            pages: 0x10,
            kind: VmaKind::Anon,
            mem_hint: None,
        };
        assert_eq!(v.to_string(), "vma[0x10..0x20) Anon");
    }
}
