//! Per-CPU free page lists, multi-dimensional over memory types.
//!
//! Linux keeps a per-CPU list of order-0 pages so the hot allocation path
//! bypasses the buddy allocator's locking and coalescing. Those lists assume
//! a single memory type; HeteroOS "redesigns the per-CPU lists with a
//! multi-dimensional (arrays of lists) support for different memory types
//! which significantly boosts the allocation performance" (§3.1). This
//! module implements exactly that: `lists[cpu][mem-kind]`.

use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;

use crate::buddy::BuddyAllocator;
use crate::page::Gfn;

/// Default pages pulled from the buddy on a refill.
pub const DEFAULT_BATCH: usize = 32;
/// Default high-watermark before a list drains back to the buddy.
pub const DEFAULT_HIGH: usize = 96;

/// Multi-dimensional per-CPU free lists.
///
/// # Examples
///
/// ```
/// use hetero_guest::buddy::BuddyAllocator;
/// use hetero_guest::pcp::PerCpuLists;
/// use hetero_mem::MemKind;
///
/// let mut buddy = BuddyAllocator::new(0, 256);
/// let mut pcp = PerCpuLists::new(2);
/// let g = pcp.alloc(0, MemKind::Fast, &mut buddy).unwrap();
/// // The refill batched pages out of the buddy:
/// assert!(buddy.free_frames() < 256);
/// pcp.free(0, MemKind::Fast, g, &mut buddy);
/// ```
#[derive(Debug, Clone)]
pub struct PerCpuLists {
    lists: Vec<KindMap<Vec<Gfn>>>,
    batch: usize,
    high: usize,
    /// Allocations served straight from a per-CPU list.
    pub fast_path_hits: u64,
    /// Allocations that had to refill from the buddy.
    pub refills: u64,
}

impl PerCpuLists {
    /// Creates lists for `cpus` CPUs with default batch/high marks.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: usize) -> Self {
        Self::with_marks(cpus, DEFAULT_BATCH, DEFAULT_HIGH)
    }

    /// Creates lists with explicit batch and high-watermark values.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` or `batch` is zero, or `high < batch`.
    pub fn with_marks(cpus: usize, batch: usize, high: usize) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        assert!(batch > 0, "batch must be non-zero");
        assert!(high >= batch, "high watermark below batch size");
        PerCpuLists {
            lists: (0..cpus).map(|_| KindMap::default()).collect(),
            batch,
            high,
            fast_path_hits: 0,
            refills: 0,
        }
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> usize {
        self.lists.len()
    }

    /// Pages cached on one CPU's list for a tier.
    pub fn cached(&self, cpu: usize, kind: MemKind) -> usize {
        self.lists[cpu][kind].len()
    }

    /// Total pages cached across all CPUs for a tier.
    pub fn cached_total(&self, kind: MemKind) -> usize {
        self.lists.iter().map(|l| l[kind].len()).sum()
    }

    /// Allocates one order-0 page for `cpu` from `kind`'s list, refilling
    /// from `buddy` when empty. Returns `None` when the buddy is exhausted
    /// and the list is empty.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn alloc(&mut self, cpu: usize, kind: MemKind, buddy: &mut BuddyAllocator) -> Option<Gfn> {
        if let Some(g) = self.lists[cpu][kind].pop() {
            self.fast_path_hits += 1;
            return Some(g);
        }
        // Refill: batch order-0 pages out of the buddy in one bulk call.
        self.refills += 1;
        let list = &mut self.lists[cpu][kind];
        buddy.alloc_pages_bulk(self.batch as u64, list);
        list.pop()
    }

    /// Returns a page to `cpu`'s list, draining half the list back to the
    /// buddy when the high watermark is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range, or (via the buddy) on double free.
    pub fn free(&mut self, cpu: usize, kind: MemKind, gfn: Gfn, buddy: &mut BuddyAllocator) {
        let high = self.high;
        let list = &mut self.lists[cpu][kind];
        list.push(gfn);
        if list.len() > high {
            buddy.free_pages_bulk(list.drain(..high / 2));
        }
    }

    /// Returns a batch of pages to `cpu`'s list in one call, draining to the
    /// buddy at the same high-watermark points `n` single
    /// [`PerCpuLists::free`] calls would.
    pub fn free_bulk(
        &mut self,
        cpu: usize,
        kind: MemKind,
        pages: impl IntoIterator<Item = Gfn>,
        buddy: &mut BuddyAllocator,
    ) {
        for g in pages {
            self.free(cpu, kind, g, buddy);
        }
    }

    /// Drains every list of a tier back to the buddy (memory-pressure path).
    pub fn drain_kind(&mut self, kind: MemKind, buddy: &mut BuddyAllocator) {
        for cpu_list in &mut self.lists {
            buddy.free_pages_bulk(cpu_list[kind].drain(..));
        }
    }
}

hetero_sim::impl_snap!(struct PerCpuLists { lists, batch, high, fast_path_hits, refills });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_batches_from_buddy() {
        let mut buddy = BuddyAllocator::new(0, 256);
        let mut pcp = PerCpuLists::new(1);
        let _ = pcp.alloc(0, MemKind::Fast, &mut buddy).unwrap();
        assert_eq!(pcp.cached(0, MemKind::Fast), DEFAULT_BATCH - 1);
        assert_eq!(buddy.free_frames(), 256 - DEFAULT_BATCH as u64);
        assert_eq!(pcp.refills, 1);
        assert_eq!(pcp.fast_path_hits, 0);
    }

    #[test]
    fn second_alloc_hits_fast_path() {
        let mut buddy = BuddyAllocator::new(0, 256);
        let mut pcp = PerCpuLists::new(1);
        let a = pcp.alloc(0, MemKind::Fast, &mut buddy).unwrap();
        let b = pcp.alloc(0, MemKind::Fast, &mut buddy).unwrap();
        assert_ne!(a, b);
        assert_eq!(pcp.fast_path_hits, 1);
    }

    #[test]
    fn lists_are_per_cpu_and_per_kind() {
        let mut buddy_f = BuddyAllocator::new(0, 128);
        let mut buddy_s = BuddyAllocator::new(128, 128);
        let mut pcp = PerCpuLists::new(2);
        pcp.alloc(0, MemKind::Fast, &mut buddy_f).unwrap();
        pcp.alloc(1, MemKind::Slow, &mut buddy_s).unwrap();
        assert!(pcp.cached(0, MemKind::Fast) > 0);
        assert_eq!(pcp.cached(0, MemKind::Slow), 0);
        assert!(pcp.cached(1, MemKind::Slow) > 0);
        assert_eq!(pcp.cached(1, MemKind::Fast), 0);
    }

    #[test]
    fn free_drains_above_high_watermark() {
        let mut buddy = BuddyAllocator::new(0, 512);
        let mut pcp = PerCpuLists::with_marks(1, 4, 8);
        // Allocate pages directly from the buddy, free all through the pcp.
        let pages: Vec<Gfn> = (0..20).map(|_| buddy.alloc_page().unwrap()).collect();
        for g in pages {
            pcp.free(0, MemKind::Fast, g, &mut buddy);
        }
        assert!(
            pcp.cached(0, MemKind::Fast) <= 9,
            "list should drain above high mark, has {}",
            pcp.cached(0, MemKind::Fast)
        );
        // Nothing lost: cached + buddy-free == total.
        assert_eq!(
            pcp.cached(0, MemKind::Fast) as u64 + buddy.free_frames(),
            512
        );
    }

    #[test]
    fn drain_kind_returns_everything() {
        let mut buddy = BuddyAllocator::new(0, 256);
        let mut pcp = PerCpuLists::new(4);
        for cpu in 0..4 {
            pcp.alloc(cpu, MemKind::Fast, &mut buddy).unwrap();
        }
        // Free the pages we actually hold before draining the caches.
        // (The allocated pages themselves are owned by the caller; here we
        // only verify cached pages return.)
        let cached = pcp.cached_total(MemKind::Fast) as u64;
        let before = buddy.free_frames();
        pcp.drain_kind(MemKind::Fast, &mut buddy);
        assert_eq!(pcp.cached_total(MemKind::Fast), 0);
        assert_eq!(buddy.free_frames(), before + cached);
    }

    #[test]
    fn exhausted_buddy_yields_none() {
        let mut buddy = BuddyAllocator::new(0, 2);
        let mut pcp = PerCpuLists::new(1);
        assert!(pcp.alloc(0, MemKind::Fast, &mut buddy).is_some());
        assert!(pcp.alloc(0, MemKind::Fast, &mut buddy).is_some());
        assert!(pcp.alloc(0, MemKind::Fast, &mut buddy).is_none());
    }

    #[test]
    #[should_panic(expected = "high watermark")]
    fn bad_marks_rejected() {
        PerCpuLists::with_marks(1, 8, 4);
    }
}
