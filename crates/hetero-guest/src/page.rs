//! Page descriptors — the guest's `struct page` array equivalent.
//!
//! HeteroOS extends the Linux page descriptor with a memory-type flag
//! (FASTMEM/SLOWMEM, §3.1 "Extending page allocators") and per-subsystem
//! page-type accounting (§3.2). [`PageType`] mirrors the categories of the
//! paper's Fig 4 memory-distribution analysis; [`PageFlags`] carries the
//! state bits the LRU, balloon and migration paths need.

use std::fmt;

use hetero_mem::MemKind;

/// Guest frame number: index into the guest's [`crate::memmap::MemMap`].
///
/// A page's `Gfn` is stable for its lifetime; migration to another tier
/// allocates a fresh page on the target node (new `Gfn`), copies, and remaps
/// — the same semantics as Linux `migrate_pages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gfn(pub u64);

impl Gfn {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Gfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gfn:{:#x}", self.0)
    }
}

/// How a page is used — the paper's Fig 4 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageType {
    /// Anonymous heap pages.
    HeapAnon,
    /// Filesystem page-cache pages (mapped I/O data).
    PageCache,
    /// Block-layer buffer-cache pages (filesystem metadata, logs).
    BufferCache,
    /// Kernel slab pages (dentries, inodes, generic kmalloc).
    Slab,
    /// Network kernel buffers (`skbuff`) — a slab class the paper calls out
    /// separately for Redis/Nginx.
    NetBuf,
    /// Page-table pages.
    PageTable,
    /// DMA pages (linearly mapped; never migratable).
    Dma,
}

impl PageType {
    /// All types, in Fig 4 presentation order.
    pub const ALL: [PageType; 7] = [
        PageType::HeapAnon,
        PageType::PageCache,
        PageType::BufferCache,
        PageType::Slab,
        PageType::NetBuf,
        PageType::PageTable,
        PageType::Dma,
    ];

    /// Dense index for per-type accounting arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            PageType::HeapAnon => 0,
            PageType::PageCache => 1,
            PageType::BufferCache => 2,
            PageType::Slab => 3,
            PageType::NetBuf => 4,
            PageType::PageTable => 5,
            PageType::Dma => 6,
        }
    }

    /// Number of page types.
    pub const COUNT: usize = 7;

    /// True for the short-lived I/O page classes HeteroOS-LRU evicts eagerly
    /// once the I/O completes (§3.3) and that the coordinated design places
    /// on the VMM's hotness-tracking *exception list* (§4.1).
    pub fn is_io(self) -> bool {
        matches!(
            self,
            PageType::PageCache | PageType::BufferCache | PageType::NetBuf
        )
    }

    /// True when pages of this type can be migrated between tiers. Linearly
    /// mapped page-table and DMA pages cannot (§4.1).
    pub fn is_migratable(self) -> bool {
        !matches!(self, PageType::PageTable | PageType::Dma)
    }
}

impl fmt::Display for PageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageType::HeapAnon => "heap/anon",
            PageType::PageCache => "page-cache",
            PageType::BufferCache => "buffer-cache",
            PageType::Slab => "slab",
            PageType::NetBuf => "nw-buff",
            PageType::PageTable => "pagetable",
            PageType::Dma => "dma",
        };
        f.write_str(s)
    }
}

/// Per-page state bits.
///
/// A minimal `bitflags`-style implementation (the workspace avoids the
/// dependency for two derives' worth of code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags(u16);

impl PageFlags {
    /// Page is backed by a machine frame and usable.
    pub const PRESENT: PageFlags = PageFlags(1 << 0);
    /// Page is on an active LRU list.
    pub const ACTIVE: PageFlags = PageFlags(1 << 1);
    /// Page has been written and not cleaned.
    pub const DIRTY: PageFlags = PageFlags(1 << 2);
    /// Hardware access bit (set on touch, cleared by scans).
    pub const ACCESSED: PageFlags = PageFlags(1 << 3);
    /// Page is linked on some LRU list.
    pub const LRU: PageFlags = PageFlags(1 << 4);
    /// Page was handed back to the VMM by the balloon.
    pub const BALLOONED: PageFlags = PageFlags(1 << 5);
    /// Page is marked for deletion (unmap in progress) — migration must
    /// skip it (§4.1 "Page state").
    pub const RECLAIM: PageFlags = PageFlags(1 << 6);
    /// Allocated through the on-demand balloon driver (returned to the VMM
    /// under memory pressure, §3.1).
    pub const ON_DEMAND: PageFlags = PageFlags(1 << 7);

    /// The empty flag set.
    pub const fn empty() -> Self {
        PageFlags(0)
    }

    /// True if every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PageFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Sets the bits of `other`.
    #[inline]
    pub fn insert(&mut self, other: PageFlags) {
        self.0 |= other.0;
    }

    /// Clears the bits of `other`.
    #[inline]
    pub fn remove(&mut self, other: PageFlags) {
        self.0 &= !other.0;
    }

    /// Sets or clears the bits of `other`.
    #[inline]
    pub fn set(&mut self, other: PageFlags, value: bool) {
        if value {
            self.insert(other);
        } else {
            self.remove(other);
        }
    }
}

impl std::ops::BitOr for PageFlags {
    type Output = PageFlags;
    fn bitor(self, rhs: PageFlags) -> PageFlags {
        PageFlags(self.0 | rhs.0)
    }
}

/// Reverse-mapping information: what a page backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RMap {
    /// Not mapped anywhere (free, or kernel-internal).
    #[default]
    None,
    /// Anonymous page mapped at a virtual page number.
    Anon(u64),
    /// File page: `(file id, page offset within file)`.
    File(u64, u64),
}

/// A page descriptor.
///
/// Kept deliberately small: one is allocated per guest frame, exactly like
/// the kernel memmap.
#[derive(Debug, Clone, Copy)]
pub struct Page {
    /// State bits.
    pub flags: PageFlags,
    /// Current usage class.
    pub page_type: PageType,
    /// Which tier this frame physically lives on (static per `Gfn`).
    pub kind: MemKind,
    /// Workload-assigned access intensity (0 = never touched again,
    /// 255 = hottest). Drives both simulated access distribution and what
    /// an ideal placement would do.
    pub heat: u8,
    /// Workload-assigned *store* intensity (§4.3: NVM's read/write
    /// asymmetry makes write-heavy pages the most valuable promotions).
    /// Zero until the engine assigns it; accounting then tracks it like
    /// `heat`.
    pub write_heat: u8,
    /// LRU linkage: previous page on the list.
    pub lru_prev: Option<Gfn>,
    /// LRU linkage: next page on the list.
    pub lru_next: Option<Gfn>,
    /// Reverse map.
    pub rmap: RMap,
}

impl Page {
    /// A free (unallocated) descriptor on the given tier.
    pub fn free_on(kind: MemKind) -> Self {
        Page {
            flags: PageFlags::empty(),
            page_type: PageType::HeapAnon,
            kind,
            heat: 0,
            write_heat: 0,
            lru_prev: None,
            lru_next: None,
            rmap: RMap::None,
        }
    }

    /// True when the page is allocated and backed.
    #[inline]
    pub fn is_present(&self) -> bool {
        self.flags.contains(PageFlags::PRESENT)
    }
}

impl hetero_sim::snap::Snap for Gfn {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        Ok(Gfn(r.take_u64()?))
    }
}

impl hetero_sim::snap::Snap for PageFlags {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_u16(self.0);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        Ok(PageFlags(r.take_u16()?))
    }
}

hetero_sim::impl_snap!(enum PageType {
    0 => HeapAnon {},
    1 => PageCache {},
    2 => BufferCache {},
    3 => Slab {},
    4 => NetBuf {},
    5 => PageTable {},
    6 => Dma {},
});

hetero_sim::impl_snap!(enum RMap {
    0 => None {},
    1 => Anon(vpn),
    2 => File(file, offset),
});

hetero_sim::impl_snap!(struct Page {
    flags, page_type, kind, heat, write_heat, lru_prev, lru_next, rmap
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_type_indices_are_dense_and_unique() {
        let mut seen = [false; PageType::COUNT];
        for t in PageType::ALL {
            assert!(!seen[t.index()], "duplicate index for {t}");
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn io_classification_matches_paper() {
        assert!(PageType::PageCache.is_io());
        assert!(PageType::BufferCache.is_io());
        assert!(PageType::NetBuf.is_io());
        assert!(!PageType::HeapAnon.is_io());
        assert!(!PageType::Slab.is_io());
    }

    #[test]
    fn pagetable_and_dma_are_pinned() {
        assert!(!PageType::PageTable.is_migratable());
        assert!(!PageType::Dma.is_migratable());
        assert!(PageType::HeapAnon.is_migratable());
        assert!(PageType::Slab.is_migratable());
    }

    #[test]
    fn flags_insert_remove_contains() {
        let mut f = PageFlags::empty();
        assert!(!f.contains(PageFlags::PRESENT));
        f.insert(PageFlags::PRESENT | PageFlags::DIRTY);
        assert!(f.contains(PageFlags::PRESENT));
        assert!(f.contains(PageFlags::DIRTY));
        assert!(f.contains(PageFlags::PRESENT | PageFlags::DIRTY));
        f.remove(PageFlags::DIRTY);
        assert!(!f.contains(PageFlags::DIRTY));
        assert!(f.contains(PageFlags::PRESENT));
    }

    #[test]
    fn flags_set_toggles() {
        let mut f = PageFlags::empty();
        f.set(PageFlags::ACTIVE, true);
        assert!(f.contains(PageFlags::ACTIVE));
        f.set(PageFlags::ACTIVE, false);
        assert!(!f.contains(PageFlags::ACTIVE));
    }

    #[test]
    fn fresh_page_is_not_present() {
        let p = Page::free_on(MemKind::Fast);
        assert!(!p.is_present());
        assert_eq!(p.rmap, RMap::None);
    }

    #[test]
    fn display_matches_fig4_labels() {
        assert_eq!(PageType::HeapAnon.to_string(), "heap/anon");
        assert_eq!(PageType::NetBuf.to_string(), "nw-buff");
        assert_eq!(Gfn(16).to_string(), "gfn:0x10");
    }
}
