//! A slab allocator for kernel objects.
//!
//! Network-intensive applications "extensively use slab pages for OS-level
//! network buffers ('skbuff')" and storage-intensive ones "allocate slab
//! pages for the filesystem metadata" (§3.2); HeteroOS prioritises those
//! pages into FastMem by demand. The slab layer here is object-accurate:
//! caches carve fixed-size objects out of pages obtained from the page
//! allocator and release pages back when their last object dies.

use std::collections::BTreeMap;

use crate::page::Gfn;

/// A cache of fixed-size kernel objects.
///
/// # Examples
///
/// ```
/// use hetero_guest::slab::SlabCache;
/// use hetero_guest::page::Gfn;
///
/// let mut skbuff = SlabCache::new("skbuff", 512, 4096);
/// let mut next = 0u64;
/// let page = skbuff.alloc_object(|| { next += 1; Some(Gfn(next)) }).unwrap();
/// assert_eq!(skbuff.objects(), 1);
/// // Freeing the only object releases the page.
/// assert_eq!(skbuff.free_object(page), Some(page));
/// ```
#[derive(Debug, Clone)]
pub struct SlabCache {
    name: &'static str,
    object_size: u32,
    objects_per_page: u32,
    /// used-object count per backing page. A `BTreeMap` so the bulk
    /// observations ([`SlabCache::reap`], [`SlabCache::backing_pages`])
    /// walk pages in frame order, never a per-process hash order.
    slabs: BTreeMap<Gfn, u32>,
    objects: u64,
    /// LIFO hint stack of pages that may have free slots. Entries are
    /// validated lazily on pop (stale or full entries are skipped), keeping
    /// allocation O(1) amortised.
    partial_hint: Vec<Gfn>,
    /// LIFO hint stack of pages that may hold live objects (for
    /// [`SlabCache::free_any_object`]); lazily validated like
    /// `partial_hint`.
    page_hint: Vec<Gfn>,
    /// Cumulative objects ever allocated (telemetry).
    total_allocs: u64,
    /// Cumulative objects ever freed (telemetry).
    total_frees: u64,
}

impl SlabCache {
    /// Creates a cache of `object_size`-byte objects backed by pages of
    /// `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `object_size` is zero or larger than `page_size`.
    pub fn new(name: &'static str, object_size: u32, page_size: u32) -> Self {
        assert!(object_size > 0, "object size must be non-zero");
        assert!(
            object_size <= page_size,
            "object ({object_size} B) larger than slab page ({page_size} B)"
        );
        SlabCache {
            name,
            object_size,
            objects_per_page: page_size / object_size,
            slabs: BTreeMap::new(),
            objects: 0,
            partial_hint: Vec::new(),
            page_hint: Vec::new(),
            total_allocs: 0,
            total_frees: 0,
        }
    }

    /// Cache name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Object size in bytes.
    pub fn object_size(&self) -> u32 {
        self.object_size
    }

    /// Objects currently live.
    pub fn objects(&self) -> u64 {
        self.objects
    }

    /// Backing pages currently held.
    pub fn pages(&self) -> u64 {
        self.slabs.len() as u64
    }

    /// Objects ever allocated from this cache (cumulative, telemetry).
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Objects ever freed back to this cache (cumulative, telemetry).
    pub fn total_frees(&self) -> u64 {
        self.total_frees
    }

    /// Allocates one object. If every slab is full, `get_page` is called to
    /// obtain a fresh backing page. Returns the page the object lives on,
    /// or `None` when a new page was needed but unavailable.
    pub fn alloc_object(&mut self, get_page: impl FnOnce() -> Option<Gfn>) -> Option<Gfn> {
        // Pop partial-slab hints until a valid one surfaces.
        let mut page = None;
        while let Some(&g) = self.partial_hint.last() {
            match self.slabs.get(&g) {
                Some(&used) if used < self.objects_per_page => {
                    page = Some(g);
                    break;
                }
                _ => {
                    self.partial_hint.pop();
                }
            }
        }
        let page = match page {
            Some(g) => g,
            None => {
                let g = get_page()?;
                debug_assert!(
                    !self.slabs.contains_key(&g),
                    "page {g} already owned by this cache"
                );
                self.slabs.insert(g, 0);
                self.page_hint.push(g);
                self.partial_hint.push(g);
                g
            }
        };
        let used = self.slabs.get_mut(&page).expect("slab exists");
        *used += 1;
        if *used >= self.objects_per_page {
            // No longer partial; drop the hint if it is on top.
            if self.partial_hint.last() == Some(&page) {
                self.partial_hint.pop();
            }
        }
        self.objects += 1;
        self.total_allocs += 1;
        Some(page)
    }

    /// Carves up to `max` objects out of *existing* partial slabs in one
    /// pass, never requesting fresh pages. State-equivalent to calling
    /// [`SlabCache::alloc_object`] with a `None`-returning page source until
    /// it fails or `max` objects are carved (same hint-stack pops, same
    /// object placement), but with one map lookup per slab chunk instead of
    /// two per object. Returns the number of objects carved.
    pub fn alloc_from_partial(&mut self, max: u64) -> u64 {
        let mut done = 0u64;
        while done < max {
            // Pop stale hints exactly as the scalar path would.
            let page = loop {
                match self.partial_hint.last() {
                    Some(&g) => match self.slabs.get(&g) {
                        Some(&used) if used < self.objects_per_page => break Some(g),
                        _ => {
                            self.partial_hint.pop();
                        }
                    },
                    None => break None,
                }
            };
            let Some(page) = page else {
                return done;
            };
            let used = self.slabs.get_mut(&page).expect("validated above");
            let take = ((self.objects_per_page - *used) as u64).min(max - done);
            *used += take as u32;
            if *used >= self.objects_per_page {
                // The scalar path drops the hint when the page fills and the
                // hint is on top — it is: we just validated the top.
                self.partial_hint.pop();
            }
            self.objects += take;
            self.total_allocs += take;
            done += take;
        }
        done
    }

    /// Frees up to `max` objects from the most recently used slab — the top
    /// valid `page_hint` entry — exactly as repeated
    /// [`SlabCache::free_any_object`] calls would until that slab empties or
    /// `max` is reached (including the per-free partial-hint pushes the
    /// scalar path makes). Returns `(objects_freed, emptied_page)`, or
    /// `None` when the cache holds no objects.
    pub fn free_any_chunk(&mut self, max: u64) -> Option<(u64, Option<Gfn>)> {
        debug_assert!(max > 0, "chunk size must be non-zero");
        let page = loop {
            match self.page_hint.last() {
                Some(&g) if self.slabs.contains_key(&g) => break g,
                Some(_) => {
                    self.page_hint.pop();
                }
                None => {
                    debug_assert_eq!(self.objects, 0, "live objects must be reachable");
                    return None;
                }
            }
        };
        let used = self.slabs.get_mut(&page).expect("validated above");
        let take = (*used as u64).min(max);
        *used -= take as u32;
        let emptied = *used == 0;
        self.objects -= take;
        self.total_frees += take;
        if emptied {
            self.slabs.remove(&page);
            // Scalar frees push one partial hint per *non-emptying* free.
            for _ in 0..take.saturating_sub(1) {
                self.partial_hint.push(page);
            }
            Some((take, Some(page)))
        } else {
            for _ in 0..take {
                self.partial_hint.push(page);
            }
            Some((take, None))
        }
    }

    /// Frees one object that lives on `page`. Returns `Some(page)` when the
    /// slab became empty and the caller should return it to the page
    /// allocator.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not a slab of this cache or holds no objects.
    pub fn free_object(&mut self, page: Gfn) -> Option<Gfn> {
        let used = self
            .slabs
            .get_mut(&page)
            .unwrap_or_else(|| panic!("{page} is not a slab of cache '{}'", self.name));
        assert!(*used > 0, "{page} has no live objects");
        *used -= 1;
        self.objects -= 1;
        self.total_frees += 1;
        if *used == 0 {
            self.slabs.remove(&page);
            Some(page)
        } else {
            // The page now has a free slot; hint the allocator.
            self.partial_hint.push(page);
            None
        }
    }

    /// Frees one object from *any* slab (callers that do not track which
    /// page their objects live on — request/response buffers). Takes from
    /// the most recently used slab (LIFO), matching short-lived kernel
    /// buffer churn. Returns the page to release when a slab empties.
    pub fn free_any_object(&mut self) -> Option<Option<Gfn>> {
        while let Some(&g) = self.page_hint.last() {
            if self.slabs.contains_key(&g) {
                return Some(self.free_object(g));
            }
            self.page_hint.pop();
        }
        debug_assert_eq!(self.objects, 0, "live objects must be reachable");
        None
    }

    /// Moves a slab's bookkeeping from `old` to `new` (page migration).
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a slab of this cache.
    pub fn rehome(&mut self, old: Gfn, new: Gfn) {
        let used = self
            .slabs
            .remove(&old)
            .unwrap_or_else(|| panic!("{old} is not a slab of cache '{}'", self.name));
        self.slabs.insert(new, used);
        self.page_hint.push(new);
        if used < self.objects_per_page {
            self.partial_hint.push(new);
        }
    }

    /// True if `page` backs this cache.
    pub fn owns(&self, page: Gfn) -> bool {
        self.slabs.contains_key(&page)
    }

    /// Reclaims every empty slab (none exist in steady state — empties are
    /// released eagerly by [`SlabCache::free_object`] — but a bulk path is
    /// kept for shrinker parity).
    pub fn reap(&mut self) -> Vec<Gfn> {
        let empty: Vec<Gfn> = self
            .slabs
            .iter()
            .filter(|&(_, &used)| used == 0)
            .map(|(&g, _)| g)
            .collect();
        for g in &empty {
            self.slabs.remove(g);
        }
        empty
    }

    /// All backing pages in ascending frame order (for migration
    /// bookkeeping).
    pub fn backing_pages(&self) -> impl Iterator<Item = Gfn> + '_ {
        self.slabs.keys().copied()
    }
}

impl hetero_sim::snap::Snap for SlabCache {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_str(self.name);
        self.object_size.snap(w);
        self.objects_per_page.snap(w);
        self.slabs.snap(w);
        self.objects.snap(w);
        self.partial_hint.snap(w);
        self.page_hint.snap(w);
        self.total_allocs.snap(w);
        self.total_frees.snap(w);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        use hetero_sim::snap::Snap;
        // The class name normally points into rodata; intern the restored
        // copy (the two well-known classes map back to their literals).
        let name = match r.take_string()?.as_str() {
            "skbuff" => "skbuff",
            "fs-meta" => "fs-meta",
            other => hetero_sim::snap::leak_str(other.to_string()),
        };
        Ok(SlabCache {
            name,
            object_size: Snap::unsnap(r)?,
            objects_per_page: Snap::unsnap(r)?,
            slabs: Snap::unsnap(r)?,
            objects: Snap::unsnap(r)?,
            partial_hint: Snap::unsnap(r)?,
            page_hint: Snap::unsnap(r)?,
            total_allocs: Snap::unsnap(r)?,
            total_frees: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages_from(start: u64) -> impl FnMut() -> Option<Gfn> {
        let mut next = start;
        move || {
            next += 1;
            Some(Gfn(next - 1))
        }
    }

    #[test]
    fn objects_pack_into_pages() {
        let mut c = SlabCache::new("dentry", 1024, 4096); // 4 objects/page
        let mut src = pages_from(0);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..4 {
            pages.insert(c.alloc_object(&mut src).unwrap());
        }
        assert_eq!(pages.len(), 1, "first four objects share one slab");
        assert_eq!(c.pages(), 1);
        let fifth = c.alloc_object(&mut src).unwrap();
        assert!(!pages.contains(&fifth));
        assert_eq!(c.pages(), 2);
        assert_eq!(c.objects(), 5);
    }

    #[test]
    fn empty_slab_is_released() {
        let mut c = SlabCache::new("skbuff", 2048, 4096); // 2 objects/page
        let mut src = pages_from(10);
        let p = c.alloc_object(&mut src).unwrap();
        let p2 = c.alloc_object(&mut src).unwrap();
        assert_eq!(p, p2);
        assert_eq!(c.free_object(p), None, "slab still half full");
        assert_eq!(c.free_object(p), Some(p), "last object frees the page");
        assert_eq!(c.pages(), 0);
        assert_eq!(c.objects(), 0);
    }

    #[test]
    fn alloc_fails_without_pages() {
        let mut c = SlabCache::new("x", 4096, 4096);
        assert_eq!(c.alloc_object(|| None), None);
        assert_eq!(c.objects(), 0);
    }

    #[test]
    fn oversized_object_uses_whole_page() {
        let mut c = SlabCache::new("big", 4096, 4096);
        let mut src = pages_from(0);
        let a = c.alloc_object(&mut src).unwrap();
        let b = c.alloc_object(&mut src).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "is not a slab")]
    fn foreign_free_panics() {
        let mut c = SlabCache::new("x", 512, 4096);
        c.free_object(Gfn(99));
    }

    #[test]
    #[should_panic(expected = "larger than slab page")]
    fn oversized_object_rejected() {
        SlabCache::new("x", 8192, 4096);
    }

    #[test]
    fn chunked_carve_matches_scalar_alloc_sequence() {
        let mut scalar = SlabCache::new("x", 1024, 4096); // 4 objects/page
        let mut bulk = SlabCache::new("x", 1024, 4096);
        // Seed both caches with two partial slabs the same way.
        for c in [&mut scalar, &mut bulk] {
            let mut src = pages_from(0);
            for _ in 0..3 {
                c.alloc_object(&mut src).unwrap();
            }
            c.alloc_object(&mut src).unwrap(); // fills page 0
            c.alloc_object(&mut src).unwrap(); // opens page 1
            c.free_object(Gfn(0)); // page 0 partial again
        }
        // Scalar: carve until partials run dry.
        let mut scalar_got = 0u64;
        while scalar.alloc_object(|| None).is_some() {
            scalar_got += 1;
        }
        let bulk_got = bulk.alloc_from_partial(u64::MAX);
        assert_eq!(scalar_got, bulk_got);
        assert_eq!(scalar.objects(), bulk.objects());
        assert_eq!(scalar.pages(), bulk.pages());
        assert_eq!(bulk.alloc_from_partial(5), 0, "no partial room left");
    }

    #[test]
    fn chunked_free_matches_scalar_free_any_sequence() {
        let mut scalar = SlabCache::new("x", 1024, 4096);
        let mut bulk = SlabCache::new("x", 1024, 4096);
        for c in [&mut scalar, &mut bulk] {
            let mut src = pages_from(0);
            for _ in 0..7 {
                c.alloc_object(&mut src).unwrap(); // 2 pages: 4 + 3 objects
            }
        }
        let mut scalar_events = Vec::new();
        for _ in 0..6 {
            scalar_events.push(scalar.free_any_object().unwrap());
        }
        let mut bulk_events = Vec::new();
        let mut left = 6u64;
        while left > 0 {
            let (freed, emptied) = bulk.free_any_chunk(left).unwrap();
            for _ in 0..freed.saturating_sub(u64::from(emptied.is_some())) {
                bulk_events.push(None);
            }
            if let Some(p) = emptied {
                bulk_events.push(Some(p));
            }
            left -= freed;
        }
        assert_eq!(scalar_events, bulk_events, "same pages empty at same points");
        assert_eq!(scalar.objects(), bulk.objects());
        assert_eq!(scalar.pages(), bulk.pages());
        // Both drain to empty identically.
        assert_eq!(scalar.free_any_object(), bulk.free_any_chunk(1).map(|(_, p)| p));
        assert!(bulk.free_any_chunk(1).is_none());
        assert!(scalar.free_any_object().is_none());
    }

    #[test]
    fn cumulative_traffic_counters_survive_frees() {
        let mut c = SlabCache::new("x", 2048, 4096); // 2 objects/page
        let mut src = pages_from(0);
        let p = c.alloc_object(&mut src).unwrap();
        c.alloc_object(&mut src).unwrap();
        c.free_object(p);
        c.free_object(p);
        assert_eq!(c.objects(), 0, "live count returns to zero");
        assert_eq!(c.total_allocs(), 2, "cumulative allocs persist");
        assert_eq!(c.total_frees(), 2, "cumulative frees persist");
        // Bulk paths count the same way.
        c.alloc_object(&mut src).unwrap();
        c.alloc_from_partial(1);
        c.free_any_chunk(2).unwrap();
        assert_eq!(c.total_allocs(), 4);
        assert_eq!(c.total_frees(), 4);
    }

    #[test]
    fn reap_returns_nothing_in_steady_state() {
        let mut c = SlabCache::new("x", 512, 4096);
        let mut src = pages_from(0);
        c.alloc_object(&mut src).unwrap();
        assert!(c.reap().is_empty());
    }
}
