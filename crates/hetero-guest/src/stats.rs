//! Per-subsystem allocation statistics — the input to HeteroOS's
//! demand-based FastMem prioritization (§3.2).
//!
//! The HeteroOS allocator "periodically (we use 100ms but it is
//! configurable) extracts information such as total page allocation
//! requests, FastMem allocation hits, and misses, for allocation requests
//! from different subsystems". [`AllocStats`] keeps exactly those counters, per
//! [`PageType`], in a resettable window plus cumulative totals (the
//! cumulative miss ratio is Fig 10's metric).

use crate::page::PageType;

/// Counters for one page type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeCounters {
    /// Total allocation requests.
    pub requests: u64,
    /// Requests that wanted FastMem.
    pub fast_requests: u64,
    /// FastMem-wanting requests actually served from FastMem.
    pub fast_hits: u64,
}

impl TypeCounters {
    /// FastMem allocation misses (wanted fast, got something else).
    pub fn fast_misses(&self) -> u64 {
        self.fast_requests - self.fast_hits
    }

    /// Miss ratio among FastMem-wanting requests, `0.0` when none.
    pub fn miss_ratio(&self) -> f64 {
        if self.fast_requests == 0 {
            0.0
        } else {
            self.fast_misses() as f64 / self.fast_requests as f64
        }
    }
}

/// Windowed + cumulative allocation statistics.
///
/// # Examples
///
/// ```
/// use hetero_guest::stats::AllocStats;
/// use hetero_guest::page::PageType;
///
/// let mut stats = AllocStats::new();
/// stats.record(PageType::PageCache, true, false); // wanted fast, missed
/// stats.record(PageType::HeapAnon, true, true);   // wanted fast, hit
/// assert_eq!(stats.window(PageType::PageCache).fast_misses(), 1);
/// assert_eq!(stats.neediest_type(), Some(PageType::PageCache));
/// stats.roll_window();
/// assert_eq!(stats.window(PageType::PageCache).requests, 0);
/// assert_eq!(stats.cumulative(PageType::PageCache).requests, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AllocStats {
    window: [TypeCounters; PageType::COUNT],
    cumulative: [TypeCounters; PageType::COUNT],
}

impl AllocStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        AllocStats::default()
    }

    /// Records one allocation outcome.
    pub fn record(&mut self, page_type: PageType, wanted_fast: bool, got_fast: bool) {
        for c in [
            &mut self.window[page_type.index()],
            &mut self.cumulative[page_type.index()],
        ] {
            c.requests += 1;
            if wanted_fast {
                c.fast_requests += 1;
                if got_fast {
                    c.fast_hits += 1;
                }
            }
        }
    }

    /// Batched [`Stats::record`]: `total` same-type requests with one
    /// shared `wanted_fast`, of which `got_fast` landed on FastMem.
    /// Equivalent to `total` scalar calls.
    pub fn record_run(&mut self, page_type: PageType, wanted_fast: bool, got_fast: u64, total: u64) {
        for c in [
            &mut self.window[page_type.index()],
            &mut self.cumulative[page_type.index()],
        ] {
            c.requests += total;
            if wanted_fast {
                c.fast_requests += total;
                c.fast_hits += got_fast;
            }
        }
    }

    /// Counters of the current window.
    pub fn window(&self, page_type: PageType) -> TypeCounters {
        self.window[page_type.index()]
    }

    /// Counters since creation.
    pub fn cumulative(&self, page_type: PageType) -> TypeCounters {
        self.cumulative[page_type.index()]
    }

    /// Clears the window (call at each prioritization period).
    pub fn roll_window(&mut self) {
        self.window = Default::default();
    }

    /// The page type with the highest windowed FastMem miss ratio — the type
    /// HeteroOS-LRU makes room for next (§3.2). `None` when no type missed.
    pub fn neediest_type(&self) -> Option<PageType> {
        PageType::ALL
            .iter()
            .copied()
            .filter(|t| self.window(*t).fast_misses() > 0)
            .max_by(|a, b| {
                self.window(*a)
                    .miss_ratio()
                    .partial_cmp(&self.window(*b).miss_ratio())
                    .expect("miss ratios are finite")
            })
    }

    /// Overall cumulative FastMem miss ratio: misses over **all** allocation
    /// requests (Fig 10's y-axis).
    pub fn overall_miss_ratio(&self) -> f64 {
        let requests: u64 = self.cumulative.iter().map(|c| c.requests).sum();
        let misses: u64 = self.cumulative.iter().map(|c| c.fast_misses()).sum();
        if requests == 0 {
            0.0
        } else {
            misses as f64 / requests as f64
        }
    }
}

hetero_sim::impl_snap!(struct TypeCounters { requests, fast_requests, fast_hits });

hetero_sim::impl_snap!(struct AllocStats { window, cumulative });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_split_hits_and_misses() {
        let mut s = AllocStats::new();
        s.record(PageType::HeapAnon, true, true);
        s.record(PageType::HeapAnon, true, false);
        s.record(PageType::HeapAnon, false, false); // never wanted fast
        let c = s.window(PageType::HeapAnon);
        assert_eq!(c.requests, 3);
        assert_eq!(c.fast_requests, 2);
        assert_eq!(c.fast_hits, 1);
        assert_eq!(c.fast_misses(), 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn neediest_type_picks_highest_ratio() {
        let mut s = AllocStats::new();
        // Heap: 1/2 missed. Slab: 2/2 missed.
        s.record(PageType::HeapAnon, true, true);
        s.record(PageType::HeapAnon, true, false);
        s.record(PageType::Slab, true, false);
        s.record(PageType::Slab, true, false);
        assert_eq!(s.neediest_type(), Some(PageType::Slab));
    }

    #[test]
    fn neediest_type_none_without_misses() {
        let mut s = AllocStats::new();
        assert_eq!(s.neediest_type(), None);
        s.record(PageType::HeapAnon, true, true);
        assert_eq!(s.neediest_type(), None);
    }

    #[test]
    fn roll_window_keeps_cumulative() {
        let mut s = AllocStats::new();
        s.record(PageType::NetBuf, true, false);
        s.roll_window();
        assert_eq!(s.window(PageType::NetBuf).requests, 0);
        assert_eq!(s.cumulative(PageType::NetBuf).fast_misses(), 1);
        assert_eq!(s.neediest_type(), None, "prioritization sees the window");
    }

    #[test]
    fn overall_miss_ratio_spans_types() {
        let mut s = AllocStats::new();
        s.record(PageType::HeapAnon, true, true);
        s.record(PageType::PageCache, true, false);
        s.record(PageType::Slab, false, false);
        // 1 miss over 3 requests.
        assert!((s.overall_miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = AllocStats::new();
        assert_eq!(s.overall_miss_ratio(), 0.0);
        assert_eq!(s.window(PageType::Dma).miss_ratio(), 0.0);
    }
}
