//! Background reclaim — the guest's `kswapd` equivalent.
//!
//! Linux wakes a per-node daemon when a zone's free pages drop below its
//! *low* watermark; the daemon reclaims (dropping clean file pages first)
//! until the *high* watermark is restored, so foreground allocations rarely
//! hit direct reclaim. HeteroOS keeps this machinery but gives each memory
//! *type* its own thresholds (§3.3: "memory type-specific thresholds for
//! triggering replacement") — a FastMem node wakes its daemon long before a
//! SlowMem node would.

use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;

use crate::kernel::GuestKernel;

/// Per-node free-page watermarks, in pages.
///
/// Invariant: `min ≤ low ≤ high`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Below this, only atomic allocations may dip (direct-reclaim floor).
    pub min: u64,
    /// Below this, the background daemon wakes.
    pub low: u64,
    /// The daemon reclaims until free pages reach this.
    pub high: u64,
}

impl Watermarks {
    /// Linux-style derivation from a node size: `min` is ~0.4 % of the
    /// node, `low = 1.25×min`, `high = 1.5×min` — scaled up by
    /// `pressure_factor` for tiers that deserve more headroom (FastMem).
    ///
    /// Every mark is clamped to the node's capacity: on tiny nodes (or
    /// under large pressure factors) the raw derivation can exceed
    /// `total_pages`, and a `high` above capacity is unreachable — the
    /// daemon would then grind every cache on the node on every pass
    /// without ever satisfying its target. The `min ≥ 1` floor still
    /// applies, so a 1-page node gets `min = low = high = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `pressure_factor` is not finite and positive, or if
    /// `total_pages` is zero (an unconfigured node has no watermarks).
    pub fn for_node(total_pages: u64, pressure_factor: f64) -> Self {
        assert!(
            pressure_factor.is_finite() && pressure_factor > 0.0,
            "pressure factor must be positive"
        );
        assert!(total_pages > 0, "a node needs at least one page");
        let min = ((total_pages as f64 * 0.004 * pressure_factor) as u64)
            .clamp(1, total_pages);
        Watermarks {
            min,
            low: (min + min / 4).min(total_pages),
            high: (min + min / 2).min(total_pages),
        }
    }

    /// Validates the ordering invariant.
    pub fn is_valid(&self) -> bool {
        self.min <= self.low && self.low <= self.high
    }

    /// Validates ordering *and* reachability against the node's capacity:
    /// `min ≤ low ≤ high ≤ total_pages`.
    pub fn is_valid_for(&self, total_pages: u64) -> bool {
        self.is_valid() && self.high <= total_pages
    }
}

/// The background reclaim daemon state for one guest.
///
/// # Examples
///
/// ```
/// use hetero_guest::kernel::{GuestConfig, GuestKernel};
/// use hetero_guest::kswapd::Kswapd;
/// use hetero_mem::MemKind;
///
/// let mut kernel = GuestKernel::new(GuestConfig::default());
/// let mut kswapd = Kswapd::for_kernel(&kernel);
/// // Plenty free: the daemon stays asleep.
/// assert_eq!(kswapd.balance(&mut kernel, MemKind::Fast), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Kswapd {
    marks: KindMap<Option<Watermarks>>,
    /// Times the daemon found a node below its low watermark.
    pub wakeups: u64,
    /// Clean file pages dropped by the daemon.
    pub reclaimed: u64,
}

impl Kswapd {
    /// Builds a daemon with explicit per-tier watermarks.
    pub fn new(marks: KindMap<Option<Watermarks>>) -> Self {
        for (_, m) in marks.iter() {
            if let Some(m) = m {
                assert!(m.is_valid(), "watermarks must satisfy min ≤ low ≤ high");
            }
        }
        Kswapd {
            marks,
            wakeups: 0,
            reclaimed: 0,
        }
    }

    /// Derives watermarks from a kernel's configured tiers: FastMem gets a
    /// 4× pressure factor (scarce capacity deserves headroom), the rest 1×.
    pub fn for_kernel(kernel: &GuestKernel) -> Self {
        let marks = KindMap::from_fn(|k| {
            let total = kernel.total_frames(k);
            (total > 0).then(|| {
                let factor = if k == MemKind::Fast { 4.0 } else { 1.0 };
                Watermarks::for_node(total, factor)
            })
        });
        Kswapd::new(marks)
    }

    /// The watermarks of a tier, if configured.
    pub fn marks(&self, kind: MemKind) -> Option<Watermarks> {
        self.marks[kind]
    }

    /// True when a tier's free pages sit below its low watermark.
    pub fn needs_balancing(&self, kernel: &GuestKernel, kind: MemKind) -> bool {
        match self.marks[kind] {
            Some(m) => kernel.free_frames(kind) < m.low,
            None => false,
        }
    }

    /// One daemon pass on a tier: if free < low, drop clean inactive file
    /// pages until free ≥ high (or candidates run out). Returns pages
    /// reclaimed.
    pub fn balance(&mut self, kernel: &mut GuestKernel, kind: MemKind) -> u64 {
        let Some(m) = self.marks[kind] else { return 0 };
        if kernel.free_frames(kind) >= m.low {
            return 0;
        }
        self.wakeups += 1;
        let mut dropped = 0;
        while kernel.free_frames(kind) < m.high {
            let n = kernel.shrink_caches(kind, 16);
            if n == 0 {
                break; // nothing left to drop on this node
            }
            dropped += n;
        }
        self.reclaimed += dropped;
        dropped
    }

    /// Balances every configured tier; returns total pages reclaimed.
    pub fn balance_all(&mut self, kernel: &mut GuestKernel) -> u64 {
        MemKind::ALL
            .iter()
            .map(|&k| self.balance(kernel, k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GuestConfig;
    use crate::page::PageType;
    use crate::pagecache::FileId;

    fn kernel() -> GuestKernel {
        GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 256), (MemKind::Slow, 1024)],
            cpus: 1,
            page_size: 4096,
        })
    }

    #[test]
    fn watermark_derivation_is_ordered_and_scaled() {
        let m = Watermarks::for_node(100_000, 1.0);
        assert!(m.is_valid());
        let pressured = Watermarks::for_node(100_000, 4.0);
        assert!(pressured.min > m.min);
        assert!(pressured.is_valid());
        // Tiny nodes still get a non-zero floor.
        assert!(Watermarks::for_node(10, 1.0).min >= 1);
    }

    /// Regression: the raw derivation used to let `min` (and with it `low`
    /// and `high`) exceed tiny nodes — `for_node(2, 500.0)` produced
    /// `min = 4 > 2`, an unreachable `high` that made `balance` shred every
    /// cache on the node on every single pass. Property: for every node of
    /// 1..=64 pages and a spread of pressure factors, the full
    /// `min ≤ low ≤ high ≤ total` chain holds and `min` keeps its floor.
    #[test]
    fn watermarks_fit_tiny_nodes_for_all_factors() {
        for total in 1..=64u64 {
            for &factor in &[0.5, 1.0, 4.0, 16.0, 100.0, 500.0] {
                let m = Watermarks::for_node(total, factor);
                assert!(
                    m.is_valid_for(total),
                    "for_node({total}, {factor}) = {m:?} breaks min ≤ low ≤ high ≤ total"
                );
                assert!(m.min >= 1, "for_node({total}, {factor}) lost the floor");
            }
        }
    }

    #[test]
    fn one_page_node_pins_all_marks_to_capacity() {
        let m = Watermarks::for_node(1, 500.0);
        assert_eq!((m.min, m.low, m.high), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_node_rejected() {
        Watermarks::for_node(0, 1.0);
    }

    #[test]
    fn daemon_sleeps_above_low_watermark() {
        let mut k = kernel();
        let mut d = Kswapd::for_kernel(&k);
        assert!(!d.needs_balancing(&k, MemKind::Fast));
        assert_eq!(d.balance(&mut k, MemKind::Fast), 0);
        assert_eq!(d.wakeups, 0);
    }

    #[test]
    fn daemon_restores_high_watermark_by_dropping_clean_cache() {
        let mut k = kernel();
        let mut d = Kswapd::for_kernel(&k);
        let marks = d.marks(MemKind::Fast).expect("fast configured");
        // Fill FastMem with clean, inactive page-cache pages.
        let mut off = 0;
        while k.free_frames(MemKind::Fast) > marks.min {
            let (g, _) = k.page_in(FileId(1), off, 200, &[MemKind::Fast]).unwrap();
            k.io_complete(g); // clean + inactive
            off += 1;
        }
        assert!(d.needs_balancing(&k, MemKind::Fast));
        let dropped = d.balance(&mut k, MemKind::Fast);
        assert!(dropped > 0);
        assert!(k.free_frames(MemKind::Fast) >= marks.high);
        assert_eq!(d.wakeups, 1);
        assert_eq!(d.reclaimed, dropped);
    }

    #[test]
    fn daemon_stops_when_no_clean_candidates_remain() {
        let mut k = kernel();
        let mut d = Kswapd::for_kernel(&k);
        // Fill FastMem with *heap* pages — kswapd has nothing to drop.
        while k
            .alloc_page(PageType::HeapAnon, 200, &[MemKind::Fast])
            .is_ok()
        {}
        assert!(d.needs_balancing(&k, MemKind::Fast));
        let dropped = d.balance(&mut k, MemKind::Fast);
        assert_eq!(dropped, 0, "anon pages are not kswapd's to drop");
        assert_eq!(d.wakeups, 1);
    }

    #[test]
    fn dirty_pages_are_skipped() {
        let mut k = kernel();
        let mut d = Kswapd::for_kernel(&k);
        let marks = d.marks(MemKind::Fast).expect("fast configured");
        let mut off = 0;
        let mut dirty = Vec::new();
        while k.free_frames(MemKind::Fast) > marks.min {
            let (g, _) = k.page_in(FileId(1), off, 200, &[MemKind::Fast]).unwrap();
            k.io_complete(g);
            if off % 2 == 0 {
                k.mark_dirty(g);
                dirty.push(g);
            }
            off += 1;
        }
        d.balance(&mut k, MemKind::Fast);
        for g in dirty {
            assert!(
                k.memmap().page(g).is_present(),
                "dirty pages must survive the shrink"
            );
        }
    }

    #[test]
    fn unconfigured_tier_never_balances() {
        let mut k = kernel();
        let mut d = Kswapd::for_kernel(&k);
        assert_eq!(d.marks(MemKind::Medium), None);
        assert_eq!(d.balance(&mut k, MemKind::Medium), 0);
    }

    #[test]
    #[should_panic(expected = "min ≤ low ≤ high")]
    fn invalid_watermarks_rejected() {
        let mut marks: KindMap<Option<Watermarks>> = KindMap::default();
        marks[MemKind::Fast] = Some(Watermarks {
            min: 10,
            low: 5,
            high: 20,
        });
        Kswapd::new(marks);
    }
}
