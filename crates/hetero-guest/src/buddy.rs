//! A binary buddy page allocator, one instance per guest NUMA node.
//!
//! This is the guest's equivalent of the Linux zoned buddy allocator that
//! HeteroOS extends (§3.1): HeteroOS routes FastMem allocations through its
//! own allocator exclusively, so each tier's node gets its own
//! [`BuddyAllocator`] over that tier's static `Gfn` range.
//!
//! The implementation is a faithful buddy system: per-order free lists,
//! block splitting on allocation, and eager buddy coalescing on free.
//!
//! Free lists are per-order **bitmaps** (one bit per aligned block slot)
//! rather than ordered sets: membership, insert and remove are single word
//! operations, and "lowest free offset" — the allocation order the rest of
//! the stack depends on for determinism — is a word scan from a
//! monotonically maintained hint. The observable allocation sequence is
//! identical to an ordered-set implementation; only the constant factor
//! changes, which matters because every page the engine churns passes
//! through here (split on alloc, 11-order double-free probe and coalesce
//! walk on free).

use std::fmt;

use crate::page::Gfn;

/// Largest supported allocation order (2^10 pages = 4 MiB with 4 KiB pages),
/// matching Linux's `MAX_ORDER - 1`.
pub const MAX_ORDER: u8 = 10;

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The order that was requested.
    pub order: u8,
    /// Free frames remaining (possibly fragmented below the request).
    pub free_frames: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: no free block of order {} ({} frames free)",
            self.order, self.free_frames
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Binary buddy allocator over a contiguous `Gfn` range.
///
/// # Examples
///
/// ```
/// use hetero_guest::buddy::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(0, 1024);
/// let block = buddy.alloc(3)?; // 8 contiguous pages
/// assert_eq!(buddy.free_frames(), 1024 - 8);
/// buddy.free(block, 3);
/// assert_eq!(buddy.free_frames(), 1024);
/// # Ok::<(), hetero_guest::buddy::OutOfMemory>(())
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    frames: u64,
    /// Free block slots (offset `>> order`, relative to `base`), one
    /// bitmap per order.
    free_lists: Vec<OrderBits>,
    free_frames: u64,
}

/// A bitmap of free block slots at one order: bit `i` set ⇔ the block at
/// offset `i << order` is free.
#[derive(Debug, Clone)]
struct OrderBits {
    words: Vec<u64>,
    /// Free blocks at this order.
    len: usize,
    /// Word-index lower bound on the first set bit. Inserts below it pull
    /// it down; removes leave it valid (the first set bit only moves up),
    /// so [`OrderBits::first`]'s scan restarts where the last one ended.
    hint: usize,
}

impl OrderBits {
    fn new(slots: u64) -> Self {
        OrderBits {
            words: vec![0; (slots as usize).div_ceil(64)],
            len: 0,
            hint: 0,
        }
    }

    fn contains(&self, slot: u64) -> bool {
        self.words[(slot >> 6) as usize] & (1u64 << (slot & 63)) != 0
    }

    /// Sets `slot`'s bit; must not already be set.
    fn insert(&mut self, slot: u64) {
        let w = (slot >> 6) as usize;
        debug_assert_eq!(self.words[w] & (1u64 << (slot & 63)), 0);
        self.words[w] |= 1u64 << (slot & 63);
        self.len += 1;
        if w < self.hint {
            self.hint = w;
        }
    }

    /// Clears `slot`'s bit if set; returns whether it was.
    fn remove(&mut self, slot: u64) -> bool {
        let w = (slot >> 6) as usize;
        let mask = 1u64 << (slot & 63);
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.len -= 1;
        true
    }

    /// Lowest set slot, advancing the scan hint past cleared words.
    fn first(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        while self.words[self.hint] == 0 {
            self.hint += 1;
        }
        Some(((self.hint as u64) << 6) + u64::from(self.words[self.hint].trailing_zeros()))
    }
}

impl BuddyAllocator {
    /// Creates an allocator over `frames` pages starting at guest frame
    /// `base`. The range need not be power-of-two sized.
    pub fn new(base: u64, frames: u64) -> Self {
        let mut a = BuddyAllocator {
            base,
            frames,
            free_lists: (0..=MAX_ORDER)
                .map(|o| OrderBits::new((frames >> o).max(1)))
                .collect(),
            free_frames: 0,
        };
        // Greedily carve the range into maximal aligned blocks.
        let mut off = 0u64;
        while off < frames {
            let align_order = off.trailing_zeros().min(MAX_ORDER as u32) as u8;
            let mut order = align_order;
            while order > 0 && off + (1 << order) > frames {
                order -= 1;
            }
            if off + (1 << order) > frames {
                break; // fewer frames than one page — cannot happen with order 0
            }
            a.free_lists[order as usize].insert(off >> order);
            a.free_frames += 1 << order;
            off += 1 << order;
        }
        a
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// Frames currently free (across all orders).
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Number of free blocks at one order (diagnostic / fragmentation view).
    pub fn free_blocks(&self, order: u8) -> usize {
        self.free_lists.get(order as usize).map_or(0, |b| b.len)
    }

    /// Allocates a block of `2^order` contiguous pages.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when no block of sufficient order exists.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc(&mut self, order: u8) -> Result<Gfn, OutOfMemory> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest order with a free block, taking its lowest
        // offset — the same choice an ordered free list makes.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(slot) = self.free_lists[o as usize].first() {
                found = Some((o, slot << o));
                break;
            }
        }
        let (mut o, off) = found.ok_or(OutOfMemory {
            order,
            free_frames: self.free_frames,
        })?;
        self.free_lists[o as usize].remove(off >> o);
        // Split down to the requested order, returning the upper halves.
        while o > order {
            o -= 1;
            let buddy = off + (1 << o);
            self.free_lists[o as usize].insert(buddy >> o);
        }
        self.free_frames -= 1 << order;
        Ok(Gfn(self.base + off))
    }

    /// Allocates one page (order 0).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the node is exhausted.
    pub fn alloc_page(&mut self) -> Result<Gfn, OutOfMemory> {
        self.alloc(0)
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`] with
    /// the same `order`, coalescing with free buddies.
    ///
    /// # Panics
    ///
    /// Panics if the block lies outside the allocator's range, is
    /// misaligned for its order, or (detectably) double-freed.
    pub fn free(&mut self, block: Gfn, order: u8) {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        assert!(
            block.0 >= self.base && block.0 + (1 << order) <= self.base + self.frames,
            "{block} (order {order}) outside allocator range"
        );
        let mut off = block.0 - self.base;
        assert_eq!(
            off & ((1 << order) - 1),
            0,
            "{block} misaligned for order {order}"
        );
        // Double-free detection: the block (or a coalesced ancestor
        // covering it) must not already be free at any order.
        for o in order..=MAX_ORDER {
            assert!(
                !self.free_lists[o as usize].contains(off >> o),
                "double free of {block} at order {order}"
            );
        }
        let mut o = order;
        // Coalesce upwards while the buddy is free.
        while o < MAX_ORDER {
            let buddy = off ^ (1 << o);
            if buddy + (1 << o) <= self.frames && self.free_lists[o as usize].remove(buddy >> o) {
                off = off.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.free_lists[o as usize].insert(off >> o);
        self.free_frames += 1 << order;
    }

    /// Frees one page (order 0).
    ///
    /// # Panics
    ///
    /// As for [`BuddyAllocator::free`].
    pub fn free_page(&mut self, gfn: Gfn) {
        self.free(gfn, 0);
    }

    /// Allocates up to `n` order-0 pages, appending them to `out` in the
    /// exact sequence repeated [`BuddyAllocator::alloc_page`] calls would
    /// produce. Returns how many pages were obtained (short on exhaustion).
    pub fn alloc_pages_bulk(&mut self, n: u64, out: &mut Vec<Gfn>) -> u64 {
        out.reserve(n.min(self.free_frames) as usize);
        for got in 0..n {
            match self.alloc(0) {
                Ok(g) => out.push(g),
                Err(_) => return got,
            }
        }
        n
    }

    /// Frees a batch of order-0 pages, coalescing exactly as the same
    /// sequence of [`BuddyAllocator::free_page`] calls would.
    ///
    /// # Panics
    ///
    /// As for [`BuddyAllocator::free`], per page.
    pub fn free_pages_bulk(&mut self, pages: impl IntoIterator<Item = Gfn>) {
        for g in pages {
            self.free(g, 0);
        }
    }

    /// Largest order with at least one free block, `None` when empty.
    pub fn max_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| self.free_lists[o as usize].len > 0)
    }
}

hetero_sim::impl_snap!(struct OrderBits { words, len, hint });

hetero_sim::impl_snap!(struct BuddyAllocator { base, frames, free_lists, free_frames });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_covers_whole_range() {
        let b = BuddyAllocator::new(0, 1024);
        assert_eq!(b.free_frames(), 1024);
        assert_eq!(b.max_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn non_power_of_two_range_is_fully_usable() {
        let b = BuddyAllocator::new(100, 1000);
        assert_eq!(b.free_frames(), 1000);
    }

    #[test]
    fn alloc_splits_and_free_coalesces() {
        let mut b = BuddyAllocator::new(0, 1024);
        let x = b.alloc(0).unwrap();
        // Splitting a max-order block leaves one free block at each order.
        for o in 0..MAX_ORDER {
            assert_eq!(b.free_blocks(o), 1, "order {o}");
        }
        b.free(x, 0);
        assert_eq!(b.max_free_order(), Some(MAX_ORDER));
        assert_eq!(b.free_blocks(MAX_ORDER), 1);
        assert_eq!(b.free_frames(), 1024);
    }

    #[test]
    fn blocks_do_not_overlap() {
        let mut b = BuddyAllocator::new(0, 256);
        let mut seen = std::collections::HashSet::new();
        while let Ok(g) = b.alloc(2) {
            for i in 0..4 {
                assert!(seen.insert(g.0 + i), "overlap at {}", g.0 + i);
            }
        }
        assert_eq!(seen.len(), 256);
        assert_eq!(b.free_frames(), 0);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut b = BuddyAllocator::new(0, 2);
        b.alloc(1).unwrap();
        let err = b.alloc(0).unwrap_err();
        assert_eq!(err.free_frames, 0);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn fragmented_node_fails_large_alloc_but_counts_free() {
        let mut b = BuddyAllocator::new(0, 4);
        let p0 = b.alloc(0).unwrap();
        let _p1 = b.alloc(0).unwrap();
        let _p2 = b.alloc(0).unwrap();
        let _p3 = b.alloc(0).unwrap();
        b.free(p0, 0);
        // One free page but no order-1 block starting anywhere usable.
        assert_eq!(b.free_frames(), 1);
        assert!(b.alloc(1).is_err());
        assert!(b.alloc(0).is_ok());
    }

    #[test]
    fn base_offset_is_respected() {
        let mut b = BuddyAllocator::new(5000, 64);
        let g = b.alloc(0).unwrap();
        assert!(g.0 >= 5000 && g.0 < 5064);
        b.free(g, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(0, 4);
        let g = b.alloc(0).unwrap();
        b.free(g, 0);
        b.free(g, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(0, 8);
        let _ = b.alloc(1).unwrap();
        b.free(Gfn(1), 1); // order-1 block cannot start at odd offset
    }

    #[test]
    #[should_panic(expected = "outside allocator range")]
    fn foreign_free_panics() {
        let mut b = BuddyAllocator::new(0, 8);
        b.free(Gfn(100), 0);
    }

    #[test]
    fn bulk_paths_match_single_page_sequences() {
        let mut single = BuddyAllocator::new(0, 256);
        let mut bulk = BuddyAllocator::new(0, 256);
        let singles: Vec<Gfn> = (0..100).map(|_| single.alloc_page().unwrap()).collect();
        let mut bulked = Vec::new();
        assert_eq!(bulk.alloc_pages_bulk(100, &mut bulked), 100);
        assert_eq!(singles, bulked, "bulk alloc must match the scalar order");
        for &g in singles.iter().rev() {
            single.free_page(g);
        }
        bulk.free_pages_bulk(bulked.iter().rev().copied());
        assert_eq!(single.free_frames(), bulk.free_frames());
        for o in 0..=MAX_ORDER {
            assert_eq!(single.free_blocks(o), bulk.free_blocks(o), "order {o}");
        }
    }

    #[test]
    fn bulk_alloc_stops_at_exhaustion() {
        let mut b = BuddyAllocator::new(0, 8);
        let mut out = Vec::new();
        assert_eq!(b.alloc_pages_bulk(20, &mut out), 8);
        assert_eq!(out.len(), 8);
        assert_eq!(b.free_frames(), 0);
    }

    #[test]
    fn alloc_free_stress_restores_state() {
        let mut b = BuddyAllocator::new(0, 512);
        let mut held = Vec::new();
        // Deterministic interleaving of allocs and frees.
        for i in 0..200u64 {
            if i % 3 == 2 {
                if let Some((g, o)) = held.pop() {
                    b.free(g, o);
                }
            } else {
                let order = (i % 4) as u8;
                if let Ok(g) = b.alloc(order) {
                    held.push((g, order));
                }
            }
        }
        for (g, o) in held {
            b.free(g, o);
        }
        assert_eq!(b.free_frames(), 512);
        assert_eq!(b.max_free_order(), Some(9)); // 512 = 2^9
        assert_eq!(b.free_blocks(9), 1);
    }
}
