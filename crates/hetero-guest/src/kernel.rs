//! The guest kernel facade: ties the memmap, buddy allocators, per-CPU
//! lists, LRUs, page table, page cache and slab caches into the
//! heterogeneity-aware memory manager of §3.
//!
//! The kernel provides **mechanism** — tier-targeted allocation with
//! fallback, migration with validity checks, eager LRU transitions, balloon
//! inflation. **Policy** (which tier a page type should prefer, when to
//! migrate) lives in `hetero-core`, which drives this API.

use std::fmt;

use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;

use crate::buddy::BuddyAllocator;
use crate::lru::LruRegistry;
use crate::memmap::MemMap;
use crate::page::{Gfn, PageFlags, PageType, RMap};
use crate::pagecache::{FileId, PageCache};
use crate::pagetable::PageTable;
use crate::pcp::PerCpuLists;
use crate::slab::SlabCache;
use crate::stats::AllocStats;
use crate::swap::{SwapEntry, SwapMap};
use crate::vma::{AddressSpace, Vma, VmaKind};

/// Guest kernel configuration.
#[derive(Debug, Clone)]
pub struct GuestConfig {
    /// Per-tier guest frame reservation, e.g.
    /// `[(MemKind::Fast, 131072), (MemKind::Slow, 1048576)]`.
    pub frames: Vec<(MemKind, u64)>,
    /// Number of vCPUs (sizes the per-CPU lists).
    pub cpus: usize,
    /// Page size in bytes (used by the slab layer).
    pub page_size: u64,
}

impl Default for GuestConfig {
    fn default() -> Self {
        GuestConfig {
            frames: vec![(MemKind::Fast, 4096), (MemKind::Slow, 32768)],
            cpus: 4,
            page_size: 4096,
        }
    }
}

/// Error returned when no tier in the preference list can provide a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocFailed {
    /// The page type that was requested.
    pub page_type: PageType,
}

impl fmt::Display for AllocFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no tier could provide a {} page", self.page_type)
    }
}

impl std::error::Error for AllocFailed {}

/// Why a migration was refused (the §4.1 validity checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// Page is not allocated.
    NotPresent,
    /// Page type is pinned (page table / DMA).
    NotMigratable,
    /// Page is marked for deletion (unmap in progress).
    MarkedForReclaim,
    /// Dirty short-lived I/O page — migrating it only wastes bandwidth.
    DirtyIo,
    /// Target tier has no free page.
    TargetFull,
    /// Page already lives on the target tier.
    AlreadyThere,
    /// Transient failure (injected fault or hardware hiccup) — retryable.
    Transient,
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MigrateError::NotPresent => "page is not present",
            MigrateError::NotMigratable => "page type is pinned",
            MigrateError::MarkedForReclaim => "page is marked for reclaim",
            MigrateError::DirtyIo => "dirty short-lived I/O page",
            MigrateError::TargetFull => "target tier is full",
            MigrateError::AlreadyThere => "page already on target tier",
            MigrateError::Transient => "transient migration failure (retryable)",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MigrateError {}

/// Kernel slab classes the workloads exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabClass {
    /// Network buffers (`skbuff`) — [`PageType::NetBuf`] pages.
    Skbuff,
    /// Filesystem metadata (dentries/inodes) — [`PageType::Slab`] pages.
    FsMeta,
}

/// The heterogeneity-aware guest kernel.
///
/// # Examples
///
/// ```
/// use hetero_guest::kernel::{GuestConfig, GuestKernel};
/// use hetero_guest::page::PageType;
/// use hetero_mem::MemKind;
///
/// let mut kernel = GuestKernel::new(GuestConfig::default());
/// let (gfn, kind) = kernel.alloc_page(
///     PageType::HeapAnon, 200, &[MemKind::Fast, MemKind::Slow])?;
/// assert_eq!(kind, MemKind::Fast);
/// kernel.free_page(gfn);
/// # Ok::<(), hetero_guest::kernel::AllocFailed>(())
/// ```
#[derive(Debug)]
pub struct GuestKernel {
    config: GuestConfig,
    mm: MemMap,
    buddies: KindMap<Option<BuddyAllocator>>,
    pcp: PerCpuLists,
    lru: LruRegistry,
    space: AddressSpace,
    pt: PageTable,
    cache: PageCache,
    skbuff: SlabCache,
    fs_meta: SlabCache,
    stats: AllocStats,
    swap: SwapMap,
    ballooned: KindMap<Vec<Gfn>>,
    pt_backing: Vec<Gfn>,
    next_cpu: usize,
    /// Completed page migrations (promotions + demotions).
    pub migrations: u64,
}

impl GuestKernel {
    /// Boots a guest kernel: initialises one NUMA node (memmap range +
    /// buddy allocator) per configured tier (§3.1 "extends the boot
    /// allocator to initialize one NUMA node … for each memory type").
    ///
    /// # Panics
    ///
    /// Panics on an empty tier list or zero CPUs.
    pub fn new(config: GuestConfig) -> Self {
        let mm = MemMap::new(&config.frames);
        let buddies = KindMap::from_fn(|k| {
            let r = mm.range(k);
            if r.is_empty() {
                None
            } else {
                Some(BuddyAllocator::new(r.start, r.end - r.start))
            }
        });
        let page_size = config.page_size as u32;
        GuestKernel {
            pcp: PerCpuLists::new(config.cpus),
            lru: LruRegistry::new(),
            space: AddressSpace::new(crate::pagetable::VPN_LIMIT),
            pt: PageTable::new(),
            cache: PageCache::new(),
            skbuff: SlabCache::new("skbuff", 512, page_size),
            fs_meta: SlabCache::new("fs-meta", 256, page_size),
            stats: AllocStats::new(),
            swap: SwapMap::new(),
            ballooned: KindMap::default(),
            pt_backing: Vec::new(),
            next_cpu: 0,
            migrations: 0,
            mm,
            buddies,
            config,
        }
    }

    /// The configuration the kernel booted with.
    pub fn config(&self) -> &GuestConfig {
        &self.config
    }

    /// Shared view of the memmap (residency/heat accounting).
    pub fn memmap(&self) -> &MemMap {
        &self.mm
    }

    /// Arms the memmap's cold-active ledger with the LRU aging threshold,
    /// switching [`GuestKernel::age_lru`] from its dense candidate walk to
    /// the O(1)-gated lazy path. Call at boot, before the first
    /// allocation; unconfigured kernels keep the legacy dense behaviour.
    pub fn configure_cold_ledger(&mut self, threshold: u8) {
        self.mm.configure_cold_ledger(threshold);
    }

    /// Cold-active pages currently on `kind` (zero when the ledger is
    /// unconfigured — callers gate on
    /// [`MemMap::cold_ledger`]`().is_configured()`).
    pub fn cold_active(&self, kind: MemKind) -> u64 {
        self.mm.cold_active(kind)
    }

    /// Advances the cold ledger's hotness generation (one cooling pass).
    pub fn bump_cold_generation(&mut self) {
        self.mm.cold_ledger_mut().bump_generation();
    }

    /// Shared view of the LRU registry.
    pub fn lru(&self) -> &LruRegistry {
        &self.lru
    }

    /// Shared view of the address space.
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// Shared view of the page table.
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// Simulates a CPU touch through the page table: sets the PTE access
    /// bit (and the dirty bit for writes). Returns `false` when `vpn` is
    /// unmapped. This is the A/D-tracking analogue of the heat the VMM
    /// scanner observes — hardware sets these bits for free; the cost
    /// sits in the harvest ([`GuestKernel::harvest_ad_range`]).
    pub fn touch_page(&mut self, vpn: u64, write: bool) -> bool {
        self.pt.touch(vpn, write)
    }

    /// Harvests and resets the accessed/dirty bits of every mapped PTE in
    /// `[start, end)`, invoking `f(vpn, accessed, dirty)` per page, and
    /// returns the number of PTEs visited (the per-PTE work the cost
    /// model charges). Delegates to [`PageTable::scan_and_reset`] without
    /// exposing the table mutably.
    pub fn harvest_ad_range(
        &mut self,
        start: u64,
        end: u64,
        f: impl FnMut(u64, bool, bool),
    ) -> u64 {
        self.pt.scan_and_reset(start, end, f)
    }

    /// Allocation statistics (demand-prioritization input).
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Shared view of the page-cache index (invariant-audit input).
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// Shared view of the swap map (invariant-audit input).
    pub fn swap_map(&self) -> &SwapMap {
        &self.swap
    }

    /// Shared view of one slab cache (invariant-audit input).
    pub fn slab_cache(&self, class: SlabClass) -> &SlabCache {
        match class {
            SlabClass::Skbuff => &self.skbuff,
            SlabClass::FsMeta => &self.fs_meta,
        }
    }

    /// Rolls the statistics window (call once per prioritization period).
    pub fn roll_stats_window(&mut self) {
        self.stats.roll_window();
    }

    /// Free frames on a tier (buddy + per-CPU caches).
    pub fn free_frames(&self, kind: MemKind) -> u64 {
        let buddy = self.buddies[kind]
            .as_ref()
            .map_or(0, BuddyAllocator::free_frames);
        buddy + self.pcp.cached_total(kind) as u64
    }

    /// Total frames reserved on a tier (including ballooned-out ones).
    pub fn total_frames(&self, kind: MemKind) -> u64 {
        let r = self.mm.range(kind);
        r.end - r.start
    }

    /// Fraction of a tier's frames that are free, `0.0` for absent tiers.
    pub fn free_fraction(&self, kind: MemKind) -> f64 {
        let total = self.total_frames(kind);
        if total == 0 {
            0.0
        } else {
            self.free_frames(kind) as f64 / total as f64
        }
    }

    fn next_cpu(&mut self) -> usize {
        let cpu = self.next_cpu;
        self.next_cpu = (self.next_cpu + 1) % self.pcp.cpus();
        cpu
    }

    /// First frame available along a preference chain, with the tier it
    /// came from — the allocation half of [`GuestKernel::alloc_page`].
    #[inline]
    fn raw_alloc_chain(&mut self, preference: &[MemKind]) -> Option<(Gfn, MemKind)> {
        preference
            .iter()
            .find_map(|&kind| self.raw_alloc(kind).map(|gfn| (gfn, kind)))
    }

    fn raw_alloc(&mut self, kind: MemKind) -> Option<Gfn> {
        let cpu = self.next_cpu();
        let buddy = self.buddies[kind].as_mut()?;
        if let Some(g) = self.pcp.alloc(cpu, kind, buddy) {
            return Some(g);
        }
        // Memory pressure: free pages may be stranded on other CPUs'
        // lists. Drain them back to the buddy and retry once.
        self.pcp.drain_kind(kind, buddy);
        self.pcp.alloc(cpu, kind, buddy)
    }

    fn raw_free(&mut self, gfn: Gfn) {
        let kind = self.mm.kind_of(gfn);
        let cpu = self.next_cpu();
        let buddy = self.buddies[kind]
            .as_mut()
            .expect("page belongs to a configured tier");
        self.pcp.free(cpu, kind, gfn, buddy);
    }

    /// Allocates one page of `page_type` with the given workload heat,
    /// trying tiers in `preference` order. Records hit/miss statistics
    /// against the first preference and links the page on the appropriate
    /// LRU (active for anonymous pages, inactive for file/I-O pages, as in
    /// Linux).
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] when every preferred tier is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `preference` is empty.
    pub fn alloc_page(
        &mut self,
        page_type: PageType,
        heat: u8,
        preference: &[MemKind],
    ) -> Result<(Gfn, MemKind), AllocFailed> {
        assert!(!preference.is_empty(), "preference list must be non-empty");
        let wanted_fast = preference[0] == MemKind::Fast;
        for &kind in preference {
            if let Some(gfn) = self.raw_alloc(kind) {
                self.mm.set_allocated(gfn, page_type, heat);
                match crate::lru::LruClass::of(page_type) {
                    Some(crate::lru::LruClass::Anon) => self.lru.insert_active(&mut self.mm, gfn),
                    // Slab/netbuf pages hold live kernel objects from the
                    // moment they are carved — they start active. Plain
                    // file pages start inactive (Linux semantics) and are
                    // activated by their I/O.
                    Some(crate::lru::LruClass::File)
                        if matches!(page_type, PageType::Slab | PageType::NetBuf) =>
                    {
                        self.lru.insert_active(&mut self.mm, gfn)
                    }
                    Some(crate::lru::LruClass::File) => {
                        self.lru.insert_inactive(&mut self.mm, gfn)
                    }
                    None => {}
                }
                self.stats
                    .record(page_type, wanted_fast, kind == MemKind::Fast);
                return Ok((gfn, kind));
            }
        }
        self.stats.record(page_type, wanted_fast, false);
        Err(AllocFailed { page_type })
    }

    /// Frees one page: unlinks it from the LRU and its reverse mapping
    /// (page table entry or page-cache slot) and returns it to the
    /// allocator.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn free_page(&mut self, gfn: Gfn) {
        self.lru.remove(&mut self.mm, gfn);
        match self.mm.page(gfn).rmap {
            RMap::Anon(vpn) => {
                self.pt.unmap(vpn);
            }
            RMap::File(file, off) => {
                self.cache.remove(FileId(file), off);
            }
            RMap::None => {}
        }
        self.mm.set_free(gfn);
        self.raw_free(gfn);
    }

    // ---------------------------------------------------------------- heap

    /// Maps a heap region of `pages` pages, allocating and mapping each page
    /// with the given per-page heat (provided by the workload model).
    /// Returns the VMA and how many pages landed on each tier.
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] if virtual space or every tier is exhausted;
    /// partially allocated pages are rolled back.
    pub fn mmap_heap(
        &mut self,
        pages: u64,
        heats: impl IntoIterator<Item = u8>,
        preference: &[MemKind],
    ) -> Result<(Vma, KindMap<u64>), AllocFailed> {
        let mut gfns = Vec::new();
        self.mmap_heap_collect(pages, heats, preference, &mut gfns)
    }

    /// As [`GuestKernel::mmap_heap`], additionally depositing the backing
    /// frames into `out` in VPN order (`out[i]` backs `vma.start + i`).
    ///
    /// This is the engine's hot allocation path: handing the frames back
    /// lets the caller assign write heats without re-walking the page
    /// table, and batching the whole range through
    /// [`PageTable::map_range`] descends each leaf table once per 512-page
    /// block instead of once per page. End state is identical to the
    /// historical per-page `map` loop.
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] if virtual space or every tier is
    /// exhausted; partially allocated pages are rolled back and `out` is
    /// left empty.
    pub fn mmap_heap_collect(
        &mut self,
        pages: u64,
        heats: impl IntoIterator<Item = u8>,
        preference: &[MemKind],
        out: &mut Vec<Gfn>,
    ) -> Result<(Vma, KindMap<u64>), AllocFailed> {
        let vma = self
            .space
            .mmap(pages, VmaKind::Anon, None)
            .map_err(|_| AllocFailed {
                page_type: PageType::HeapAnon,
            })?;
        out.clear();
        out.reserve(pages as usize);
        let mut placed = KindMap::default();
        let mut heats = heats.into_iter();
        // Fused per-page sequence: state-equivalent to `alloc_page` (active
        // insert) plus an rmap store, but each descriptor is written in one
        // borrow and the LRU transition / allocation statistics are tallied
        // once per run instead of once per page.
        if pages > 0 {
            assert!(!preference.is_empty(), "preference list must be non-empty");
        }
        let wanted_fast = preference.first() == Some(&MemKind::Fast);
        for vpn in vma.start..vma.end() {
            let heat = heats.next().unwrap_or(0);
            let Some((gfn, kind)) = self.raw_alloc_chain(preference) else {
                // Account the collected prefix and the failing attempt
                // exactly like the scalar loop would have, then roll back.
                // Nothing is in the page table yet (mapping happens below
                // in one batch), so rollback is a plain free of the
                // collected frames — `free_page`'s unmap of a never-mapped
                // VPN is a no-op.
                self.lru.note_fresh_inserts(true, out.len() as u64);
                self.stats.record_run(
                    PageType::HeapAnon,
                    wanted_fast,
                    placed[MemKind::Fast],
                    out.len() as u64,
                );
                self.stats.record(PageType::HeapAnon, wanted_fast, false);
                for &gfn in out.iter() {
                    self.free_page(gfn);
                }
                out.clear();
                self.space.munmap(vma.start, vma.pages);
                return Err(AllocFailed {
                    page_type: PageType::HeapAnon,
                });
            };
            let list = self.lru.fresh_list_mut(kind, crate::lru::LruClass::Anon, true);
            let next = list.peek_front();
            self.mm
                .set_allocated_linked(gfn, PageType::HeapAnon, heat, true, next, RMap::Anon(vpn));
            list.push_front_prelinked(&mut self.mm, gfn);
            placed[kind] += 1;
            out.push(gfn);
        }
        self.lru.note_fresh_inserts(true, pages);
        self.stats
            .record_run(PageType::HeapAnon, wanted_fast, placed[MemKind::Fast], pages);
        self.pt.map_range(vma.start, out);
        self.sync_pagetable_pages(preference);
        Ok((vma, placed))
    }

    /// Unmaps `[vpn, vpn + pages)`: pages in the range are marked for
    /// reclaim and freed. Returns the number of pages released.
    pub fn munmap(&mut self, vpn: u64, pages: u64) -> u64 {
        let removed = self.space.munmap(vpn, pages);
        let mut freed = 0;
        for v in vpn..vpn + pages {
            if let Some(gfn) = self.pt.translate(v) {
                self.mm.page_mut(gfn).flags.insert(PageFlags::RECLAIM);
                self.free_page(gfn);
                freed += 1;
            }
        }
        // Swapped-out pages in the range die with the mapping — their swap
        // slots are discarded without I/O.
        freed += self.swap.discard_range(vpn, pages);
        debug_assert!(freed <= removed || removed == 0 || freed >= removed);
        freed
    }

    // ------------------------------------------------------------ page I/O

    /// Brings one file page into the page cache (or touches it if cached).
    /// Returns the page and whether it was a cache hit.
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] on a miss when every tier is exhausted.
    pub fn page_in(
        &mut self,
        file: FileId,
        offset_page: u64,
        heat: u8,
        preference: &[MemKind],
    ) -> Result<(Gfn, bool), AllocFailed> {
        if let Some(gfn) = self.cache.lookup(file, offset_page) {
            self.lru.activate(&mut self.mm, gfn);
            return Ok((gfn, true));
        }
        let gfn = self.file_page_in_fresh(PageType::PageCache, file, offset_page, heat, preference)?;
        Ok((gfn, false))
    }

    /// Fused miss path shared by [`GuestKernel::page_in`] and
    /// [`GuestKernel::buffer_page_in`]: allocates the frame and writes its
    /// descriptor (present, active, LRU-linked, file rmap) in one borrow,
    /// then indexes it in the page cache. State-equivalent to
    /// [`GuestKernel::alloc_page`] (inactive insert, Linux semantics for
    /// file pages) followed by an rmap store, a cache insert and
    /// [`LruRegistry::activate`] — a page being filled is hot by
    /// definition (`mark_page_accessed`); it drops to inactive when its
    /// I/O completes (§3.3). Both the inactive-insert and the activation
    /// are tallied, exactly as the unfused sequence would.
    fn file_page_in_fresh(
        &mut self,
        page_type: PageType,
        file: FileId,
        offset_page: u64,
        heat: u8,
        preference: &[MemKind],
    ) -> Result<Gfn, AllocFailed> {
        assert!(!preference.is_empty(), "preference list must be non-empty");
        let wanted_fast = preference[0] == MemKind::Fast;
        let Some((gfn, kind)) = self.raw_alloc_chain(preference) else {
            self.stats.record(page_type, wanted_fast, false);
            return Err(AllocFailed { page_type });
        };
        let list = self.lru.fresh_list_mut(kind, crate::lru::LruClass::File, true);
        let next = list.peek_front();
        self.mm.set_allocated_linked(
            gfn,
            page_type,
            heat,
            true,
            next,
            RMap::File(file.0, offset_page),
        );
        list.push_front_prelinked(&mut self.mm, gfn);
        self.lru.note_fresh_faulted(1);
        self.stats.record(page_type, wanted_fast, kind == MemKind::Fast);
        self.cache.insert(file, offset_page, gfn);
        Ok(gfn)
    }

    /// Allocates one buffer-cache page (filesystem journal/metadata block).
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] when every tier is exhausted.
    pub fn alloc_buffer_page(
        &mut self,
        heat: u8,
        preference: &[MemKind],
    ) -> Result<Gfn, AllocFailed> {
        let (gfn, _) = self.alloc_page(PageType::BufferCache, heat, preference)?;
        Ok(gfn)
    }

    /// Brings one buffer-cache block in under a `(file, offset)` identity so
    /// callers can address it stably across migrations (mirrors
    /// [`GuestKernel::page_in`] for [`PageType::BufferCache`]).
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] on a miss when every tier is exhausted.
    pub fn buffer_page_in(
        &mut self,
        file: FileId,
        offset_page: u64,
        heat: u8,
        preference: &[MemKind],
    ) -> Result<(Gfn, bool), AllocFailed> {
        if let Some(gfn) = self.cache.lookup(file, offset_page) {
            self.lru.activate(&mut self.mm, gfn);
            return Ok((gfn, true));
        }
        let gfn =
            self.file_page_in_fresh(PageType::BufferCache, file, offset_page, heat, preference)?;
        Ok((gfn, false))
    }

    /// Faults `count` consecutive file offsets starting at `first_offset`
    /// into the page cache — the bulk entry point for streaming reads.
    /// State-equivalent to calling [`GuestKernel::page_in`] once per offset
    /// (same placements, statistics and cache-probe counts). For previously
    /// uncached offsets, a tier-exhaustion failure persists for the rest of
    /// the batch (each remaining attempt still records its miss), so the
    /// successes form a prefix; the returned count is that prefix length.
    pub fn page_in_many(
        &mut self,
        file: FileId,
        first_offset: u64,
        count: u64,
        heat: u8,
        preference: &[MemKind],
    ) -> u64 {
        let mut ok = 0u64;
        for off in first_offset..first_offset + count {
            if self.page_in(file, off, heat, preference).is_ok() {
                ok += 1;
            }
        }
        ok
    }

    /// As [`GuestKernel::page_in_many`], for buffer-cache blocks (mirrors
    /// [`GuestKernel::buffer_page_in`]).
    pub fn buffer_page_in_many(
        &mut self,
        file: FileId,
        first_offset: u64,
        count: u64,
        heat: u8,
        preference: &[MemKind],
    ) -> u64 {
        let mut ok = 0u64;
        for off in first_offset..first_offset + count {
            if self.buffer_page_in(file, off, heat, preference).is_ok() {
                ok += 1;
            }
        }
        ok
    }

    /// Drops a batch of cached pages by identity — the bulk release entry
    /// point (lazy-reclaim storms, forced reclaim). Equivalent to one
    /// [`GuestKernel::drop_cache_page`] per offset, in order. Returns how
    /// many pages were actually freed.
    pub fn drop_cache_pages(
        &mut self,
        file: FileId,
        offsets: impl IntoIterator<Item = u64>,
    ) -> u64 {
        let mut freed = 0u64;
        for off in offsets {
            if self.drop_cache_page(file, off) {
                freed += 1;
            }
        }
        freed
    }

    /// Looks up a cached page by identity without allocating on a miss.
    /// Counts as a cache probe in the hit/miss statistics.
    pub fn cached_page(&mut self, file: FileId, offset_page: u64) -> Option<Gfn> {
        self.cache.lookup(file, offset_page)
    }

    /// Drops one cached page by identity (cache shrink / short-lived I/O
    /// page release). Returns `true` when a page was freed.
    pub fn drop_cache_page(&mut self, file: FileId, offset_page: u64) -> bool {
        match self.cache.remove(file, offset_page) {
            Some(gfn) => {
                self.mm.page_mut(gfn).rmap = RMap::None;
                self.free_page(gfn);
                true
            }
            None => false,
        }
    }

    /// Marks an I/O page's request complete: the page is cleaned and
    /// *eagerly deactivated* — HeteroOS-LRU's §3.3 rule that released I/O
    /// pages become immediate eviction candidates.
    pub fn io_complete(&mut self, gfn: Gfn) {
        let p = self.mm.page_mut(gfn);
        p.flags.remove(PageFlags::DIRTY);
        self.lru.deactivate(&mut self.mm, gfn);
    }

    /// Marks a page dirty (buffered write).
    pub fn mark_dirty(&mut self, gfn: Gfn) {
        self.mm.page_mut(gfn).flags.insert(PageFlags::DIRTY);
    }

    /// Drops a file's pages from the cache and frees them.
    pub fn drop_file(&mut self, file: FileId) -> u64 {
        let pages = self.cache.remove_file(file);
        let n = pages.len() as u64;
        for gfn in pages {
            // remove_file already unindexed them; clear rmap so free_page
            // does not double-remove.
            self.mm.page_mut(gfn).rmap = RMap::None;
            self.free_page(gfn);
        }
        n
    }

    // --------------------------------------------------------------- slabs

    /// Allocates one kernel object, growing the slab with a page of the
    /// right type when needed. Returns the backing page.
    ///
    /// # Errors
    ///
    /// Returns [`AllocFailed`] when a fresh slab page was needed but every
    /// tier is exhausted.
    pub fn slab_alloc(
        &mut self,
        class: SlabClass,
        heat: u8,
        preference: &[MemKind],
    ) -> Result<Gfn, AllocFailed> {
        let page_type = match class {
            SlabClass::Skbuff => PageType::NetBuf,
            SlabClass::FsMeta => PageType::Slab,
        };
        // Split-borrow dance: try without a new page first.
        let cache = match class {
            SlabClass::Skbuff => &mut self.skbuff,
            SlabClass::FsMeta => &mut self.fs_meta,
        };
        if let Some(gfn) = cache.alloc_object(|| None) {
            return Ok(gfn);
        }
        let (new_page, _) = self.alloc_page(page_type, heat, preference)?;
        let cache = match class {
            SlabClass::Skbuff => &mut self.skbuff,
            SlabClass::FsMeta => &mut self.fs_meta,
        };
        let gfn = cache
            .alloc_object(|| Some(new_page))
            .expect("fresh page provided");
        debug_assert_eq!(gfn, new_page);
        Ok(gfn)
    }

    /// Frees one kernel object living on `page`; releases the page when its
    /// slab empties (eagerly deactivating first would be moot — it is gone).
    ///
    /// # Panics
    ///
    /// Panics if `page` is not a slab page of that class.
    pub fn slab_free(&mut self, class: SlabClass, page: Gfn) {
        let cache = match class {
            SlabClass::Skbuff => &mut self.skbuff,
            SlabClass::FsMeta => &mut self.fs_meta,
        };
        if let Some(empty) = cache.free_object(page) {
            self.free_page(empty);
        }
    }

    /// Frees one object of a class without naming its page (round-trip
    /// request buffers). Returns `false` when the class holds no objects.
    pub fn slab_free_any(&mut self, class: SlabClass) -> bool {
        let cache = match class {
            SlabClass::Skbuff => &mut self.skbuff,
            SlabClass::FsMeta => &mut self.fs_meta,
        };
        match cache.free_any_object() {
            Some(Some(empty)) => {
                self.free_page(empty);
                true
            }
            Some(None) => true,
            None => false,
        }
    }

    /// Allocates `n` kernel objects of one class in bulk — state-equivalent
    /// to `n` [`GuestKernel::slab_alloc`] calls with the same arguments
    /// (same pages carved in the same order, same allocation statistics,
    /// same failure behaviour), but carving whole partial-slab chunks with
    /// one map operation instead of two per object. Returns the number of
    /// objects obtained; on tier exhaustion the remaining attempts still
    /// record their allocation misses, as the scalar loop would.
    pub fn slab_alloc_bulk(
        &mut self,
        class: SlabClass,
        n: u64,
        heat: u8,
        preference: &[MemKind],
    ) -> u64 {
        let page_type = match class {
            SlabClass::Skbuff => PageType::NetBuf,
            SlabClass::FsMeta => PageType::Slab,
        };
        let mut done = 0u64;
        while done < n {
            let cache = match class {
                SlabClass::Skbuff => &mut self.skbuff,
                SlabClass::FsMeta => &mut self.fs_meta,
            };
            done += cache.alloc_from_partial(n - done);
            if done >= n {
                break;
            }
            // No partial room anywhere: grow the slab with a fresh page.
            match self.alloc_page(page_type, heat, preference) {
                Ok((new_page, _)) => {
                    let cache = match class {
                        SlabClass::Skbuff => &mut self.skbuff,
                        SlabClass::FsMeta => &mut self.fs_meta,
                    };
                    let gfn = cache
                        .alloc_object(|| Some(new_page))
                        .expect("fresh page provided");
                    debug_assert_eq!(gfn, new_page);
                    done += 1;
                }
                Err(_) => {
                    // Every preferred tier is exhausted, and nothing in this
                    // loop frees frames, so the remaining attempts would fail
                    // identically — but each still records its miss, exactly
                    // as the scalar per-object loop does.
                    for _ in done + 1..n {
                        let _ = self.alloc_page(page_type, heat, preference);
                    }
                    return done;
                }
            }
        }
        done
    }

    /// Frees up to `n` objects of a class in bulk — state-equivalent to
    /// calling [`GuestKernel::slab_free_any`] until it returns `false` or
    /// `n` objects are freed, releasing emptied slab pages at the same
    /// points in the sequence. Returns the number of objects freed.
    pub fn slab_free_bulk(&mut self, class: SlabClass, n: u64) -> u64 {
        let mut done = 0u64;
        while done < n {
            let cache = match class {
                SlabClass::Skbuff => &mut self.skbuff,
                SlabClass::FsMeta => &mut self.fs_meta,
            };
            let Some((freed, emptied)) = cache.free_any_chunk(n - done) else {
                break;
            };
            done += freed;
            if let Some(page) = emptied {
                self.free_page(page);
            }
        }
        done
    }

    /// Live objects in a slab class.
    pub fn slab_objects(&self, class: SlabClass) -> u64 {
        match class {
            SlabClass::Skbuff => self.skbuff.objects(),
            SlabClass::FsMeta => self.fs_meta.objects(),
        }
    }

    // ---------------------------------------------------------- page table

    /// Reconciles the number of [`PageType::PageTable`] backing pages with
    /// the radix tree's actual table count. Called after map/unmap bursts.
    pub fn sync_pagetable_pages(&mut self, preference: &[MemKind]) {
        let needed = self.pt.table_pages();
        while (self.pt_backing.len() as u64) < needed {
            match self.alloc_page(PageType::PageTable, 0, preference) {
                Ok((gfn, _)) => self.pt_backing.push(gfn),
                Err(_) => break, // accounting best-effort under pressure
            }
        }
        while (self.pt_backing.len() as u64) > needed {
            let gfn = self.pt_backing.pop().expect("len checked");
            self.free_page(gfn);
        }
    }

    // ----------------------------------------------------------- migration

    /// §4.1 validity checks, without performing the migration.
    ///
    /// # Errors
    ///
    /// Returns the [`MigrateError`] the migration would fail with.
    pub fn can_migrate(&self, gfn: Gfn, target: MemKind) -> Result<(), MigrateError> {
        let p = self.mm.page(gfn);
        if !p.is_present() {
            return Err(MigrateError::NotPresent);
        }
        if !p.page_type.is_migratable() {
            return Err(MigrateError::NotMigratable);
        }
        if p.flags.contains(PageFlags::RECLAIM) {
            return Err(MigrateError::MarkedForReclaim);
        }
        if p.page_type.is_io() && p.flags.contains(PageFlags::DIRTY) {
            return Err(MigrateError::DirtyIo);
        }
        if p.kind == target {
            return Err(MigrateError::AlreadyThere);
        }
        Ok(())
    }

    /// Migrates a page to `target`: allocates a destination page, copies
    /// state (type, heat, dirty bit, rmap), rewires the page table or page
    /// cache, preserves LRU activity, and frees the source. Returns the new
    /// page.
    ///
    /// # Errors
    ///
    /// Returns a [`MigrateError`] when a validity check fails or the target
    /// tier has no free page.
    pub fn migrate_page(&mut self, gfn: Gfn, target: MemKind) -> Result<Gfn, MigrateError> {
        self.can_migrate(gfn, target)?;
        let new = self.raw_alloc(target).ok_or(MigrateError::TargetFull)?;
        let (page_type, heat, write_heat, rmap, was_active, was_dirty) = {
            let p = self.mm.page(gfn);
            (
                p.page_type,
                p.heat,
                p.write_heat,
                p.rmap,
                p.flags.contains(PageFlags::ACTIVE),
                p.flags.contains(PageFlags::DIRTY),
            )
        };
        self.mm.set_allocated(new, page_type, heat);
        if write_heat > 0 {
            self.mm.set_write_heat(new, write_heat);
        }
        if was_dirty {
            self.mm.page_mut(new).flags.insert(PageFlags::DIRTY);
        }
        self.mm.page_mut(new).rmap = rmap;
        match rmap {
            RMap::Anon(vpn) => {
                self.pt.remap(vpn, new);
            }
            RMap::File(file, off) => {
                self.cache.insert(FileId(file), off, new);
            }
            RMap::None => {}
        }
        if was_active {
            self.lru.insert_active(&mut self.mm, new);
        } else {
            self.lru.insert_inactive(&mut self.mm, new);
        }
        // Slab caches key their bookkeeping by backing page: rehome it.
        match page_type {
            PageType::NetBuf if self.skbuff.owns(gfn) => self.skbuff.rehome(gfn, new),
            PageType::Slab if self.fs_meta.owns(gfn) => self.fs_meta.rehome(gfn, new),
            _ => {}
        }
        // Free the old page without touching the (already rewired) rmap.
        self.lru.remove(&mut self.mm, gfn);
        self.mm.page_mut(gfn).rmap = RMap::None;
        self.mm.set_free(gfn);
        self.raw_free(gfn);
        self.migrations += 1;
        Ok(new)
    }

    /// Migration as the guest-transparent VMM performs it (HeteroVisor
    /// baseline): **without** the application-state validity checks the
    /// guest could do. Pages marked for deletion and dirty short-lived I/O
    /// pages are moved anyway — paying full cost for no benefit (§4.1
    /// explains why this pollutes FastMem). Only physical impossibilities
    /// (absent page, pinned type, full target) still fail.
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError::NotPresent`], [`MigrateError::NotMigratable`],
    /// [`MigrateError::AlreadyThere`] or [`MigrateError::TargetFull`].
    pub fn migrate_page_forced(&mut self, gfn: Gfn, target: MemKind) -> Result<Gfn, MigrateError> {
        match self.can_migrate(gfn, target) {
            Ok(())
            | Err(MigrateError::MarkedForReclaim)
            | Err(MigrateError::DirtyIo) => {}
            Err(e) => return Err(e),
        }
        // Temporarily clear the states the VMM cannot see, migrate, restore.
        let (had_reclaim, had_dirty) = {
            let p = self.mm.page_mut(gfn);
            let r = p.flags.contains(PageFlags::RECLAIM);
            let d = p.flags.contains(PageFlags::DIRTY);
            p.flags.remove(PageFlags::RECLAIM);
            p.flags.remove(PageFlags::DIRTY);
            (r, d)
        };
        match self.migrate_page(gfn, target) {
            Ok(new) => {
                let p = self.mm.page_mut(new);
                p.flags.set(PageFlags::RECLAIM, had_reclaim);
                p.flags.set(PageFlags::DIRTY, had_dirty);
                Ok(new)
            }
            Err(e) => {
                let p = self.mm.page_mut(gfn);
                p.flags.set(PageFlags::RECLAIM, had_reclaim);
                p.flags.set(PageFlags::DIRTY, had_dirty);
                Err(e)
            }
        }
    }

    /// Demotes up to `n` inactive pages off `from` to the next slower
    /// configured tier, preferring file pages. Returns pages moved.
    pub fn demote_inactive(&mut self, from: MemKind, n: u64) -> u64 {
        self.demote_inactive_with(from, n, false)
    }

    /// Multi-level variant of [`GuestKernel::demote_inactive`] implementing
    /// the §4.3 page-type-specific demotion policy: anonymous pages step
    /// down **one level at a time** (they have high reuse and may come
    /// back), while released I/O pages drop **straight to the slowest
    /// tier** (they are mostly dead after the I/O completes). On a
    /// two-tier machine both rules coincide with plain demotion.
    pub fn demote_inactive_typed(&mut self, from: MemKind, n: u64) -> u64 {
        self.demote_inactive_with(from, n, true)
    }

    fn demote_inactive_with(&mut self, from: MemKind, n: u64, typed: bool) -> u64 {
        let Some(next) = self.next_slower_configured(from) else {
            return 0;
        };
        let slowest = self.slowest_configured();
        let victims = self.lru.shrink_inactive(&mut self.mm, from, n);
        let mut moved = 0;
        for gfn in victims {
            let target = if typed && self.mm.page(gfn).page_type.is_io() {
                slowest
            } else {
                next
            };
            // shrink removed them from the LRU; migrate re-links on target.
            // Re-link first so migrate_page's LRU bookkeeping stays uniform.
            self.lru.insert_inactive(&mut self.mm, gfn);
            match self.migrate_page(gfn, target) {
                Ok(_) => moved += 1,
                Err(MigrateError::DirtyIo) => {
                    // Leave dirty I/O pages; writeback will clean them.
                }
                Err(MigrateError::TargetFull) => break,
                Err(_) => {}
            }
        }
        moved
    }

    /// The slowest configured tier.
    fn slowest_configured(&self) -> MemKind {
        [MemKind::Slow, MemKind::Medium, MemKind::Fast]
            .into_iter()
            .find(|&k| self.buddies[k].is_some())
            .expect("at least one tier is configured")
    }

    fn next_slower_configured(&self, from: MemKind) -> Option<MemKind> {
        let mut k = from;
        while let Some(slower) = k.next_slower() {
            if self.buddies[slower].is_some() {
                return Some(slower);
            }
            k = slower;
        }
        None
    }

    // ------------------------------------------------------------- balloon

    /// Updates a present page's workload heat, keeping the memmap's heat
    /// accounting in sync.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn set_page_heat(&mut self, gfn: Gfn, heat: u8) {
        self.mm.set_heat(gfn, heat);
    }

    /// Updates a present page's workload *write* heat (§4.3 extension),
    /// keeping the memmap's accounting in sync.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn set_page_write_heat(&mut self, gfn: Gfn, write_heat: u8) {
        self.mm.set_write_heat(gfn, write_heat);
    }

    /// Shrinks a tier's caches: drops up to `n` clean, inactive file-class
    /// pages (page cache, buffer cache), skipping dirty pages — the
    /// kswapd/direct-reclaim primitive. Returns pages freed.
    pub fn shrink_caches(&mut self, kind: MemKind, n: u64) -> u64 {
        let victims = self.lru_candidates(kind, (n * 4) as usize, |p| {
            p.page_type.is_io()
                && !p.flags.contains(PageFlags::ACTIVE)
                && !p.flags.contains(PageFlags::DIRTY)
        });
        let mut freed = 0;
        for gfn in victims {
            if freed >= n {
                break;
            }
            self.free_page(gfn);
            freed += 1;
        }
        freed
    }

    /// Moves a page to its tier's inactive list (LRU aging). No-op when
    /// unlisted or already inactive.
    pub fn deactivate_page(&mut self, gfn: Gfn) {
        self.lru.deactivate(&mut self.mm, gfn);
    }

    /// Moves a page to its tier's active list (re-reference). No-op when
    /// unlisted or already active.
    pub fn activate_page(&mut self, gfn: Gfn) {
        self.lru.activate(&mut self.mm, gfn);
    }

    /// One pass of HeteroOS-LRU's active monitoring (§3.3): walks up to
    /// `batch` pages of a tier's LRU and deactivates those whose heat falls
    /// below `cold_heat` (the workload stopped using them). Returns pages
    /// deactivated.
    pub fn age_lru(&mut self, kind: MemKind, batch: usize, cold_heat: u8) -> u64 {
        // Lazy-aging fast path (DESIGN.md §13): when the cold-active ledger
        // is armed with exactly this threshold, its count answers the walk's
        // question up front. Zero cold-active pages proves the dense
        // candidate walk would deactivate nothing, and a non-zero count
        // bounds the walk — every match sits on an active list (the aging
        // predicate requires `ACTIVE`, which inactive-list pages never
        // carry), so the walk may stop after `min(batch, count)` matches.
        let victims = match self.mm.cold_ledger().threshold() {
            Some(t) if t == cold_heat => {
                let cold = self.mm.cold_active(kind);
                if cold == 0 {
                    return 0;
                }
                self.cold_active_candidates(kind, batch.min(cold as usize), cold_heat)
            }
            // Unconfigured or differently-configured ledger: legacy dense
            // walk over all four lists.
            _ => self.lru_candidates(kind, batch, |p| {
                p.heat < cold_heat && p.flags.contains(PageFlags::ACTIVE)
            }),
        };
        let n = victims.len() as u64;
        for gfn in victims {
            self.lru.deactivate(&mut self.mm, gfn);
        }
        n
    }

    /// First `limit` active-list pages of a tier with heat below
    /// `cold_heat`, in the exact order [`GuestKernel::lru_candidates`]
    /// yields them (anonymous class before file class; inactive lists
    /// cannot match the aging predicate and are skipped).
    fn cold_active_candidates(&self, kind: MemKind, limit: usize, cold_heat: u8) -> Vec<Gfn> {
        let mut out = Vec::with_capacity(limit);
        for class in [crate::lru::LruClass::Anon, crate::lru::LruClass::File] {
            for gfn in self.lru.split(kind, class).active.iter(&self.mm) {
                if out.len() >= limit {
                    return out;
                }
                if self.mm.page(gfn).heat < cold_heat {
                    out.push(gfn);
                }
            }
        }
        out
    }

    /// Balloon inflation: pulls `n` free pages of a tier out of the guest
    /// allocator (to be returned to the VMM). Returns the number actually
    /// reclaimed — pressure may leave fewer free.
    pub fn balloon_inflate(&mut self, kind: MemKind, n: u64) -> u64 {
        let mut got = 0;
        for _ in 0..n {
            match self.raw_alloc(kind) {
                Some(gfn) => {
                    self.mm.set_allocated(gfn, PageType::Dma, 0); // pinned, unlisted
                    self.mm.page_mut(gfn).flags.insert(PageFlags::BALLOONED);
                    self.ballooned[kind].push(gfn);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Balloon deflation: returns up to `n` ballooned pages of a tier to
    /// the allocator. Returns the number released.
    pub fn balloon_deflate(&mut self, kind: MemKind, n: u64) -> u64 {
        let mut freed = 0;
        for _ in 0..n {
            match self.ballooned[kind].pop() {
                Some(gfn) => {
                    self.mm.page_mut(gfn).flags.remove(PageFlags::BALLOONED);
                    self.mm.set_free(gfn);
                    self.raw_free(gfn);
                    freed += 1;
                }
                None => break,
            }
        }
        freed
    }

    /// Pages currently ballooned out of a tier.
    pub fn ballooned_pages(&self, kind: MemKind) -> u64 {
        self.ballooned[kind].len() as u64
    }

    // ---------------------------------------------------------------- swap

    /// Swaps an anonymous page out: remembers its workload state under its
    /// VPN, unmaps it and frees the frame. Returns `false` (and does
    /// nothing) for pages that are not swappable anonymous mappings.
    pub fn swap_out(&mut self, gfn: Gfn) -> bool {
        let page = *self.mm.page(gfn);
        if !page.is_present() || page.page_type != PageType::HeapAnon {
            return false;
        }
        let RMap::Anon(vpn) = page.rmap else {
            return false;
        };
        if self.swap.contains(vpn) {
            return false;
        }
        self.swap.insert(
            vpn,
            SwapEntry {
                heat: page.heat,
                write_heat: page.write_heat,
            },
        );
        self.free_page(gfn); // unmaps the PTE via the reverse map
        true
    }

    /// Swaps one page back in at its original VPN, restoring its workload
    /// state. Returns the new frame, or `None` when the VPN is not on swap
    /// or no tier in `preference` has room.
    pub fn swap_in(&mut self, vpn: u64, preference: &[MemKind]) -> Option<Gfn> {
        let entry = self.swap.remove(vpn)?;
        match self.alloc_page(PageType::HeapAnon, entry.heat, preference) {
            Ok((gfn, _)) => {
                self.pt.map(vpn, gfn);
                self.mm.page_mut(gfn).rmap = RMap::Anon(vpn);
                if entry.write_heat > 0 {
                    self.mm.set_write_heat(gfn, entry.write_heat);
                }
                self.swap.count_swap_in();
                Some(gfn)
            }
            Err(_) => {
                // No room: the slot stays on swap.
                self.swap.insert(vpn, entry);
                None
            }
        }
    }

    /// Swaps in up to `n` pages (balloon deflation fault-ahead). Returns
    /// pages brought back.
    pub fn swap_in_any(&mut self, n: u64, preference: &[MemKind]) -> u64 {
        let mut brought = 0;
        for _ in 0..n {
            let Some(vpn) = self.swap.any_vpn() else { break };
            if self.swap_in(vpn, preference).is_none() {
                break;
            }
            brought += 1;
        }
        brought
    }

    /// Pages currently on swap.
    pub fn swapped_pages(&self) -> u64 {
        self.swap.len()
    }

    /// Sum of the remembered heat of swapped pages (fault-model input).
    pub fn swapped_heat(&self) -> u64 {
        self.swap.total_heat()
    }

    /// Samples the kernel's cumulative subsystem statistics into a
    /// telemetry registry under the `guest.*` namespace.
    ///
    /// Sources are already cumulative, so values are written with
    /// `counter_set` — sampling every epoch is idempotent. Purely
    /// observational: never touches kernel state.
    pub fn export_telemetry(&self, reg: &mut hetero_sim::telemetry::Registry) {
        let (mut requests, mut fast_misses) = (0u64, 0u64);
        for t in PageType::ALL {
            let c = self.stats.cumulative(t);
            requests += c.requests;
            fast_misses += c.fast_misses();
        }
        reg.counter_set("guest.alloc.requests", requests);
        reg.counter_set("guest.alloc.fast_misses", fast_misses);
        reg.counter_set("guest.pcp.fast_path_hits", self.pcp.fast_path_hits);
        reg.counter_set("guest.pcp.refills", self.pcp.refills);
        let lt = self.lru.transitions();
        reg.counter_set("guest.lru.insert_active", lt.insert_active);
        reg.counter_set("guest.lru.insert_inactive", lt.insert_inactive);
        reg.counter_set("guest.lru.removals", lt.removals);
        reg.counter_set("guest.lru.activations", lt.activations);
        reg.counter_set("guest.lru.deactivations", lt.deactivations);
        reg.counter_set("guest.lru.reclaimed", lt.reclaimed);
        for slab in [&self.skbuff, &self.fs_meta] {
            let prefix = format!("guest.slab.{}", slab.name());
            reg.counter_set(&format!("{prefix}.allocs"), slab.total_allocs());
            reg.counter_set(&format!("{prefix}.frees"), slab.total_frees());
            reg.counter_set(&format!("{prefix}.objects"), slab.objects());
            reg.counter_set(&format!("{prefix}.pages"), slab.pages());
        }
        reg.counter_set("guest.migrations", self.migrations);
        reg.counter_set("guest.swap.pages", self.swapped_pages());
        for (kind, label) in [(MemKind::Fast, "fast"), (MemKind::Slow, "slow")] {
            if self.total_frames(kind) > 0 {
                reg.gauge_set(
                    &format!("guest.free_fraction.{label}"),
                    self.free_fraction(kind),
                );
            }
        }
    }

    // ---------------------------------------------------------- inspection

    /// Batched scan of resident pages across the whole guest-frame space,
    /// as a VMM walking its per-VM reverse map would see them. Starts at
    /// `cursor`, visits at most `limit` *frames* (present or not), and
    /// returns the present ones plus the wrapped-around next cursor.
    pub fn scan_resident(&self, cursor: u64, limit: u64) -> (Vec<Gfn>, u64) {
        let mut out = Vec::new();
        let next = self.scan_resident_into(cursor, limit, &mut out);
        (out, next)
    }

    /// As [`GuestKernel::scan_resident`], but appends present frames to a
    /// caller-owned buffer (per-scan scratch reuse) and returns only the
    /// wrapped-around next cursor.
    pub fn scan_resident_into(&self, cursor: u64, limit: u64, out: &mut Vec<Gfn>) -> u64 {
        let total = self.mm.total_frames();
        if total == 0 || limit == 0 {
            return cursor;
        }
        let mut pos = cursor % total;
        for _ in 0..limit.min(total) {
            let gfn = Gfn(pos);
            if self.mm.page(gfn).is_present() {
                out.push(gfn);
            }
            pos = (pos + 1) % total;
        }
        pos
    }

    /// Collects up to `limit` migration candidates from a tier's LRU lists
    /// (active first — hot pages worth promoting), filtering by predicate.
    pub fn lru_candidates(
        &self,
        kind: MemKind,
        limit: usize,
        mut keep: impl FnMut(&crate::page::Page) -> bool,
    ) -> Vec<Gfn> {
        let mut out = Vec::new();
        for class in [crate::lru::LruClass::Anon, crate::lru::LruClass::File] {
            let split = self.lru.split(kind, class);
            for list in [&split.active, &split.inactive] {
                for gfn in list.iter(&self.mm) {
                    if out.len() >= limit {
                        return out;
                    }
                    if keep(self.mm.page(gfn)) {
                        out.push(gfn);
                    }
                }
            }
        }
        out
    }
}

hetero_sim::impl_snap!(struct GuestConfig { frames, cpus, page_size });

hetero_sim::impl_snap!(struct GuestKernel {
    config, mm, buddies, pcp, lru, space, pt, cache, skbuff, fs_meta,
    stats, swap, ballooned, pt_backing, next_cpu, migrations
});

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kernel() -> GuestKernel {
        GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 64), (MemKind::Slow, 256)],
            cpus: 2,
            page_size: 4096,
        })
    }

    #[test]
    fn alloc_respects_preference_order() {
        let mut k = small_kernel();
        let (_, kind) = k
            .alloc_page(PageType::HeapAnon, 10, &[MemKind::Fast, MemKind::Slow])
            .unwrap();
        assert_eq!(kind, MemKind::Fast);
        let (_, kind) = k
            .alloc_page(PageType::HeapAnon, 10, &[MemKind::Slow])
            .unwrap();
        assert_eq!(kind, MemKind::Slow);
    }

    #[test]
    fn alloc_falls_back_when_fast_exhausted() {
        let mut k = small_kernel();
        // Exhaust FastMem.
        while k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Fast])
            .is_ok()
        {}
        let (_, kind) = k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Fast, MemKind::Slow])
            .unwrap();
        assert_eq!(kind, MemKind::Slow);
        // Stats recorded the miss.
        assert!(k.stats().window(PageType::HeapAnon).fast_misses() >= 1);
    }

    #[test]
    fn alloc_failure_is_reported_and_counted() {
        let mut k = small_kernel();
        while k
            .alloc_page(PageType::Slab, 1, &[MemKind::Fast])
            .is_ok()
        {}
        let err = k
            .alloc_page(PageType::Slab, 1, &[MemKind::Fast])
            .unwrap_err();
        assert_eq!(err.page_type, PageType::Slab);
        assert!(err.to_string().contains("no tier"));
    }

    #[test]
    fn free_page_returns_capacity() {
        let mut k = small_kernel();
        let before = k.free_frames(MemKind::Fast);
        let (gfn, _) = k
            .alloc_page(PageType::HeapAnon, 5, &[MemKind::Fast])
            .unwrap();
        assert_eq!(k.free_frames(MemKind::Fast), before - 1);
        k.free_page(gfn);
        assert_eq!(k.free_frames(MemKind::Fast), before);
        assert_eq!(k.memmap().resident_on(MemKind::Fast), 0);
    }

    #[test]
    fn bulk_slab_and_page_in_paths_match_scalar_state() {
        let mut scalar = small_kernel();
        let mut bulk = small_kernel();
        let pref = [MemKind::Fast, MemKind::Slow];
        // Mixed object/IO traffic, including a free phase and a second
        // alloc phase that must carve the same recycled partial slabs.
        for round in 0..3 {
            let allocs = 40 + round * 17;
            for _ in 0..allocs {
                let _ = scalar.slab_alloc(SlabClass::FsMeta, 224, &pref);
                let _ = scalar.slab_alloc(SlabClass::Skbuff, 224, &pref);
            }
            assert_eq!(bulk.slab_alloc_bulk(SlabClass::FsMeta, allocs, 224, &pref), allocs);
            assert_eq!(bulk.slab_alloc_bulk(SlabClass::Skbuff, allocs, 224, &pref), allocs);
            let frees = 25 + round * 11;
            let mut got = 0;
            for _ in 0..frees {
                if scalar.slab_free_any(SlabClass::FsMeta) {
                    got += 1;
                }
            }
            assert_eq!(bulk.slab_free_bulk(SlabClass::FsMeta, frees), got);
            let base = round * 10;
            let mut ok = 0;
            for off in base..base + 10 {
                if scalar.page_in(FileId(3), off, 224, &pref).is_ok() {
                    ok += 1;
                }
            }
            assert_eq!(bulk.page_in_many(FileId(3), base, 10, 224, &pref), ok);
        }
        // Full observable state must match: placement, stats, residency.
        for kind in [MemKind::Fast, MemKind::Slow] {
            assert_eq!(scalar.free_frames(kind), bulk.free_frames(kind), "{kind}");
            assert_eq!(
                scalar.memmap().resident_on(kind),
                bulk.memmap().resident_on(kind),
                "{kind}"
            );
        }
        for class in [SlabClass::FsMeta, SlabClass::Skbuff] {
            assert_eq!(scalar.slab_objects(class), bulk.slab_objects(class));
        }
        assert_eq!(
            scalar.stats().overall_miss_ratio(),
            bulk.stats().overall_miss_ratio()
        );
        for t in [PageType::Slab, PageType::NetBuf, PageType::PageCache] {
            assert_eq!(
                scalar.memmap().resident_pages(t),
                bulk.memmap().resident_pages(t),
                "{t:?}"
            );
        }
    }

    #[test]
    fn bulk_slab_alloc_records_misses_on_exhaustion() {
        let mut scalar = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 32)],
            cpus: 1,
            page_size: 4096,
        });
        let mut bulk = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 32)],
            cpus: 1,
            page_size: 4096,
        });
        // Far more objects than 32 frames can back: both paths run into
        // exhaustion and must record identical allocation statistics.
        let n = 40 * 16;
        let mut ok = 0;
        for _ in 0..n {
            if scalar.slab_alloc(SlabClass::FsMeta, 224, &[MemKind::Fast]).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(bulk.slab_alloc_bulk(SlabClass::FsMeta, n, 224, &[MemKind::Fast]), ok);
        assert!(ok < n, "exhaustion must actually occur");
        assert_eq!(
            scalar.stats().overall_miss_ratio(),
            bulk.stats().overall_miss_ratio()
        );
        assert_eq!(scalar.free_frames(MemKind::Fast), bulk.free_frames(MemKind::Fast));
    }

    #[test]
    fn mmap_heap_maps_and_accounts() {
        let mut k = small_kernel();
        let heats = vec![200u8; 16];
        let (vma, placed) = k
            .mmap_heap(16, heats, &[MemKind::Fast, MemKind::Slow])
            .unwrap();
        assert_eq!(placed[MemKind::Fast], 16);
        assert_eq!(k.page_table().mapped_pages(), 16);
        assert_eq!(k.memmap().resident_pages(PageType::HeapAnon), 16);
        // Page-table backing pages were accounted too.
        assert!(k.memmap().resident_pages(PageType::PageTable) > 0);
        let freed = k.munmap(vma.start, vma.pages);
        assert_eq!(freed, 16);
        assert_eq!(k.memmap().resident_pages(PageType::HeapAnon), 0);
        assert_eq!(k.page_table().mapped_pages(), 0);
    }

    #[test]
    fn mmap_heap_rolls_back_on_exhaustion() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 32)],
            cpus: 1,
            page_size: 4096,
        });
        let resident_before = k.memmap().resident_on(MemKind::Fast);
        let err = k.mmap_heap(100, std::iter::repeat(1), &[MemKind::Fast]);
        assert!(err.is_err());
        assert_eq!(k.memmap().resident_on(MemKind::Fast), resident_before);
        assert_eq!(k.address_space().mapped_pages(), 0);
    }

    #[test]
    fn page_in_caches_and_hits() {
        let mut k = small_kernel();
        let f = FileId(1);
        let (gfn, hit) = k.page_in(f, 0, 50, &[MemKind::Fast]).unwrap();
        assert!(!hit);
        let (gfn2, hit2) = k.page_in(f, 0, 50, &[MemKind::Fast]).unwrap();
        assert!(hit2);
        assert_eq!(gfn, gfn2);
        // Cached file pages start inactive, re-reference activates.
        assert!(k.memmap().page(gfn).flags.contains(PageFlags::ACTIVE));
        assert_eq!(k.drop_file(f), 1);
        assert_eq!(k.memmap().resident_pages(PageType::PageCache), 0);
    }

    #[test]
    fn io_complete_deactivates_eagerly() {
        let mut k = small_kernel();
        let (gfn, _) = k.page_in(FileId(2), 3, 50, &[MemKind::Fast]).unwrap();
        k.lru.activate(&mut k.mm, gfn);
        k.mark_dirty(gfn);
        k.io_complete(gfn);
        let p = k.memmap().page(gfn);
        assert!(!p.flags.contains(PageFlags::ACTIVE));
        assert!(!p.flags.contains(PageFlags::DIRTY));
    }

    #[test]
    fn slab_objects_share_pages_and_release() {
        let mut k = small_kernel();
        // 512-byte skbuffs: 8 per 4K page.
        let p1 = k
            .slab_alloc(SlabClass::Skbuff, 30, &[MemKind::Fast])
            .unwrap();
        let p2 = k
            .slab_alloc(SlabClass::Skbuff, 30, &[MemKind::Fast])
            .unwrap();
        assert_eq!(p1, p2);
        assert_eq!(k.memmap().resident_pages(PageType::NetBuf), 1);
        k.slab_free(SlabClass::Skbuff, p1);
        assert_eq!(k.memmap().resident_pages(PageType::NetBuf), 1);
        k.slab_free(SlabClass::Skbuff, p2);
        assert_eq!(k.memmap().resident_pages(PageType::NetBuf), 0);
        assert_eq!(k.slab_objects(SlabClass::Skbuff), 0);
    }

    #[test]
    fn migrate_moves_page_and_rewires_pt() {
        let mut k = small_kernel();
        let (vma, _) = k
            .mmap_heap(4, vec![100u8; 4], &[MemKind::Fast, MemKind::Slow])
            .unwrap();
        let gfn = k.page_table().translate(vma.start).unwrap();
        assert_eq!(k.memmap().kind_of(gfn), MemKind::Fast);
        let new = k.migrate_page(gfn, MemKind::Slow).unwrap();
        assert_eq!(k.memmap().kind_of(new), MemKind::Slow);
        assert_eq!(k.page_table().translate(vma.start), Some(new));
        assert_eq!(k.memmap().page(new).heat, 100);
        assert_eq!(k.migrations, 1);
        // Old frame is reusable.
        assert!(!k.memmap().page(gfn).is_present());
    }

    #[test]
    fn migrate_rewires_page_cache() {
        let mut k = small_kernel();
        let f = FileId(9);
        let (gfn, _) = k.page_in(f, 7, 60, &[MemKind::Fast]).unwrap();
        let new = k.migrate_page(gfn, MemKind::Slow).unwrap();
        let (found, hit) = k.page_in(f, 7, 60, &[MemKind::Fast]).unwrap();
        assert!(hit);
        assert_eq!(found, new);
    }

    #[test]
    fn migrate_validity_checks() {
        let mut k = small_kernel();
        let (gfn, _) = k.page_in(FileId(1), 0, 10, &[MemKind::Fast]).unwrap();
        k.mark_dirty(gfn);
        assert_eq!(
            k.migrate_page(gfn, MemKind::Slow),
            Err(MigrateError::DirtyIo)
        );
        k.io_complete(gfn);
        assert_eq!(
            k.migrate_page(gfn, MemKind::Fast),
            Err(MigrateError::AlreadyThere)
        );
        assert!(k.migrate_page(gfn, MemKind::Slow).is_ok());
        assert_eq!(
            k.migrate_page(Gfn(5), MemKind::Slow),
            Err(MigrateError::NotPresent)
        );
    }

    #[test]
    fn migrate_fails_when_target_full() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 64), (MemKind::Slow, 64)],
            cpus: 1,
            page_size: 4096,
        });
        // Fill SlowMem completely.
        while k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Slow])
            .is_ok()
        {}
        let (gfn, _) = k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Fast])
            .unwrap();
        assert_eq!(
            k.migrate_page(gfn, MemKind::Slow),
            Err(MigrateError::TargetFull)
        );
    }

    #[test]
    fn demote_inactive_moves_cold_pages_down() {
        let mut k = small_kernel();
        for i in 0..8 {
            let (gfn, _) = k.page_in(FileId(3), i, 20, &[MemKind::Fast]).unwrap();
            k.io_complete(gfn);
        }
        assert_eq!(k.memmap().residency(PageType::PageCache, MemKind::Fast).pages, 8);
        let moved = k.demote_inactive(MemKind::Fast, 5);
        assert_eq!(moved, 5);
        assert_eq!(k.memmap().residency(PageType::PageCache, MemKind::Slow).pages, 5);
        assert_eq!(k.migrations, 5);
    }

    #[test]
    fn three_tier_kernel_allocates_on_every_tier() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![
                (MemKind::Fast, 32),
                (MemKind::Medium, 64),
                (MemKind::Slow, 128),
            ],
            cpus: 1,
            page_size: 4096,
        });
        for kind in [MemKind::Fast, MemKind::Medium, MemKind::Slow] {
            let (gfn, got) = k.alloc_page(PageType::HeapAnon, 10, &[kind]).unwrap();
            assert_eq!(got, kind);
            assert_eq!(k.memmap().kind_of(gfn), kind);
        }
        // Fallback cascade walks all three tiers.
        while k.alloc_page(PageType::HeapAnon, 1, &[MemKind::Fast]).is_ok() {}
        let (_, got) = k
            .alloc_page(
                PageType::HeapAnon,
                1,
                &[MemKind::Fast, MemKind::Medium, MemKind::Slow],
            )
            .unwrap();
        assert_eq!(got, MemKind::Medium);
    }

    #[test]
    fn typed_demotion_cascades_anon_but_drops_io_to_slowest() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![
                (MemKind::Fast, 64),
                (MemKind::Medium, 64),
                (MemKind::Slow, 128),
            ],
            cpus: 1,
            page_size: 4096,
        });
        // Cold anon pages + released I/O pages on FastMem.
        k.mmap_heap(8, vec![4u8; 8], &[MemKind::Fast]).unwrap();
        for off in 0..8 {
            let (g, _) = k.page_in(FileId(5), off, 224, &[MemKind::Fast]).unwrap();
            k.io_complete(g);
        }
        k.age_lru(MemKind::Fast, 64, 50);
        let moved = k.demote_inactive_typed(MemKind::Fast, 64);
        assert_eq!(moved, 16);
        // §4.3: anon pages stepped one level (Medium); I/O pages went to
        // the slowest tier directly.
        assert_eq!(
            k.memmap().residency(PageType::HeapAnon, MemKind::Medium).pages,
            8
        );
        assert_eq!(
            k.memmap().residency(PageType::PageCache, MemKind::Slow).pages,
            8
        );
        assert_eq!(
            k.memmap().residency(PageType::PageCache, MemKind::Medium).pages,
            0
        );
    }

    #[test]
    fn two_tier_typed_demotion_matches_plain() {
        let mut k = small_kernel();
        for off in 0..6 {
            let (g, _) = k.page_in(FileId(3), off, 20, &[MemKind::Fast]).unwrap();
            k.io_complete(g);
        }
        let moved = k.demote_inactive_typed(MemKind::Fast, 6);
        assert_eq!(moved, 6);
        assert_eq!(
            k.memmap().residency(PageType::PageCache, MemKind::Slow).pages,
            6
        );
    }

    #[test]
    fn balloon_inflate_deflate_roundtrip() {
        let mut k = small_kernel();
        let free = k.free_frames(MemKind::Fast);
        let got = k.balloon_inflate(MemKind::Fast, 10);
        assert_eq!(got, 10);
        assert_eq!(k.ballooned_pages(MemKind::Fast), 10);
        assert_eq!(k.free_frames(MemKind::Fast), free - 10);
        let back = k.balloon_deflate(MemKind::Fast, 4);
        assert_eq!(back, 4);
        assert_eq!(k.free_frames(MemKind::Fast), free - 6);
        // Deflating more than ballooned caps out.
        assert_eq!(k.balloon_deflate(MemKind::Fast, 100), 6);
    }

    #[test]
    fn balloon_inflate_caps_at_free_memory() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 64)],
            cpus: 1,
            page_size: 4096,
        });
        let got = k.balloon_inflate(MemKind::Fast, 1000);
        assert_eq!(got, 64);
        assert_eq!(k.free_frames(MemKind::Fast), 0);
    }

    #[test]
    fn lru_candidates_filters() {
        let mut k = small_kernel();
        k.mmap_heap(6, vec![250u8; 6], &[MemKind::Slow]).unwrap();
        let hot = k.lru_candidates(MemKind::Slow, 10, |p| p.heat > 200);
        assert_eq!(hot.len(), 6);
        let none = k.lru_candidates(MemKind::Slow, 10, |p| p.heat < 10);
        // Page-table backing pages are unlisted, so only heap pages appear.
        assert!(none.iter().all(|&g| k.memmap().page(g).heat < 10));
    }

    #[test]
    fn buffer_page_in_and_drop_roundtrip() {
        let mut k = small_kernel();
        let f = FileId(100);
        let (gfn, hit) = k.buffer_page_in(f, 0, 60, &[MemKind::Fast]).unwrap();
        assert!(!hit);
        assert_eq!(k.memmap().page(gfn).page_type, PageType::BufferCache);
        let (again, hit2) = k.buffer_page_in(f, 0, 60, &[MemKind::Fast]).unwrap();
        assert!(hit2);
        assert_eq!(gfn, again);
        assert!(k.drop_cache_page(f, 0));
        assert!(!k.drop_cache_page(f, 0), "second drop finds nothing");
        assert_eq!(k.memmap().resident_pages(PageType::BufferCache), 0);
    }

    #[test]
    fn buffer_page_survives_migration_by_identity() {
        let mut k = small_kernel();
        let f = FileId(100);
        let (gfn, _) = k.buffer_page_in(f, 3, 60, &[MemKind::Fast]).unwrap();
        k.migrate_page(gfn, MemKind::Slow).unwrap();
        assert!(k.drop_cache_page(f, 3), "identity survives migration");
    }

    #[test]
    fn slab_free_any_releases_pages_eventually() {
        let mut k = small_kernel();
        for _ in 0..16 {
            k.slab_alloc(SlabClass::Skbuff, 30, &[MemKind::Fast]).unwrap();
        }
        assert_eq!(k.slab_objects(SlabClass::Skbuff), 16);
        for _ in 0..16 {
            assert!(k.slab_free_any(SlabClass::Skbuff));
        }
        assert!(!k.slab_free_any(SlabClass::Skbuff));
        assert_eq!(k.memmap().resident_pages(PageType::NetBuf), 0);
    }

    #[test]
    fn slab_page_migration_rehomes_cache() {
        let mut k = small_kernel();
        let page = k
            .slab_alloc(SlabClass::Skbuff, 30, &[MemKind::Fast])
            .unwrap();
        let new = k.migrate_page(page, MemKind::Slow).unwrap();
        assert_ne!(page, new);
        // Freeing through the cache still works (bookkeeping rehomed).
        assert!(k.slab_free_any(SlabClass::Skbuff));
        assert_eq!(k.memmap().resident_pages(PageType::NetBuf), 0);
    }

    #[test]
    fn age_lru_deactivates_cold_active_pages() {
        let mut k = small_kernel();
        k.mmap_heap(4, vec![5u8; 4], &[MemKind::Fast]).unwrap();
        k.mmap_heap(4, vec![250u8; 4], &[MemKind::Fast]).unwrap();
        let aged = k.age_lru(MemKind::Fast, 100, 50);
        assert_eq!(aged, 4, "only the cold pages age out");
        assert_eq!(k.age_lru(MemKind::Fast, 100, 50), 0, "idempotent");
    }

    #[test]
    fn swap_out_in_roundtrip_preserves_state() {
        let mut k = small_kernel();
        let (vma, _) = k
            .mmap_heap(4, vec![200u8; 4], &[MemKind::Fast])
            .unwrap();
        let vpn = vma.start;
        let gfn = k.page_table().translate(vpn).unwrap();
        k.set_page_write_heat(gfn, 150);
        let free_before = k.free_frames(MemKind::Fast);
        assert!(k.swap_out(gfn));
        assert_eq!(k.swapped_pages(), 1);
        assert_eq!(k.swapped_heat(), 200);
        assert_eq!(k.page_table().translate(vpn), None, "PTE cleared");
        assert_eq!(k.free_frames(MemKind::Fast), free_before + 1);
        let back = k.swap_in(vpn, &[MemKind::Fast]).unwrap();
        assert_eq!(k.page_table().translate(vpn), Some(back));
        let p = k.memmap().page(back);
        assert_eq!(p.heat, 200);
        assert_eq!(p.write_heat, 150);
        assert_eq!(k.swapped_pages(), 0);
    }

    #[test]
    fn swap_rejects_non_anon_pages() {
        let mut k = small_kernel();
        let (cache, _) = k.page_in(FileId(1), 0, 60, &[MemKind::Fast]).unwrap();
        assert!(!k.swap_out(cache), "file pages are not swapped");
        let page = k
            .slab_alloc(SlabClass::Skbuff, 60, &[MemKind::Fast])
            .unwrap();
        assert!(!k.swap_out(page), "slab pages are not swapped");
        assert_eq!(k.swapped_pages(), 0);
    }

    #[test]
    fn munmap_discards_swap_slots() {
        let mut k = small_kernel();
        let (vma, _) = k
            .mmap_heap(4, vec![100u8; 4], &[MemKind::Fast])
            .unwrap();
        for vpn in vma.start..vma.end() {
            let gfn = k.page_table().translate(vpn).unwrap();
            assert!(k.swap_out(gfn));
        }
        assert_eq!(k.swapped_pages(), 4);
        let freed = k.munmap(vma.start, vma.pages);
        assert_eq!(freed, 4, "swap slots count as released pages");
        assert_eq!(k.swapped_pages(), 0);
        // Swap-in after discard finds nothing.
        assert!(k.swap_in(vma.start, &[MemKind::Fast]).is_none());
    }

    #[test]
    fn swap_in_any_respects_capacity() {
        let mut k = GuestKernel::new(GuestConfig {
            frames: vec![(MemKind::Fast, 32)],
            cpus: 1,
            page_size: 4096,
        });
        let (vma, _) = k
            .mmap_heap(8, vec![100u8; 8], &[MemKind::Fast])
            .unwrap();
        for vpn in vma.start..vma.end() {
            let gfn = k.page_table().translate(vpn).unwrap();
            k.swap_out(gfn);
        }
        // Consume all free memory so only part of the swap fits back.
        while k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Fast])
            .is_ok()
        {}
        assert_eq!(k.swap_in_any(8, &[MemKind::Fast]), 0);
        assert_eq!(k.swapped_pages(), 8, "slots survive a failed swap-in");
    }

    #[test]
    fn forced_migration_ignores_guest_state() {
        let mut k = small_kernel();
        let (gfn, _) = k.page_in(FileId(1), 0, 10, &[MemKind::Fast]).unwrap();
        k.mark_dirty(gfn);
        // The guest-checked path refuses; the VMM path migrates anyway.
        assert_eq!(k.migrate_page(gfn, MemKind::Slow), Err(MigrateError::DirtyIo));
        let new = k.migrate_page_forced(gfn, MemKind::Slow).unwrap();
        assert!(k.memmap().page(new).flags.contains(PageFlags::DIRTY));
        assert_eq!(k.memmap().kind_of(new), MemKind::Slow);
        // Physical impossibilities still fail.
        assert_eq!(
            k.migrate_page_forced(new, MemKind::Slow),
            Err(MigrateError::AlreadyThere)
        );
    }

    #[test]
    fn scan_resident_wraps_and_filters() {
        let mut k = small_kernel();
        let (a, _) = k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Fast])
            .unwrap();
        let (b, _) = k
            .alloc_page(PageType::HeapAnon, 1, &[MemKind::Slow])
            .unwrap();
        let total = k.memmap().total_frames();
        let (found, next) = k.scan_resident(0, total);
        assert!(found.contains(&a) && found.contains(&b));
        assert_eq!(found.len(), 2);
        assert_eq!(next, 0, "full scan wraps to start");
        // Batched scan makes progress.
        let (_, next) = k.scan_resident(0, 10);
        assert_eq!(next, 10);
    }

    #[test]
    fn free_fraction_tracks_pressure() {
        let mut k = small_kernel();
        assert!((k.free_fraction(MemKind::Fast) - 1.0).abs() < 1e-12);
        k.balloon_inflate(MemKind::Fast, 32);
        assert!((k.free_fraction(MemKind::Fast) - 0.5).abs() < 1e-12);
        assert_eq!(k.free_fraction(MemKind::Medium), 0.0);
    }
}
