//! The guest swap subsystem.
//!
//! When ballooning squeezes a guest below its footprint (§4.2's
//! overcommit), anonymous pages spill to disk: the page is unmapped, its
//! workload state is remembered under its *virtual* page number, and the
//! frame is freed. A later fault (or balloon deflation) swaps the page back
//! in. Keying by VPN keeps entries stable across tier migrations and lets
//! `munmap` drop dead swap slots without I/O — exactly the semantics the
//! balloon drivers of §3.1/§4.2 rely on ("balloon drivers first use
//! HeteroOS-LRU to find inactive pages, and if not, swap pages to the
//! disk").

use std::collections::BTreeMap;

/// State remembered for one swapped-out page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapEntry {
    /// Workload heat at swap-out (restored at swap-in).
    pub heat: u8,
    /// Workload write heat at swap-out.
    pub write_heat: u8,
}

/// The swap map: virtual page number → remembered page state.
///
/// Backed by a `BTreeMap` so every observation of it — in particular
/// [`SwapMap::any_vpn`], which picks the next page for bulk swap-in — is
/// fully determined by the entries themselves. A hash map's iteration
/// order varies per process and per instance, which let the swap-in order
/// (and through it, entire multi-VM runs) differ between otherwise
/// identical executions.
///
/// # Examples
///
/// ```
/// use hetero_guest::swap::{SwapEntry, SwapMap};
///
/// let mut swap = SwapMap::new();
/// swap.insert(42, SwapEntry { heat: 4, write_heat: 1 });
/// assert_eq!(swap.len(), 1);
/// assert!(swap.contains(42));
/// assert_eq!(swap.remove(42).map(|e| e.heat), Some(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SwapMap {
    entries: BTreeMap<u64, SwapEntry>,
    /// Pages ever swapped out.
    pub swap_outs: u64,
    /// Pages ever swapped back in.
    pub swap_ins: u64,
}

impl SwapMap {
    /// Creates an empty swap map.
    pub fn new() -> Self {
        SwapMap::default()
    }

    /// Pages currently on swap.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True when nothing is swapped out.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when `vpn` has a swap slot.
    pub fn contains(&self, vpn: u64) -> bool {
        self.entries.contains_key(&vpn)
    }

    /// Records a swapped-out page.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` already has a slot (a page cannot be on swap twice).
    pub fn insert(&mut self, vpn: u64, entry: SwapEntry) {
        let prev = self.entries.insert(vpn, entry);
        assert!(prev.is_none(), "vpn {vpn:#x} is already on swap");
        self.swap_outs += 1;
    }

    /// Removes and returns a slot (swap-in, or discard on unmap).
    pub fn remove(&mut self, vpn: u64) -> Option<SwapEntry> {
        self.entries.remove(&vpn)
    }

    /// Removes every slot in `[start, start + pages)` without counting them
    /// as swap-ins (the data died with the mapping). Returns slots dropped.
    pub fn discard_range(&mut self, start: u64, pages: u64) -> u64 {
        let mut dropped = 0;
        for vpn in start..start + pages {
            if self.entries.remove(&vpn).is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// The smallest swapped VPN (for bulk swap-in), or `None` when empty.
    /// Deterministic: repeated calls over the same entries always walk
    /// pages in ascending VPN order.
    pub fn any_vpn(&self) -> Option<u64> {
        self.entries.keys().next().copied()
    }

    /// Iterates every swap slot in ascending VPN order (invariant-audit
    /// input: swapped pages must not still be mapped).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SwapEntry)> + '_ {
        self.entries.iter().map(|(&vpn, e)| (vpn, e))
    }

    /// Sum of the remembered heat of all swapped pages (drives the fault
    /// model: cold pages on swap attract few accesses).
    pub fn total_heat(&self) -> u64 {
        self.entries.values().map(|e| e.heat as u64).sum()
    }

    /// Marks one page swapped back in (bookkeeping counter).
    pub(crate) fn count_swap_in(&mut self) {
        self.swap_ins += 1;
    }
}

hetero_sim::impl_snap!(struct SwapEntry { heat, write_heat });

hetero_sim::impl_snap!(struct SwapMap { entries, swap_outs, swap_ins });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = SwapMap::new();
        assert!(s.is_empty());
        s.insert(10, SwapEntry { heat: 7, write_heat: 3 });
        assert!(s.contains(10));
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_heat(), 7);
        let e = s.remove(10).expect("present");
        assert_eq!(e.write_heat, 3);
        assert!(s.is_empty());
        assert_eq!(s.swap_outs, 1);
    }

    #[test]
    fn discard_range_drops_only_covered_slots() {
        let mut s = SwapMap::new();
        for vpn in [5u64, 6, 7, 20] {
            s.insert(vpn, SwapEntry { heat: 1, write_heat: 0 });
        }
        assert_eq!(s.discard_range(5, 3), 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(20));
        assert_eq!(s.swap_ins, 0, "discards are not swap-ins");
    }

    #[test]
    fn any_vpn_finds_an_entry() {
        let mut s = SwapMap::new();
        assert_eq!(s.any_vpn(), None);
        s.insert(99, SwapEntry { heat: 1, write_heat: 1 });
        assert_eq!(s.any_vpn(), Some(99));
    }

    #[test]
    #[should_panic(expected = "already on swap")]
    fn double_swap_out_panics() {
        let mut s = SwapMap::new();
        s.insert(1, SwapEntry { heat: 1, write_heat: 0 });
        s.insert(1, SwapEntry { heat: 2, write_heat: 0 });
    }
}
