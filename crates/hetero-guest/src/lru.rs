//! Split active/inactive LRU lists, per memory tier — the substrate of
//! HeteroOS-LRU (§3.3).
//!
//! Linux keeps an approximate split LRU (active list of recently-used pages,
//! inactive list of cold pages) per zone, triggered by *whole-system* memory
//! pressure. HeteroOS extends this with:
//!
//! 1. **memory-type-specific thresholds** — each tier has its own
//!    replacement trigger instead of global pressure;
//! 2. **eager state tracking** — active→inactive transitions are acted on
//!    immediately (released I/O pages and unmapped ranges are demoted out of
//!    FastMem at once) instead of waiting for a lazy reclaim scan.
//!
//! Lists are intrusive: the links live in the [`Page`] descriptors, so
//! membership costs no allocation and removal is O(1), like the kernel.

use hetero_mem::MemKind;

use crate::memmap::MemMap;
use crate::page::{Gfn, Page, PageFlags, PageType};

/// Which LRU a page class belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LruClass {
    /// Anonymous/heap pages.
    Anon,
    /// File-backed and kernel-buffer pages (page cache, buffer cache, slab,
    /// network buffers).
    File,
}

impl LruClass {
    /// The LRU class of a page type, or `None` for unevictable types
    /// (page-table and DMA pages are pinned, §4.1).
    pub fn of(page_type: PageType) -> Option<LruClass> {
        match page_type {
            PageType::HeapAnon => Some(LruClass::Anon),
            PageType::PageCache | PageType::BufferCache | PageType::Slab | PageType::NetBuf => {
                Some(LruClass::File)
            }
            PageType::PageTable | PageType::Dma => None,
        }
    }
}

/// One intrusive doubly-linked list of pages.
#[derive(Debug, Clone, Copy, Default)]
pub struct LruList {
    head: Option<Gfn>,
    tail: Option<Gfn>,
    len: u64,
}

impl LruList {
    /// Number of pages on the list.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a page at the head (most-recently-used end).
    ///
    /// # Panics
    ///
    /// Panics if the page is already on some LRU list.
    pub fn push_front(&mut self, mm: &mut MemMap, gfn: Gfn) {
        {
            let p = mm.page_mut(gfn);
            assert!(
                !p.flags.contains(PageFlags::LRU),
                "{gfn} is already on an LRU list"
            );
            p.flags.insert(PageFlags::LRU);
            p.lru_prev = None;
            p.lru_next = self.head;
        }
        if let Some(old_head) = self.head {
            mm.page_mut(old_head).lru_prev = Some(gfn);
        }
        self.head = Some(gfn);
        if self.tail.is_none() {
            self.tail = Some(gfn);
        }
        self.len += 1;
    }

    /// Unlinks a page from this list.
    ///
    /// # Panics
    ///
    /// Panics if the page is not on an LRU list. (Membership of *this* list
    /// is the caller's invariant — the registry guarantees it.)
    pub fn remove(&mut self, mm: &mut MemMap, gfn: Gfn) {
        let (prev, next) = {
            let p = mm.page_mut(gfn);
            assert!(p.flags.contains(PageFlags::LRU), "{gfn} is not on an LRU");
            p.flags.remove(PageFlags::LRU);
            let links = (p.lru_prev, p.lru_next);
            p.lru_prev = None;
            p.lru_next = None;
            links
        };
        match prev {
            Some(p) => mm.page_mut(p).lru_next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => mm.page_mut(n).lru_prev = prev,
            None => self.tail = prev,
        }
        self.len -= 1;
    }

    /// The most-recently-used page (head) without removing it.
    pub fn peek_front(&self) -> Option<Gfn> {
        self.head
    }

    /// Completes a head-insert whose descriptor half (`LRU` flag,
    /// `lru_prev = None`, `lru_next` = this list's head) was pre-written
    /// by [`MemMap::set_allocated_linked`] — the bulk allocators' fused
    /// equivalent of [`LruList::push_front`].
    pub fn push_front_prelinked(&mut self, mm: &mut MemMap, gfn: Gfn) {
        debug_assert!(mm.page(gfn).flags.contains(PageFlags::LRU));
        debug_assert_eq!(mm.page(gfn).lru_prev, None);
        debug_assert_eq!(mm.page(gfn).lru_next, self.head);
        if let Some(old_head) = self.head {
            mm.page_mut(old_head).lru_prev = Some(gfn);
        }
        self.head = Some(gfn);
        if self.tail.is_none() {
            self.tail = Some(gfn);
        }
        self.len += 1;
    }

    /// Removes and returns the tail (least-recently-used) page.
    pub fn pop_back(&mut self, mm: &mut MemMap) -> Option<Gfn> {
        let tail = self.tail?;
        self.remove(mm, tail);
        Some(tail)
    }

    /// The least-recently-used page without removing it.
    pub fn peek_back(&self) -> Option<Gfn> {
        self.tail
    }

    /// Iterates from MRU to LRU (for diagnostics/tests).
    pub fn iter<'a>(&'a self, mm: &'a MemMap) -> impl Iterator<Item = Gfn> + 'a {
        std::iter::successors(self.head, move |&g| mm.page(g).lru_next)
    }
}

/// Active + inactive list pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitLru {
    /// Recently-used pages.
    pub active: LruList,
    /// Cold pages — reclaim candidates.
    pub inactive: LruList,
}

impl SplitLru {
    /// Pages across both lists.
    pub fn len(&self) -> u64 {
        self.active.len() + self.inactive.len()
    }

    /// True when both lists are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-(tier, class) LRU registry of one guest.
///
/// # Examples
///
/// ```
/// use hetero_guest::lru::{LruRegistry, LruClass};
/// use hetero_guest::memmap::MemMap;
/// use hetero_guest::page::{Gfn, PageType};
/// use hetero_mem::MemKind;
///
/// let mut mm = MemMap::new(&[(MemKind::Fast, 8), (MemKind::Slow, 8)]);
/// let mut lru = LruRegistry::new();
/// mm.set_allocated(Gfn(0), PageType::HeapAnon, 100);
/// lru.insert_active(&mut mm, Gfn(0));
/// assert_eq!(lru.split(MemKind::Fast, LruClass::Anon).active.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruRegistry {
    // Indexed [kind.tier()][class as anon=0/file=1].
    lists: [[SplitLru; 2]; 3],
    transitions: LruTransitionStats,
}

/// Cumulative LRU state-transition counts — the raw material for the
/// telemetry registry's `guest.lru.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruTransitionStats {
    /// Pages inserted on an active list.
    pub insert_active: u64,
    /// Pages inserted on an inactive list.
    pub insert_inactive: u64,
    /// Pages unlinked (free, migrate-out, reclaim precursor).
    pub removals: u64,
    /// Inactive→active promotions (re-reference).
    pub activations: u64,
    /// Active→inactive demotions (eager transitions + balancing).
    pub deactivations: u64,
    /// Pages reclaimed off inactive tails by `shrink_inactive`.
    pub reclaimed: u64,
}

fn class_index(c: LruClass) -> usize {
    match c {
        LruClass::Anon => 0,
        LruClass::File => 1,
    }
}

impl LruRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        LruRegistry::default()
    }

    /// The split LRU for one tier and class.
    pub fn split(&self, kind: MemKind, class: LruClass) -> &SplitLru {
        &self.lists[kind.tier() as usize][class_index(class)]
    }

    fn split_mut(&mut self, kind: MemKind, class: LruClass) -> &mut SplitLru {
        &mut self.lists[kind.tier() as usize][class_index(class)]
    }

    fn locate(page: &Page) -> Option<(MemKind, LruClass)> {
        LruClass::of(page.page_type).map(|c| (page.kind, c))
    }

    /// The list a fresh page of `(kind, class)` joins — bulk-path helper
    /// paired with [`MemMap::set_allocated_linked`],
    /// [`LruList::push_front_prelinked`] and the `note_fresh_*`
    /// transition tallies.
    pub fn fresh_list_mut(&mut self, kind: MemKind, class: LruClass, active: bool) -> &mut LruList {
        let split = self.split_mut(kind, class);
        if active {
            &mut split.active
        } else {
            &mut split.inactive
        }
    }

    /// Transition accounting for `n` pages inserted via the fused bulk
    /// path (equivalent of `n` [`LruRegistry::insert_active`] or
    /// [`LruRegistry::insert_inactive`] calls).
    pub fn note_fresh_inserts(&mut self, active: bool, n: u64) {
        if active {
            self.transitions.insert_active += n;
        } else {
            self.transitions.insert_inactive += n;
        }
    }

    /// Transition accounting for the fused miss path of a file fault: the
    /// page is born inactive and immediately activated by the I/O filling
    /// it, so a direct active-list insert must tally both transitions.
    pub fn note_fresh_faulted(&mut self, n: u64) {
        self.transitions.insert_inactive += n;
        self.transitions.activations += n;
    }

    /// Inserts a freshly allocated page on its active list (heap pages start
    /// active; Linux starts file pages inactive — see
    /// [`LruRegistry::insert_inactive`]). Unevictable types are ignored.
    pub fn insert_active(&mut self, mm: &mut MemMap, gfn: Gfn) {
        let Some((kind, class)) = Self::locate(mm.page(gfn)) else {
            return;
        };
        mm.set_active(gfn, true);
        self.split_mut(kind, class).active.push_front(mm, gfn);
        self.transitions.insert_active += 1;
    }

    /// Inserts a page on its inactive list.
    pub fn insert_inactive(&mut self, mm: &mut MemMap, gfn: Gfn) {
        let Some((kind, class)) = Self::locate(mm.page(gfn)) else {
            return;
        };
        mm.set_active(gfn, false);
        self.split_mut(kind, class).inactive.push_front(mm, gfn);
        self.transitions.insert_inactive += 1;
    }

    /// Removes a page from whichever list holds it (no-op when unlisted).
    pub fn remove(&mut self, mm: &mut MemMap, gfn: Gfn) {
        if !mm.page(gfn).flags.contains(PageFlags::LRU) {
            return;
        }
        let (kind, class) = Self::locate(mm.page(gfn)).expect("listed page has a class");
        let active = mm.page(gfn).flags.contains(PageFlags::ACTIVE);
        let split = self.split_mut(kind, class);
        if active {
            split.active.remove(mm, gfn);
        } else {
            split.inactive.remove(mm, gfn);
        }
        mm.set_active(gfn, false);
        self.transitions.removals += 1;
    }

    /// Moves an inactive page to the active list (page was re-referenced).
    /// No-op if already active or unlisted.
    pub fn activate(&mut self, mm: &mut MemMap, gfn: Gfn) {
        let flags = mm.page(gfn).flags;
        if !flags.contains(PageFlags::LRU) || flags.contains(PageFlags::ACTIVE) {
            return;
        }
        let (kind, class) = Self::locate(mm.page(gfn)).expect("listed page has a class");
        let split = self.split_mut(kind, class);
        split.inactive.remove(mm, gfn);
        mm.set_active(gfn, true);
        split.active.push_front(mm, gfn);
        self.transitions.activations += 1;
    }

    /// Moves an active page to the inactive list — HeteroOS-LRU's *eager*
    /// transition used on I/O completion and unmap (§3.3). No-op if already
    /// inactive or unlisted.
    pub fn deactivate(&mut self, mm: &mut MemMap, gfn: Gfn) {
        let flags = mm.page(gfn).flags;
        if !flags.contains(PageFlags::LRU) || !flags.contains(PageFlags::ACTIVE) {
            return;
        }
        let (kind, class) = Self::locate(mm.page(gfn)).expect("listed page has a class");
        let split = self.split_mut(kind, class);
        split.active.remove(mm, gfn);
        mm.set_active(gfn, false);
        split.inactive.push_front(mm, gfn);
        self.transitions.deactivations += 1;
    }

    /// Reclaims up to `n` pages from a tier's inactive lists (file pages
    /// first — they are cheapest to drop), removing them from the LRU.
    /// Returns the reclaimed pages, LRU-most first.
    pub fn shrink_inactive(&mut self, mm: &mut MemMap, kind: MemKind, n: u64) -> Vec<Gfn> {
        // Pre-size to the reclaimable count: never over-reserve when the
        // inactive lists hold fewer than `n` pages.
        let available: u64 = [LruClass::File, LruClass::Anon]
            .iter()
            .map(|&c| self.split(kind, c).inactive.len())
            .sum();
        let mut out = Vec::with_capacity(n.min(available) as usize);
        for class in [LruClass::File, LruClass::Anon] {
            while (out.len() as u64) < n {
                match self.split_mut(kind, class).inactive.pop_back(mm) {
                    Some(g) => {
                        // Inactive pages carry no ACTIVE bit; `set_active`
                        // keeps this a ledger-aware no-op.
                        mm.set_active(g, false);
                        out.push(g);
                    }
                    None => break,
                }
            }
        }
        self.transitions.reclaimed += out.len() as u64;
        out
    }

    /// Rebalances a tier: demotes pages from active tails to inactive until
    /// the active list is at most `ratio` of the class total. Returns pages
    /// demoted.
    pub fn balance(&mut self, mm: &mut MemMap, kind: MemKind, ratio: f64) -> u64 {
        let ratio = ratio.clamp(0.0, 1.0);
        let mut demoted = 0;
        for class in [LruClass::Anon, LruClass::File] {
            loop {
                let split = self.split(kind, class);
                let total = split.len();
                if total == 0 || (split.active.len() as f64) <= ratio * total as f64 {
                    break;
                }
                let Some(victim) = self.split(kind, class).active.peek_back() else {
                    break;
                };
                self.deactivate(mm, victim);
                demoted += 1;
            }
        }
        demoted
    }

    /// Total pages listed on one tier (both classes, both lists).
    pub fn listed_on(&self, kind: MemKind) -> u64 {
        self.lists[kind.tier() as usize]
            .iter()
            .map(SplitLru::len)
            .sum()
    }

    /// Cumulative transition counts since creation.
    pub fn transitions(&self) -> &LruTransitionStats {
        &self.transitions
    }
}

hetero_sim::impl_snap!(struct LruList { head, tail, len });

hetero_sim::impl_snap!(struct SplitLru { active, inactive });

hetero_sim::impl_snap!(struct LruTransitionStats {
    insert_active, insert_inactive, removals, activations, deactivations, reclaimed
});

hetero_sim::impl_snap!(struct LruRegistry { lists, transitions });

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemMap, LruRegistry) {
        let mm = MemMap::new(&[(MemKind::Fast, 16), (MemKind::Slow, 16)]);
        (mm, LruRegistry::new())
    }

    fn alloc(mm: &mut MemMap, gfn: u64, t: PageType) -> Gfn {
        let g = Gfn(gfn);
        mm.set_allocated(g, t, 10);
        g
    }

    #[test]
    fn push_remove_pop_maintain_order() {
        let (mut mm, _) = setup();
        let mut list = LruList::default();
        let a = alloc(&mut mm, 0, PageType::HeapAnon);
        let b = alloc(&mut mm, 1, PageType::HeapAnon);
        let c = alloc(&mut mm, 2, PageType::HeapAnon);
        list.push_front(&mut mm, a);
        list.push_front(&mut mm, b);
        list.push_front(&mut mm, c);
        assert_eq!(list.iter(&mm).collect::<Vec<_>>(), vec![c, b, a]);
        assert_eq!(list.peek_back(), Some(a));
        list.remove(&mut mm, b);
        assert_eq!(list.iter(&mm).collect::<Vec<_>>(), vec![c, a]);
        assert_eq!(list.pop_back(&mut mm), Some(a));
        assert_eq!(list.pop_back(&mut mm), Some(c));
        assert_eq!(list.pop_back(&mut mm), None);
        assert!(list.is_empty());
    }

    #[test]
    #[should_panic(expected = "already on an LRU")]
    fn double_insert_panics() {
        let (mut mm, _) = setup();
        let mut list = LruList::default();
        let a = alloc(&mut mm, 0, PageType::HeapAnon);
        list.push_front(&mut mm, a);
        list.push_front(&mut mm, a);
    }

    #[test]
    fn registry_routes_by_tier_and_class() {
        let (mut mm, mut lru) = setup();
        let heap_fast = alloc(&mut mm, 0, PageType::HeapAnon);
        let cache_fast = alloc(&mut mm, 1, PageType::PageCache);
        let heap_slow = alloc(&mut mm, 16, PageType::HeapAnon);
        lru.insert_active(&mut mm, heap_fast);
        lru.insert_inactive(&mut mm, cache_fast);
        lru.insert_active(&mut mm, heap_slow);
        assert_eq!(lru.split(MemKind::Fast, LruClass::Anon).active.len(), 1);
        assert_eq!(lru.split(MemKind::Fast, LruClass::File).inactive.len(), 1);
        assert_eq!(lru.split(MemKind::Slow, LruClass::Anon).active.len(), 1);
        assert_eq!(lru.listed_on(MemKind::Fast), 2);
    }

    #[test]
    fn unevictable_types_are_ignored() {
        let (mut mm, mut lru) = setup();
        let pt = alloc(&mut mm, 0, PageType::PageTable);
        lru.insert_active(&mut mm, pt);
        assert!(!mm.page(pt).flags.contains(PageFlags::LRU));
        assert_eq!(lru.listed_on(MemKind::Fast), 0);
        lru.remove(&mut mm, pt); // no-op, no panic
    }

    #[test]
    fn activate_deactivate_move_between_lists() {
        let (mut mm, mut lru) = setup();
        let g = alloc(&mut mm, 0, PageType::HeapAnon);
        lru.insert_active(&mut mm, g);
        lru.deactivate(&mut mm, g);
        let s = lru.split(MemKind::Fast, LruClass::Anon);
        assert_eq!((s.active.len(), s.inactive.len()), (0, 1));
        lru.activate(&mut mm, g);
        let s = lru.split(MemKind::Fast, LruClass::Anon);
        assert_eq!((s.active.len(), s.inactive.len()), (1, 0));
        // Idempotent:
        lru.activate(&mut mm, g);
        assert_eq!(lru.split(MemKind::Fast, LruClass::Anon).active.len(), 1);
    }

    #[test]
    fn shrink_prefers_file_pages() {
        let (mut mm, mut lru) = setup();
        let anon = alloc(&mut mm, 0, PageType::HeapAnon);
        let file = alloc(&mut mm, 1, PageType::PageCache);
        lru.insert_inactive(&mut mm, anon);
        lru.insert_inactive(&mut mm, file);
        let got = lru.shrink_inactive(&mut mm, MemKind::Fast, 1);
        assert_eq!(got, vec![file]);
        let got = lru.shrink_inactive(&mut mm, MemKind::Fast, 5);
        assert_eq!(got, vec![anon]);
        assert_eq!(lru.listed_on(MemKind::Fast), 0);
    }

    #[test]
    fn balance_enforces_active_ratio() {
        let (mut mm, mut lru) = setup();
        for i in 0..10 {
            let g = alloc(&mut mm, i, PageType::HeapAnon);
            lru.insert_active(&mut mm, g);
        }
        let demoted = lru.balance(&mut mm, MemKind::Fast, 0.5);
        assert_eq!(demoted, 5);
        let s = lru.split(MemKind::Fast, LruClass::Anon);
        assert_eq!((s.active.len(), s.inactive.len()), (5, 5));
        // Already balanced: no further demotion.
        assert_eq!(lru.balance(&mut mm, MemKind::Fast, 0.5), 0);
    }

    #[test]
    fn remove_clears_active_flag() {
        let (mut mm, mut lru) = setup();
        let g = alloc(&mut mm, 0, PageType::HeapAnon);
        lru.insert_active(&mut mm, g);
        lru.remove(&mut mm, g);
        let flags = mm.page(g).flags;
        assert!(!flags.contains(PageFlags::LRU));
        assert!(!flags.contains(PageFlags::ACTIVE));
    }

    #[test]
    fn transition_counters_track_lifecycle() {
        let (mut mm, mut lru) = setup();
        let g = alloc(&mut mm, 0, PageType::HeapAnon);
        lru.insert_active(&mut mm, g);
        lru.deactivate(&mut mm, g);
        lru.activate(&mut mm, g);
        lru.deactivate(&mut mm, g);
        let reclaimed = lru.shrink_inactive(&mut mm, MemKind::Fast, 1);
        assert_eq!(reclaimed.len(), 1);
        let t = *lru.transitions();
        assert_eq!(t.insert_active, 1);
        assert_eq!(t.activations, 1);
        assert_eq!(t.deactivations, 2);
        assert_eq!(t.reclaimed, 1);
        // No-op transitions (already active) are not counted.
        let g2 = alloc(&mut mm, 1, PageType::HeapAnon);
        lru.insert_active(&mut mm, g2);
        lru.activate(&mut mm, g2);
        assert_eq!(lru.transitions().activations, 1);
    }

    #[test]
    fn lru_class_mapping_matches_paper() {
        assert_eq!(LruClass::of(PageType::HeapAnon), Some(LruClass::Anon));
        assert_eq!(LruClass::of(PageType::Slab), Some(LruClass::File));
        assert_eq!(LruClass::of(PageType::NetBuf), Some(LruClass::File));
        assert_eq!(LruClass::of(PageType::Dma), None);
    }
}
