//! A four-level radix page table with accessed/dirty bits.
//!
//! Software hotness tracking works by harvesting and resetting PTE access
//! bits during periodic page-table scans (§2.3). To charge that work
//! honestly, the guest keeps a real 4-level (9 bits/level, x86-64-shaped)
//! radix tree: scans walk actual tables, and the number of *page-table
//! pages* backing the tree feeds the Fig 4 page-type accounting.

use crate::page::Gfn;

/// Bits translated per level.
const LEVEL_BITS: u32 = 9;
/// Entries per table.
const FANOUT: usize = 1 << LEVEL_BITS;
/// Number of levels.
pub const LEVELS: u32 = 4;
/// Maximum virtual page number (exclusive).
pub const VPN_LIMIT: u64 = 1 << (LEVEL_BITS * LEVELS);

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Backing guest frame.
    pub gfn: Gfn,
    /// Hardware access bit (set by touches, cleared by scans).
    pub accessed: bool,
    /// Hardware dirty bit.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
enum Entry {
    Empty,
    Table(Box<Table>),
    Leaf(Pte),
}

#[derive(Debug, Clone)]
struct Table {
    entries: Vec<Entry>,
    used: usize,
}

impl Table {
    fn new() -> Self {
        Table {
            entries: (0..FANOUT).map(|_| Entry::Empty).collect(),
            used: 0,
        }
    }
}

/// A four-level page table.
///
/// # Examples
///
/// ```
/// use hetero_guest::pagetable::PageTable;
/// use hetero_guest::page::Gfn;
///
/// let mut pt = PageTable::new();
/// pt.map(0x1234, Gfn(42));
/// assert_eq!(pt.translate(0x1234), Some(Gfn(42)));
/// pt.touch(0x1234, true);
/// assert!(pt.walk(0x1234).unwrap().dirty);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    root: Box<Table>,
    mapped: u64,
    table_pages: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable::new()
    }
}

impl PageTable {
    /// Creates an empty page table (root table counts as one table page).
    pub fn new() -> Self {
        PageTable {
            root: Box::new(Table::new()),
            mapped: 0,
            table_pages: 1,
        }
    }

    /// Number of mapped leaf entries.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Number of page-table pages backing the tree (including the root).
    pub fn table_pages(&self) -> u64 {
        self.table_pages
    }

    fn index(vpn: u64, level: u32) -> usize {
        ((vpn >> (LEVEL_BITS * level)) & (FANOUT as u64 - 1)) as usize
    }

    /// Maps `vpn → gfn`, replacing any existing mapping.
    ///
    /// Returns the previously mapped frame, if any.
    ///
    /// # Panics
    ///
    /// Panics if `vpn >= VPN_LIMIT`.
    pub fn map(&mut self, vpn: u64, gfn: Gfn) -> Option<Gfn> {
        assert!(vpn < VPN_LIMIT, "vpn {vpn:#x} out of range");
        let mut new_tables = 0;
        let mut table = &mut *self.root;
        for level in (1..LEVELS).rev() {
            let idx = Self::index(vpn, level);
            if matches!(table.entries[idx], Entry::Empty) {
                table.entries[idx] = Entry::Table(Box::new(Table::new()));
                table.used += 1;
                new_tables += 1;
            }
            table = match &mut table.entries[idx] {
                Entry::Table(t) => t,
                _ => unreachable!("interior levels hold tables"),
            };
        }
        let idx = Self::index(vpn, 0);
        let prev = match std::mem::replace(
            &mut table.entries[idx],
            Entry::Leaf(Pte {
                gfn,
                accessed: false,
                dirty: false,
            }),
        ) {
            Entry::Empty => {
                table.used += 1;
                self.mapped += 1;
                None
            }
            Entry::Leaf(old) => Some(old.gfn),
            Entry::Table(_) => unreachable!("leaf level holds PTEs"),
        };
        self.table_pages += new_tables;
        prev
    }

    /// Maps the consecutive range `start .. start + gfns.len()` so that
    /// `start + i` translates to `gfns[i]`, replacing existing mappings.
    ///
    /// End state is identical to calling [`PageTable::map`] per page; the
    /// interior descent is amortised — one walk per 512-entry leaf block
    /// instead of one per page, which is what makes bulk heap faults cheap.
    ///
    /// # Panics
    ///
    /// Panics if the range reaches `VPN_LIMIT`.
    pub fn map_range(&mut self, start: u64, gfns: &[Gfn]) {
        if gfns.is_empty() {
            return;
        }
        let end = start + gfns.len() as u64;
        assert!(end <= VPN_LIMIT, "vpn range {start:#x}..{end:#x} out of range");
        let mut i = 0usize;
        while i < gfns.len() {
            let vpn = start + i as u64;
            // Pages sharing this leaf table: up to the next 512-block edge.
            let block_end = ((vpn >> LEVEL_BITS) + 1) << LEVEL_BITS;
            let n = ((block_end - vpn) as usize).min(gfns.len() - i);
            let mut new_tables = 0;
            let mut table = &mut *self.root;
            for level in (1..LEVELS).rev() {
                let idx = Self::index(vpn, level);
                if matches!(table.entries[idx], Entry::Empty) {
                    table.entries[idx] = Entry::Table(Box::new(Table::new()));
                    table.used += 1;
                    new_tables += 1;
                }
                table = match &mut table.entries[idx] {
                    Entry::Table(t) => t,
                    _ => unreachable!("interior levels hold tables"),
                };
            }
            let base = Self::index(vpn, 0);
            for (j, &gfn) in gfns[i..i + n].iter().enumerate() {
                let leaf = Entry::Leaf(Pte {
                    gfn,
                    accessed: false,
                    dirty: false,
                });
                match std::mem::replace(&mut table.entries[base + j], leaf) {
                    Entry::Empty => {
                        table.used += 1;
                        self.mapped += 1;
                    }
                    Entry::Leaf(_) => {}
                    Entry::Table(_) => unreachable!("leaf level holds PTEs"),
                }
            }
            self.table_pages += new_tables;
            i += n;
        }
    }

    /// Removes the mapping for `vpn`, returning its PTE.
    ///
    /// Empty intermediate tables are freed (the table-page count drops).
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        if vpn >= VPN_LIMIT {
            return None;
        }
        fn recurse(table: &mut Table, vpn: u64, level: u32, freed: &mut u64) -> Option<Pte> {
            let idx = PageTable::index(vpn, level);
            if level == 0 {
                return match std::mem::replace(&mut table.entries[idx], Entry::Empty) {
                    Entry::Leaf(pte) => {
                        table.used -= 1;
                        Some(pte)
                    }
                    other => {
                        table.entries[idx] = other;
                        None
                    }
                };
            }
            let (pte, now_empty) = match &mut table.entries[idx] {
                Entry::Table(child) => {
                    let pte = recurse(child, vpn, level - 1, freed)?;
                    (pte, child.used == 0)
                }
                _ => return None,
            };
            if now_empty {
                table.entries[idx] = Entry::Empty;
                table.used -= 1;
                *freed += 1;
            }
            Some(pte)
        }
        let mut freed = 0;
        let pte = recurse(&mut self.root, vpn, LEVELS - 1, &mut freed)?;
        self.mapped -= 1;
        self.table_pages -= freed;
        Some(pte)
    }

    fn leaf(&self, vpn: u64) -> Option<&Pte> {
        if vpn >= VPN_LIMIT {
            return None;
        }
        let mut table = &*self.root;
        for level in (1..LEVELS).rev() {
            match &table.entries[Self::index(vpn, level)] {
                Entry::Table(t) => table = t,
                _ => return None,
            }
        }
        match &table.entries[Self::index(vpn, 0)] {
            Entry::Leaf(pte) => Some(pte),
            _ => None,
        }
    }

    fn leaf_mut(&mut self, vpn: u64) -> Option<&mut Pte> {
        if vpn >= VPN_LIMIT {
            return None;
        }
        let mut table = &mut *self.root;
        for level in (1..LEVELS).rev() {
            match &mut table.entries[Self::index(vpn, level)] {
                Entry::Table(t) => table = t,
                _ => return None,
            }
        }
        match &mut table.entries[Self::index(vpn, 0)] {
            Entry::Leaf(pte) => Some(pte),
            _ => None,
        }
    }

    /// Full walk: the PTE for `vpn`, if mapped.
    pub fn walk(&self, vpn: u64) -> Option<&Pte> {
        self.leaf(vpn)
    }

    /// Translation only.
    pub fn translate(&self, vpn: u64) -> Option<Gfn> {
        self.leaf(vpn).map(|p| p.gfn)
    }

    /// Simulates a CPU touch: sets the access bit (and dirty for writes).
    ///
    /// Returns `false` when `vpn` is unmapped.
    pub fn touch(&mut self, vpn: u64, write: bool) -> bool {
        match self.leaf_mut(vpn) {
            Some(pte) => {
                pte.accessed = true;
                pte.dirty |= write;
                true
            }
            None => false,
        }
    }

    /// Rebinds a mapped `vpn` to a new frame (migration remap), preserving
    /// bit state. Returns the old frame, or `None` if unmapped.
    pub fn remap(&mut self, vpn: u64, gfn: Gfn) -> Option<Gfn> {
        self.leaf_mut(vpn).map(|pte| {
            let old = pte.gfn;
            pte.gfn = gfn;
            old
        })
    }

    /// Scans `[start, end)`, invoking `f(vpn, accessed, dirty)` for each
    /// mapped page and **clearing both the access and dirty bits** (the
    /// harvest-and-reset cycle of software A/D tracking). Resetting the
    /// dirty bit alongside the access bit is what makes harvested write
    /// heat decay: without it every page written once reads as
    /// write-hot forever. Returns the number of PTEs visited.
    pub fn scan_and_reset(
        &mut self,
        start: u64,
        end: u64,
        mut f: impl FnMut(u64, bool, bool),
    ) -> u64 {
        let mut visited = 0;
        // Walk leaves in range. A faithful scanner walks tables, skipping
        // empty subtrees — mirrored here via recursion.
        fn recurse(
            table: &mut Table,
            level: u32,
            base: u64,
            start: u64,
            end: u64,
            visited: &mut u64,
            f: &mut impl FnMut(u64, bool, bool),
        ) {
            let span = 1u64 << (LEVEL_BITS * level);
            for (i, entry) in table.entries.iter_mut().enumerate() {
                let lo = base + i as u64 * span;
                let hi = lo + span;
                if hi <= start || lo >= end {
                    continue;
                }
                match entry {
                    Entry::Empty => {}
                    Entry::Table(child) => {
                        recurse(child, level - 1, lo, start, end, visited, f)
                    }
                    Entry::Leaf(pte) => {
                        *visited += 1;
                        f(lo, pte.accessed, pte.dirty);
                        pte.accessed = false;
                        pte.dirty = false;
                    }
                }
            }
        }
        recurse(
            &mut self.root,
            LEVELS - 1,
            0,
            start,
            end.min(VPN_LIMIT),
            &mut visited,
            &mut f,
        );
        visited
    }
}

hetero_sim::impl_snap!(struct Pte { gfn, accessed, dirty });

hetero_sim::impl_snap!(enum Entry {
    0 => Empty {},
    1 => Table(table),
    2 => Leaf(pte),
});

hetero_sim::impl_snap!(struct Table { entries, used });

hetero_sim::impl_snap!(struct PageTable { root, mapped, table_pages });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        assert_eq!(pt.map(5, Gfn(50)), None);
        assert_eq!(pt.translate(5), Some(Gfn(50)));
        assert_eq!(pt.mapped_pages(), 1);
        let pte = pt.unmap(5).unwrap();
        assert_eq!(pte.gfn, Gfn(50));
        assert_eq!(pt.translate(5), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn remap_replaces_frame_keeps_bits() {
        let mut pt = PageTable::new();
        pt.map(9, Gfn(1));
        pt.touch(9, true);
        assert_eq!(pt.remap(9, Gfn(2)), Some(Gfn(1)));
        let pte = pt.walk(9).unwrap();
        assert_eq!(pte.gfn, Gfn(2));
        assert!(pte.accessed && pte.dirty);
        assert_eq!(pt.remap(1234, Gfn(3)), None);
    }

    #[test]
    fn map_returns_previous_mapping() {
        let mut pt = PageTable::new();
        pt.map(7, Gfn(70));
        assert_eq!(pt.map(7, Gfn(71)), Some(Gfn(70)));
        assert_eq!(pt.mapped_pages(), 1, "remapping must not double count");
    }

    #[test]
    fn table_pages_grow_and_shrink() {
        let mut pt = PageTable::new();
        assert_eq!(pt.table_pages(), 1);
        pt.map(0, Gfn(0));
        assert_eq!(pt.table_pages(), 4, "root + 3 interior levels");
        // A distant vpn shares the root only.
        pt.map(VPN_LIMIT - 1, Gfn(1));
        assert_eq!(pt.table_pages(), 7);
        pt.unmap(VPN_LIMIT - 1);
        assert_eq!(pt.table_pages(), 4, "empty interior tables are freed");
        pt.unmap(0);
        assert_eq!(pt.table_pages(), 1);
    }

    #[test]
    fn touch_sets_bits() {
        let mut pt = PageTable::new();
        pt.map(3, Gfn(30));
        assert!(pt.touch(3, false));
        let pte = pt.walk(3).unwrap();
        assert!(pte.accessed);
        assert!(!pte.dirty);
        assert!(pt.touch(3, true));
        assert!(pt.walk(3).unwrap().dirty);
        assert!(!pt.touch(999, false));
    }

    #[test]
    fn scan_harvests_and_resets_access_bits() {
        let mut pt = PageTable::new();
        for vpn in 0..10 {
            pt.map(vpn, Gfn(vpn));
        }
        pt.touch(2, false);
        pt.touch(7, true);
        let mut hot = Vec::new();
        let visited = pt.scan_and_reset(0, 10, |vpn, accessed, _| {
            if accessed {
                hot.push(vpn);
            }
        });
        assert_eq!(visited, 10);
        assert_eq!(hot, vec![2, 7]);
        // Second scan: bits were reset.
        let mut hot2 = Vec::new();
        pt.scan_and_reset(0, 10, |vpn, accessed, _| {
            if accessed {
                hot2.push(vpn);
            }
        });
        assert!(hot2.is_empty());
        // Dirty is harvested-and-reset too (see the regression test below).
        assert!(!pt.walk(7).unwrap().dirty);
    }

    #[test]
    fn scan_harvests_and_resets_dirty_bits() {
        // Regression: scan_and_reset used to clear only the accessed bit,
        // so a page written once reported dirty=true on every later scan
        // and harvested write heat could never decay.
        let mut pt = PageTable::new();
        for vpn in 0..10 {
            pt.map(vpn, Gfn(vpn));
        }
        pt.touch(3, true);
        pt.touch(8, true);
        pt.touch(5, false);
        let mut written = Vec::new();
        let visited = pt.scan_and_reset(0, 10, |vpn, _, dirty| {
            if dirty {
                written.push(vpn);
            }
        });
        assert_eq!(visited, 10);
        assert_eq!(written, vec![3, 8]);
        // Second scan: the dirty bits were reset by the first harvest.
        let mut written2 = Vec::new();
        pt.scan_and_reset(0, 10, |vpn, _, dirty| {
            if dirty {
                written2.push(vpn);
            }
        });
        assert!(written2.is_empty(), "dirty bits must reset: {written2:?}");
        // A fresh write after the harvest is seen again — decay, not loss.
        pt.touch(8, true);
        let mut written3 = Vec::new();
        pt.scan_and_reset(0, 10, |vpn, _, dirty| {
            if dirty {
                written3.push(vpn);
            }
        });
        assert_eq!(written3, vec![8]);
    }

    #[test]
    fn scan_respects_range() {
        let mut pt = PageTable::new();
        for vpn in 0..20 {
            pt.map(vpn, Gfn(vpn));
        }
        let visited = pt.scan_and_reset(5, 15, |_, _, _| {});
        assert_eq!(visited, 10);
    }

    #[test]
    fn map_range_matches_per_page_map() {
        // A range crossing two leaf-table boundaries, mapped both ways,
        // must produce identical translations and table counts.
        let start = 500; // crosses the 512 boundary mid-range
        let gfns: Vec<Gfn> = (0..1040).map(|i| Gfn(10_000 + i)).collect();
        let mut bulk = PageTable::new();
        bulk.map_range(start, &gfns);
        let mut scalar = PageTable::new();
        for (i, &g) in gfns.iter().enumerate() {
            scalar.map(start + i as u64, g);
        }
        assert_eq!(bulk.mapped_pages(), scalar.mapped_pages());
        assert_eq!(bulk.table_pages(), scalar.table_pages());
        for i in 0..gfns.len() as u64 {
            assert_eq!(bulk.translate(start + i), scalar.translate(start + i));
        }
        assert_eq!(bulk.translate(start - 1), None);
        assert_eq!(bulk.translate(start + gfns.len() as u64), None);
    }

    #[test]
    fn map_range_replaces_existing_mappings() {
        let mut pt = PageTable::new();
        pt.map(7, Gfn(70));
        pt.map_range(6, &[Gfn(60), Gfn(71), Gfn(80)]);
        assert_eq!(pt.translate(6), Some(Gfn(60)));
        assert_eq!(pt.translate(7), Some(Gfn(71)), "replaced");
        assert_eq!(pt.translate(8), Some(Gfn(80)));
        assert_eq!(pt.mapped_pages(), 3, "replacement must not double count");
    }

    #[test]
    fn map_range_of_nothing_is_a_noop() {
        let mut pt = PageTable::new();
        pt.map_range(0, &[]);
        assert_eq!(pt.mapped_pages(), 0);
        assert_eq!(pt.table_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn map_range_beyond_limit_panics() {
        PageTable::new().map_range(VPN_LIMIT - 1, &[Gfn(0), Gfn(1)]);
    }

    #[test]
    fn unmap_of_unmapped_is_none() {
        let mut pt = PageTable::new();
        assert_eq!(pt.unmap(12345), None);
        assert_eq!(pt.unmap(VPN_LIMIT + 5), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn map_beyond_limit_panics() {
        PageTable::new().map(VPN_LIMIT, Gfn(0));
    }

    #[test]
    fn sparse_mappings_scan_quickly() {
        let mut pt = PageTable::new();
        pt.map(0, Gfn(0));
        pt.map(VPN_LIMIT / 2, Gfn(1));
        let visited = pt.scan_and_reset(0, VPN_LIMIT, |_, _, _| {});
        assert_eq!(visited, 2);
    }
}
