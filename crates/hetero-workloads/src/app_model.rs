//! Generic application model: ramp-up, steady-state churn, completion.

use hetero_sim::SimRng;

use crate::spec::{EpochDemand, Workload, WorkloadSpec};

/// An application unrolled into epochs from its [`WorkloadSpec`].
///
/// The run has two phases:
///
/// 1. **ramp** (`ramp_fraction` of the epochs): the resident footprint is
///    allocated incrementally — this is where first-touch policies make
///    their placement decisions;
/// 2. **steady state**: the footprint holds, while churn cycles heap pages
///    ("capacity-intensive applications … frequently allocate and release
///    memory", §2.2) and I/O traffic cycles page-cache and kernel-buffer
///    pages through their short lives.
///
/// Page *sizes* are converted to page counts with the engine's page size at
/// construction; a `scale` divisor shrinks footprints and instruction counts
/// together for fast tests.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    spec: WorkloadSpec,
    page_size: u64,
    epoch: u64,
    epochs_total: u64,
    ramp_epochs: u64,
    /// Resident page targets per churnable type.
    target_heap: u64,
    target_cache: u64,
    target_buffer: u64,
    target_slab: u64,
    target_netbuf: u64,
    /// Allocated so far (ramp bookkeeping).
    resident_heap: u64,
    resident_cache: u64,
    resident_buffer: u64,
    resident_slab: u64,
    resident_netbuf: u64,
}

impl AppWorkload {
    /// Builds a workload for the given page size, scaling the footprint and
    /// run length down by `scale` (1 = paper scale).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` or `scale` is zero.
    pub fn new(spec: WorkloadSpec, page_size: u64, scale: u64) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        assert!(scale > 0, "scale must be non-zero");
        let pages = |bytes: u64| (bytes / scale).div_ceil(page_size).max(1);
        // Only the *footprint* shrinks with `scale` — one simulated page
        // stands for `scale` real pages. Instructions, wall-clock epochs and
        // hot_wss_bytes stay at paper scale so MPKI, the LLC model (real
        // 16/48 MB caches) and time-based management intervals (100 ms
        // scans) keep their physical meaning.
        let epochs_total = spec.epochs().max(2);
        let ramp_epochs = ((epochs_total as f64 * spec.ramp_fraction) as u64)
            .clamp(1, epochs_total - 1);
        AppWorkload {
            target_heap: pages(spec.footprint.heap),
            target_cache: pages(spec.footprint.page_cache),
            target_buffer: pages(spec.footprint.buffer_cache),
            target_slab: pages(spec.footprint.slab),
            target_netbuf: pages(spec.footprint.net_buf),
            page_size,
            epoch: 0,
            epochs_total,
            ramp_epochs,
            resident_heap: 0,
            resident_cache: 0,
            resident_buffer: 0,
            resident_slab: 0,
            resident_netbuf: 0,
            spec,
        }
    }

    /// Page size the counts were derived with.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Resident heap page target.
    pub fn target_heap_pages(&self) -> u64 {
        self.target_heap
    }

    /// Seconds of *app* time one epoch roughly represents at FastMem speed
    /// (used to convert per-second churn rates into per-epoch counts).
    fn epoch_app_seconds(&self) -> f64 {
        let s = &self.spec;
        let per_instr_ns = (s.compute_ns_per_instruction()
            + s.miss_per_instruction() * 60.0 / s.mlp.max(1.0))
            / s.threads.max(1.0);
        s.instructions_per_epoch as f64 * per_instr_ns * 1e-9
    }

    fn ramp_share(&self, target: u64) -> u64 {
        // Spread the footprint evenly over ramp epochs, rounding the last
        // epoch up so the target is met exactly.
        let done = self.epoch.min(self.ramp_epochs);
        let want_by_now = target * (done + 1) / self.ramp_epochs;
        want_by_now.min(target)
    }

    fn churn(&self, rng: &mut SimRng, resident: u64, per_sec: f64) -> u64 {
        let secs = self.epoch_app_seconds();
        rng.stochastic_round(resident as f64 * per_sec * secs)
    }
}

impl Workload for AppWorkload {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn progress(&self) -> f64 {
        self.epoch as f64 / self.epochs_total as f64
    }

    fn next_epoch(&mut self, rng: &mut SimRng) -> Option<EpochDemand> {
        if self.epoch >= self.epochs_total {
            return None;
        }
        let mut d = EpochDemand {
            instructions: self.spec.instructions_per_epoch,
            ..Default::default()
        };
        // Ramp: bring residency up to this epoch's share of the target.
        if self.epoch < self.ramp_epochs {
            let shares = [
                self.ramp_share(self.target_heap),
                self.ramp_share(self.target_cache),
                self.ramp_share(self.target_buffer),
                self.ramp_share(self.target_slab),
                self.ramp_share(self.target_netbuf),
            ];
            let grow = |resident: &mut u64, share: u64| {
                let add = share.saturating_sub(*resident);
                *resident += add;
                add
            };
            d.heap_alloc += grow(&mut self.resident_heap, shares[0]);
            d.cache_reads += grow(&mut self.resident_cache, shares[1]);
            d.buffer_allocs += grow(&mut self.resident_buffer, shares[2]);
            d.slab_allocs += grow(&mut self.resident_slab, shares[3]);
            d.netbuf_allocs += grow(&mut self.resident_netbuf, shares[4]);
        } else {
            // Steady state: cycle pages through alloc/free pairs.
            let heap = self.churn(rng, self.resident_heap, self.spec.heap_churn_per_sec);
            d.heap_alloc = heap;
            d.heap_free = heap;
            let io = self.churn(rng, self.resident_cache, self.spec.io_churn_per_sec);
            d.cache_reads = io;
            d.cache_releases = io;
            let buf = self.churn(rng, self.resident_buffer, self.spec.io_churn_per_sec);
            d.buffer_allocs = buf;
            d.buffer_releases = buf;
            let slab = self.churn(
                rng,
                self.resident_slab,
                self.spec.kernel_buf_churn_per_sec,
            );
            d.slab_allocs = slab;
            d.slab_frees = slab;
            let nb = self.churn(
                rng,
                self.resident_netbuf,
                self.spec.kernel_buf_churn_per_sec,
            );
            d.netbuf_allocs = nb;
            d.netbuf_frees = nb;
        }
        self.epoch += 1;
        Some(d)
    }
}

hetero_sim::impl_snap!(struct AppWorkload {
    spec, page_size, epoch, epochs_total, ramp_epochs,
    target_heap, target_cache, target_buffer, target_slab, target_netbuf,
    resident_heap, resident_cache, resident_buffer, resident_slab, resident_netbuf
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    fn drain(mut w: AppWorkload, seed: u64) -> Vec<EpochDemand> {
        let mut rng = SimRng::seed_from(seed);
        let mut out = Vec::new();
        while let Some(d) = w.next_epoch(&mut rng) {
            out.push(d);
        }
        out
    }

    #[test]
    fn ramp_reaches_targets_exactly() {
        let w = AppWorkload::new(apps::graphchi(), 1 << 18, 64);
        let target = w.target_heap_pages();
        let ramp = w.ramp_epochs as usize;
        let demands = drain(w, 1);
        let ramped: u64 = demands[..ramp].iter().map(|d| d.heap_alloc).sum();
        assert_eq!(ramped, target);
    }

    #[test]
    fn run_terminates_after_expected_epochs() {
        let w = AppWorkload::new(apps::redis(), 1 << 18, 64);
        let expected = w.epochs_total as usize;
        let demands = drain(w, 2);
        assert_eq!(demands.len(), expected);
    }

    #[test]
    fn steady_state_is_balanced_churn() {
        let w = AppWorkload::new(apps::graphchi(), 1 << 18, 64);
        let ramp = w.ramp_epochs as usize;
        let demands = drain(w, 3);
        for d in &demands[ramp..] {
            assert_eq!(d.heap_alloc, d.heap_free, "steady churn is balanced");
            assert_eq!(d.cache_reads, d.cache_releases);
        }
    }

    #[test]
    fn capacity_intensive_apps_churn_more() {
        // §2.2: Graphchi frequently releases memory, Metis seldom does.
        let g = AppWorkload::new(apps::graphchi(), 1 << 18, 64);
        let m = AppWorkload::new(apps::metis(), 1 << 18, 64);
        let g_ramp = g.ramp_epochs as usize;
        let m_ramp = m.ramp_epochs as usize;
        let g_target = g.target_heap_pages();
        let m_target = m.target_heap_pages();
        let g_churn: u64 = drain(g, 4)[g_ramp..].iter().map(|d| d.heap_free).sum();
        let m_churn: u64 = drain(m, 4)[m_ramp..].iter().map(|d| d.heap_free).sum();
        // Normalise by footprint.
        let g_rate = g_churn as f64 / g_target as f64;
        let m_rate = m_churn as f64 / m_target as f64;
        assert!(
            g_rate > 4.0 * m_rate,
            "graphchi churn/footprint {g_rate:.2} vs metis {m_rate:.2}"
        );
    }

    #[test]
    fn progress_moves_zero_to_one() {
        let mut w = AppWorkload::new(apps::nginx(), 1 << 18, 64);
        assert_eq!(w.progress(), 0.0);
        let mut rng = SimRng::seed_from(5);
        while w.next_epoch(&mut rng).is_some() {}
        assert!((w.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_preserves_epoch_count_roughly() {
        let a = AppWorkload::new(apps::leveldb(), 1 << 18, 16);
        let b = AppWorkload::new(apps::leveldb(), 1 << 18, 64);
        // Instructions and epoch quanta shrink together.
        assert_eq!(a.epochs_total, b.epochs_total);
        assert!(a.target_heap_pages() > b.target_heap_pages());
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        AppWorkload::new(apps::redis(), 4096, 0);
    }
}
