//! Application models for the HeteroOS reproduction.
//!
//! The paper evaluates six real datacenter applications (Table 2). This
//! crate models each one from the paper's own measurements — MPKI (Table 4),
//! page-type mix (Fig 4), working-set and churn behaviour (§2.2) — plus the
//! `memlat` and Stream microbenchmarks of §5.2:
//!
//! * [`spec`] — [`WorkloadSpec`], [`EpochDemand`] and the [`Workload`]
//!   trait,
//! * [`app_model`] — the generic ramp/steady/churn epoch generator,
//! * [`apps`] — GraphChi, X-Stream, Metis, LevelDB, Redis, Nginx,
//! * [`micro`] — `memlat` (Fig 6) and Stream (Fig 7),
//! * [`trace`] — record/replay of epoch-demand streams (bring your own
//!   traces).
//!
//! # Examples
//!
//! ```
//! use hetero_sim::SimRng;
//! use hetero_workloads::{apps, AppWorkload, Workload};
//!
//! let mut wl = AppWorkload::new(apps::redis(), 256 << 10, 64);
//! let mut rng = SimRng::seed_from(7);
//! let first = wl.next_epoch(&mut rng).expect("run just started");
//! assert!(first.instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app_model;
pub mod apps;
pub mod micro;
pub mod spec;
pub mod trace;

pub use app_model::AppWorkload;
pub use spec::{AccessMix, EpochDemand, Footprint, Workload, WorkloadSpec};
pub use trace::{TraceWorkload, WorkloadTrace};
