//! Workload specifications and the epoch-demand interface.
//!
//! The paper evaluates applications "with high variability in their memory,
//! storage, and network" intensity (§2.2, Table 2). Running the real
//! binaries is out of scope for a simulator, so each application is modelled
//! by the aggregate properties the paper itself reports and bases its
//! analysis on:
//!
//! * memory intensity — MPKI (Table 4),
//! * page-type mix and footprint (Fig 4),
//! * hot working-set size (drives LLC behaviour and FastMem value),
//! * allocation churn ("capacity-intensive" apps frequently
//!   allocate/release, §2.2 Observation 3),
//! * I/O page-cache / kernel-buffer traffic (short-lived, high-reuse).
//!
//! A [`Workload`] unrolls its run into fixed instruction quanta
//! ([`EpochDemand`]s); the engine prices each epoch's wall time from
//! placement and charges management overheads on top.

use hetero_guest::page::PageType;
use hetero_sim::SimRng;

/// Resident footprint target per page type, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Footprint {
    /// Anonymous heap.
    pub heap: u64,
    /// Filesystem page cache.
    pub page_cache: u64,
    /// Buffer cache (filesystem metadata / journal).
    pub buffer_cache: u64,
    /// Generic slab.
    pub slab: u64,
    /// Network kernel buffers.
    pub net_buf: u64,
}

impl Footprint {
    /// Total resident bytes across types.
    pub fn total(&self) -> u64 {
        self.heap + self.page_cache + self.buffer_cache + self.slab + self.net_buf
    }

    /// Bytes for one page type (page-table/DMA handled by the kernel).
    pub fn of(&self, t: PageType) -> u64 {
        match t {
            PageType::HeapAnon => self.heap,
            PageType::PageCache => self.page_cache,
            PageType::BufferCache => self.buffer_cache,
            PageType::Slab => self.slab,
            PageType::NetBuf => self.net_buf,
            PageType::PageTable | PageType::Dma => 0,
        }
    }
}

/// Fraction of the application's memory accesses hitting each page type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessMix {
    /// Heap share.
    pub heap: f64,
    /// Page-cache share.
    pub page_cache: f64,
    /// Buffer-cache share.
    pub buffer_cache: f64,
    /// Slab share.
    pub slab: f64,
    /// Network-buffer share.
    pub net_buf: f64,
}

impl AccessMix {
    /// Share for one page type.
    pub fn of(&self, t: PageType) -> f64 {
        match t {
            PageType::HeapAnon => self.heap,
            PageType::PageCache => self.page_cache,
            PageType::BufferCache => self.buffer_cache,
            PageType::Slab => self.slab,
            PageType::NetBuf => self.net_buf,
            PageType::PageTable | PageType::Dma => 0.0,
        }
    }

    /// Sum of all shares (should be ≈ 1).
    pub fn total(&self) -> f64 {
        self.heap + self.page_cache + self.buffer_cache + self.slab + self.net_buf
    }
}

/// Static description of one application.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Application name (Table 2).
    pub name: &'static str,
    /// Misses per kilo-instruction on the 16 MB-LLC testbed (Table 4).
    pub mpki: f64,
    /// Non-memory cycles per instruction (calibration constant; see
    /// DESIGN.md §3 — tuned so the all-SlowMem slowdown lands near Fig 1).
    pub cpi_base: f64,
    /// Memory-level parallelism per thread: concurrently outstanding
    /// misses. High for the batch graph engines, ~1 for request-driven
    /// servers.
    pub mlp: f64,
    /// Concurrently executing threads. Multiplies both throughput and
    /// memory-bandwidth demand — this is why only the multi-threaded batch
    /// graph engines saturate SlowMem bandwidth (§2.2 Observation 1).
    pub threads: f64,
    /// Core clock in GHz (testbed: 2.67 GHz Xeon).
    pub clock_ghz: f64,
    /// Total instructions for a full run.
    pub total_instructions: u64,
    /// Instructions per epoch quantum.
    pub instructions_per_epoch: u64,
    /// Resident footprint targets.
    pub footprint: Footprint,
    /// Where the accesses go.
    pub access_mix: AccessMix,
    /// Hot working-set bytes (what a perfect cache/FastMem would hold).
    pub hot_wss_bytes: u64,
    /// Fraction of accesses served by the hot set.
    pub hot_access_fraction: f64,
    /// Steady-state fraction of resident pages that are hot.
    pub hot_page_fraction: f64,
    /// Fraction of *freshly churned* allocations that start hot. Fresh
    /// buffers are about to be used (temporal locality); pages cool as they
    /// age, so the resident mix settles at `hot_page_fraction`. This is the
    /// reuse gradient that makes on-demand recycling concentrate hot data
    /// in FastMem for capacity-intensive apps (§2.2 Observation 3).
    pub fresh_hot_fraction: f64,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Heap pages freed+reallocated per second of app time, as a fraction
    /// of resident heap ("frequently allocate and release", §2.2).
    pub heap_churn_per_sec: f64,
    /// Page-cache pages read in (and released after I/O) per second, as a
    /// fraction of the resident page-cache target.
    pub io_churn_per_sec: f64,
    /// Slab/net-buffer objects cycled per second as a fraction of their
    /// resident targets.
    pub kernel_buf_churn_per_sec: f64,
    /// Ramp-up fraction of the run spent loading the footprint.
    pub ramp_fraction: f64,
}

impl WorkloadSpec {
    /// Misses per instruction at the calibration LLC.
    pub fn miss_per_instruction(&self) -> f64 {
        self.mpki / 1000.0
    }

    /// Nanoseconds of non-memory compute per instruction.
    pub fn compute_ns_per_instruction(&self) -> f64 {
        self.cpi_base / self.clock_ghz
    }

    /// Number of epochs in a full run.
    pub fn epochs(&self) -> u64 {
        self.total_instructions.div_ceil(self.instructions_per_epoch)
    }

    /// Heat value for a newly allocated page of `page_type`, using the
    /// steady-state hot fraction.
    ///
    /// Heat is tiered — access skew concentrates traffic on a *super-hot*
    /// core (30 % of hot pages at heat 255, the rest at 96) over a cold
    /// tail (heat 4), so the hottest few percent of pages carry roughly
    /// half the traffic, as real access distributions do. Short-lived I/O
    /// pages are always hot while they live (they are accessed exactly
    /// around their I/O).
    pub fn sample_heat(&self, rng: &mut SimRng, page_type: PageType) -> u8 {
        self.sample_heat_with(rng, page_type, self.hot_page_fraction)
    }

    /// Like [`WorkloadSpec::sample_heat`] with an explicit hot probability
    /// (the engine uses [`WorkloadSpec::fresh_hot_fraction`] for steady-
    /// state churn).
    pub fn sample_heat_with(
        &self,
        rng: &mut SimRng,
        page_type: PageType,
        hot_probability: f64,
    ) -> u8 {
        if page_type.is_io() {
            return 224;
        }
        if rng.chance(hot_probability) {
            if rng.chance(0.3) {
                255
            } else {
                96
            }
        } else {
            4
        }
    }

    /// Expected heat of a hot (non-I/O) page under the tiering above.
    pub fn expected_hot_heat() -> f64 {
        0.3 * 255.0 + 0.7 * 96.0
    }

    /// Heat of a cold page.
    pub const COLD_HEAT: u8 = 4;
}

/// Page operations and work demanded by one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochDemand {
    /// Instructions executed this epoch.
    pub instructions: u64,
    /// New heap pages to allocate.
    pub heap_alloc: u64,
    /// Resident heap pages to free (churn).
    pub heap_free: u64,
    /// Page-cache pages read in (alloc + I/O).
    pub cache_reads: u64,
    /// Page-cache pages whose I/O completed and are released.
    pub cache_releases: u64,
    /// Buffer-cache pages allocated.
    pub buffer_allocs: u64,
    /// Buffer-cache pages released.
    pub buffer_releases: u64,
    /// Slab objects allocated.
    pub slab_allocs: u64,
    /// Slab objects freed.
    pub slab_frees: u64,
    /// Network-buffer objects allocated.
    pub netbuf_allocs: u64,
    /// Network-buffer objects freed.
    pub netbuf_frees: u64,
}

/// A workload unrolled into epochs.
pub trait Workload {
    /// Static description.
    fn spec(&self) -> &WorkloadSpec;

    /// Demands of the next epoch, or `None` when the run is complete.
    fn next_epoch(&mut self, rng: &mut SimRng) -> Option<EpochDemand>;

    /// Fraction of the run completed, in `[0, 1]`.
    fn progress(&self) -> f64;
}

hetero_sim::impl_snap!(struct Footprint { heap, page_cache, buffer_cache, slab, net_buf });

hetero_sim::impl_snap!(struct AccessMix { heap, page_cache, buffer_cache, slab, net_buf });

impl hetero_sim::snap::Snap for WorkloadSpec {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        w.put_str(self.name);
        self.mpki.snap(w);
        self.cpi_base.snap(w);
        self.mlp.snap(w);
        self.threads.snap(w);
        self.clock_ghz.snap(w);
        self.total_instructions.snap(w);
        self.instructions_per_epoch.snap(w);
        self.footprint.snap(w);
        self.access_mix.snap(w);
        self.hot_wss_bytes.snap(w);
        self.hot_access_fraction.snap(w);
        self.hot_page_fraction.snap(w);
        self.fresh_hot_fraction.snap(w);
        self.write_fraction.snap(w);
        self.heap_churn_per_sec.snap(w);
        self.io_churn_per_sec.snap(w);
        self.kernel_buf_churn_per_sec.snap(w);
        self.ramp_fraction.snap(w);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        use hetero_sim::snap::Snap;
        let name = hetero_sim::snap::leak_str(r.take_string()?);
        Ok(WorkloadSpec {
            name,
            mpki: Snap::unsnap(r)?,
            cpi_base: Snap::unsnap(r)?,
            mlp: Snap::unsnap(r)?,
            threads: Snap::unsnap(r)?,
            clock_ghz: Snap::unsnap(r)?,
            total_instructions: Snap::unsnap(r)?,
            instructions_per_epoch: Snap::unsnap(r)?,
            footprint: Snap::unsnap(r)?,
            access_mix: Snap::unsnap(r)?,
            hot_wss_bytes: Snap::unsnap(r)?,
            hot_access_fraction: Snap::unsnap(r)?,
            hot_page_fraction: Snap::unsnap(r)?,
            fresh_hot_fraction: Snap::unsnap(r)?,
            write_fraction: Snap::unsnap(r)?,
            heap_churn_per_sec: Snap::unsnap(r)?,
            io_churn_per_sec: Snap::unsnap(r)?,
            kernel_buf_churn_per_sec: Snap::unsnap(r)?,
            ramp_fraction: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_totals() {
        let f = Footprint {
            heap: 100,
            page_cache: 50,
            buffer_cache: 25,
            slab: 10,
            net_buf: 5,
        };
        assert_eq!(f.total(), 190);
        assert_eq!(f.of(PageType::HeapAnon), 100);
        assert_eq!(f.of(PageType::PageTable), 0);
    }

    #[test]
    fn access_mix_covers_types() {
        let m = AccessMix {
            heap: 0.5,
            page_cache: 0.3,
            buffer_cache: 0.1,
            slab: 0.05,
            net_buf: 0.05,
        };
        assert!((m.total() - 1.0).abs() < 1e-12);
        assert_eq!(m.of(PageType::Dma), 0.0);
    }
}
