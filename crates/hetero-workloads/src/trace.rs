//! Workload trace recording and replay.
//!
//! A [`WorkloadTrace`] captures the exact epoch-demand stream a workload
//! produced (including its stochastic churn), so a run can be replayed
//! bit-for-bit, archived, diffed, or authored externally and fed to the
//! engine in place of the built-in models. The on-disk format is a simple
//! line-oriented text format — one header line, one line per epoch — so
//! traces can be generated from real application instrumentation with a
//! shell script.

use std::fmt::Write as _;
use std::str::FromStr;

use hetero_sim::SimRng;

use crate::spec::{EpochDemand, Workload, WorkloadSpec};

/// A recorded epoch-demand stream plus the spec it was produced under.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// The workload description the demands were generated from (timing
    /// parameters still come from here at replay).
    pub spec: WorkloadSpec,
    /// One entry per epoch, in order.
    pub demands: Vec<EpochDemand>,
}

impl WorkloadTrace {
    /// Records a workload to completion.
    ///
    /// The `rng` drives the workload's stochastic churn exactly as a live
    /// run would; recording with the same seed as a live run captures that
    /// run's demand stream.
    pub fn record<W: Workload>(mut workload: W, rng: &mut SimRng) -> Self {
        let spec = workload.spec().clone();
        let mut demands = Vec::new();
        while let Some(d) = workload.next_epoch(rng) {
            demands.push(d);
        }
        WorkloadTrace { spec, demands }
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True when no epochs were recorded.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Serialises to the line-oriented text format.
    ///
    /// ```text
    /// heteroos-trace v1 <name> <epochs>
    /// <instructions> <heap_alloc> <heap_free> <cache_reads> <cache_releases> \
    ///   <buffer_allocs> <buffer_releases> <slab_allocs> <slab_frees> \
    ///   <netbuf_allocs> <netbuf_frees>
    /// ...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "heteroos-trace v1 {} {}",
            self.spec.name.replace(' ', "_"),
            self.demands.len()
        )
        .expect("write to string");
        for d in &self.demands {
            writeln!(
                out,
                "{} {} {} {} {} {} {} {} {} {} {}",
                d.instructions,
                d.heap_alloc,
                d.heap_free,
                d.cache_reads,
                d.cache_releases,
                d.buffer_allocs,
                d.buffer_releases,
                d.slab_allocs,
                d.slab_frees,
                d.netbuf_allocs,
                d.netbuf_frees,
            )
            .expect("write to string");
        }
        out
    }

    /// Parses the text format produced by [`WorkloadTrace::to_text`],
    /// attaching `spec` for the replay's timing parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str, spec: WorkloadSpec) -> Result<Self, TraceParseError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| TraceParseError {
            line: 1,
            message: "empty trace".into(),
        })?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("heteroos-trace") || fields.next() != Some("v1") {
            return Err(TraceParseError {
                line: 1,
                message: "missing 'heteroos-trace v1' header".into(),
            });
        }
        let _name = fields.next();
        let declared: usize = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TraceParseError {
                line: 1,
                message: "header missing epoch count".into(),
            })?;
        let mut demands = Vec::with_capacity(declared);
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let nums: Result<Vec<u64>, _> =
                line.split_whitespace().map(u64::from_str).collect();
            let nums = nums.map_err(|e| TraceParseError {
                line: i + 2,
                message: format!("bad number: {e}"),
            })?;
            if nums.len() != 11 {
                return Err(TraceParseError {
                    line: i + 2,
                    message: format!("expected 11 fields, found {}", nums.len()),
                });
            }
            demands.push(EpochDemand {
                instructions: nums[0],
                heap_alloc: nums[1],
                heap_free: nums[2],
                cache_reads: nums[3],
                cache_releases: nums[4],
                buffer_allocs: nums[5],
                buffer_releases: nums[6],
                slab_allocs: nums[7],
                slab_frees: nums[8],
                netbuf_allocs: nums[9],
                netbuf_frees: nums[10],
            });
        }
        if demands.len() != declared {
            return Err(TraceParseError {
                line: 1,
                message: format!(
                    "header declares {declared} epochs but {} were found",
                    demands.len()
                ),
            });
        }
        Ok(WorkloadTrace { spec, demands })
    }

    /// Consumes the trace into a replayable [`Workload`].
    pub fn into_workload(self) -> TraceWorkload {
        TraceWorkload {
            trace: self,
            cursor: 0,
        }
    }
}

/// Error from [`WorkloadTrace::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// A [`Workload`] that replays a recorded trace verbatim.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    trace: WorkloadTrace,
    cursor: usize,
}

impl Workload for TraceWorkload {
    fn spec(&self) -> &WorkloadSpec {
        &self.trace.spec
    }

    fn progress(&self) -> f64 {
        if self.trace.demands.is_empty() {
            1.0
        } else {
            self.cursor as f64 / self.trace.demands.len() as f64
        }
    }

    fn next_epoch(&mut self, _rng: &mut SimRng) -> Option<EpochDemand> {
        let d = self.trace.demands.get(self.cursor).copied();
        if d.is_some() {
            self.cursor += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_model::AppWorkload;
    use crate::apps;

    fn small_trace() -> WorkloadTrace {
        let mut spec = apps::redis();
        spec.total_instructions /= 40;
        let wl = AppWorkload::new(spec, 4096, 64);
        let mut rng = SimRng::seed_from(5);
        WorkloadTrace::record(wl, &mut rng)
    }

    #[test]
    fn recording_captures_every_epoch() {
        let t = small_trace();
        assert!(!t.is_empty());
        assert_eq!(t.len() as u64, t.spec.epochs());
    }

    #[test]
    fn replay_reproduces_the_stream_exactly() {
        let t = small_trace();
        let mut replay = t.clone().into_workload();
        let mut rng = SimRng::seed_from(999); // replay ignores the rng
        assert_eq!(replay.progress(), 0.0);
        for (i, expected) in t.demands.iter().enumerate() {
            assert_eq!(replay.next_epoch(&mut rng).as_ref(), Some(expected), "epoch {i}");
        }
        assert_eq!(replay.next_epoch(&mut rng), None);
        assert!((replay.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let t = small_trace();
        let text = t.to_text();
        let parsed = WorkloadTrace::from_text(&text, t.spec.clone()).expect("roundtrip parses");
        assert_eq!(parsed.demands, t.demands);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        let spec = apps::redis();
        let err = WorkloadTrace::from_text("", spec.clone()).unwrap_err();
        assert_eq!(err.line, 1);
        let err = WorkloadTrace::from_text("bogus header\n", spec.clone()).unwrap_err();
        assert!(err.message.contains("header"));
        let err =
            WorkloadTrace::from_text("heteroos-trace v1 x 1\n1 2 3\n", spec.clone()).unwrap_err();
        assert!(err.message.contains("11 fields"), "{err}");
        let err =
            WorkloadTrace::from_text("heteroos-trace v1 x 2\n1 0 0 0 0 0 0 0 0 0 0\n", spec)
                .unwrap_err();
        assert!(err.message.contains("declares 2"), "{err}");
    }

    #[test]
    fn parser_accepts_blank_lines() {
        let t = small_trace();
        let mut text = t.to_text();
        text.push('\n');
        let parsed = WorkloadTrace::from_text(&text, t.spec.clone()).expect("trailing blank ok");
        assert_eq!(parsed.len(), t.len());
    }

    #[test]
    fn same_seed_recordings_are_identical() {
        let make = || {
            let mut spec = apps::graphchi();
            spec.total_instructions /= 40;
            let wl = AppWorkload::new(spec, 4096, 64);
            let mut rng = SimRng::seed_from(7);
            WorkloadTrace::record(wl, &mut rng)
        };
        assert_eq!(make().demands, make().demands);
    }
}
