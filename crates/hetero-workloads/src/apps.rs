//! The six datacenter applications of Table 2, as calibrated models.
//!
//! Measured anchors come straight from the paper: MPKI from Table 4, the
//! page-type mix from Fig 4, and qualitative behaviour from §2.2 (Graphchi
//! churns memory, Metis seldom releases, X-Stream streams its input through
//! the page cache, LevelDB lives in page+buffer cache, Redis cycles network
//! skbuffs, Nginx's active set is under 60 MB). `cpi_base` and `mlp` are
//! free calibration constants chosen so the all-SlowMem (L:5,B:12) slowdown
//! lands near Fig 1; see DESIGN.md §3 and EXPERIMENTS.md.

use crate::spec::{AccessMix, Footprint, WorkloadSpec};

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;
/// Testbed core clock (16-core Xeon X5560, §5.1).
const CLOCK_GHZ: f64 = 2.67;
/// Instructions per run at paper scale — sized for ~1200 epochs and a few
/// hundred simulated seconds, matching the paper's multi-minute runs so
/// migration investments amortise at Table 6 prices.
const RUN_INSTRUCTIONS: u64 = 600_000_000_000;
/// Instructions per epoch quantum at paper scale.
const EPOCH_INSTRUCTIONS: u64 = 500_000_000;

fn base(name: &'static str) -> WorkloadSpec {
    WorkloadSpec {
        name,
        mpki: 1.0,
        cpi_base: 1.0,
        mlp: 1.0,
        threads: 1.0,
        clock_ghz: CLOCK_GHZ,
        total_instructions: RUN_INSTRUCTIONS,
        instructions_per_epoch: EPOCH_INSTRUCTIONS,
        footprint: Footprint::default(),
        access_mix: AccessMix {
            heap: 1.0,
            page_cache: 0.0,
            buffer_cache: 0.0,
            slab: 0.0,
            net_buf: 0.0,
        },
        hot_wss_bytes: GB,
        hot_access_fraction: 0.8,
        hot_page_fraction: 0.25,
        fresh_hot_fraction: 0.5,
        write_fraction: 0.3,
        heap_churn_per_sec: 0.0,
        io_churn_per_sec: 0.0,
        kernel_buf_churn_per_sec: 0.0,
        ramp_fraction: 0.15,
    }
}

/// GraphChi: PageRank over the Orkut social graph (Table 2). Memory- and
/// page-cache-intensive; frequently allocates and releases (§2.2 Obs. 3).
pub fn graphchi() -> WorkloadSpec {
    WorkloadSpec {
        mpki: 27.4,
        cpi_base: 1.88,
        mlp: 6.0,
        threads: 4.0,
        footprint: Footprint {
            heap: 5 * GB + GB / 2,
            page_cache: GB + GB / 2,
            buffer_cache: 64 * MB,
            slab: 96 * MB,
            net_buf: 0,
        },
        access_mix: AccessMix {
            heap: 0.72,
            page_cache: 0.22,
            buffer_cache: 0.01,
            slab: 0.05,
            net_buf: 0.0,
        },
        hot_wss_bytes: GB + GB / 2,
        hot_access_fraction: 0.8,
        hot_page_fraction: 0.22,
        fresh_hot_fraction: 0.85,
        write_fraction: 0.35,
        // Fig 4: Graphchi allocates 5.04 M pages (~20 GB) over a run with a
        // ~7 GB resident footprint — about four heap turnovers.
        heap_churn_per_sec: 0.02,
        io_churn_per_sec: 0.02,
        kernel_buf_churn_per_sec: 0.01,
        ..base("Graphchi")
    }
}

/// X-Stream: edge-centric graph processing over the same input (Table 2).
/// Streams the memory-mapped input through the page cache.
pub fn x_stream() -> WorkloadSpec {
    WorkloadSpec {
        mpki: 24.8,
        cpi_base: 2.10,
        mlp: 6.0,
        threads: 4.0,
        footprint: Footprint {
            heap: 3 * GB,
            page_cache: 4 * GB,
            buffer_cache: 96 * MB,
            slab: 128 * MB,
            net_buf: 0,
        },
        access_mix: AccessMix {
            heap: 0.40,
            page_cache: 0.54,
            buffer_cache: 0.01,
            slab: 0.05,
            net_buf: 0.0,
        },
        hot_wss_bytes: GB + GB / 2,
        hot_access_fraction: 0.75,
        hot_page_fraction: 0.25,
        fresh_hot_fraction: 0.75,
        write_fraction: 0.3,
        // Fig 4: 3.34 M pages (~13 GB) cumulative vs ~7 GB resident; most
        // of the excess streams through the page cache.
        heap_churn_per_sec: 0.008,
        io_churn_per_sec: 0.015,
        kernel_buf_churn_per_sec: 0.008,
        ..base("X-Stream")
    }
}

/// Metis: shared-memory map-reduce, 4 GB crime dataset, 8 mapper/reducer
/// threads (Table 2). Large working set, seldom releases memory (§5.3).
pub fn metis() -> WorkloadSpec {
    WorkloadSpec {
        mpki: 14.9,
        cpi_base: 3.0,
        mlp: 4.0,
        threads: 4.0,
        footprint: Footprint {
            heap: 5 * GB,
            page_cache: 256 * MB,
            buffer_cache: 32 * MB,
            slab: 64 * MB,
            net_buf: 0,
        },
        access_mix: AccessMix {
            heap: 0.92,
            page_cache: 0.05,
            buffer_cache: 0.0,
            slab: 0.03,
            net_buf: 0.0,
        },
        hot_wss_bytes: 4 * GB + GB / 2,
        hot_access_fraction: 0.85,
        hot_page_fraction: 0.6,
        fresh_hot_fraction: 0.7,
        write_fraction: 0.35,
        // §5.3: Metis "seldom releases memory".
        heap_churn_per_sec: 0.002,
        io_churn_per_sec: 0.01,
        kernel_buf_churn_per_sec: 0.005,
        ..base("Metis")
    }
}

/// LevelDB: SQLite-bench over Google's LevelDB, 1 M keys (Table 2).
/// Storage-intensive: page cache, memory-mapped database, journal buffers.
pub fn leveldb() -> WorkloadSpec {
    WorkloadSpec {
        mpki: 4.7,
        cpi_base: 4.33,
        mlp: 2.0,
        threads: 2.0,
        footprint: Footprint {
            heap: GB / 2,
            page_cache: GB,
            buffer_cache: 384 * MB,
            slab: 128 * MB,
            net_buf: 0,
        },
        access_mix: AccessMix {
            heap: 0.30,
            page_cache: 0.45,
            buffer_cache: 0.15,
            slab: 0.10,
            net_buf: 0.0,
        },
        hot_wss_bytes: 128 * MB,
        hot_access_fraction: 0.7,
        hot_page_fraction: 0.3,
        fresh_hot_fraction: 0.6,
        write_fraction: 0.4,
        // Fig 4: 0.53 M pages cumulative ≈ the resident footprint — page-
        // level churn is low (cache blocks are reused in place).
        heap_churn_per_sec: 0.002,
        io_churn_per_sec: 0.01,
        kernel_buf_churn_per_sec: 0.01,
        ..base("LevelDB")
    }
}

/// Redis: key-value store, 4 M ops at 80 % GETs (Table 2).
/// Network-intensive: cycles skbuff slab pages at request rate.
pub fn redis() -> WorkloadSpec {
    WorkloadSpec {
        mpki: 11.1,
        cpi_base: 3.26,
        mlp: 4.0,
        threads: 1.0,
        footprint: Footprint {
            heap: 3 * GB,
            page_cache: 64 * MB,
            buffer_cache: 32 * MB,
            slab: 160 * MB,
            net_buf: 256 * MB,
        },
        access_mix: AccessMix {
            heap: 0.50,
            page_cache: 0.0,
            buffer_cache: 0.0,
            slab: 0.12,
            net_buf: 0.38,
        },
        hot_wss_bytes: 384 * MB,
        hot_access_fraction: 0.75,
        hot_page_fraction: 0.15,
        fresh_hot_fraction: 0.5,
        write_fraction: 0.3,
        // Fig 4: 0.94 M pages ≈ resident + modest skbuff page cycling
        // (objects churn at request rate, backing pages are reused).
        heap_churn_per_sec: 0.001,
        io_churn_per_sec: 0.002,
        kernel_buf_churn_per_sec: 0.01,
        ..base("Redis")
    }
}

/// Nginx: static/dynamic web serving over 1 M pages (Table 2). Storage- and
/// network-intensive with an active working set under 60 MB (§2.2) — the
/// paper measures <10 % heterogeneity impact and drops it from §5.3 on.
pub fn nginx() -> WorkloadSpec {
    WorkloadSpec {
        // CPI includes kernel network-stack and event-loop work — Nginx is
        // request-processing-bound, which is why heterogeneity barely
        // touches it (§2.2: <10% impact).
        mpki: 2.1,
        cpi_base: 22.2,
        mlp: 1.5,
        threads: 4.0,
        footprint: Footprint {
            heap: 48 * MB,
            page_cache: 128 * MB,
            buffer_cache: 16 * MB,
            slab: 32 * MB,
            net_buf: 48 * MB,
        },
        access_mix: AccessMix {
            heap: 0.30,
            page_cache: 0.40,
            buffer_cache: 0.0,
            slab: 0.05,
            net_buf: 0.25,
        },
        hot_wss_bytes: 56 * MB,
        hot_access_fraction: 0.9,
        hot_page_fraction: 0.5,
        fresh_hot_fraction: 0.6,
        write_fraction: 0.2,
        heap_churn_per_sec: 0.002,
        io_churn_per_sec: 0.05,
        kernel_buf_churn_per_sec: 0.05,
        ..base("Nginx")
    }
}

/// All Table 2 applications, in the paper's presentation order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        graphchi(),
        x_stream(),
        metis(),
        leveldb(),
        redis(),
        nginx(),
    ]
}

/// The five applications of Figs 9–12 (Nginx dropped per §5.3).
pub fn fig9_apps() -> Vec<WorkloadSpec> {
    vec![graphchi(), x_stream(), metis(), leveldb(), redis()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_matches_table4() {
        let expect = [
            ("Graphchi", 27.4),
            ("X-Stream", 24.8),
            ("Metis", 14.9),
            ("LevelDB", 4.7),
            ("Redis", 11.1),
            ("Nginx", 2.1),
        ];
        for (name, mpki) in expect {
            let spec = all().into_iter().find(|s| s.name == name).unwrap();
            assert!((spec.mpki - mpki).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn access_mixes_sum_to_one() {
        for spec in all() {
            assert!(
                (spec.access_mix.total() - 1.0).abs() < 1e-9,
                "{} mix sums to {}",
                spec.name,
                spec.access_mix.total()
            );
        }
    }

    #[test]
    fn footprints_fit_guest_memory() {
        // §5.1: guests have 8 GB SlowMem (+ up to 4 GB FastMem).
        for spec in all() {
            assert!(
                spec.footprint.total() <= 8 * GB,
                "{} resident footprint {} exceeds guest memory",
                spec.name,
                spec.footprint.total()
            );
        }
    }

    #[test]
    fn nginx_active_set_is_tiny() {
        assert!(nginx().hot_wss_bytes < 60 * MB);
    }

    #[test]
    fn io_apps_have_io_heavy_access_mix() {
        // §3.2: X-Stream and LevelDB are page-cache-bound; Redis netbuf-bound.
        assert!(x_stream().access_mix.page_cache > x_stream().access_mix.heap);
        assert!(leveldb().access_mix.page_cache > leveldb().access_mix.heap);
        assert!(redis().access_mix.net_buf > 0.3);
        // Metis is overwhelmingly heap.
        assert!(metis().access_mix.heap > 0.9);
    }

    #[test]
    fn hot_sets_are_smaller_than_footprints() {
        for spec in all() {
            assert!(
                spec.hot_wss_bytes <= spec.footprint.total(),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn fig9_set_drops_nginx() {
        let names: Vec<_> = fig9_apps().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 5);
        assert!(!names.contains(&"Nginx"));
    }
}
