//! Microbenchmarks: `memlat` (Fig 6) and Stream (Fig 7).
//!
//! §5.2 evaluates placement policies with a pointer-chase latency benchmark
//! and the Stream bandwidth benchmark, sweeping the working-set size against
//! a 0.5 GB FastMem / 3.5 GB SlowMem split. Both are heap-only, zero-churn,
//! uniformly hot workloads — what distinguishes them is how the engine reads
//! the result (average miss latency vs. achieved bandwidth).

use crate::spec::{AccessMix, Footprint, WorkloadSpec};

const MB: u64 = 1 << 20;

fn heap_only(name: &'static str, wss_bytes: u64) -> WorkloadSpec {
    WorkloadSpec {
        name,
        mpki: 0.0, // overridden below
        cpi_base: 1.0,
        mlp: 1.0,
        threads: 1.0,
        clock_ghz: 2.67,
        total_instructions: 2_000_000_000,
        instructions_per_epoch: 20_000_000,
        footprint: Footprint {
            heap: wss_bytes,
            ..Footprint::default()
        },
        access_mix: AccessMix {
            heap: 1.0,
            page_cache: 0.0,
            buffer_cache: 0.0,
            slab: 0.0,
            net_buf: 0.0,
        },
        // Uniformly hot: every page is part of the working set.
        hot_wss_bytes: wss_bytes,
        hot_access_fraction: 1.0,
        hot_page_fraction: 1.0,
        fresh_hot_fraction: 1.0,
        write_fraction: 0.0,
        heap_churn_per_sec: 0.0,
        io_churn_per_sec: 0.0,
        kernel_buf_churn_per_sec: 0.0,
        ramp_fraction: 0.1,
    }
}

/// The `memlat` pointer-chase benchmark (Fig 6): dependent loads, no MLP,
/// every access a cache miss once the working set exceeds the LLC.
pub fn memlat(wss_bytes: u64) -> WorkloadSpec {
    WorkloadSpec {
        // A chase dereferences every ~3 instructions; with the working set
        // past the LLC nearly all of them miss.
        mpki: 330.0,
        mlp: 1.0,
        threads: 1.0,
        cpi_base: 0.8,
        ..heap_only("memlat", wss_bytes)
    }
}

/// The Stream bandwidth benchmark (Fig 7): wide, independent, streaming
/// accesses with deep MLP and a store-heavy mix (copy/scale/add/triad).
pub fn stream(wss_bytes: u64) -> WorkloadSpec {
    WorkloadSpec {
        mpki: 120.0,
        mlp: 16.0,
        threads: 16.0,
        cpi_base: 0.6,
        write_fraction: 0.45,
        ..heap_only("stream", wss_bytes)
    }
}

/// The Fig 6 working-set sweep (0.1 GB – 2 GB).
pub fn memlat_sweep() -> Vec<WorkloadSpec> {
    [102u64, 256, 512, 1024, 1536, 2048]
        .iter()
        .map(|&mb| memlat(mb * MB))
        .collect()
}

/// The Fig 7 working-set points (0.5 GB and 1.5 GB).
pub fn stream_sweep() -> Vec<WorkloadSpec> {
    [512u64, 1536].iter().map(|&mb| stream(mb * MB)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmarks_are_heap_only_and_uniformly_hot() {
        for spec in [memlat(MB * 512), stream(MB * 512)] {
            assert!((spec.access_mix.heap - 1.0).abs() < 1e-12);
            assert_eq!(spec.footprint.total(), spec.footprint.heap);
            assert_eq!(spec.hot_wss_bytes, 512 * MB);
            assert_eq!(spec.hot_page_fraction, 1.0);
            assert_eq!(spec.heap_churn_per_sec, 0.0);
        }
    }

    #[test]
    fn memlat_is_latency_bound_stream_is_bandwidth_bound() {
        let lat = memlat(MB * 512);
        let bw = stream(MB * 512);
        assert_eq!(lat.mlp, 1.0, "pointer chase has no MLP");
        assert!(bw.mlp >= 8.0, "stream has deep MLP");
        assert!(bw.write_fraction > lat.write_fraction);
    }

    #[test]
    fn sweeps_match_figure_axes() {
        let m = memlat_sweep();
        assert_eq!(m.len(), 6);
        assert!(m.windows(2).all(|w| w[0].footprint.heap < w[1].footprint.heap));
        assert_eq!(stream_sweep().len(), 2);
    }
}
