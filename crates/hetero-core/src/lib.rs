//! HeteroOS — the paper's contribution as a Rust library.
//!
//! This crate implements the policies and simulators of *HeteroOS: OS Design
//! for Heterogeneous Memory Management in Datacenter* (ISCA '17) on top of
//! the workspace's substrates:
//!
//! * [`policy`] — the incremental HeteroOS mechanisms (Table 5) and every
//!   evaluation baseline,
//! * [`config`] — the simulation platform configuration (§5.1 defaults),
//! * [`engine`] — the single-VM epoch engine ([`SingleVmSim`], [`run_app`]),
//! * [`multivm`] — the multi-VM engine with DRF/max-min sharing (Fig 13),
//! * [`cluster`] — the rack-scale layer: many hosts, seeded VM arrivals,
//!   consolidation placement, inter-host pre-copy live migration,
//! * [`adaptive`] — the Eq. 1 tracking-interval controller,
//! * [`metrics`] — [`RunReport`] with the paper's figures of merit,
//! * [`experiments`] — one function per table/figure of the evaluation.
//!
//! # Examples
//!
//! ```no_run
//! use hetero_core::{run_app, Policy, SimConfig};
//! use hetero_workloads::apps;
//!
//! let cfg = SimConfig::paper_default().with_capacity_ratio(1, 4);
//! let report = run_app(&cfg, Policy::HeteroLru, apps::graphchi());
//! let base = run_app(&cfg, Policy::SlowMemOnly, apps::graphchi());
//! println!("gain over SlowMem-only: {:.0}%", report.gain_percent_vs(&base));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod eventq;
pub mod experiments;
pub mod metrics;
pub mod multivm;
pub mod policy;
pub mod snapshot;

pub use cluster::{
    ArrivalMode, ArrivalProcess, Cluster, ClusterOutcome, ClusterReport, ClusterSpec,
    MigrationPolicy, MigrationRecord,
};
pub use config::{SchedMode, SimConfig};
pub use eventq::{EngineEvent, EventQueue};
pub use engine::{run_app, SingleVmSim};
pub use hetero_faults::AuditLevel;
pub use metrics::RunReport;
pub use policy::{Policy, Tracking};
