//! The placement/management policies under evaluation.
//!
//! [`Policy`] enumerates the paper's incremental HeteroOS mechanisms
//! (Table 5) plus every baseline the evaluation compares against.

use std::fmt;

/// A heterogeneous-memory management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Naive baseline: everything in SlowMem (§5.1 baseline 1).
    SlowMemOnly,
    /// Ideal baseline: unlimited FastMem (§5.1 baseline 2).
    FastMemOnly,
    /// Heterogeneity-blind random placement (Fig 6/7 "Random").
    Random,
    /// Existing Linux NUMA management with FastMem as the preferred node
    /// (§5.3 "NUMA-preferred"): first-touch, no demand prioritization, no
    /// contention resolution, and CPU-local allocation noise.
    NumaPreferred,
    /// On-demand FastMem for the heap only (Table 5 "Heap-OD").
    HeapOd,
    /// Heap-OD + I/O page cache + slab prioritization with demand-based
    /// arbitration (Table 5 "Heap-IO-Slab-OD").
    HeapIoSlabOd,
    /// Heap-IO-Slab-OD + HeteroOS-LRU eager contention resolution
    /// (Table 5 "HeteroOS-LRU").
    HeteroLru,
    /// HeteroVisor-style guest-transparent management: lazy placement, full
    /// VM hotness scans and forced migrations in the VMM (§2.3).
    VmmExclusive,
    /// HeteroOS-LRU + guest-guided VMM hotness tracking + architectural
    /// hints + guest-side migration (Table 5 "HeteroOS-coordinated").
    HeteroCoordinated,
}

impl Policy {
    /// Every policy, baselines first.
    pub const ALL: [Policy; 9] = [
        Policy::SlowMemOnly,
        Policy::FastMemOnly,
        Policy::Random,
        Policy::NumaPreferred,
        Policy::HeapOd,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::VmmExclusive,
        Policy::HeteroCoordinated,
    ];

    /// The Fig 9 comparison set (guest-OS placement policies).
    pub const FIG9: [Policy; 4] = [
        Policy::HeapOd,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::NumaPreferred,
    ];

    /// The Fig 11 comparison set (coordinated management).
    pub const FIG11: [Policy; 3] = [
        Policy::HeteroLru,
        Policy::VmmExclusive,
        Policy::HeteroCoordinated,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Policy::SlowMemOnly => "SlowMem-only",
            Policy::FastMemOnly => "FastMem-only",
            Policy::Random => "Random",
            Policy::NumaPreferred => "NUMA-preferred",
            Policy::HeapOd => "Heap-OD",
            Policy::HeapIoSlabOd => "Heap-IO-Slab-OD",
            Policy::HeteroLru => "HeteroOS-LRU",
            Policy::VmmExclusive => "VMM-exclusive",
            Policy::HeteroCoordinated => "HeteroOS-coordinated",
        }
    }

    /// Table 5 description (for `repro table5`).
    pub fn description(self) -> &'static str {
        match self {
            Policy::SlowMemOnly => "naive approach always using SlowMem",
            Policy::FastMemOnly => "ideal approach with unlimited FastMem",
            Policy::Random => "random heterogeneity-blind placement",
            Policy::NumaPreferred => "existing Linux preferred-NUMA-node policy",
            Policy::HeapOd => "on-demand heap allocation",
            Policy::HeapIoSlabOd => {
                "Heap-OD + IO page cache allocation + slab allocation"
            }
            Policy::HeteroLru => "Heap-IO-Slab-OD + HeteroOS-LRU",
            Policy::VmmExclusive => {
                "guest-transparent VMM hotness-tracking and migration (HeteroVisor)"
            }
            Policy::HeteroCoordinated => {
                "HeteroOS-LRU + OS-guided hotness-tracking + architecture hints"
            }
        }
    }

    /// True when the guest runs HeteroOS-LRU (eager aging + watermark
    /// demotion).
    pub fn uses_guest_lru(self) -> bool {
        matches!(self, Policy::HeteroLru | Policy::HeteroCoordinated)
    }

    /// True when demand-based FastMem prioritization arbitrates types under
    /// contention.
    pub fn uses_demand_prioritization(self) -> bool {
        matches!(
            self,
            Policy::HeapIoSlabOd | Policy::HeteroLru | Policy::HeteroCoordinated
        )
    }

    /// Which hotness-tracking discipline runs, if any.
    pub fn tracking(self) -> Tracking {
        match self {
            Policy::VmmExclusive => Tracking::FullVm,
            Policy::HeteroCoordinated => Tracking::Guided,
            _ => Tracking::None,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hotness-tracking discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tracking {
    /// No tracking or migration beyond guest LRU demotion.
    None,
    /// VMM scans the whole VM on a fixed interval and migrates itself.
    FullVm,
    /// VMM scans guest-supplied ranges on an adaptive interval; the guest
    /// migrates after validity checks.
    Guided,
    /// Page-table A/D tracking (HMM-V-style): hotness comes from
    /// deterministic harvest-and-reset sweeps of the guest page table's
    /// accessed/dirty bits — access bits for heat, dirty bits for write
    /// heat — priced per PTE walked. No policy selects it by default;
    /// enable it with `SimConfig::with_tracking` (`repro --tracking
    /// access-bit`).
    AccessBit,
}

impl fmt::Display for Tracking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tracking::None => "none",
            Tracking::FullVm => "full-vm",
            Tracking::Guided => "guided",
            Tracking::AccessBit => "access-bit",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Tracking {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Tracking::None),
            "full-vm" => Ok(Tracking::FullVm),
            "guided" => Ok(Tracking::Guided),
            "access-bit" => Ok(Tracking::AccessBit),
            other => Err(format!(
                "unknown tracking mode '{other}' \
                 (expected none, full-vm, guided or access-bit)"
            )),
        }
    }
}

hetero_sim::impl_snap!(enum Tracking {
    0 => None {},
    1 => FullVm {},
    2 => Guided {},
    3 => AccessBit {},
});


hetero_sim::impl_snap!(enum Policy {
    0 => SlowMemOnly {},
    1 => FastMemOnly {},
    2 => Random {},
    3 => NumaPreferred {},
    4 => HeapOd {},
    5 => HeapIoSlabOd {},
    6 => HeteroLru {},
    7 => VmmExclusive {},
    8 => HeteroCoordinated {},
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Policy::ALL.len());
    }

    #[test]
    fn table5_incremental_structure() {
        // Each Table 5 mechanism builds on the previous one.
        assert!(!Policy::HeapOd.uses_demand_prioritization());
        assert!(Policy::HeapIoSlabOd.uses_demand_prioritization());
        assert!(!Policy::HeapIoSlabOd.uses_guest_lru());
        assert!(Policy::HeteroLru.uses_guest_lru());
        assert_eq!(Policy::HeteroLru.tracking(), Tracking::None);
        assert_eq!(Policy::HeteroCoordinated.tracking(), Tracking::Guided);
    }

    #[test]
    fn vmm_exclusive_tracks_but_has_no_guest_lru() {
        assert_eq!(Policy::VmmExclusive.tracking(), Tracking::FullVm);
        assert!(!Policy::VmmExclusive.uses_guest_lru());
        assert!(!Policy::VmmExclusive.uses_demand_prioritization());
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for p in Policy::FIG9.iter().chain(Policy::FIG11.iter()) {
            assert!(Policy::ALL.contains(p));
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Policy::HeteroLru.to_string(), "HeteroOS-LRU");
        assert_eq!(Policy::VmmExclusive.to_string(), "VMM-exclusive");
    }
}
