//! Figure 4 — application memory page distribution.
//!
//! Runs each application once (placement-neutral SlowMem-only) and reads the
//! *cumulative allocation counts* per page type out of the guest kernel's
//! statistics — the same quantity Fig 4 plots (per-type percentage plus the
//! total pages allocated over the run, in millions of real 4 KiB pages).

use hetero_guest::page::PageType;
use hetero_sim::SeriesSet;
use hetero_workloads::{apps, AppWorkload};

use crate::engine::SingleVmSim;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// One application's measured page mix.
#[derive(Debug, Clone)]
pub struct PageMix {
    /// Application name.
    pub app: &'static str,
    /// Fraction of cumulative allocations per page type.
    pub fractions: Vec<(PageType, f64)>,
    /// Total real (4 KiB-equivalent) pages allocated, in millions.
    pub total_millions: f64,
}

/// Figure 4 data: the five profiled applications' page mixes.
pub fn fig4(opts: &ExpOptions) -> Vec<PageMix> {
    let order = [
        apps::redis(),
        apps::x_stream(),
        apps::graphchi(),
        apps::metis(),
        apps::leveldb(),
    ];
    let specs: Vec<_> = order.into_iter().map(|s| opts.tune(s)).collect();
    opts.runner().run(specs, |spec| {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let name = spec.name;
        let workload = AppWorkload::new(spec, cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg.clone(), Policy::SlowMemOnly, workload);
        while sim.step() {}
        let stats = sim.kernel().stats();
        let total: u64 = PageType::ALL
            .iter()
            .map(|&t| stats.cumulative(t).requests)
            .sum();
        let fractions = PageType::ALL
            .iter()
            .map(|&t| {
                let f = if total == 0 {
                    0.0
                } else {
                    stats.cumulative(t).requests as f64 / total as f64
                };
                (t, f)
            })
            .collect();
        PageMix {
            app: name,
            fractions,
            total_millions: cfg.real_pages(total) as f64 / 1e6,
        }
    })
}

/// Renders the Fig 4 data as a text table.
pub fn fig4_table(opts: &ExpOptions) -> String {
    use std::fmt::Write as _;
    let mixes = fig4(opts);
    let mut out = String::from("# Fig 4 — application memory page distribution\n");
    write!(out, "{:<10}", "app").expect("write to string");
    for t in PageType::ALL {
        write!(out, " {:>12}", t.to_string()).expect("write to string");
    }
    writeln!(out, " {:>10}", "total(M)").expect("write to string");
    for m in mixes {
        write!(out, "{:<10}", m.app).expect("write to string");
        for (_, f) in &m.fractions {
            write!(out, " {:>11.1}%", f * 100.0).expect("write to string");
        }
        writeln!(out, " {:>10.2}", m.total_millions).expect("write to string");
    }
    out
}

/// Series form for plotting (x = app index in Fig 4 order).
pub fn fig4_series(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new("Fig 4 — page distribution (%)", "app-index");
    for (i, m) in fig4(opts).into_iter().enumerate() {
        for (t, f) in m.fractions {
            set.record(&t.to_string(), i as f64, f * 100.0);
        }
        set.record("total-millions", i as f64, m.total_millions);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_mixes_match_paper_shape() {
        let mixes = fig4(&ExpOptions::quick());
        let get = |app: &str| mixes.iter().find(|m| m.app == app).expect("app present");
        let frac = |m: &PageMix, t: PageType| {
            m.fractions
                .iter()
                .find(|&&(pt, _)| pt == t)
                .map(|&(_, f)| f)
                .unwrap_or(0.0)
        };
        // Redis is the network-buffer-heavy application.
        let redis = get("Redis");
        assert!(frac(redis, PageType::NetBuf) > 0.02);
        // X-Stream and LevelDB are page-cache heavy.
        assert!(frac(get("X-Stream"), PageType::PageCache) > 0.3);
        assert!(frac(get("LevelDB"), PageType::PageCache) > 0.3);
        // Metis is overwhelmingly heap.
        assert!(frac(get("Metis"), PageType::HeapAnon) > 0.7);
        // Fractions sum to one.
        for m in &mixes {
            let sum: f64 = m.fractions.iter().map(|&(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}", m.app);
        }
        // Graphchi allocates the most pages overall (Fig 4: 5.04 M).
        let totals: Vec<(&str, f64)> =
            mixes.iter().map(|m| (m.app, m.total_millions)).collect();
        let max = totals
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        assert_eq!(max.0, "Graphchi", "totals: {totals:?}");
    }

    #[test]
    fn fig4_table_renders() {
        let t = fig4_table(&ExpOptions::quick());
        assert!(t.contains("Redis"));
        assert!(t.contains("total(M)"));
    }
}
