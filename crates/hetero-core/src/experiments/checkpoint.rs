//! Checkpointable scenarios (`repro --checkpoint-every` / `--resume`).
//!
//! One canonical scenario per simulation layer, shared by the `repro`
//! binary's checkpoint drivers and the differential tests so both sides
//! pin the *same* runs:
//!
//! * [`single_sim`] — a §5.1-shaped single-VM run (the `ckpt-single`
//!   target),
//! * [`fleet_sim`] — the four cluster VM templates co-scheduled on one
//!   DRF host (the `ckpt-fleet` target),
//! * [`cluster_sim`] — exactly the rack-scale consolidation run of
//!   `repro cluster`, built unstarted so it can be stepped and
//!   snapshotted round by round.
//!
//! The contract under test everywhere: a run resumed from a mid-run
//! snapshot finishes **byte-identically** to an uninterrupted one —
//! same reports, same JSON exports, same final snapshot bytes.

use hetero_vmm::SharePolicy;
use hetero_workloads::{apps, AppWorkload};

use crate::cluster::Cluster;
use crate::experiments::cluster::{fleet_spec, fleet_templates};
use crate::experiments::ExpOptions;
use crate::multivm::MultiVmSim;
use crate::{Policy, SimConfig, SingleVmSim};

const GB: u64 = 1 << 30;

/// The single-VM checkpoint scenario: redis on the paper's 1:4
/// fast:slow capacity split. Honors `--quick`, `--seed`, `--audit`,
/// `--sched`, `--tier-profile` and `--tracking`.
pub fn single_sim(opts: &ExpOptions, policy: Policy) -> SingleVmSim<AppWorkload> {
    let cfg = SimConfig::paper_default()
        .with_capacity_ratio(1, 4)
        .with_seed(opts.seed)
        .with_audit(opts.audit)
        .with_sched(opts.sched)
        .with_tier_profile(opts.tier_profile)
        .with_tracking(opts.tracking);
    let spec = opts.tune(apps::redis());
    let workload = AppWorkload::new(spec, cfg.page_size, cfg.scale);
    SingleVmSim::new(cfg, policy, workload)
}

/// The fleet checkpoint scenario: the four cluster VM templates
/// co-scheduled on one §5.1-shaped DRF host. Honors `--quick`,
/// `--seed`, `--audit`, `--sched` and `--jobs` (boot fan-out only —
/// the run itself is byte-identical at any thread count).
pub fn fleet_sim(opts: &ExpOptions, policy: Policy) -> MultiVmSim {
    let cfg = SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB)
        .with_seed(opts.seed)
        .with_audit(opts.audit)
        .with_sched(opts.sched)
        .with_tier_profile(opts.tier_profile)
        .with_tracking(opts.tracking);
    MultiVmSim::new_with_jobs(
        cfg,
        SharePolicy::paper_drf(),
        policy,
        fleet_templates(opts),
        opts.jobs.max(1),
    )
}

/// The cluster checkpoint scenario: the exact consolidation run of
/// `repro cluster` (same spec, same host shape, same policies), built
/// unstarted so callers can drive it with [`Cluster::step_round`] and
/// snapshot between rounds. Honors every cluster-shaping option.
pub fn cluster_sim(opts: &ExpOptions) -> Cluster {
    let cfg = SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB)
        .with_seed(opts.seed)
        .with_audit(opts.audit)
        .with_sched(opts.sched)
        .with_tier_profile(opts.tier_profile)
        .with_tracking(opts.tracking);
    Cluster::new(
        cfg,
        SharePolicy::paper_drf(),
        Policy::HeteroCoordinated,
        fleet_spec(opts),
        opts.jobs.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scenario_checkpoints_and_resumes_identically() {
        let opts = ExpOptions::quick();
        let mut straight = single_sim(&opts, Policy::HeteroCoordinated);
        let mut total = 0u64;
        while straight.step() {
            total += 1;
        }
        assert!(total >= 2, "scenario must run long enough to checkpoint mid-run");

        let mut first = single_sim(&opts, Policy::HeteroCoordinated);
        for _ in 0..total / 2 {
            assert!(first.step(), "scenario must outlast the checkpoint");
        }
        let snap = first.save();
        drop(first);
        let mut resumed = SingleVmSim::restore(&snap).expect("snapshot restores");
        while resumed.step() {}

        assert_eq!(straight.report(), resumed.report());
        assert_eq!(straight.save(), resumed.save(), "final state must be byte-identical");
    }

    #[test]
    fn fleet_scenario_checkpoints_and_resumes_identically() {
        let opts = ExpOptions::quick();
        let mut straight = fleet_sim(&opts, Policy::HeteroCoordinated);
        let mut total = 0u64;
        while straight.step_fleet() {
            total += 1;
        }
        assert!(total >= 2, "scenario must run long enough to checkpoint mid-run");

        let mut first = fleet_sim(&opts, Policy::HeteroCoordinated);
        for _ in 0..total / 2 {
            assert!(first.step_fleet(), "scenario must outlast the checkpoint");
        }
        let snap = first.save();
        let mut resumed = MultiVmSim::restore(&snap).expect("snapshot restores");
        while resumed.step_fleet() {}

        assert_eq!(straight.save(), resumed.save());
        let (a, av) = straight.into_results();
        let (b, bv) = resumed.into_results();
        assert_eq!(a, b);
        assert_eq!(av.len(), bv.len());
    }
}
