//! Figures 1 and 2 — latency/bandwidth sensitivity.
//!
//! Every application runs entirely in SlowMem while the throttle
//! configuration sweeps `(L:2,B:2) … (L:5,B:12)`; the y value is the
//! slowdown relative to the FastMem-only ideal. Fig 1 adds a remote-NUMA
//! bar (FastMem on a remote socket) and uses the 16 MB-LLC testbed; Fig 2
//! repeats the sweep on the 48 MB-LLC Intel NVM emulator.

use hetero_mem::{LlcModel, ThrottleConfig};
use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

fn sweep(opts: &ExpOptions, llc: LlcModel, include_remote: bool, title: &str) -> SeriesSet {
    let mut set = SeriesSet::new(title, "bw-factor");
    let specs: Vec<_> = apps::all().into_iter().map(|s| opts.tune(s)).collect();
    // One descriptor per run: the FastMem-only baseline (x = None) leads
    // each app's group, followed by the throttle sweep and (for Fig 1) the
    // remote-NUMA bar at x = 16.
    let mut runs: Vec<(usize, Option<ThrottleConfig>, Option<f64>)> = Vec::new();
    for ai in 0..specs.len() {
        runs.push((ai, None, None));
        for t in ThrottleConfig::figure1_sweep() {
            runs.push((ai, Some(t), Some(t.bandwidth_factor)));
        }
        if include_remote {
            runs.push((ai, Some(ThrottleConfig::remote_numa()), Some(16.0)));
        }
    }
    let reports = opts.runner().run(runs.clone(), |(ai, throttle, _)| {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_llc(llc)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        match throttle {
            None => run_app(&cfg, Policy::FastMemOnly, specs[ai].clone()),
            Some(t) => run_app(
                &cfg.with_slow_throttle(t),
                Policy::SlowMemOnly,
                specs[ai].clone(),
            ),
        }
    });
    let mut fast = None;
    for (&(ai, _, x), r) in runs.iter().zip(&reports) {
        match x {
            None => fast = Some(r),
            Some(x) => {
                let base = fast.expect("baseline precedes its group");
                set.record(specs[ai].name, x, r.slowdown_vs(base));
            }
        }
    }
    set
}

/// Figure 1: sensitivity on the throttling testbed (16 MB LLC), plus the
/// remote-NUMA comparison bar at x = 16.
pub fn fig1(opts: &ExpOptions) -> SeriesSet {
    sweep(
        opts,
        LlcModel::testbed(),
        true,
        "Fig 1 — slowdown vs FastMem-only, 16MB LLC (x=16 is Remote NUMA)",
    )
}

/// Figure 2: the same sweep on the Intel NVM emulator (48 MB LLC).
pub fn fig2(opts: &ExpOptions) -> SeriesSet {
    sweep(
        opts,
        LlcModel::intel_emulator(),
        false,
        "Fig 2 — slowdown vs FastMem-only, Intel NVM emulator (48MB LLC)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_observation_1_and_2() {
        let set = fig1(&ExpOptions::quick());
        // Observation 1: memory-intensive graph engines suffer most at
        // (L:5,B:12); Nginx barely notices.
        let at = |app: &str, x: f64| {
            set.get(app)
                .and_then(|s| {
                    s.points()
                        .iter()
                        .find(|&&(px, _)| (px - x).abs() < 1e-9)
                        .map(|&(_, y)| y)
                })
                .unwrap_or_else(|| panic!("{app}@{x} missing"))
        };
        assert!(at("Graphchi", 12.0) > 4.0);
        assert!(at("Nginx", 12.0) < 1.4);
        assert!(at("Graphchi", 12.0) > at("LevelDB", 12.0));
        // Observation 2: remote NUMA (x=16) costs far less than any
        // heterogeneous configuration (<30%).
        assert!(at("Graphchi", 16.0) < 1.3);
        assert!(at("Graphchi", 16.0) < at("Graphchi", 2.0));
        // Monotonic in the bandwidth factor.
        assert!(at("X-Stream", 2.0) < at("X-Stream", 5.0));
        assert!(at("X-Stream", 5.0) < at("X-Stream", 12.0));
    }

    #[test]
    fn fig2_larger_cache_lowers_slowdowns() {
        let opts = ExpOptions::quick();
        let f1 = fig1(&opts);
        let f2 = fig2(&opts);
        for app in ["LevelDB", "Redis", "Nginx"] {
            let y1 = f1
                .get(app)
                .unwrap_or_else(|| panic!("fig1 has no '{app}' series"))
                .max_y()
                .unwrap_or_else(|| panic!("fig1 '{app}' series is empty"));
            let y2 = f2
                .get(app)
                .unwrap_or_else(|| panic!("fig2 has no '{app}' series"))
                .max_y()
                .unwrap_or_else(|| panic!("fig2 '{app}' series is empty"));
            assert!(
                y2 <= y1 + 1e-9,
                "{app}: 48MB LLC should not raise the slowdown ({y2} vs {y1})"
            );
        }
    }
}
