//! Figure 13 — multi-VM resource sharing with weighted DRF.
//!
//! §5.5's scenario: a Graphchi VM (Twitter dataset — 6 GB heap, 1.5 GB
//! active working set) and a memory-hungry Metis VM (8 GB heap, 5.4 GB
//! working set) co-run on a host with 4 GB FastMem and 8 GB SlowMem.
//! Reservation vectors follow the paper: Graphchi `<2·1 GB, 1·4 GB>`,
//! Metis `<2·3 GB, 1·4 GB>`. The combined demand oversubscribes the
//! machine, so the fairness discipline decides who swaps:
//! single-resource max-min lets Metis balloon out Graphchi's SlowMem;
//! weighted DRF protects the per-type reservation.

use hetero_sim::SeriesSet;
use hetero_vmm::SharePolicy;
use hetero_workloads::{apps, WorkloadSpec};

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::multivm::{MultiVmSim, VmSetup};
use crate::{Policy, SimConfig};

const GB: u64 = 1 << 30;

/// Graphchi over the Twitter dataset (§5.5): 6 GB heap, 1.5 GB active WSS.
pub fn graphchi_twitter() -> WorkloadSpec {
    let mut s = apps::graphchi();
    s.footprint.heap = 6 * GB;
    s.footprint.page_cache = GB / 2;
    s.hot_wss_bytes = GB + GB / 2;
    s
}

/// Metis over the §5.5 dataset: a heap noticeably beyond its fair share of
/// the machine (the paper's 8 GB heap, 5.4 GB working set), so it demands
/// memory for the whole run — the "memory-hungry Metis".
pub fn metis_big() -> WorkloadSpec {
    let mut s = apps::metis();
    s.footprint.heap = 15 * GB / 2;
    s.footprint.page_cache = 128 << 20;
    s.hot_wss_bytes = 5 * GB + 2 * (GB / 5);
    s
}

/// The two-VM setup of Fig 13. FastMem minima follow the paper's
/// reservation vectors (1 GB / 3 GB); SlowMem minima leave boot slack so
/// the fairness discipline — not the boot carve-up — decides who gets the
/// contended SlowMem.
pub fn paper_setups(opts: &ExpOptions) -> Vec<VmSetup> {
    vec![
        VmSetup::new(
            opts.tune(graphchi_twitter()),
            GB,
            5 * GB / 2,
            2 * GB,
            7 * GB,
        ),
        VmSetup::new(
            opts.tune(metis_big()),
            3 * GB,
            5 * GB / 2,
            4 * GB,
            8 * GB,
        ),
    ]
}

fn host_cfg(opts: &ExpOptions) -> SimConfig {
    SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB)
        .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched)
}

/// Per-VM SlowMem-only baseline: the VM alone on the host.
fn baseline(opts: &ExpOptions, setup: &VmSetup) -> crate::RunReport {
    run_app(&host_cfg(opts), Policy::SlowMemOnly, setup.spec.clone())
}

/// Figure 13: gains (%) over each VM's SlowMem-only baseline, for the four
/// configurations the paper plots. X axis: 0 = Graphchi VM, 1 = Metis VM.
pub fn fig13(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 13 — multi-VM sharing gains (%) vs SlowMem-only (x: 0=Graphchi VM, 1=Metis VM)",
        "vm-index",
    );
    let setups = paper_setups(opts);

    /// One independent unit of Fig 13 work.
    enum Job {
        /// Per-VM SlowMem-only baseline (VM alone on the host).
        Baseline(usize),
        /// A co-run of both VMs under one sharing discipline.
        Multi(SharePolicy, Policy),
        /// The single-VM star: one VM alone under coordinated management.
        Solo(usize),
    }
    let jobs = vec![
        Job::Baseline(0),
        Job::Baseline(1),
        Job::Multi(SharePolicy::MaxMin, Policy::VmmExclusive),
        Job::Multi(SharePolicy::MaxMin, Policy::HeteroCoordinated),
        Job::Multi(SharePolicy::paper_drf(), Policy::HeteroCoordinated),
        Job::Solo(0),
        Job::Solo(1),
    ];
    let results = opts.runner().run(jobs, |job| match job {
        Job::Baseline(i) => vec![baseline(opts, &setups[i])],
        Job::Multi(share, policy) => {
            MultiVmSim::new(host_cfg(opts), share, policy, setups.clone()).run()
        }
        Job::Solo(i) => vec![run_app(
            &host_cfg(opts),
            Policy::HeteroCoordinated,
            setups[i].spec.clone(),
        )],
    });

    let baselines = [&results[0][0], &results[1][0]];
    let mut record = |label: &str, reports: &[crate::RunReport]| {
        for (i, r) in reports.iter().enumerate() {
            set.record(label, i as f64, r.gain_percent_vs(baselines[i]));
        }
    };
    record("VMM-exclusive", &results[2]);
    record("HeteroOS-coordinated", &results[3]);
    record("DRF-HeteroOS-coordinated", &results[4]);
    // The single-VM stars: each VM alone on the whole host (the paper's
    // best-case single-VM runs).
    for i in 0..setups.len() {
        set.record(
            "Single-VM HeteroOS-coordinated",
            i as f64,
            results[5 + i][0].gain_percent_vs(baselines[i]),
        );
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn fig13_drf_protects_graphchi() {
        let set = fig13(&ExpOptions::quick());
        let graphchi_drf = at(&set, "DRF-HeteroOS-coordinated", 0.0);
        let graphchi_maxmin = at(&set, "HeteroOS-coordinated", 0.0);
        let graphchi_vmm = at(&set, "VMM-exclusive", 0.0);
        // §5.5: DRF improves the Graphchi VM over both max-min coordinated
        // and the VMM-exclusive approach. Quick-mode runs are noisy, so
        // allow a small tolerance against max-min; the full-length run in
        // EXPERIMENTS.md shows the clean separation.
        assert!(
            graphchi_drf >= graphchi_maxmin - 3.0,
            "DRF {graphchi_drf:.0}% vs max-min {graphchi_maxmin:.0}%"
        );
        assert!(
            graphchi_drf > graphchi_vmm,
            "DRF {graphchi_drf:.0}% vs VMM-exclusive {graphchi_vmm:.0}%"
        );
        // Contention: sharing never beats running alone.
        let solo = at(&set, "Single-VM HeteroOS-coordinated", 0.0);
        assert!(solo >= graphchi_drf - 1.0);
    }

    #[test]
    fn fig13_has_all_series_for_both_vms() {
        let set = fig13(&ExpOptions::quick());
        for series in [
            "VMM-exclusive",
            "HeteroOS-coordinated",
            "DRF-HeteroOS-coordinated",
            "Single-VM HeteroOS-coordinated",
        ] {
            let s = set.get(series).expect("series present");
            assert_eq!(s.len(), 2, "{series}");
        }
    }
}
