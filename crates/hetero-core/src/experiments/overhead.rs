//! Figure 8 — VMM-exclusive hotness-tracking and migration overhead.
//!
//! Graphchi runs under the VMM-exclusive policy while the scan interval
//! sweeps 100–500 ms over 32 K-page batches (§5.2's configuration). The two
//! series are the stacked-bar components of Fig 8 — hot-page tracking
//! overhead and migration overhead, as percentages of runtime — plus the
//! migrated page count (millions of real pages), which the paper prints on
//! the bars.

use hetero_sim::{CostCategory, Nanos, SeriesSet};
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// The Fig 8 x axis (scan intervals in milliseconds).
pub const INTERVALS_MS: [u64; 5] = [100, 200, 300, 400, 500];

/// Figure 8: overhead decomposition versus scan interval.
pub fn fig8(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 8 — VMM-exclusive tracking/migration overhead on Graphchi (32K pages/scan)",
        "interval-ms",
    );
    let spec = opts.tune(apps::graphchi());
    let rows = opts.runner().run(INTERVALS_MS.to_vec(), |ms| {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_scan_interval(Nanos::from_millis(ms))
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let cfg = SimConfig {
            scan_batch: 32 * 1024,
            ..cfg
        };
        let r = run_app(&cfg, Policy::VmmExclusive, spec.clone());
        let hotpage = r.spent(CostCategory::HotnessScan) + r.spent(CostCategory::TlbFlush);
        let migration = r.spent(CostCategory::PageWalk) + r.spent(CostCategory::PageCopy);
        (
            hotpage.ratio(r.runtime) * 100.0,
            migration.ratio(r.runtime) * 100.0,
            (r.migrations * cfg.granule()) as f64 / 1e6,
        )
    });
    for (&ms, &(hot, mig, migrated)) in INTERVALS_MS.iter().zip(&rows) {
        set.record("hotpage-%", ms as f64, hot);
        set.record("migration-%", ms as f64, mig);
        set.record("migrated-millions", ms as f64, migrated);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_overhead_falls_with_longer_intervals() {
        let set = fig8(&ExpOptions::quick());
        let hot = set
            .get("hotpage-%")
            .expect("fig8 has no 'hotpage-%' series");
        let first = hot.points().first().expect("fig8 'hotpage-%' is empty").1;
        let last = hot.points().last().expect("fig8 'hotpage-%' is empty").1;
        // Observation 4: 100 ms intervals cost far more than 500 ms.
        assert!(
            first > last * 1.5,
            "hotpage overhead: 100ms={first:.1}% vs 500ms={last:.1}%"
        );
        // Tracking is more expensive than migration (§5.2: "hotness-
        // tracking is even more expensive compared to the migrations").
        let mig = set
            .get("migration-%")
            .expect("fig8 has no 'migration-%' series");
        assert!(hot.points()[0].1 > mig.points()[0].1);
        // Total at 100 ms is substantial (paper: up to 60%).
        assert!(first + mig.points()[0].1 > 15.0);
        // Pages were actually migrated.
        let m = set
            .get("migrated-millions")
            .expect("fig8 has no 'migrated-millions' series");
        assert!(m.points().iter().all(|&(_, y)| y > 0.0));
    }
}
