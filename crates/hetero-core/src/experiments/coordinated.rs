//! Figures 11 and 12 — coordinated guest-VMM management.
//!
//! Fig 11: gains over SlowMem-only for HeteroOS-LRU, VMM-exclusive and
//! HeteroOS-coordinated at 1/4 and 1/8 capacity ratios. Fig 12: the gains
//! attributable to *migrations alone* — each tracking policy relative to
//! the placement-only Heap-IO-Slab-OD — plus total migrated pages in
//! millions (the bracketed numbers in the paper's table).

use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// The Fig 11 capacity ratios (denominators).
pub const RATIOS: [u64; 2] = [4, 8];

/// Figure 11: coordinated-management gains. X axis packs
/// `app_index * 10 + ratio_denominator`.
pub fn fig11(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 11 — gains (%) vs SlowMem-only (x = app*10 + 1/ratio)",
        "app-ratio",
    );
    let specs: Vec<_> = apps::fig9_apps()
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    // Flat descriptor list, baseline-first per cell (see placement::fig9).
    let mut runs: Vec<(usize, u64, Policy)> = Vec::new();
    for ai in 0..specs.len() {
        for den in RATIOS {
            runs.push((ai, den, Policy::SlowMemOnly));
            for policy in Policy::FIG11 {
                runs.push((ai, den, policy));
            }
            runs.push((ai, den, Policy::FastMemOnly));
        }
    }
    let reports = opts.runner().run(runs.clone(), |(ai, den, policy)| {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, den)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        run_app(&cfg, policy, specs[ai].clone())
    });
    let mut slow = None;
    for (&(ai, den, policy), r) in runs.iter().zip(&reports) {
        let x = (ai * 10 + den as usize) as f64;
        if policy == Policy::SlowMemOnly {
            slow = Some(r);
        } else {
            let base = slow.expect("baseline precedes its cell");
            let label = if policy == Policy::FastMemOnly {
                "FastMem-only"
            } else {
                policy.name()
            };
            set.record(label, x, r.gain_percent_vs(base));
        }
    }
    set
}

/// One Fig 12 row: migration-attributable gain and volume.
#[derive(Debug, Clone)]
pub struct MigrationGain {
    /// Application.
    pub app: &'static str,
    /// Policy.
    pub policy: Policy,
    /// Gain (%) relative to the no-migration Heap-IO-Slab-OD placement.
    pub gain_vs_placement: f64,
    /// Total migrated pages (millions of real 4 KiB pages).
    pub migrated_millions: f64,
}

/// Figure 12: gains exclusively from migrations (1/4 ratio), for the three
/// applications the paper tabulates.
pub fn fig12(opts: &ExpOptions) -> Vec<MigrationGain> {
    let specs: Vec<_> = [apps::graphchi(), apps::redis(), apps::leveldb()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let mut runs: Vec<(usize, Policy)> = Vec::new();
    for ai in 0..specs.len() {
        runs.push((ai, Policy::HeapIoSlabOd)); // the placement-only baseline
        for policy in Policy::FIG11 {
            runs.push((ai, policy));
        }
    }
    let cfg = SimConfig::paper_default()
        .with_capacity_ratio(1, 4)
        .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
    let reports = opts
        .runner()
        .run(runs.clone(), |(ai, policy)| {
            run_app(&cfg, policy, specs[ai].clone())
        });
    let mut out = Vec::new();
    let mut placement_only = None;
    for (&(ai, policy), r) in runs.iter().zip(&reports) {
        if policy == Policy::HeapIoSlabOd {
            placement_only = Some(r);
            continue;
        }
        out.push(MigrationGain {
            app: specs[ai].name,
            policy,
            gain_vs_placement: r
                .gain_percent_vs(placement_only.expect("baseline precedes its cell")),
            migrated_millions: (r.migrations * cfg.granule()) as f64 / 1e6,
        });
    }
    out
}

/// Renders Fig 12 as the paper's table.
pub fn fig12_table(opts: &ExpOptions) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "# Fig 12 — gains exclusively from migrations vs Heap-IO-Slab-OD\n\
         app        policy                  gain(%)   migrated(M)\n",
    );
    for g in fig12(opts) {
        writeln!(
            out,
            "{:<10} {:<22} {:>8.1} {:>12.2}",
            g.app,
            g.policy.name(),
            g.gain_vs_placement,
            g.migrated_millions
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn fig11_orderings_match_paper() {
        let set = fig11(&ExpOptions::quick());
        for (ai, app) in ["Graphchi", "X-Stream", "Metis", "LevelDB", "Redis"]
            .iter()
            .enumerate()
        {
            for den in RATIOS {
                let x = (ai * 10 + den as usize) as f64;
                let coord = at(&set, "HeteroOS-coordinated", x);
                let vmm = at(&set, "VMM-exclusive", x);
                // §5.4: the coordinated approach beats VMM-exclusive
                // everywhere (up to 2x in the paper).
                assert!(
                    coord > vmm,
                    "{app} 1/{den}: coordinated {coord:.0}% vs VMM {vmm:.0}%"
                );
            }
        }
        // LevelDB: VMM-exclusive shows <10% gains (§5.4).
        let lev_vmm = at(&set, "VMM-exclusive", 34.0);
        assert!(lev_vmm < 10.0, "LevelDB VMM-exclusive {lev_vmm:.0}%");
    }

    #[test]
    fn fig12_volumes_are_ordered_like_paper() {
        let rows = fig12(&ExpOptions::quick());
        let find = |app: &str, p: Policy| {
            rows.iter()
                .find(|g| g.app == app && g.policy == p)
                .unwrap_or_else(|| panic!("{app}/{p} row"))
        };
        // HeteroOS-LRU migrates an order of magnitude less than the
        // tracker-driven policies (paper: 0.10M vs 0.69M for Graphchi).
        let lru = find("Graphchi", Policy::HeteroLru);
        let vmm = find("Graphchi", Policy::VmmExclusive);
        assert!(lru.migrated_millions < vmm.migrated_millions);
        // VMM-exclusive's migration-only contribution is negative for all
        // three applications (paper: -30%, -20%, -10%).
        for app in ["Graphchi", "Redis", "LevelDB"] {
            assert!(
                find(app, Policy::VmmExclusive).gain_vs_placement < 0.0,
                "{app}"
            );
        }
        // Coordinated migration adds over VMM-exclusive's.
        for app in ["Graphchi", "Redis", "LevelDB"] {
            assert!(
                find(app, Policy::HeteroCoordinated).gain_vs_placement
                    > find(app, Policy::VmmExclusive).gain_vs_placement,
                "{app}"
            );
        }
    }
}
