//! Figures 9 and 10 — guest-OS memory placement.
//!
//! Fig 9: performance gains (%) over SlowMem-only for the incremental
//! placement mechanisms (Heap-OD, Heap-IO-Slab-OD, HeteroOS-LRU) and
//! NUMA-preferred, at FastMem ratios 1/2, 1/4 and 1/8, with the
//! FastMem-only ideal as the reference line. Fig 10: the cumulative FastMem
//! allocation miss ratio at the 1/8 ratio.

use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// The Fig 9 capacity ratios (denominators).
pub const RATIOS: [u64; 3] = [2, 4, 8];

/// Figure 9: per-app gains over SlowMem-only. One series per policy; the x
/// axis interleaves `app_index * 10 + ratio_denominator` so every (app,
/// ratio) pair is a distinct position, exactly like the paper's grouped
/// bars.
pub fn fig9(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 9 — gains (%) vs SlowMem-only (x = app*10 + 1/ratio)",
        "app-ratio",
    );
    let specs: Vec<_> = apps::fig9_apps()
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    // One descriptor per independent run. The SlowMem-only baseline of
    // each (app, ratio) cell comes first so the in-order merge below can
    // resolve gains in a single linear pass.
    let mut runs: Vec<(usize, u64, Policy)> = Vec::new();
    for ai in 0..specs.len() {
        for den in RATIOS {
            runs.push((ai, den, Policy::SlowMemOnly));
            for policy in Policy::FIG9 {
                runs.push((ai, den, policy));
            }
            runs.push((ai, den, Policy::FastMemOnly));
        }
    }
    let reports = opts.runner().run(runs.clone(), |(ai, den, policy)| {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, den)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        run_app(&cfg, policy, specs[ai].clone())
    });
    let mut slow = None;
    for (&(ai, den, policy), r) in runs.iter().zip(&reports) {
        let x = (ai * 10 + den as usize) as f64;
        if policy == Policy::SlowMemOnly {
            slow = Some(r);
        } else {
            let base = slow.expect("baseline precedes its cell");
            let label = if policy == Policy::FastMemOnly {
                "FastMem-only"
            } else {
                policy.name()
            };
            set.record(label, x, r.gain_percent_vs(base));
        }
    }
    set
}

/// Figure 10: FastMem allocation miss ratio at the 1/8 capacity ratio.
pub fn fig10(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 10 — FastMem allocation miss ratio, 1/8 capacity ratio",
        "app-index",
    );
    let specs: Vec<_> = apps::fig9_apps()
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let mut runs: Vec<(usize, Policy)> = Vec::new();
    for ai in 0..specs.len() {
        for policy in Policy::FIG9 {
            runs.push((ai, policy));
        }
    }
    let reports = opts.runner().run(runs.clone(), |(ai, policy)| {
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, 8)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        run_app(&cfg, policy, specs[ai].clone())
    });
    for (&(ai, policy), r) in runs.iter().zip(&reports) {
        set.record(policy.name(), ai as f64, r.fast_alloc_miss_ratio);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn fig9_policy_orderings_match_paper() {
        let set = fig9(&ExpOptions::quick());
        // App order: Graphchi(0) X-Stream(1) Metis(2) LevelDB(3) Redis(4).
        // LevelDB at 1/2 (x=32): I/O prioritization is decisive (§5.3).
        assert!(at(&set, "Heap-IO-Slab-OD", 32.0) > at(&set, "Heap-OD", 32.0) + 10.0);
        // Redis at 1/2 (x=42): slab/netbuf prioritization pays.
        assert!(at(&set, "Heap-IO-Slab-OD", 42.0) > at(&set, "Heap-OD", 42.0) + 10.0);
        // Every HeteroOS policy beats doing nothing at every point.
        for p in ["Heap-OD", "Heap-IO-Slab-OD", "HeteroOS-LRU"] {
            for pt in set
                .get(p)
                .unwrap_or_else(|| panic!("fig9 has no '{p}' series"))
                .points()
            {
                assert!(pt.1 > 0.0, "{p}@{}: {}", pt.0, pt.1);
            }
        }
        // Gains shrink as FastMem shrinks (Graphchi 1/2 vs 1/8).
        assert!(at(&set, "Heap-OD", 2.0) > at(&set, "Heap-OD", 8.0));
        // The FastMem-only ideal bounds everything.
        for p in Policy::FIG9 {
            for den in RATIOS {
                let x = 2.0 * 10.0 + den as f64; // Metis column
                assert!(at(&set, "FastMem-only", x) + 1.0 >= at(&set, p.name(), x));
            }
        }
    }

    #[test]
    fn fig10_output_is_byte_identical_across_job_counts() {
        // The determinism contract of the parallel runner: thread count
        // must not change a single byte of the exported artifact.
        let seq = fig10(&ExpOptions::quick());
        let par = fig10(&ExpOptions::quick().with_jobs(4));
        assert_eq!(seq.to_json(), par.to_json());
        assert_eq!(seq.to_csv(), par.to_csv());
    }

    #[test]
    fn fig10_miss_ratios_match_paper_shape() {
        let set = fig10(&ExpOptions::quick());
        // NUMA-preferred wants FastMem for everything and misses heavily
        // for the big-footprint applications (paper: 0.72–1.00). The
        // small-footprint LevelDB/Redis miss less here because more of
        // their resident set fits the 1 GB FastMem.
        for ai in 0..3 {
            let numa = at(&set, "NUMA-preferred", ai as f64);
            assert!(numa > 0.4, "app {ai}: NUMA-preferred ratio {numa}");
        }
        for ai in 0..5 {
            // HeteroOS-LRU actively makes room, so it misses no more than
            // the passive Heap-IO-Slab-OD.
            let lru = at(&set, "HeteroOS-LRU", ai as f64);
            let od = at(&set, "Heap-IO-Slab-OD", ai as f64);
            assert!(lru <= od + 0.05, "app {ai}: lru {lru} vs od {od}");
        }
    }
}
