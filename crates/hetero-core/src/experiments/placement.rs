//! Figures 9 and 10 — guest-OS memory placement.
//!
//! Fig 9: performance gains (%) over SlowMem-only for the incremental
//! placement mechanisms (Heap-OD, Heap-IO-Slab-OD, HeteroOS-LRU) and
//! NUMA-preferred, at FastMem ratios 1/2, 1/4 and 1/8, with the
//! FastMem-only ideal as the reference line. Fig 10: the cumulative FastMem
//! allocation miss ratio at the 1/8 ratio.

use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// The Fig 9 capacity ratios (denominators).
pub const RATIOS: [u64; 3] = [2, 4, 8];

/// Figure 9: per-app gains over SlowMem-only. One series per policy; the x
/// axis interleaves `app_index * 10 + ratio_denominator` so every (app,
/// ratio) pair is a distinct position, exactly like the paper's grouped
/// bars.
pub fn fig9(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 9 — gains (%) vs SlowMem-only (x = app*10 + 1/ratio)",
        "app-ratio",
    );
    for (ai, spec) in apps::fig9_apps().into_iter().enumerate() {
        let spec = opts.tune(spec);
        for den in RATIOS {
            let cfg = SimConfig::paper_default()
                .with_capacity_ratio(1, den)
                .with_seed(opts.seed);
            let slow = run_app(&cfg, Policy::SlowMemOnly, spec.clone());
            let x = (ai * 10 + den as usize) as f64;
            for policy in Policy::FIG9 {
                let r = run_app(&cfg, policy, spec.clone());
                set.record(policy.name(), x, r.gain_percent_vs(&slow));
            }
            let fast = run_app(&cfg, Policy::FastMemOnly, spec.clone());
            set.record("FastMem-only", x, fast.gain_percent_vs(&slow));
        }
    }
    set
}

/// Figure 10: FastMem allocation miss ratio at the 1/8 capacity ratio.
pub fn fig10(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 10 — FastMem allocation miss ratio, 1/8 capacity ratio",
        "app-index",
    );
    for (ai, spec) in apps::fig9_apps().into_iter().enumerate() {
        let spec = opts.tune(spec);
        let cfg = SimConfig::paper_default()
            .with_capacity_ratio(1, 8)
            .with_seed(opts.seed);
        for policy in Policy::FIG9 {
            let r = run_app(&cfg, policy, spec.clone());
            set.record(policy.name(), ai as f64, r.fast_alloc_miss_ratio);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn fig9_policy_orderings_match_paper() {
        let set = fig9(&ExpOptions::quick());
        // App order: Graphchi(0) X-Stream(1) Metis(2) LevelDB(3) Redis(4).
        // LevelDB at 1/2 (x=32): I/O prioritization is decisive (§5.3).
        assert!(at(&set, "Heap-IO-Slab-OD", 32.0) > at(&set, "Heap-OD", 32.0) + 10.0);
        // Redis at 1/2 (x=42): slab/netbuf prioritization pays.
        assert!(at(&set, "Heap-IO-Slab-OD", 42.0) > at(&set, "Heap-OD", 42.0) + 10.0);
        // Every HeteroOS policy beats doing nothing at every point.
        for p in ["Heap-OD", "Heap-IO-Slab-OD", "HeteroOS-LRU"] {
            for pt in set
                .get(p)
                .unwrap_or_else(|| panic!("fig9 has no '{p}' series"))
                .points()
            {
                assert!(pt.1 > 0.0, "{p}@{}: {}", pt.0, pt.1);
            }
        }
        // Gains shrink as FastMem shrinks (Graphchi 1/2 vs 1/8).
        assert!(at(&set, "Heap-OD", 2.0) > at(&set, "Heap-OD", 8.0));
        // The FastMem-only ideal bounds everything.
        for p in Policy::FIG9 {
            for den in RATIOS {
                let x = 2.0 * 10.0 + den as f64; // Metis column
                assert!(at(&set, "FastMem-only", x) + 1.0 >= at(&set, p.name(), x));
            }
        }
    }

    #[test]
    fn fig10_miss_ratios_match_paper_shape() {
        let set = fig10(&ExpOptions::quick());
        // NUMA-preferred wants FastMem for everything and misses heavily
        // for the big-footprint applications (paper: 0.72–1.00). The
        // small-footprint LevelDB/Redis miss less here because more of
        // their resident set fits the 1 GB FastMem.
        for ai in 0..3 {
            let numa = at(&set, "NUMA-preferred", ai as f64);
            assert!(numa > 0.4, "app {ai}: NUMA-preferred ratio {numa}");
        }
        for ai in 0..5 {
            // HeteroOS-LRU actively makes room, so it misses no more than
            // the passive Heap-IO-Slab-OD.
            let lru = at(&set, "HeteroOS-LRU", ai as f64);
            let od = at(&set, "Heap-IO-Slab-OD", ai as f64);
            assert!(lru <= od + 0.05, "app {ai}: lru {lru} vs od {od}");
        }
    }
}
