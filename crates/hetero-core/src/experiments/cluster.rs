//! Rack-scale cluster consolidation (`repro cluster`).
//!
//! The paper evaluates HeteroOS on one host; §6 argues the design is meant
//! for datacenters, where VMs arrive, depart, and get consolidated across
//! racks. This driver runs the [`crate::cluster::Cluster`] layer at that
//! scale: a fleet of hosts (16 by default, §5.1-shaped), a seeded Poisson
//! or trace-driven arrival stream drawing from four VM templates, and the
//! consolidation balancer performing inter-host pre-copy live migrations
//! priced through the Table 6 cost model.
//!
//! The full-length run admits 1,000 VMs; quick mode shrinks the fleet to
//! 120 VMs on 4 hosts. Both are byte-identical across `--jobs` counts.

use hetero_sim::Nanos;
use hetero_vmm::SharePolicy;
use hetero_workloads::{apps, WorkloadSpec};

use crate::cluster::{
    mean_peak_live, ArrivalMode, ArrivalProcess, Cluster, ClusterOutcome, ClusterSpec,
    MigrationPolicy,
};
use crate::experiments::ExpOptions;
use crate::multivm::VmSetup;
use crate::{Policy, SimConfig};

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

/// Default host count for the full-length run (`--hosts` overrides).
pub const DEFAULT_HOSTS: usize = 16;
/// Default host count in quick mode.
pub const DEFAULT_HOSTS_QUICK: usize = 4;
/// Arrivals in the full-length run.
pub const DEFAULT_VMS: usize = 1000;
/// Arrivals in quick mode.
pub const DEFAULT_VMS_QUICK: usize = 120;

/// Shrinks a workload so a thousand of them finish in seconds of
/// wall-clock: the cluster experiment studies placement and migration
/// dynamics, not per-VM epoch behaviour (the single-host experiments
/// already cover that).
fn fleet_app(base: WorkloadSpec, opts: &ExpOptions) -> WorkloadSpec {
    let mut s = opts.tune(base);
    s.total_instructions /= 64;
    s
}

/// The four VM templates the arrival process draws from: two cache-tier
/// services, a web frontend, and a periodic analytics job with a
/// footprint several times the others (the consolidation stressor).
pub fn fleet_templates(opts: &ExpOptions) -> Vec<VmSetup> {
    vec![
        VmSetup::new(fleet_app(apps::redis(), opts), 64 * MB, 128 * MB, 256 * MB, 512 * MB),
        VmSetup::new(fleet_app(apps::leveldb(), opts), 64 * MB, 128 * MB, 256 * MB, 512 * MB),
        VmSetup::new(fleet_app(apps::nginx(), opts), 32 * MB, 64 * MB, 128 * MB, 256 * MB),
        VmSetup::new(fleet_app(apps::graphchi(), opts), 256 * MB, 512 * MB, GB, 2 * GB),
    ]
}

/// The §5.1 host shape every cluster host uses.
fn host_cfg(opts: &ExpOptions) -> SimConfig {
    SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB)
        .with_seed(opts.seed)
        .with_audit(opts.audit)
        .with_sched(opts.sched)
}

/// The built-in deterministic trace: bursts of eight VMs every 40 ms,
/// cycling through the templates — a worst-case synchronized-arrival
/// pattern the Poisson stream never produces.
fn burst_trace(count: usize, templates: usize) -> Vec<(Nanos, usize)> {
    (0..count)
        .map(|i| {
            let burst = (i / 8) as u64;
            (Nanos::from_millis(burst * 40), i % templates)
        })
        .collect()
}

/// The cluster scenario `repro cluster` runs, honoring `--hosts`,
/// `--arrival`, `--quick`, and `--seed`.
pub fn fleet_spec(opts: &ExpOptions) -> ClusterSpec {
    let hosts = match (opts.hosts, opts.quick) {
        (0, false) => DEFAULT_HOSTS,
        (0, true) => DEFAULT_HOSTS_QUICK,
        (n, _) => n,
    };
    let count = if opts.quick { DEFAULT_VMS_QUICK } else { DEFAULT_VMS };
    let templates = fleet_templates(opts);
    let arrivals = match opts.arrival {
        ArrivalMode::Poisson => ArrivalProcess::Poisson {
            mean_interarrival: Nanos::from_millis(5),
            count,
        },
        ArrivalMode::Trace => ArrivalProcess::Trace(burst_trace(count, templates.len())),
    };
    ClusterSpec {
        hosts,
        templates,
        arrivals,
        quantum: Nanos::from_millis(50),
        migration: MigrationPolicy {
            imbalance_threshold: 0.20,
            cooldown_rounds: 8,
            ..MigrationPolicy::default()
        },
        fault_rate: 0.0,
    }
}

/// Runs the cluster scenario and returns the full outcome (report,
/// per-VM summaries, migration trace).
pub fn fleet_outcome(opts: &ExpOptions) -> ClusterOutcome {
    Cluster::new(
        host_cfg(opts),
        SharePolicy::paper_drf(),
        Policy::HeteroCoordinated,
        fleet_spec(opts),
        opts.jobs,
    )
    .run()
}

/// The rendered text summary the `repro` binary prints.
pub fn fleet_table(outcome: &ClusterOutcome) -> String {
    let r = &outcome.report;
    let mut out = String::new();
    out.push_str("Rack-scale cluster consolidation (DRF hosts, HeteroOS-coordinated guests)\n");
    out.push_str(&format!(
        "hosts {:>4}   rounds {:>6}   makespan {:>10.3}s\n",
        r.hosts,
        r.rounds,
        r.makespan.as_secs_f64()
    ));
    out.push_str(&format!(
        "arrivals {:>5}   departures {:>5}   deferrals {:>5}   rejected {:>3}\n",
        r.arrivals, r.departures, r.deferrals, r.rejected
    ));
    out.push_str(&format!(
        "migrations {:>4}   precopy rounds {:>5}   pages copied {:>9}\n",
        r.migrations, r.precopy_rounds, r.pages_copied
    ));
    out.push_str(&format!(
        "migration bandwidth cost {:>10.3}ms   guest downtime {:>8.3}ms\n",
        r.migration_cost.as_millis_f64(),
        r.migration_downtime.as_millis_f64()
    ));
    out.push_str(&format!(
        "guest epochs {:>8}   stranded pages {:>6}   mean peak live/host {:>6.1}\n",
        r.epochs,
        r.stranded_pages,
        mean_peak_live(r)
    ));
    out.push_str("host  admitted  peak-live     epochs\n");
    for h in &r.per_host {
        out.push_str(&format!(
            "{:>4}  {:>8}  {:>9}  {:>9}\n",
            h.host, h.vms_admitted, h.peak_live, h.epochs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fleet_completes_and_reports() {
        let opts = ExpOptions::quick();
        let outcome = fleet_outcome(&opts);
        assert_eq!(outcome.report.arrivals, DEFAULT_VMS_QUICK as u64);
        assert_eq!(outcome.report.departures, outcome.report.arrivals);
        assert_eq!(outcome.report.hosts, DEFAULT_HOSTS_QUICK as u32);
        let table = fleet_table(&outcome);
        assert!(table.contains("migrations"), "{table}");
    }

    #[test]
    fn quick_fleet_migrates_under_both_arrival_modes() {
        for arrival in [ArrivalMode::Poisson, ArrivalMode::Trace] {
            let opts = ExpOptions::quick().with_arrival(arrival);
            let outcome = fleet_outcome(&opts);
            assert!(
                outcome.report.migrations >= 1,
                "{arrival} fleet must live-migrate: {}",
                outcome.report.to_json()
            );
            assert!(!outcome.report.migration_cost.is_zero());
        }
    }

    #[test]
    fn hosts_override_is_honored() {
        let opts = ExpOptions::quick().with_hosts(2);
        let spec = fleet_spec(&opts);
        assert_eq!(spec.hosts, 2);
    }
}
