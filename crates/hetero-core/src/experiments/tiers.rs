//! `repro tiers` — the N-tier device-profile scenario family.
//!
//! Sweeps named tier topologies ([`TierProfile`] plus the throttle-derived
//! two-tier default) against placement policy and hotness-tracking
//! discipline. The tracking axis compares the paper's **guided**
//! oracle-driven scans against the page-table **A/D-harvest** tracker
//! ([`Tracking::AccessBit`]): access bits for heat, dirty bits for the
//! write heat the §4.3 write-aware rank consumes.

use hetero_mem::TierProfile;
use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::policy::Tracking;
use crate::{Policy, SimConfig};

const GB: u64 = 1 << 30;

/// The topology axis: every named profile plus the two-tier default.
pub const TOPOLOGIES: [&str; 4] = ["two-tier", "three-tier", "optane-dc", "cxl"];

/// The policy axis. VMM-exclusive rather than HeteroOS-LRU: with the
/// tracking override equalizing the scan discipline, LRU and coordinated
/// would collapse into the same run — the VMM-exclusive column instead
/// isolates what guest LRU + demand prioritization add on each topology.
pub const POLICIES: [Policy; 2] = [Policy::HeteroCoordinated, Policy::VmmExclusive];

/// The tracking axis.
pub const TRACKING: [Tracking; 2] = [Tracking::Guided, Tracking::AccessBit];

/// Base config for one named topology (before policy/tracking are applied).
fn topology_config(name: &str, opts: &ExpOptions) -> SimConfig {
    let base = SimConfig::paper_default()
        .with_capacity_ratio(1, 4)
        .with_seed(opts.seed)
        .with_audit(opts.audit)
        .with_sched(opts.sched);
    match name {
        "two-tier" => base,
        // Table-1 trio: stacked-3D fast, DRAM medium, PCM slow.
        "three-tier" => base
            .with_medium_bytes(2 * GB)
            .with_tier_profile(Some(TierProfile::Table1Trio)),
        "optane-dc" => base.with_tier_profile(Some(TierProfile::OptaneDc)),
        "cxl" => base.with_tier_profile(Some(TierProfile::Cxl)),
        other => panic!("unknown topology {other}"),
    }
}

/// Gains (%) over SlowMem-only for every topology × policy × tracking
/// combination, plus the per-combination scan volume (million PTEs/frames
/// examined — the price of each discipline's visibility).
///
/// Series are named `{policy}/{tracking}` (e.g.
/// `HeteroOS-coordinated/access-bit`); the x axis indexes [`TOPOLOGIES`].
pub fn tiers_matrix(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Tiers — device-profile topologies × policy × tracking (gains % vs SlowMem-only)",
        "topology-index",
    );
    let spec = opts.tune(apps::redis());
    let rows = opts.runner().run(TOPOLOGIES.to_vec(), |name| {
        let cfg = topology_config(name, opts);
        // The baseline keeps each policy's default (no) tracking.
        let slow = run_app(&cfg, Policy::SlowMemOnly, spec.clone());
        let mut cells = Vec::new();
        for policy in POLICIES {
            for tracking in TRACKING {
                let run_cfg = cfg.clone().with_tracking(Some(tracking));
                let r = run_app(&run_cfg, policy, spec.clone());
                cells.push((
                    policy.name(),
                    tracking,
                    r.gain_percent_vs(&slow),
                    r.scanned_pages as f64 / 1e6,
                ));
            }
        }
        cells
    });
    for (ti, cells) in rows.into_iter().enumerate() {
        for (policy, tracking, gain, scanned) in cells {
            set.record(&format!("{policy}/{tracking}"), ti as f64, gain);
            set.record(&format!("{policy}/{tracking}/scanned-M"), ti as f64, scanned);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn matrix_covers_every_cell() {
        let set = tiers_matrix(&ExpOptions::quick());
        for policy in POLICIES {
            for tracking in TRACKING {
                let name = format!("{}/{tracking}", policy.name());
                let s = set.get(&name).unwrap_or_else(|| panic!("{name} missing"));
                assert_eq!(s.points().len(), TOPOLOGIES.len(), "{name}");
                for &(_, y) in s.points() {
                    assert!(y.is_finite(), "{name}: non-finite gain");
                }
            }
        }
    }

    #[test]
    fn tracking_pays_for_itself_on_optane() {
        // With Optane-DC SlowMem (285 ns loads), promoting the hot set to
        // DRAM must beat never managing at all.
        let set = tiers_matrix(&ExpOptions::quick());
        let optane = TOPOLOGIES.iter().position(|&t| t == "optane-dc").unwrap() as f64;
        for tracking in TRACKING {
            let gain = at(
                &set,
                &format!("{}/{tracking}", Policy::HeteroCoordinated.name()),
                optane,
            );
            assert!(gain > 0.0, "{tracking}: gain {gain:.1}% on optane-dc");
        }
    }

    #[test]
    fn access_bit_scans_are_accounted() {
        // The A/D tracker's visibility is not free: its harvests must show
        // up in the scan accounting on every topology.
        let set = tiers_matrix(&ExpOptions::quick());
        for ti in 0..TOPOLOGIES.len() {
            let scanned = at(
                &set,
                &format!(
                    "{}/{}/scanned-M",
                    Policy::HeteroCoordinated.name(),
                    Tracking::AccessBit
                ),
                ti as f64,
            );
            assert!(scanned > 0.0, "topology {ti}: no A/D harvest recorded");
        }
    }
}
