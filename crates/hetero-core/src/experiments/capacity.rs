//! Figure 3 — FastMem capacity impact.
//!
//! The FastMem:SlowMem ratio sweeps 1/2 … 1/32 at `(L:5, B:9)` under simple
//! preferred placement; the y value is the slowdown relative to a 1:1 ratio
//! (everything fits in FastMem).

use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// The Fig 3 x axis: FastMem:SlowMem capacity denominators.
pub const RATIOS: [u64; 5] = [2, 4, 8, 16, 32];

/// Figure 3: slowdown versus the FastMem capacity ratio.
pub fn fig3(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 3 — slowdown vs FastMem 1:1 ratio (L:5,B:9, on-demand placement)",
        "1/ratio",
    );
    let specs: Vec<_> = apps::all().into_iter().map(|s| opts.tune(s)).collect();
    // Descriptor `den == 1` is the 1:1 FastMem-only baseline (everything
    // fits in FastMem); it leads each app's group.
    let mut runs: Vec<(usize, u64)> = Vec::new();
    for ai in 0..specs.len() {
        runs.push((ai, 1));
        runs.extend(RATIOS.iter().map(|&den| (ai, den)));
    }
    let reports = opts.runner().run(runs.clone(), |(ai, den)| {
        let cfg = SimConfig::paper_default()
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched)
            .with_capacity_ratio(1, den);
        let policy = if den == 1 {
            Policy::FastMemOnly
        } else {
            // Observation 3 is about *on-demand* allocation to FastMem.
            Policy::HeapIoSlabOd
        };
        run_app(&cfg, policy, specs[ai].clone())
    });
    let mut baseline = None;
    for (&(ai, den), r) in runs.iter().zip(&reports) {
        if den == 1 {
            baseline = Some(r);
        } else {
            let base = baseline.expect("baseline precedes its group");
            set.record(specs[ai].name, den as f64, r.slowdown_vs(base));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_observation_3() {
        let set = fig3(&ExpOptions::quick());
        let at = |app: &str, x: f64| {
            set.get(app)
                .and_then(|s| {
                    s.points()
                        .iter()
                        .find(|&&(px, _)| (px - x).abs() < 1e-9)
                        .map(|&(_, y)| y)
                })
                .unwrap_or_else(|| panic!("{app}@{x} missing"))
        };
        // Observation 3: capacity-intensive Graphchi suffers only modestly
        // even at a 1/2 ratio (paper: <2x; our placement differentiation is
        // compressed, see EXPERIMENTS.md, so allow a little headroom).
        assert!(at("Graphchi", 2.0) < 2.6);
        // Slowdowns grow (weakly) as FastMem shrinks.
        for app in ["Graphchi", "Metis"] {
            assert!(at(app, 2.0) <= at(app, 32.0) + 0.05, "{app}");
        }
        // The tiny-working-set web server barely reacts at any ratio.
        assert!(at("Nginx", 32.0) < 1.3);
        // I/O-intensive apps degrade gently from 1/2 to 1/16 (§2.2: "show
        // significantly lower impact even as the ratio is reduced").
        assert!(at("LevelDB", 16.0) / at("LevelDB", 2.0) < 1.8);
    }
}
