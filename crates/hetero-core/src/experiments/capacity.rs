//! Figure 3 — FastMem capacity impact.
//!
//! The FastMem:SlowMem ratio sweeps 1/2 … 1/32 at `(L:5, B:9)` under simple
//! preferred placement; the y value is the slowdown relative to a 1:1 ratio
//! (everything fits in FastMem).

use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

/// The Fig 3 x axis: FastMem:SlowMem capacity denominators.
pub const RATIOS: [u64; 5] = [2, 4, 8, 16, 32];

/// Figure 3: slowdown versus the FastMem capacity ratio.
pub fn fig3(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 3 — slowdown vs FastMem 1:1 ratio (L:5,B:9, on-demand placement)",
        "1/ratio",
    );
    for spec in apps::all() {
        let spec = opts.tune(spec);
        let base_cfg = SimConfig::paper_default().with_seed(opts.seed);
        // 1:1 baseline: FastMem as large as SlowMem — effectively the
        // everything-fits-in-FastMem ideal.
        let baseline = run_app(
            &base_cfg.clone().with_capacity_ratio(1, 1),
            Policy::FastMemOnly,
            spec.clone(),
        );
        for den in RATIOS {
            let cfg = base_cfg.clone().with_capacity_ratio(1, den);
            // Observation 3 is about *on-demand* allocation to FastMem.
            let r = run_app(&cfg, Policy::HeapIoSlabOd, spec.clone());
            set.record(spec.name, den as f64, r.slowdown_vs(&baseline));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_observation_3() {
        let set = fig3(&ExpOptions::quick());
        let at = |app: &str, x: f64| {
            set.get(app)
                .and_then(|s| {
                    s.points()
                        .iter()
                        .find(|&&(px, _)| (px - x).abs() < 1e-9)
                        .map(|&(_, y)| y)
                })
                .unwrap_or_else(|| panic!("{app}@{x} missing"))
        };
        // Observation 3: capacity-intensive Graphchi suffers only modestly
        // even at a 1/2 ratio (paper: <2x; our placement differentiation is
        // compressed, see EXPERIMENTS.md, so allow a little headroom).
        assert!(at("Graphchi", 2.0) < 2.6);
        // Slowdowns grow (weakly) as FastMem shrinks.
        for app in ["Graphchi", "Metis"] {
            assert!(at(app, 2.0) <= at(app, 32.0) + 0.05, "{app}");
        }
        // The tiny-working-set web server barely reacts at any ratio.
        assert!(at("Nginx", 32.0) < 1.3);
        // I/O-intensive apps degrade gently from 1/2 to 1/16 (§2.2: "show
        // significantly lower impact even as the ratio is reduced").
        assert!(at("LevelDB", 16.0) / at("LevelDB", 2.0) < 1.8);
    }
}
