//! Figures 6 and 7 — memlat latency and Stream bandwidth microbenchmarks.
//!
//! §5.2's configuration: 0.5 GB FastMem, 3.5 GB SlowMem. Five approaches
//! are compared: Random, Heap-OD, FastMem-only, VMM-exclusive and
//! SlowMem-only. Fig 6 reports average access latency in cycles as the
//! working set grows; Fig 7 reports achieved bandwidth.

use hetero_sim::SeriesSet;
use hetero_workloads::micro;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

const GB: u64 = 1 << 30;

/// The §5.2 microbenchmark policy set.
pub const MICRO_POLICIES: [Policy; 5] = [
    Policy::SlowMemOnly,
    Policy::Random,
    Policy::HeapOd,
    Policy::FastMemOnly,
    Policy::VmmExclusive,
];

fn micro_cfg(opts: &ExpOptions) -> SimConfig {
    SimConfig::paper_default()
        .with_fast_bytes(GB / 2)
        .with_slow_bytes(3 * GB + GB / 2)
        .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched)
}

/// Figure 6: average memory latency (cycles) versus working-set size.
pub fn fig6(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 6 — memlat average latency (cycles), 0.5GB FastMem / 3.5GB SlowMem",
        "wss-gb",
    );
    let specs: Vec<_> = micro::memlat_sweep()
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let mut runs: Vec<(usize, Policy)> = Vec::new();
    for si in 0..specs.len() {
        for policy in MICRO_POLICIES {
            runs.push((si, policy));
        }
    }
    let reports = opts
        .runner()
        .run(runs.clone(), |(si, policy)| {
            run_app(&micro_cfg(opts), policy, specs[si].clone())
        });
    for (&(si, policy), r) in runs.iter().zip(&reports) {
        let wss_gb = specs[si].footprint.heap as f64 / GB as f64;
        set.record(
            policy.name(),
            wss_gb,
            r.avg_miss_latency_cycles(specs[si].clock_ghz),
        );
    }
    set
}

/// Figure 7: Stream achieved bandwidth (GB/s) at 0.5 GB and 1.5 GB working
/// sets.
pub fn fig7(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Fig 7 — Stream bandwidth (GB/s), 0.5GB FastMem / 3.5GB SlowMem",
        "wss-gb",
    );
    let specs: Vec<_> = micro::stream_sweep()
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let mut runs: Vec<(usize, Policy)> = Vec::new();
    for si in 0..specs.len() {
        for policy in MICRO_POLICIES {
            runs.push((si, policy));
        }
    }
    let reports = opts
        .runner()
        .run(runs.clone(), |(si, policy)| {
            run_app(&micro_cfg(opts), policy, specs[si].clone())
        });
    for (&(si, policy), r) in runs.iter().zip(&reports) {
        let wss_gb = specs[si].footprint.heap as f64 / GB as f64;
        set.record(policy.name(), wss_gb, r.achieved_bandwidth_gbps);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-6)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn fig6_latency_ordering_matches_paper() {
        let set = fig6(&ExpOptions::quick());
        let small = 0.099609375; // 102 MB point
        // Small working set: on-demand allocation achieves near-ideal
        // latency; VMM-exclusive stays slow (lazy placement).
        let fast = at(&set, "FastMem-only", small);
        let od = at(&set, "Heap-OD", small);
        let vmm = at(&set, "VMM-exclusive", small);
        let slow = at(&set, "SlowMem-only", small);
        assert!(od < fast * 1.3, "Heap-OD {od:.0} vs ideal {fast:.0}");
        assert!(vmm > od, "VMM-exclusive must lag on small WSS");
        assert!(slow > fast * 3.0);
        // Large working set: Heap-OD degrades toward SlowMem latency.
        let od_big = at(&set, "Heap-OD", 2.0);
        assert!(od_big > od * 1.5);
    }

    #[test]
    fn fig7_bandwidth_ordering_matches_paper() {
        let set = fig7(&ExpOptions::quick());
        // 0.5 GB WSS fits FastMem: Heap-OD approaches the ideal.
        let fast = at(&set, "FastMem-only", 0.5);
        let od = at(&set, "Heap-OD", 0.5);
        let slow = at(&set, "SlowMem-only", 0.5);
        assert!(fast > 3.0 * slow, "fast {fast:.1} vs slow {slow:.1} GB/s");
        assert!(od > slow * 1.5);
        // 1.5 GB exceeds FastMem: Heap-OD bandwidth drops.
        let od_big = at(&set, "Heap-OD", 1.5);
        assert!(od_big < od);
    }
}
