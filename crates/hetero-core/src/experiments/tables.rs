//! Tables 1, 3, 4, 5 and 6 — parameter and mechanism tables.

use std::fmt::Write as _;

use hetero_mem::{CostModel, TechProfile, ThrottleConfig};
use hetero_workloads::apps;

use crate::policy::Policy;

/// Table 1: heterogeneous memory characteristics.
pub fn table1() -> String {
    let mut out = String::from(
        "# Table 1 — heterogeneous memory characteristics\n\
         technology    density(xDRAM)  load(ns)   store(ns)    BW(GB/s)\n",
    );
    for t in TechProfile::table1() {
        writeln!(
            out,
            "{:<12} {:>7.2}-{:<6.2} {:>4}-{:<4} {:>5}-{:<5} {:>6.1}-{:<5.1}",
            t.name,
            t.density_rel_dram.0,
            t.density_rel_dram.1,
            t.load_latency.0.as_nanos(),
            t.load_latency.1.as_nanos(),
            t.store_latency.0.as_nanos(),
            t.store_latency.1.as_nanos(),
            t.bandwidth_gbps.0,
            t.bandwidth_gbps.1,
        )
        .expect("writing to string cannot fail");
    }
    out
}

/// Table 3: throttle configurations.
pub fn table3() -> String {
    let mut out = String::from(
        "# Table 3 — throttle configurations (L:x latency factor, B:y bandwidth factor)\n\
         config      latency(ns)   BW(GB/s)\n",
    );
    for t in ThrottleConfig::table3() {
        writeln!(
            out,
            "{:<10} {:>10} {:>10.2}",
            t.label(),
            t.latency.as_nanos(),
            t.bandwidth_gbps
        )
        .expect("writing to string cannot fail");
    }
    out
}

/// Table 4: application memory intensity (MPKI).
pub fn table4() -> String {
    let mut out = String::from("# Table 4 — memory intensity of applications (MPKI)\n");
    for spec in apps::all() {
        writeln!(out, "{:<10} {:>6.1}", spec.name, spec.mpki)
            .expect("writing to string cannot fail");
    }
    out
}

/// Table 5: the incremental HeteroOS mechanisms.
pub fn table5() -> String {
    let mut out = String::from("# Table 5 — HeteroOS incremental mechanisms\n");
    for p in [
        Policy::HeapOd,
        Policy::HeapIoSlabOd,
        Policy::HeteroLru,
        Policy::HeteroCoordinated,
    ] {
        writeln!(out, "{:<22} {}", p.name(), p.description())
            .expect("writing to string cannot fail");
    }
    out
}

/// Table 6: per-page migration cost versus batch size.
pub fn table6() -> String {
    let costs = CostModel::default();
    let mut out = String::from(
        "# Table 6 — per-page migration cost vs batch size\n\
         batch     Tpage_move(us)  Tpage_walk(us)\n",
    );
    for batch in [8 * 1024u64, 64 * 1024, 128 * 1024] {
        writeln!(
            out,
            "{:<9} {:>14.2} {:>15.2}",
            format!("{}K", batch / 1024),
            costs.page_move_per_page(batch).as_micros_f64(),
            costs.page_walk_per_page(batch).as_micros_f64(),
        )
        .expect("writing to string cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_four_technologies() {
        let t = table1();
        assert!(t.contains("Stacked-3D"));
        assert!(t.contains("DRAM"));
        assert!(t.contains("NVM (PCM)"));
        assert!(t.contains("Optane-DC"));
    }

    #[test]
    fn table1_pins_the_asymmetric_optane_column() {
        let t = table1();
        let optane = t
            .lines()
            .find(|l| l.starts_with("Optane-DC"))
            .expect("Optane-DC row");
        // Load 169-400 ns vs store 90-100 ns (inverted vs PCM), and a
        // write→read bandwidth span whose fractions survive formatting.
        assert!(optane.contains("169-400"), "{optane}");
        assert!(optane.contains("90-100"), "{optane}");
        assert!(optane.contains("2.3-6.6"), "{optane}");
        // The trio keeps its integer bandwidth anchors.
        assert!(t.contains("120.0-200.0"));
    }

    #[test]
    fn table3_shows_anchor_values() {
        let t = table3();
        assert!(t.contains("L:5,B:12"));
        assert!(t.contains("960"));
        assert!(t.contains("1.38"));
    }

    #[test]
    fn table4_matches_paper_mpki() {
        let t = table4();
        assert!(t.contains("27.4"), "Graphchi MPKI");
        assert!(t.contains("2.1"), "Nginx MPKI");
    }

    #[test]
    fn table5_lists_four_mechanisms() {
        let t = table5();
        assert_eq!(t.lines().count(), 5);
        assert!(t.contains("HeteroOS-coordinated"));
    }

    #[test]
    fn table6_matches_measured_anchors() {
        let t = table6();
        assert!(t.contains("25.50"));
        assert!(t.contains("43.21"));
        assert!(t.contains("10.25"));
    }
}
