//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's own experiments.
//!
//! * eager vs. lazy I/O page eviction (HeteroOS-LRU's §3.3 claim),
//! * adaptive vs. fixed hotness-tracking interval (Eq. 1's claim),
//! * guided tracking lists vs. full-VM scans (§4.1's claim),
//! * DRF weight sensitivity (§4.2's weighting choice).

use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;
use hetero_sim::SeriesSet;
use hetero_vmm::SharePolicy;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::{sharing, ExpOptions};
use crate::multivm::MultiVmSim;
use crate::{Policy, SimConfig};

/// Eager vs. lazy release of completed I/O pages, under HeteroOS-LRU, for
/// the I/O-intensive applications. Y: gain (%) over SlowMem-only.
pub fn ablation_lru_eviction(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Ablation — eager vs lazy I/O page eviction (HeteroOS-LRU, 1/4 ratio)",
        "app-index",
    );
    let specs: Vec<_> = [apps::x_stream(), apps::leveldb(), apps::graphchi()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let base = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let slow = run_app(&base, Policy::SlowMemOnly, spec.clone());
        let eager = run_app(&base, Policy::HeteroLru, spec.clone());
        let lazy_cfg = SimConfig {
            eager_io_override: Some(false),
            ..base
        };
        let lazy = run_app(&lazy_cfg, Policy::HeteroLru, spec);
        (eager.gain_percent_vs(&slow), lazy.gain_percent_vs(&slow))
    });
    for (ai, (eager, lazy)) in rows.into_iter().enumerate() {
        set.record("eager", ai as f64, eager);
        set.record("lazy", ai as f64, lazy);
    }
    set
}

/// Adaptive (Eq. 1 + yield backoff) vs. fixed 100 ms tracking interval for
/// the coordinated policy. Y: gain (%) and overhead (%).
pub fn ablation_adaptive_interval(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Ablation — adaptive vs fixed tracking interval (coordinated, 1/4 ratio)",
        "app-index",
    );
    let specs: Vec<_> = [apps::graphchi(), apps::redis()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let base = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let slow = run_app(&base, Policy::SlowMemOnly, spec.clone());
        let adaptive = run_app(&base, Policy::HeteroCoordinated, spec.clone());
        let fixed_cfg = SimConfig {
            adaptive_interval: false,
            ..base
        };
        let fixed = run_app(&fixed_cfg, Policy::HeteroCoordinated, spec);
        (
            adaptive.gain_percent_vs(&slow),
            fixed.gain_percent_vs(&slow),
            adaptive.overhead_percent(),
            fixed.overhead_percent(),
        )
    });
    for (ai, (a_gain, f_gain, a_over, f_over)) in rows.into_iter().enumerate() {
        set.record("adaptive-gain", ai as f64, a_gain);
        set.record("fixed-gain", ai as f64, f_gain);
        set.record("adaptive-overhead", ai as f64, a_over);
        set.record("fixed-overhead", ai as f64, f_over);
    }
    set
}

/// Guided tracking lists vs. full-VM scans for the coordinated policy.
pub fn ablation_tracking_scope(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Ablation — guided tracking list vs full-VM scan (coordinated, 1/4 ratio)",
        "app-index",
    );
    let specs: Vec<_> = [apps::graphchi(), apps::x_stream()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let base = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let slow = run_app(&base, Policy::SlowMemOnly, spec.clone());
        let guided = run_app(&base, Policy::HeteroCoordinated, spec.clone());
        let full_cfg = SimConfig {
            guided_tracking: false,
            ..base
        };
        let full = run_app(&full_cfg, Policy::HeteroCoordinated, spec);
        (
            guided.gain_percent_vs(&slow),
            full.gain_percent_vs(&slow),
            guided.scanned_pages as f64 / 1e6,
            full.scanned_pages as f64 / 1e6,
        )
    });
    for (ai, (g_gain, f_gain, g_scan, f_scan)) in rows.into_iter().enumerate() {
        set.record("guided-gain", ai as f64, g_gain);
        set.record("full-scan-gain", ai as f64, f_gain);
        set.record("guided-scanned-M", ai as f64, g_scan);
        set.record("full-scanned-M", ai as f64, f_scan);
    }
    set
}

/// DRF FastMem-weight sweep on the Fig 13 scenario. Y: the Graphchi VM's
/// runtime in seconds (lower is better for the protected VM).
pub fn ablation_drf_weights(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Ablation — DRF FastMem weight sweep (Fig 13 scenario)",
        "fast-weight",
    );
    let sweep = vec![1.0, 2.0, 4.0];
    let rows = opts.runner().run(sweep.clone(), |weight| {
        let mut weights: KindMap<f64> = KindMap::from_fn(|_| 1.0);
        weights[MemKind::Fast] = weight;
        MultiVmSim::new(
            SimConfig::paper_default()
                .with_fast_bytes(4 << 30)
                .with_slow_bytes(8 << 30)
                .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched),
            SharePolicy::WeightedDrf { weights },
            Policy::HeteroCoordinated,
            sharing::paper_setups(opts),
        )
        .run()
    });
    for (weight, reports) in sweep.into_iter().zip(rows) {
        set.record("graphchi-vm-runtime-s", weight, reports[0].runtime.as_secs_f64());
        set.record("metis-vm-runtime-s", weight, reports[1].runtime.as_secs_f64());
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_eviction_does_not_hurt() {
        let set = ablation_lru_eviction(&ExpOptions::quick());
        let eager = set
            .get("eager")
            .expect("lru-eviction ablation has no 'eager' series");
        let lazy = set
            .get("lazy")
            .expect("lru-eviction ablation has no 'lazy' series");
        for (e, l) in eager.points().iter().zip(lazy.points()) {
            assert!(
                e.1 >= l.1 - 3.0,
                "eager {:.1}% vs lazy {:.1}% at {}",
                e.1,
                l.1,
                e.0
            );
        }
    }

    #[test]
    fn adaptive_interval_cuts_overhead() {
        let set = ablation_adaptive_interval(&ExpOptions::quick());
        let a = set
            .get("adaptive-overhead")
            .expect("adaptive-interval ablation has no 'adaptive-overhead' series");
        let f = set
            .get("fixed-overhead")
            .expect("adaptive-interval ablation has no 'fixed-overhead' series");
        for (x, y) in a.points() {
            let fy = f
                .points()
                .iter()
                .find(|&&(px, _)| (px - x).abs() < 1e-9)
                .unwrap_or_else(|| panic!("'fixed-overhead' has no point at x={x}"))
                .1;
            assert!(*y <= fy + 0.5, "adaptive {y:.1}% vs fixed {fy:.1}%");
        }
    }

    #[test]
    fn guided_tracking_scans_no_more_than_full() {
        let set = ablation_tracking_scope(&ExpOptions::quick());
        let g = set
            .get("guided-scanned-M")
            .expect("tracking-scope ablation has no 'guided-scanned-M' series");
        let f = set
            .get("full-scanned-M")
            .expect("tracking-scope ablation has no 'full-scanned-M' series");
        for (gp, fp) in g.points().iter().zip(f.points()) {
            assert!(gp.1 <= fp.1 * 1.05, "guided {} vs full {}", gp.1, fp.1);
        }
    }

    #[test]
    fn drf_weight_sweep_produces_three_points() {
        let set = ablation_drf_weights(&ExpOptions::quick());
        assert_eq!(set.get("graphchi-vm-runtime-s").map(|s| s.len()), Some(3));
    }
}
