//! Crash-consistency and recovery experiments over the NVM tier.
//!
//! Three drivers probe the persistence subsystem the way the paper's
//! evaluation probes placement:
//!
//! * [`rec_time`] — post-crash rebuild time versus hot-set placement: the
//!   more of the working set tiering keeps on (volatile) FastMem, the less
//!   survives a power loss and the less there is to rebuild — recovery
//!   speed and data survival pull in opposite directions.
//! * [`rec_overhead`] — persistence overhead versus tiering benefit: what
//!   eager flush traffic costs each policy, and whether the tiering gains
//!   over SlowMem-only survive the cost.
//! * [`rec_ablation`] — flush-policy ablation under a seeded mid-run power
//!   loss: flush/fence counts, survivors and losses for every
//!   [`FlushPolicy`], with the ShadowModel-audited recovery path exercised
//!   end to end.
//!
//! All three honor `ExpOptions::persist` (`repro --persist MODE`) and the
//! fault-arming driver honors `ExpOptions::faults` (`repro --faults KIND`).
//! Every driver is deterministic given the seed, byte-identical across
//! `--jobs` counts, and draws nothing from wall clocks.

use hetero_faults::{FaultInjector, FaultKind, FaultPlan};
use hetero_mem::FlushPolicy;
use hetero_sim::SeriesSet;
use hetero_workloads::{apps, AppWorkload};

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig, SingleVmSim};

/// Per-epoch crash probability the fault-arming drivers use — low enough
/// that runs mostly make progress, high enough that every quick run sees
/// at least one crash→recover cycle.
const CRASH_PROBABILITY: f64 = 0.05;

/// The flush policy a recovery driver should use: the CLI's `--persist`
/// choice when one was given, else eager (the strictest durability).
fn effective_persist(opts: &ExpOptions) -> FlushPolicy {
    if opts.persist.is_enabled() {
        opts.persist
    } else {
        FlushPolicy::Eager
    }
}

/// The NVM-flavored base config shared by the recovery drivers.
fn base_cfg(opts: &ExpOptions, den: u64) -> SimConfig {
    SimConfig {
        nvm_slow: true,
        ..SimConfig::paper_default()
            .with_capacity_ratio(1, den)
            .with_seed(opts.seed)
            .with_audit(opts.audit)
            .with_sched(opts.sched)
    }
}

/// The seeded plan for the CLI-selected (or default) crash kind.
fn crash_plan(kind: FaultKind, seed: u64) -> FaultPlan {
    match kind {
        FaultKind::GuestCrashPersist => FaultPlan::crash_persist(seed, CRASH_PROBABILITY),
        _ => FaultPlan::power_loss(seed, CRASH_PROBABILITY),
    }
}

/// Recovery time vs. hot-set placement. Sweeps the FastMem:SlowMem ratio
/// (1/2 → 1/16): the scarcer FastMem gets, the more of the hot set tiering
/// leaves on NVM — so more survives a power loss and the rebuild takes
/// longer. SlowMem-only is the all-NVM bound; the coordinated policy shows
/// how promotion trades durable bytes for speed.
pub fn rec_time(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Recovery — rebuild time vs hot-set placement (power loss mid-run)",
        "slowmem-ratio-denominator",
    );
    let persist = effective_persist(opts);
    let dens = [2u64, 4, 8, 16];
    let rows = opts.runner().run(dens.to_vec(), |den| {
        [Policy::SlowMemOnly, Policy::HeteroCoordinated].map(|policy| {
            let cfg = base_cfg(opts, den).with_persist(persist);
            let spec = opts.tune(apps::graphchi());
            let half = spec.epochs() / 2;
            let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
            let mut sim = SingleVmSim::new(cfg, policy, wl);
            for _ in 0..half {
                if !sim.step() {
                    break;
                }
            }
            let before = sim.now();
            sim.recover(FaultKind::HostPowerLoss);
            assert!(
                sim.violations().is_empty(),
                "recovery oracle: {:?}",
                sim.violations()
            );
            let rebuild_us = sim
                .now()
                .checked_sub(before)
                .expect("recovery only moves time forward")
                .as_nanos() as f64
                / 1_000.0;
            let survived = sim.recovered_frames() as f64;
            let lost = sim.lost_frames() as f64;
            let survived_frac = if survived + lost > 0.0 {
                survived / (survived + lost)
            } else {
                0.0
            };
            (rebuild_us, survived_frac)
        })
    });
    for (den, [slow, coord]) in dens.iter().zip(rows) {
        let x = *den as f64;
        set.record("slowmem-only-rebuild-us", x, slow.0);
        set.record("coordinated-rebuild-us", x, coord.0);
        set.record("slowmem-only-survived-frac", x, slow.1);
        set.record("coordinated-survived-frac", x, coord.1);
    }
    set
}

/// Persistence overhead vs. tiering benefit: each policy's runtime with
/// flushing off and on, the flush overhead in percent, and the gain over
/// SlowMem-only in both modes — does the tiering win survive durability?
pub fn rec_overhead(opts: &ExpOptions) -> String {
    use std::fmt::Write as _;
    let persist = effective_persist(opts);
    let policies = [
        Policy::SlowMemOnly,
        Policy::HeapOd,
        Policy::HeteroLru,
        Policy::HeteroCoordinated,
    ];
    let rows = opts.runner().run(policies.to_vec(), |policy| {
        let spec = opts.tune(apps::graphchi());
        let off_cfg = base_cfg(opts, 4);
        let on_cfg = base_cfg(opts, 4).with_persist(persist);
        let off = run_app(&off_cfg, policy, spec.clone());
        let on = run_app(&on_cfg, policy, spec);
        (off, on)
    });
    let slow_off = rows[0].0.runtime;
    let slow_on = rows[0].1.runtime;
    let mut out = format!(
        "# Recovery — persistence overhead vs tiering benefit \
         (graphchi, 1/4 ratio, {persist} flush)\n\
         policy                 runtime-off(ms)  runtime-on(ms)  overhead(%)  \
         gain-off(%)  gain-on(%)\n"
    );
    for (policy, (off, on)) in policies.iter().zip(&rows) {
        let overhead = if off.runtime.as_nanos() > 0 {
            (on.runtime.as_nanos() as f64 / off.runtime.as_nanos() as f64 - 1.0) * 100.0
        } else {
            0.0
        };
        let gain = |mine: hetero_sim::Nanos, base: hetero_sim::Nanos| {
            if base.as_nanos() > 0 {
                (1.0 - mine.as_nanos() as f64 / base.as_nanos() as f64) * 100.0
            } else {
                0.0
            }
        };
        writeln!(
            out,
            "{:<22} {:>15.1} {:>15.1} {:>12.2} {:>12.1} {:>11.1}",
            policy.name(),
            off.runtime.as_millis_f64(),
            on.runtime.as_millis_f64(),
            overhead,
            gain(off.runtime, slow_off),
            gain(on.runtime, slow_on),
        )
        .expect("write to string");
    }
    out
}

/// Flush-policy ablation under seeded mid-run crashes: every
/// [`FlushPolicy`] runs the same workload with the same armed crash plan,
/// recovering through the ShadowModel-audited path each time. Reports the
/// durability/cost frontier: flush and fence counts, crash cycles, frames
/// recovered and frames lost (torn or volatile).
pub fn rec_ablation(opts: &ExpOptions) -> String {
    use std::fmt::Write as _;
    let kind = opts.faults.unwrap_or(FaultKind::HostPowerLoss);
    let policies = FlushPolicy::ALL;
    let rows = opts.runner().run(policies.to_vec(), |persist| {
        let cfg = base_cfg(opts, 4).with_persist(persist);
        let spec = opts.tune(apps::graphchi());
        let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::HeteroLru, wl);
        sim.set_fault_injector(FaultInjector::new(crash_plan(kind, opts.seed)));
        while sim.step() {}
        assert!(
            sim.violations().is_empty(),
            "recovery oracle ({persist}): {:?}",
            sim.violations()
        );
        let (flushes, fences) = sim
            .persist_domain()
            .map_or((0, 0), |d| (d.flushes, d.fences));
        (
            sim.report().runtime,
            flushes,
            fences,
            sim.recoveries(),
            sim.recovered_frames(),
            sim.lost_frames(),
        )
    });
    let mut out = format!(
        "# Recovery — flush-policy ablation under seeded {kind} \
         (graphchi, hetero-lru, 1/4 ratio)\n\
         flush-policy   runtime(ms)    flushes     fences  crashes  recovered       lost\n"
    );
    for (persist, (runtime, flushes, fences, crashes, recovered, lost)) in
        policies.iter().zip(&rows)
    {
        writeln!(
            out,
            "{:<14} {:>11.1} {:>10} {:>10} {:>8} {:>10} {:>10}",
            persist.to_string(),
            runtime.as_millis_f64(),
            flushes,
            fences,
            crashes,
            recovered,
            lost,
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn scarcer_fastmem_means_more_survives_a_power_loss() {
        let set = rec_time(&ExpOptions::quick());
        // SlowMem-only keeps everything on NVM: survival dominates the
        // coordinated policy's at every ratio.
        for den in [2.0, 4.0, 8.0, 16.0] {
            let slow = at(&set, "slowmem-only-survived-frac", den);
            let coord = at(&set, "coordinated-survived-frac", den);
            assert!(
                slow >= coord - 1e-9,
                "den {den}: all-NVM survival {slow:.3} vs coordinated {coord:.3}"
            );
            assert!(slow > 0.5, "den {den}: most of an all-NVM VM survives");
        }
        // Scarcer FastMem leaves more on NVM under the coordinated policy.
        let rich = at(&set, "coordinated-survived-frac", 2.0);
        let scarce = at(&set, "coordinated-survived-frac", 16.0);
        assert!(
            scarce >= rich - 1e-9,
            "1/16 survival {scarce:.3} must be >= 1/2 survival {rich:.3}"
        );
    }

    #[test]
    fn rebuild_time_tracks_survivor_count() {
        let set = rec_time(&ExpOptions::quick());
        for den in [2.0, 4.0, 8.0, 16.0] {
            let slow_t = at(&set, "slowmem-only-rebuild-us", den);
            let coord_t = at(&set, "coordinated-rebuild-us", den);
            assert!(slow_t > 0.0);
            // More survivors, more rebuild work.
            let slow_s = at(&set, "slowmem-only-survived-frac", den);
            let coord_s = at(&set, "coordinated-survived-frac", den);
            if slow_s > coord_s + 0.05 {
                assert!(
                    slow_t >= coord_t,
                    "den {den}: rebuilding more frames cannot be faster \
                     ({slow_t:.0}us vs {coord_t:.0}us)"
                );
            }
        }
    }

    #[test]
    fn tiering_benefit_survives_persistence_overhead() {
        let table = rec_overhead(&ExpOptions::quick());
        assert!(table.contains("SlowMem-only"));
        assert!(table.contains("HeteroOS-coordinated"));
        // Structural check: header plus one row per policy.
        assert_eq!(table.lines().count(), 2 + 4, "{table}");
    }

    #[test]
    fn ablation_covers_every_flush_policy_and_recovers_cleanly() {
        let opts = ExpOptions::quick().with_audit(hetero_faults::AuditLevel::Epoch);
        let table = rec_ablation(&opts);
        for p in FlushPolicy::ALL {
            assert!(
                table.contains(&p.to_string()),
                "missing {p} row in:\n{table}"
            );
        }
        assert_eq!(table.lines().count(), 2 + FlushPolicy::ALL.len(), "{table}");
    }

    #[test]
    fn drivers_are_deterministic() {
        let opts = ExpOptions::quick();
        assert_eq!(rec_overhead(&opts), rec_overhead(&opts));
        let a = rec_time(&opts);
        let b = rec_time(&opts);
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
