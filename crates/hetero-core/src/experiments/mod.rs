//! One function per table and figure of the paper's evaluation.
//!
//! Every function is deterministic given [`ExpOptions::seed`] and returns
//! either a [`SeriesSet`] (figures) or a formatted string (tables). The
//! `repro` binary in the `bench` crate prints them; `EXPERIMENTS.md` records
//! paper-vs-measured values.
//!
//! [`ExpOptions::quick`] shortens every run ~8× for tests and benches; the
//! published numbers use the full-length runs.

use hetero_faults::{AuditLevel, FaultKind};
use hetero_mem::{FlushPolicy, TierProfile};
use hetero_sim::Runner;
use hetero_workloads::WorkloadSpec;

use crate::cluster::ArrivalMode;
use crate::config::SchedMode;
use crate::policy::Tracking;

pub mod ablations;
pub mod capacity;
pub mod checkpoint;
pub mod cluster;
pub mod coordinated;
pub mod distribution;
pub mod extensions;
pub mod micro;
pub mod overhead;
pub mod placement;
pub mod recovery;
pub mod sensitivity;
pub mod sharing;
pub mod tables;
pub mod tiers;

pub use hetero_sim::{Series, SeriesSet};

/// Options shared by all experiment drivers.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Shorten runs ~8× (tests, smoke runs). Full runs match the paper's
    /// multi-minute durations so migrations amortise.
    pub quick: bool,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker threads for the per-target run sweeps (`0` = available
    /// parallelism). Every driver merges results in descriptor order, so
    /// output is byte-identical for any value — the default of `1` keeps
    /// library users sequential unless they opt in.
    pub jobs: usize,
    /// Invariant-sanitizer level applied to every run a driver launches.
    /// Observational (results are byte-identical at any level), but a
    /// violation makes the offending run panic instead of reporting.
    pub audit: AuditLevel,
    /// NVM flush policy for the recovery experiment family (`repro
    /// --persist MODE`). `Off` lets each recovery driver pick its own
    /// default (eager); every non-recovery experiment ignores this, so
    /// their exports stay byte-identical whatever the value.
    pub persist: FlushPolicy,
    /// Crash kind the fault-arming recovery drivers inject (`repro
    /// --faults KIND`). `None` leaves each driver's default
    /// ([`FaultKind::HostPowerLoss`]) in place.
    pub faults: Option<FaultKind>,
    /// Epoch scheduler for every run a driver launches (`repro --sched
    /// MODE`). [`SchedMode::Event`] (the default) and [`SchedMode::Dense`]
    /// produce byte-identical exports — the mode only changes how the
    /// engine finds due management work.
    pub sched: SchedMode,
    /// Host count for the rack-scale cluster experiment (`repro cluster
    /// --hosts N`). `0` lets the driver pick its default (16 full, 4
    /// quick); every non-cluster experiment ignores it.
    pub hosts: usize,
    /// VM arrival mode for the cluster experiment (`repro cluster
    /// --arrival MODE`): a seeded Poisson process or the built-in
    /// deterministic trace. Ignored by every non-cluster experiment.
    pub arrival: ArrivalMode,
    /// Named device-profile tier topology applied to every run a driver
    /// launches (`repro --tier-profile NAME`). `None` keeps each driver's
    /// own throttle-derived node parameters.
    pub tier_profile: Option<TierProfile>,
    /// Hotness-tracking override applied to every run (`repro --tracking
    /// MODE`). `None` keeps each policy's default discipline.
    pub tracking: Option<Tracking>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            seed: 42,
            jobs: 1,
            audit: AuditLevel::Off,
            persist: FlushPolicy::Off,
            faults: None,
            sched: SchedMode::default(),
            hosts: 0,
            arrival: ArrivalMode::default(),
            tier_profile: None,
            tracking: None,
        }
    }
}

impl ExpOptions {
    /// Quick-mode options (for tests and benches).
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            ..Default::default()
        }
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the invariant-sanitizer level for every run.
    pub fn with_audit(mut self, audit: AuditLevel) -> Self {
        self.audit = audit;
        self
    }

    /// Sets the NVM flush policy for the recovery experiments.
    pub fn with_persist(mut self, persist: FlushPolicy) -> Self {
        self.persist = persist;
        self
    }

    /// Arms a crash kind for the fault-arming recovery experiments.
    pub fn with_faults(mut self, kind: FaultKind) -> Self {
        self.faults = Some(kind);
        self
    }

    /// Selects the epoch scheduler for every run.
    pub fn with_sched(mut self, sched: SchedMode) -> Self {
        self.sched = sched;
        self
    }

    /// Sets the cluster host count (`0` = driver default).
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Selects the cluster VM arrival mode.
    pub fn with_arrival(mut self, arrival: ArrivalMode) -> Self {
        self.arrival = arrival;
        self
    }

    /// Applies a named device-profile tier topology to every run.
    pub fn with_tier_profile(mut self, profile: TierProfile) -> Self {
        self.tier_profile = Some(profile);
        self
    }

    /// Overrides the hotness-tracking discipline for every run.
    pub fn with_tracking(mut self, tracking: Tracking) -> Self {
        self.tracking = Some(tracking);
        self
    }

    /// The parallel executor the experiment drivers fan runs out on.
    pub fn runner(&self) -> Runner {
        Runner::new(self.jobs)
    }

    /// Applies the run-length scaling to a workload spec.
    pub(crate) fn tune(&self, mut spec: WorkloadSpec) -> WorkloadSpec {
        if self.quick {
            spec.total_instructions /= 8;
        }
        spec
    }
}
