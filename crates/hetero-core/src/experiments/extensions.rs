//! §4.3 extension experiments — the paper's stated future work, built out.
//!
//! * **Multi-level memory** ([`ext_multitier`]): a third MediumMem tier
//!   between FastMem and SlowMem, with page-type-specific demotion
//!   (anonymous pages cascade one level; released I/O pages drop straight
//!   to the slowest tier).
//! * **Write-aware migration over NVM** ([`ext_wear`]): with the Table 1
//!   store asymmetry enabled on SlowMem, promote write-heavy pages first
//!   and keep read-heavy pages behind — trading the same migration budget
//!   for more saved store latency and fewer NVM writes (endurance).
//! * **Bare-metal deployment** ([`ext_baremetal`]): hotness tracking moves
//!   from the hypervisor into the OS, halving scan and shoot-down costs.
//! * **Explicit application hints** ([`ext_hints`]): the §3.1 extended
//!   `mmap()` flag — quantifies how close application-transparent
//!   placement gets to an application that labels its own hot buffers.

use hetero_sim::SeriesSet;
use hetero_workloads::apps;

use crate::engine::run_app;
use crate::experiments::ExpOptions;
use crate::{Policy, SimConfig};

const GB: u64 = 1 << 30;

/// Multi-level extension: gains (%) over SlowMem-only under HeteroOS-LRU
/// for three machines — two-tier (1 GB Fast), three-tier (+2 GB Medium at
/// L:2,B:2), and the three-tier machine with typed demotion disabled.
pub fn ext_multitier(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Extension — three-tier machines under HeteroOS-LRU (gains % vs SlowMem-only)",
        "app-index",
    );
    let specs: Vec<_> = [apps::graphchi(), apps::x_stream(), apps::redis()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let two_tier = SimConfig::paper_default()
            .with_fast_bytes(GB)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let slow = run_app(&two_tier, Policy::SlowMemOnly, spec.clone());
        let r2 = run_app(&two_tier, Policy::HeteroLru, spec.clone());

        let three_tier = two_tier.clone().with_medium_bytes(2 * GB);
        let r3 = run_app(&three_tier, Policy::HeteroLru, spec.clone());

        let untyped = SimConfig {
            typed_demotion: false,
            ..three_tier
        };
        let r3u = run_app(&untyped, Policy::HeteroLru, spec);
        (
            r2.gain_percent_vs(&slow),
            r3.gain_percent_vs(&slow),
            r3u.gain_percent_vs(&slow),
        )
    });
    for (ai, (two, three, untyped)) in rows.into_iter().enumerate() {
        set.record("two-tier-1G", ai as f64, two);
        set.record("three-tier-1G+2G", ai as f64, three);
        set.record("three-tier-untyped-demotion", ai as f64, untyped);
    }
    set
}

/// Write-aware migration over NVM-like SlowMem: gains (%) over
/// SlowMem-only and total SlowMem store misses (millions — the endurance
/// proxy), for the coordinated policy with and without write-awareness.
pub fn ext_wear(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Extension — write-aware migration over NVM SlowMem (coordinated, 1/4 ratio)",
        "app-index",
    );
    let specs: Vec<_> = [apps::metis(), apps::graphchi(), apps::leveldb()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let base = SimConfig {
            nvm_slow: true,
            ..SimConfig::paper_default()
                .with_capacity_ratio(1, 4)
                .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched)
        };
        let slow = run_app(&base, Policy::SlowMemOnly, spec.clone());
        let plain = run_app(&base, Policy::HeteroCoordinated, spec.clone());
        let aware_cfg = SimConfig {
            write_aware: true,
            ..base
        };
        let aware = run_app(&aware_cfg, Policy::HeteroCoordinated, spec);
        (
            plain.gain_percent_vs(&slow),
            aware.gain_percent_vs(&slow),
            plain.slow_writes / 1e6,
            aware.slow_writes / 1e6,
        )
    });
    for (ai, (p_gain, a_gain, p_writes, a_writes)) in rows.into_iter().enumerate() {
        set.record("plain-gain", ai as f64, p_gain);
        set.record("write-aware-gain", ai as f64, a_gain);
        set.record("plain-slow-writes-M", ai as f64, p_writes);
        set.record("write-aware-slow-writes-M", ai as f64, a_writes);
    }
    set
}

/// Bare-metal deployment (§4.3): the coordinated policy with in-OS
/// tracking versus the virtualized split. Gains (%) over SlowMem-only and
/// management overhead (%).
pub fn ext_baremetal(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Extension — virtualized vs bare-metal coordinated management (1/4 ratio)",
        "app-index",
    );
    let specs: Vec<_> = [apps::graphchi(), apps::redis()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let virt = SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let slow = run_app(&virt, Policy::SlowMemOnly, spec.clone());
        let v = run_app(&virt, Policy::HeteroCoordinated, spec.clone());
        let bare_cfg = SimConfig {
            bare_metal: true,
            ..virt
        };
        let b = run_app(&bare_cfg, Policy::HeteroCoordinated, spec);
        (
            v.gain_percent_vs(&slow),
            b.gain_percent_vs(&slow),
            v.overhead_percent(),
            b.overhead_percent(),
        )
    });
    for (ai, (v_gain, b_gain, v_over, b_over)) in rows.into_iter().enumerate() {
        set.record("virtualized-gain", ai as f64, v_gain);
        set.record("bare-metal-gain", ai as f64, b_gain);
        set.record("virtualized-overhead", ai as f64, v_over);
        set.record("bare-metal-overhead", ai as f64, b_over);
    }
    set
}

/// Explicit placement hints (§3.1): transparent demand-prioritized
/// placement versus an application that maps hot buffers with a FastMem
/// hint, at a scarce 1/8 ratio.
pub fn ext_hints(opts: &ExpOptions) -> SeriesSet {
    let mut set = SeriesSet::new(
        "Extension — transparent placement vs explicit mmap hints (1/8 ratio)",
        "app-index",
    );
    let specs: Vec<_> = [apps::graphchi(), apps::metis()]
        .into_iter()
        .map(|s| opts.tune(s))
        .collect();
    let rows = opts.runner().run(specs, |spec| {
        let base = SimConfig::paper_default()
            .with_capacity_ratio(1, 8)
            .with_seed(opts.seed).with_audit(opts.audit).with_sched(opts.sched);
        let slow = run_app(&base, Policy::SlowMemOnly, spec.clone());
        let transparent = run_app(&base, Policy::HeapIoSlabOd, spec.clone());
        let hinted_cfg = SimConfig {
            app_hints: true,
            ..base
        };
        let hinted = run_app(&hinted_cfg, Policy::HeapIoSlabOd, spec);
        (
            transparent.gain_percent_vs(&slow),
            hinted.gain_percent_vs(&slow),
        )
    });
    for (ai, (transparent, hinted)) in rows.into_iter().enumerate() {
        set.record("transparent-gain", ai as f64, transparent);
        set.record("hinted-gain", ai as f64, hinted);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(set: &SeriesSet, series: &str, x: f64) -> f64 {
        set.get(series)
            .and_then(|s| {
                s.points()
                    .iter()
                    .find(|&&(px, _)| (px - x).abs() < 1e-9)
                    .map(|&(_, y)| y)
            })
            .unwrap_or_else(|| panic!("{series}@{x} missing"))
    }

    #[test]
    fn third_tier_helps_when_fastmem_is_tiny() {
        let set = ext_multitier(&ExpOptions::quick());
        for ai in 0..3 {
            let two = at(&set, "two-tier-1G", ai as f64);
            let three = at(&set, "three-tier-1G+2G", ai as f64);
            assert!(
                three > two,
                "app {ai}: 2GB of MediumMem must help (two {two:.1}%, three {three:.1}%)"
            );
        }
    }

    #[test]
    fn typed_demotion_does_not_hurt() {
        let set = ext_multitier(&ExpOptions::quick());
        for ai in 0..3 {
            let typed = at(&set, "three-tier-1G+2G", ai as f64);
            let untyped = at(&set, "three-tier-untyped-demotion", ai as f64);
            assert!(
                typed >= untyped - 3.0,
                "app {ai}: typed {typed:.1}% vs untyped {untyped:.1}%"
            );
        }
    }

    #[test]
    fn bare_metal_tracking_is_cheaper() {
        let set = ext_baremetal(&ExpOptions::quick());
        for ai in 0..2 {
            let v = at(&set, "virtualized-overhead", ai as f64);
            let b = at(&set, "bare-metal-overhead", ai as f64);
            assert!(b <= v + 1e-9, "app {ai}: bare {b:.1}% vs virt {v:.1}%");
            let vg = at(&set, "virtualized-gain", ai as f64);
            let bg = at(&set, "bare-metal-gain", ai as f64);
            assert!(bg >= vg - 2.0, "app {ai}: gain {bg:.1}% vs {vg:.1}%");
        }
    }

    #[test]
    fn explicit_hints_beat_transparency_under_scarcity() {
        // The paper argues transparency is *nearly* as good; hints should
        // win at a scarce ratio, but not by an order of magnitude.
        let set = ext_hints(&ExpOptions::quick());
        for ai in 0..2 {
            let t = at(&set, "transparent-gain", ai as f64);
            let h = at(&set, "hinted-gain", ai as f64);
            assert!(h >= t - 2.0, "app {ai}: hinted {h:.1}% vs transparent {t:.1}%");
        }
    }

    #[test]
    fn write_awareness_cuts_nvm_writes() {
        let set = ext_wear(&ExpOptions::quick());
        for ai in 0..3 {
            let plain = at(&set, "plain-slow-writes-M", ai as f64);
            let aware = at(&set, "write-aware-slow-writes-M", ai as f64);
            assert!(
                aware <= plain * 1.02,
                "app {ai}: write-aware must not increase NVM writes ({aware:.1} vs {plain:.1})"
            );
            // And it must not cost performance.
            let pg = at(&set, "plain-gain", ai as f64);
            let ag = at(&set, "write-aware-gain", ai as f64);
            assert!(ag >= pg - 3.0, "app {ai}: gain {ag:.1}% vs {pg:.1}%");
        }
    }
}
