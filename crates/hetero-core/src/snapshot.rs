//! Whole-engine checkpoint/restore (DESIGN.md §15).
//!
//! Every simulation layer serializes its *complete* state — engines, RNG
//! streams, event queues, ledgers, fault injectors, persistence domains —
//! into the hand-rolled versioned binary format of [`hetero_sim::snap`]. A
//! run resumed from a snapshot continues **byte-identically**: reports,
//! traces and JSON exports match an uninterrupted run exactly, which is
//! what the differential tests in `tests/checkpoint.rs` pin.
//!
//! Each snapshot starts with the common header (magic `HSNP`, format
//! version, layer tag). The layer tag states *which* simulator the bytes
//! capture, so restoring a fleet snapshot as a cluster fails loudly with
//! [`hetero_sim::snap::SnapshotError::WrongLayer`] instead of
//! misinterpreting bytes.
//!
//! What is deliberately **not** captured:
//!
//! * worker-thread counts (`jobs`) — a host resource, not simulation
//!   state; runs are byte-identical at any thread count, so
//!   [`Cluster::restore`](crate::Cluster::restore) takes it as a
//!   parameter,
//! * audit scratch (`ShadowModel`) — rebuilt from scratch on the next
//!   audit boundary by construction,
//! * derived caches that are recomputed before first use.

/// Layer tag of a [`SingleVmSim`](crate::SingleVmSim) snapshot.
pub const LAYER_SINGLE: u8 = 1;

/// Layer tag of a [`MultiVmSim`](crate::multivm::MultiVmSim) snapshot.
pub const LAYER_FLEET: u8 = 2;

/// Layer tag of a [`Cluster`](crate::Cluster) snapshot.
pub const LAYER_CLUSTER: u8 = 3;
