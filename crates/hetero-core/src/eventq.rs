//! Deterministic engine event queue (the `sched = Event` timer wheel).
//!
//! Management work in the epoch engine is periodic and mostly idle between
//! firings: coordinated scans wake every `scan_interval`, the guest LRU's
//! reclaim window every `stats_window`, demand-prioritization statistics
//! every `stats_window`, persistence flush epochs and fault-plan arm times
//! every epoch while armed. The dense scheduler re-evaluates every
//! subsystem's guard every epoch; the event scheduler instead keeps the
//! next deadline of each subsystem in a priority queue and lets `step()`
//! skip the management phase entirely when nothing is due.
//!
//! Determinism rules (DESIGN.md §13):
//!
//! * the queue is a `BinaryHeap` keyed by `(Nanos, seq)` where `seq` is a
//!   monotone insertion counter — **ties break by insertion order, never by
//!   hash or address**, so a replay with the same arm sequence pops the
//!   same order;
//! * re-arming an event supersedes its previous deadline *lazily*: the old
//!   heap entry stays but is recognised as stale on pop (its deadline no
//!   longer matches the armed deadline recorded for the slot) and dropped
//!   without firing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hetero_sim::Nanos;

/// One kind of deadline the epoch engine waits on.
///
/// The discriminants are slot indices into the armed-deadline table, so
/// each event kind has at most one *live* deadline at a time (re-arming
/// supersedes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EngineEvent {
    /// A hotness-tracking scan is due (`next_scan`).
    Scan = 0,
    /// The guest LRU's lazy-reclaim window is due (`next_demote`).
    Reclaim = 1,
    /// The demand-prioritization statistics window rolls (`next_window`).
    StatsWindow = 2,
    /// A persistence flush epoch (write-behind to the NVM tier).
    PersistFlush = 3,
    /// The workload advances a phase (one epoch of demand).
    PhaseChange = 4,
    /// The fault plan must be consulted (arm times, storms, crashes).
    FaultArm = 5,
}

/// Number of event slots.
const SLOTS: usize = 6;

impl EngineEvent {
    /// All event kinds, in slot order.
    pub const ALL: [EngineEvent; SLOTS] = [
        EngineEvent::Scan,
        EngineEvent::Reclaim,
        EngineEvent::StatsWindow,
        EngineEvent::PersistFlush,
        EngineEvent::PhaseChange,
        EngineEvent::FaultArm,
    ];

    #[inline]
    fn slot(self) -> usize {
        self as usize
    }

    /// Is this one of the management deadlines (scan / reclaim / stats)
    /// that gate the epoch engine's management phase, as opposed to the
    /// per-epoch carriers (phase change, persistence, fault arm)?
    pub fn is_management(self) -> bool {
        matches!(
            self,
            EngineEvent::Scan | EngineEvent::Reclaim | EngineEvent::StatsWindow
        )
    }
}

/// A deterministic single-owner timer queue over [`EngineEvent`]s.
///
/// # Examples
///
/// ```
/// use hetero_core::eventq::{EngineEvent, EventQueue};
/// use hetero_sim::Nanos;
///
/// let mut q = EventQueue::new();
/// q.arm(EngineEvent::Scan, Nanos::from_millis(100));
/// q.arm(EngineEvent::Reclaim, Nanos::from_millis(100));
/// assert_eq!(q.next_deadline(), Some(Nanos::from_millis(100)));
/// // Ties pop in insertion order.
/// assert_eq!(q.pop_due(Nanos::from_millis(100)), Some(EngineEvent::Scan));
/// assert_eq!(q.pop_due(Nanos::from_millis(100)), Some(EngineEvent::Reclaim));
/// assert_eq!(q.pop_due(Nanos::from_millis(100)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    /// Min-heap of `(deadline, seq, event)`; `seq` makes equal deadlines
    /// pop in arm order.
    heap: BinaryHeap<Reverse<(Nanos, u64, EngineEvent)>>,
    /// The live deadline per event slot; heap entries that disagree are
    /// stale and dropped on pop.
    armed: [Option<Nanos>; SLOTS],
    /// Monotone insertion counter.
    seq: u64,
    /// Events genuinely popped (stale drops excluded).
    fired: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Arms (or re-arms) `ev` to fire at `at`. Re-arming with the deadline
    /// already recorded is a no-op; a different deadline supersedes the old
    /// one, which is dropped lazily on pop.
    pub fn arm(&mut self, ev: EngineEvent, at: Nanos) {
        if self.armed[ev.slot()] == Some(at) {
            return;
        }
        self.armed[ev.slot()] = Some(at);
        self.heap.push(Reverse((at, self.seq, ev)));
        self.seq += 1;
    }

    /// Disarms `ev`; a pending heap entry is dropped lazily on pop.
    pub fn disarm(&mut self, ev: EngineEvent) {
        self.armed[ev.slot()] = None;
    }

    /// The live deadline of `ev`, if armed.
    pub fn deadline(&self, ev: EngineEvent) -> Option<Nanos> {
        self.armed[ev.slot()]
    }

    /// Is `ev` armed with a deadline at or before `now`?
    pub fn due(&self, ev: EngineEvent, now: Nanos) -> bool {
        self.armed[ev.slot()].is_some_and(|t| t <= now)
    }

    /// The earliest live deadline across all armed events.
    pub fn next_deadline(&self) -> Option<Nanos> {
        self.armed.iter().flatten().min().copied()
    }

    /// Is any armed event due at or before `now`?
    pub fn any_due(&self, now: Nanos) -> bool {
        self.next_deadline().is_some_and(|t| t <= now)
    }

    /// Pops the earliest event whose live deadline is at or before `now`,
    /// disarming it. Stale heap entries (superseded or disarmed) are
    /// discarded along the way. Returns `None` when nothing is due.
    pub fn pop_due(&mut self, now: Nanos) -> Option<EngineEvent> {
        while let Some(&Reverse((at, _, ev))) = self.heap.peek() {
            if at > now {
                return None;
            }
            self.heap.pop();
            if self.armed[ev.slot()] == Some(at) {
                self.armed[ev.slot()] = None;
                self.fired += 1;
                return Some(ev);
            }
            // Stale: superseded by a later arm or disarmed. Drop silently.
        }
        None
    }

    /// Events genuinely fired (popped live) since creation.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Live armed events (heap may additionally hold stale entries).
    pub fn armed_len(&self) -> usize {
        self.armed.iter().flatten().count()
    }
}


hetero_sim::impl_snap!(enum EngineEvent {
    0 => Scan {},
    1 => Reclaim {},
    2 => StatsWindow {},
    3 => PersistFlush {},
    4 => PhaseChange {},
    5 => FaultArm {},
});

impl hetero_sim::snap::Snap for EventQueue {
    fn snap(&self, w: &mut hetero_sim::snap::SnapWriter) {
        // Dump the heap ascending by (deadline, seq): `seq` is unique per
        // entry, so the order is total and a heap rebuilt from the same
        // entries pops identically. Stale (superseded) entries are
        // preserved deliberately — their lazy drops still cost pops after
        // a restore, exactly as they would have in the original run.
        let mut entries: Vec<(Nanos, u64, EngineEvent)> =
            self.heap.iter().map(|&Reverse(e)| e).collect();
        entries.sort_unstable();
        entries.snap(w);
        self.armed.snap(w);
        self.seq.snap(w);
        self.fired.snap(w);
    }
    fn unsnap(
        r: &mut hetero_sim::snap::SnapReader<'_>,
    ) -> Result<Self, hetero_sim::snap::SnapshotError> {
        use hetero_sim::snap::Snap;
        let entries: Vec<(Nanos, u64, EngineEvent)> = Snap::unsnap(r)?;
        Ok(EventQueue {
            heap: entries.into_iter().map(Reverse).collect(),
            armed: Snap::unsnap(r)?,
            seq: Snap::unsnap(r)?,
            fired: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(ms: u64) -> Nanos {
        Nanos::from_millis(ms)
    }

    #[test]
    fn ties_pop_in_insertion_order_not_enum_order() {
        let mut q = EventQueue::new();
        // Arm in reverse enum order; pops must follow arm order.
        q.arm(EngineEvent::FaultArm, ns(5));
        q.arm(EngineEvent::StatsWindow, ns(5));
        q.arm(EngineEvent::Scan, ns(5));
        assert_eq!(q.pop_due(ns(5)), Some(EngineEvent::FaultArm));
        assert_eq!(q.pop_due(ns(5)), Some(EngineEvent::StatsWindow));
        assert_eq!(q.pop_due(ns(5)), Some(EngineEvent::Scan));
        assert_eq!(q.pop_due(ns(5)), None);
        assert_eq!(q.fired(), 3);
    }

    #[test]
    fn not_due_until_deadline() {
        let mut q = EventQueue::new();
        q.arm(EngineEvent::Scan, ns(100));
        assert!(!q.any_due(ns(99)));
        assert_eq!(q.pop_due(ns(99)), None);
        assert!(q.due(EngineEvent::Scan, ns(100)));
        assert_eq!(q.pop_due(ns(100)), Some(EngineEvent::Scan));
        assert!(!q.due(EngineEvent::Scan, ns(100)), "pop disarms");
    }

    #[test]
    fn rearm_supersedes_and_stale_entry_is_dropped() {
        let mut q = EventQueue::new();
        q.arm(EngineEvent::Reclaim, ns(10));
        q.arm(EngineEvent::Reclaim, ns(20)); // supersedes
        assert_eq!(q.deadline(EngineEvent::Reclaim), Some(ns(20)));
        // The stale ns(10) entry must not fire at 10.
        assert_eq!(q.pop_due(ns(10)), None);
        assert_eq!(q.pop_due(ns(19)), None);
        assert_eq!(q.pop_due(ns(20)), Some(EngineEvent::Reclaim));
        assert_eq!(q.fired(), 1, "only the live entry fires");
    }

    #[test]
    fn rearm_same_deadline_is_idempotent() {
        let mut q = EventQueue::new();
        q.arm(EngineEvent::Scan, ns(7));
        q.arm(EngineEvent::Scan, ns(7));
        q.arm(EngineEvent::Scan, ns(7));
        assert_eq!(q.pop_due(ns(7)), Some(EngineEvent::Scan));
        assert_eq!(q.pop_due(ns(7)), None, "no duplicate fire");
    }

    #[test]
    fn disarm_cancels_a_pending_fire() {
        let mut q = EventQueue::new();
        q.arm(EngineEvent::PersistFlush, ns(3));
        q.disarm(EngineEvent::PersistFlush);
        assert_eq!(q.next_deadline(), None);
        assert_eq!(q.pop_due(ns(1000)), None);
        assert_eq!(q.fired(), 0);
    }

    #[test]
    fn next_deadline_tracks_the_minimum_live_entry() {
        let mut q = EventQueue::new();
        q.arm(EngineEvent::Scan, ns(30));
        q.arm(EngineEvent::Reclaim, ns(10));
        q.arm(EngineEvent::StatsWindow, ns(20));
        assert_eq!(q.next_deadline(), Some(ns(10)));
        q.arm(EngineEvent::Reclaim, ns(40)); // re-arm past the others
        assert_eq!(q.next_deadline(), Some(ns(20)));
        assert_eq!(q.pop_due(ns(25)), Some(EngineEvent::StatsWindow));
        assert_eq!(q.next_deadline(), Some(ns(30)));
    }

    #[test]
    fn deterministic_replay_pops_identically() {
        let script: Vec<(EngineEvent, u64)> = vec![
            (EngineEvent::Scan, 100),
            (EngineEvent::Reclaim, 100),
            (EngineEvent::StatsWindow, 100),
            (EngineEvent::Scan, 200),
            (EngineEvent::FaultArm, 150),
            (EngineEvent::PhaseChange, 150),
        ];
        let run = || {
            let mut q = EventQueue::new();
            for &(ev, at) in &script {
                q.arm(ev, Nanos::from_nanos(at));
            }
            let mut popped = Vec::new();
            while let Some(ev) = q.pop_due(Nanos::from_nanos(1_000)) {
                popped.push(ev);
            }
            popped
        };
        assert_eq!(run(), run());
        assert_eq!(
            run(),
            vec![
                EngineEvent::Reclaim,
                EngineEvent::StatsWindow,
                EngineEvent::FaultArm,
                EngineEvent::PhaseChange,
                EngineEvent::Scan, // re-armed to 200, fires after the 150s
            ]
        );
    }

    #[test]
    fn management_classification() {
        assert!(EngineEvent::Scan.is_management());
        assert!(EngineEvent::Reclaim.is_management());
        assert!(EngineEvent::StatsWindow.is_management());
        assert!(!EngineEvent::PersistFlush.is_management());
        assert!(!EngineEvent::PhaseChange.is_management());
        assert!(!EngineEvent::FaultArm.is_management());
    }

    #[test]
    fn armed_len_ignores_stale_heap_entries() {
        let mut q = EventQueue::new();
        q.arm(EngineEvent::Scan, ns(1));
        q.arm(EngineEvent::Scan, ns(2));
        q.arm(EngineEvent::Reclaim, ns(3));
        assert_eq!(q.armed_len(), 2);
    }
}
