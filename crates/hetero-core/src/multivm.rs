//! Multi-VM co-execution with fair heterogeneous-memory sharing (Fig 13).
//!
//! Runs several guests on one machine: the VMs interleave in simulated time,
//! share the memory channels, and compete for FastMem/SlowMem through the
//! VMM's fair-share ledger — weighted DRF (Algorithm 1) or the max-min
//! baseline. Memory moves between guests via balloon inflation/deflation;
//! a guest squeezed below its footprint swaps (and pays for it), which is
//! exactly the failure mode the paper demonstrates for single-resource
//! max-min in §5.5.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hetero_faults::{audit_fair_share, AuditLevel, Violation};
use hetero_guest::GuestKernel;
use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;
use hetero_sim::runner::Runner;
use hetero_sim::Nanos;
use hetero_vmm::drf::{FairShare, Grant, GuestId};
use hetero_vmm::SharePolicy;
use hetero_workloads::{AppWorkload, WorkloadSpec};

use crate::config::{SchedMode, SimConfig};
use crate::engine::SingleVmSim;
use crate::metrics::RunReport;
use crate::policy::Policy;

/// One guest VM's contract and workload.
#[derive(Debug, Clone)]
pub struct VmSetup {
    /// The application it runs.
    pub spec: WorkloadSpec,
    /// Reserved minimum bytes per tier (never reclaimed under DRF).
    pub min_bytes: KindMap<u64>,
    /// Balloonable maximum bytes per tier.
    pub max_bytes: KindMap<u64>,
}

impl VmSetup {
    /// Builds the paper's `<w_f * fast, w_s * slow>` style reservation:
    /// `fast`/`slow` reserved minima, growable to `max_fast`/`max_slow`.
    pub fn new(spec: WorkloadSpec, fast: u64, slow: u64, max_fast: u64, max_slow: u64) -> Self {
        let mut min_bytes = KindMap::default();
        min_bytes[MemKind::Fast] = fast;
        min_bytes[MemKind::Slow] = slow;
        let mut max_bytes = KindMap::default();
        max_bytes[MemKind::Fast] = max_fast;
        max_bytes[MemKind::Slow] = max_slow;
        VmSetup {
            spec,
            min_bytes,
            max_bytes,
        }
    }
}

/// Growth request chunk (simulated pages).
const GROW_CHUNK: u64 = 256;
/// Free-fraction threshold below which a guest asks the VMM for more.
const GROW_THRESHOLD: f64 = 0.04;

struct VmState {
    id: GuestId,
    sim: SingleVmSim<AppWorkload>,
    min: KindMap<u64>,
    done: bool,
}

/// The multi-VM engine.
pub struct MultiVmSim {
    cfg: SimConfig,
    fair: FairShare,
    vms: Vec<VmState>,
    /// Machine tier sizes (simulated pages) — the conservation target the
    /// fair-share ledger is audited against.
    totals: KindMap<u64>,
}

impl MultiVmSim {
    /// Builds a co-execution: the machine has `cfg.fast_bytes` /
    /// `cfg.slow_bytes` total; each VM boots with its reserved minimum
    /// usable (the rest of its maximum ballooned out) and runs `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the reserved minima oversubscribe the machine.
    pub fn new(cfg: SimConfig, share: SharePolicy, policy: Policy, setups: Vec<VmSetup>) -> Self {
        MultiVmSim::new_with_jobs(cfg, share, policy, setups, 1)
    }

    /// As [`MultiVmSim::new`], building and boot-ballooning the guests on
    /// `jobs` worker threads.
    ///
    /// Registration with the fair-share ledger stays sequential in setup
    /// order — it is shared state. Everything after it is VM-local: each
    /// guest derives its RNG stream from its own descriptor seed, builds
    /// its kernel against its own maximum reservation, and inflates its
    /// boot balloon without touching the ledger. The [`Runner`]'s
    /// descriptor-order merge therefore makes the fleet byte-identical for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the reserved minima oversubscribe the machine.
    pub fn new_with_jobs(
        cfg: SimConfig,
        share: SharePolicy,
        policy: Policy,
        setups: Vec<VmSetup>,
        jobs: usize,
    ) -> Self {
        let to_pages = |bytes: u64| (bytes / cfg.scale / cfg.page_size).max(1);
        let totals = KindMap::from_fn(|k| match k {
            MemKind::Fast => to_pages(cfg.fast_bytes),
            MemKind::Slow => to_pages(cfg.slow_bytes),
            MemKind::Medium => 0,
        });
        let mut fair = FairShare::new(share, totals);
        let bw_share = 1.0 / setups.len().max(1) as f64;
        let mins: Vec<KindMap<u64>> = setups
            .iter()
            .map(|s| KindMap::from_fn(|k| to_pages(s.min_bytes[k]).min(totals[k])))
            .collect();
        for (i, min) in mins.iter().enumerate() {
            fair.register(GuestId(i as u32), *min);
        }
        let items: Vec<(usize, VmSetup, KindMap<u64>)> = setups
            .into_iter()
            .zip(mins)
            .enumerate()
            .map(|(i, (s, m))| (i, s, m))
            .collect();
        let cfg_ref = &cfg;
        let vms = Runner::new(jobs).run(items, |(i, setup, min)| {
            // The guest's frame space is its maximum; pages beyond the
            // reserved minimum start ballooned out.
            let vm_cfg = cfg_ref
                .clone()
                .with_fast_bytes(
                    setup.max_bytes[MemKind::Fast].max(cfg_ref.page_size * cfg_ref.scale),
                )
                .with_slow_bytes(
                    setup.max_bytes[MemKind::Slow].max(cfg_ref.page_size * cfg_ref.scale),
                )
                .with_seed(cfg_ref.seed.wrapping_add(i as u64 * 7919));
            let workload = AppWorkload::new(setup.spec, cfg_ref.page_size, cfg_ref.scale);
            let mut sim = SingleVmSim::new(vm_cfg, policy, workload);
            sim.set_bandwidth_share(bw_share);
            for k in [MemKind::Fast, MemKind::Slow] {
                let max_pages = to_pages(setup.max_bytes[k]);
                let ballooned = max_pages.saturating_sub(min[k]);
                let yielded = sim.yield_pages(k, ballooned);
                debug_assert_eq!(yielded, ballooned, "boot balloon must succeed");
            }
            VmState {
                id: GuestId(i as u32),
                sim,
                min,
                done: false,
            }
        });
        MultiVmSim {
            cfg,
            fair,
            vms,
            totals,
        }
    }

    /// Runs every VM to completion, co-scheduled by simulated time, and
    /// returns their reports in setup order.
    ///
    /// # Panics
    ///
    /// With an explicit `SimConfig::audit` level set, panics if the run
    /// produced any violation — in the fair-share ledger or inside any
    /// guest's own sanitizer. Use [`MultiVmSim::run_audited`] to inspect
    /// violations without panicking.
    pub fn run(self) -> Vec<RunReport> {
        let audit = self.cfg.audit;
        let (reports, violations) = self.run_audited();
        if audit != AuditLevel::Off && !violations.is_empty() {
            let mut msg = format!(
                "invariant sanitizer ({} level) found {} violation(s) in multi-VM run:",
                audit,
                violations.len(),
            );
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
        reports
    }

    /// As [`MultiVmSim::run`], additionally returning every violation found
    /// (always empty when `SimConfig::effective_audit` is `Off`): the
    /// machine-level ledger conservation checks run after each scheduling
    /// step, followed by each guest's own collected violations.
    pub fn run_audited(mut self) -> (Vec<RunReport>, Vec<Violation>) {
        let audited = self.cfg.effective_audit().is_enabled();
        let mut violations = Vec::new();
        match self.cfg.sched {
            SchedMode::Dense => self.drive_dense(audited, &mut violations),
            SchedMode::Event => self.drive_event(audited, &mut violations),
        }
        let reports = self.vms.iter().map(|v| v.sim.report()).collect();
        for vm in &self.vms {
            violations.extend_from_slice(vm.sim.violations());
        }
        (reports, violations)
    }

    /// Advances VM `i` one epoch. Returns `false` once it has finished,
    /// after releasing its surplus grant so the survivors can grow into it.
    fn step_vm(&mut self, i: usize) -> bool {
        if !self.vms[i].sim.step() {
            self.vms[i].done = true;
            self.release_all(i);
            false
        } else {
            self.grow_if_pressured(i);
            true
        }
    }

    /// Dense co-scheduling: each step advances the live VM furthest behind
    /// in simulated time. Finished VMs leave the live-index list outright
    /// instead of being re-filtered on every step, so a mostly-done fleet
    /// scans only its stragglers. `live` stays in ascending index order,
    /// making the first minimum the lowest-index VM among ties — the same
    /// choice the full filtered scan made.
    fn drive_dense(&mut self, audited: bool, violations: &mut Vec<Violation>) {
        let mut live: Vec<usize> = (0..self.vms.len()).collect();
        while !live.is_empty() {
            let pos = live
                .iter()
                .enumerate()
                .min_by_key(|&(_, &i)| self.vms[i].sim.now())
                .map(|(p, _)| p)
                .expect("live is non-empty");
            let i = live[pos];
            if !self.step_vm(i) {
                live.remove(pos);
            }
            if audited {
                self.audit_ledger(violations);
            }
        }
    }

    /// Event co-scheduling: a min-heap keyed `(now, index)` replaces the
    /// per-step scan, so selecting the next VM costs `O(log live)` instead
    /// of `O(fleet)`. Keys go stale when a *donor*'s clock advances while
    /// it balloons pages to a neighbour; since clocks only move forward, a
    /// stale key always pops **early**, never late, and is lazily re-keyed
    /// at its true time. Every entry's key is therefore a lower bound on
    /// its VM's clock, so the first *verified* pop is exactly the dense
    /// scan's first minimum (lowest index among time ties — `Reverse`
    /// orders `(t, i)` tuples lexicographically). Finished VMs simply
    /// never re-enter the heap.
    fn drive_event(&mut self, audited: bool, violations: &mut Vec<Violation>) {
        let mut heap: BinaryHeap<Reverse<(Nanos, usize)>> = (0..self.vms.len())
            .map(|i| Reverse((self.vms[i].sim.now(), i)))
            .collect();
        while let Some(Reverse((t, i))) = heap.pop() {
            let now = self.vms[i].sim.now();
            if t != now {
                heap.push(Reverse((now, i)));
                continue;
            }
            if self.step_vm(i) {
                heap.push(Reverse((self.vms[i].sim.now(), i)));
            }
            if audited {
                self.audit_ledger(violations);
            }
        }
    }

    /// One pass of the machine-level conservation audit: per-guest grants
    /// vs. what each kernel owns, and grants + free pool vs. tier totals.
    fn audit_ledger(&self, out: &mut Vec<Violation>) {
        let guests: Vec<(GuestId, &GuestKernel)> = self
            .vms
            .iter()
            .map(|v| (v.id, v.sim.kernel()))
            .collect();
        out.extend(audit_fair_share(&self.fair, &guests, &self.totals));
    }

    /// A finished VM returns everything above its minimum so others can
    /// use it.
    fn release_all(&mut self, i: usize) {
        let id = self.vms[i].id;
        for k in [MemKind::Fast, MemKind::Slow] {
            let held = self.fair.allocated(id)[k];
            let extra = held.saturating_sub(self.vms[i].min[k]);
            if extra > 0 {
                let yielded = self.vms[i].sim.yield_pages(k, extra);
                self.fair.release(id, k, yielded.min(extra));
            }
        }
    }

    fn grow_if_pressured(&mut self, i: usize) {
        for kind in [MemKind::Fast, MemKind::Slow] {
            let wants_kind = match kind {
                MemKind::Fast => self.vms[i].sim.policy() != Policy::SlowMemOnly,
                _ => true,
            };
            if !wants_kind {
                continue;
            }
            let swapped = self.vms[i].sim.swapped_pages();
            let pressured = self.vms[i].sim.kernel().free_fraction(kind) < GROW_THRESHOLD
                || (kind == MemKind::Slow && swapped > 0);
            if !pressured {
                continue;
            }
            // A swapping guest asks for its real deficit, not a polite sip
            // — this is what lets a memory-hungry VM balloon a neighbour
            // all the way down under max-min (§5.5).
            let want = if kind == MemKind::Slow {
                GROW_CHUNK.max(swapped)
            } else {
                GROW_CHUNK
            };
            self.request_pages(i, kind, want);
        }
    }

    fn request_pages(&mut self, i: usize, kind: MemKind, pages: u64) {
        let id = self.vms[i].id;
        // Clamp to what the guest can still deflate.
        let ballooned = self.vms[i].sim.kernel().ballooned_pages(kind);
        let want = pages.min(ballooned);
        if want == 0 {
            return;
        }
        let mut demand = KindMap::default();
        demand[kind] = want;
        match self.fair.request(id, demand) {
            Grant::Granted => {
                self.vms[i].sim.accept_pages(kind, want);
            }
            Grant::NeedsReclaim(plan) => {
                let mut reclaimed_total = 0;
                for (donor, k, n) in plan {
                    let di = self
                        .vms
                        .iter()
                        .position(|v| v.id == donor)
                        .expect("donor registered");
                    let got = self.vms[di].sim.yield_pages(k, n);
                    if got > 0 {
                        self.fair.reclaim(donor, k, got);
                        reclaimed_total += got;
                    }
                }
                if reclaimed_total > 0 {
                    let grant = want.min(reclaimed_total);
                    let mut d = KindMap::default();
                    d[kind] = grant;
                    if matches!(self.fair.request(id, d), Grant::Granted) {
                        self.vms[i].sim.accept_pages(kind, grant);
                    }
                }
            }
            Grant::Denied => {}
        }
    }

    /// Total simulated time of the longest-running VM, or `None` for an
    /// empty report set.
    ///
    /// Returning `Option` (rather than the old `Nanos::ZERO`) keeps the
    /// degenerate case out of downstream ratio helpers: a zero makespan
    /// fed into `RunReport::gain_percent_vs`-style comparisons reads as a
    /// *real* instantaneous runtime and silently produces 0% gains, which
    /// is indistinguishable from "no improvement".
    pub fn makespan(reports: &[RunReport]) -> Option<Nanos> {
        reports.iter().map(|r| r.runtime).max()
    }

    /// Convenience accessor for the shared configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_workloads::apps;

    const GB: u64 = 1 << 30;

    fn quick(spec: WorkloadSpec) -> WorkloadSpec {
        let mut s = spec;
        s.total_instructions /= 10;
        s
    }

    fn host_cfg() -> SimConfig {
        SimConfig::paper_default()
            .with_fast_bytes(4 * GB)
            .with_slow_bytes(8 * GB)
            .with_seed(11)
    }

    fn paper_setups() -> Vec<VmSetup> {
        vec![
            // Graphchi VM: <2*1GB fast, 1*2.5GB slow>, growable.
            VmSetup::new(quick(apps::graphchi()), GB, 5 * GB / 2, 2 * GB, 6 * GB),
            // Metis VM: <2*3GB fast, 1*2.5GB slow>, memory-hungry.
            VmSetup::new(quick(apps::metis()), 3 * GB, 5 * GB / 2, 4 * GB, 8 * GB),
        ]
    }

    #[test]
    fn both_vms_complete_under_drf() {
        let sim = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        );
        let reports = sim.run();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.epochs > 0, "{} never ran", r.app);
            assert!(!r.runtime.is_zero());
        }
    }

    #[test]
    fn contention_slows_vms_down_vs_solo() {
        let cfg = host_cfg();
        // Solo reference: the VM's *maximum* reservation with the whole
        // memory bandwidth to itself — sharing can never beat this.
        let solo = crate::engine::run_app(
            &cfg.clone().with_fast_bytes(2 * GB).with_slow_bytes(6 * GB),
            Policy::HeteroCoordinated,
            quick(apps::graphchi()),
        );
        let reports = MultiVmSim::new(
            cfg,
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        let shared = &reports[0];
        assert_eq!(shared.app, "Graphchi");
        assert!(
            shared.runtime >= solo.runtime,
            "sharing must cost something: shared {} vs solo {}",
            shared.runtime,
            solo.runtime
        );
    }

    #[test]
    fn drf_protects_the_low_share_vm_better_than_maxmin() {
        let drf = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        let maxmin = MultiVmSim::new(
            host_cfg(),
            SharePolicy::MaxMin,
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        // Graphchi (the low-dominant-share VM) should do no materially
        // worse under DRF (quick-mode runs carry some noise; the full
        // separation is shown by the Fig 13 experiment).
        assert!(
            drf[0].runtime <= maxmin[0].runtime.mul_f64(1.1),
            "DRF {} vs max-min {}",
            drf[0].runtime,
            maxmin[0].runtime
        );
    }

    #[test]
    fn makespan_is_the_longest_runtime() {
        let reports = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroLru,
            paper_setups(),
        )
        .run();
        let m = MultiVmSim::makespan(&reports).expect("two reports");
        assert!(reports.iter().all(|r| r.runtime <= m));
        assert!(reports.iter().any(|r| r.runtime == m));
    }

    #[test]
    fn makespan_of_nothing_is_none() {
        assert_eq!(MultiVmSim::makespan(&[]), None);
    }

    #[test]
    fn dense_and_event_schedulers_are_byte_identical() {
        let run = |sched: SchedMode| {
            MultiVmSim::new(
                host_cfg().with_sched(sched),
                SharePolicy::paper_drf(),
                Policy::HeteroCoordinated,
                paper_setups(),
            )
            .run()
        };
        let dense = run(SchedMode::Dense);
        let event = run(SchedMode::Event);
        assert_eq!(dense.len(), event.len());
        for (d, e) in dense.iter().zip(event.iter()) {
            assert_eq!(d.to_json(), e.to_json(), "schedulers must not diverge");
        }
    }

    #[test]
    fn parallel_boot_matches_sequential_boot() {
        let boot = |jobs: usize| {
            MultiVmSim::new_with_jobs(
                host_cfg(),
                SharePolicy::paper_drf(),
                Policy::HeteroCoordinated,
                paper_setups(),
                jobs,
            )
            .run()
        };
        let seq = boot(1);
        let par = boot(4);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_json(), b.to_json(), "thread count must not perturb the fleet");
        }
    }

    #[test]
    fn audited_run_matches_unaudited_and_is_clean() {
        let plain = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        let (audited, violations) = MultiVmSim::new(
            host_cfg().with_audit(hetero_faults::AuditLevel::Epoch),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run_audited();
        assert_eq!(violations, Vec::new(), "multi-VM stack must audit clean");
        for (a, b) in plain.iter().zip(audited.iter()) {
            assert_eq!(a.to_json(), b.to_json(), "audit must not perturb runs");
        }
    }
}
