//! Multi-VM co-execution with fair heterogeneous-memory sharing (Fig 13).
//!
//! Runs several guests on one machine: the VMs interleave in simulated time,
//! share the memory channels, and compete for FastMem/SlowMem through the
//! VMM's fair-share ledger — weighted DRF (Algorithm 1) or the max-min
//! baseline. Memory moves between guests via balloon inflation/deflation;
//! a guest squeezed below its footprint swaps (and pays for it), which is
//! exactly the failure mode the paper demonstrates for single-resource
//! max-min in §5.5.
//!
//! The per-host mechanics — ledger, VM slots, growth/release, the event
//! heap — live in [`FleetCore`], shared between this single-host engine and
//! the rack-scale [`crate::cluster::Cluster`], whose hosts each own one
//! `FleetCore` and step it independently.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hetero_faults::{audit_fair_share, AuditLevel, Violation};
use hetero_guest::GuestKernel;
use hetero_mem::kind::KindMap;
use hetero_mem::MemKind;
use hetero_sim::runner::Runner;
use hetero_sim::Nanos;
use hetero_vmm::drf::{FairShare, Grant, GuestId};
use hetero_vmm::SharePolicy;
use hetero_workloads::{AppWorkload, WorkloadSpec};

use crate::config::{SchedMode, SimConfig};
use crate::engine::SingleVmSim;
use crate::metrics::RunReport;
use crate::policy::Policy;

/// One guest VM's contract and workload.
#[derive(Debug, Clone)]
pub struct VmSetup {
    /// The application it runs.
    pub spec: WorkloadSpec,
    /// Reserved minimum bytes per tier (never reclaimed under DRF).
    pub min_bytes: KindMap<u64>,
    /// Balloonable maximum bytes per tier.
    pub max_bytes: KindMap<u64>,
}

impl VmSetup {
    /// Builds the paper's `<w_f * fast, w_s * slow>` style reservation:
    /// `fast`/`slow` reserved minima, growable to `max_fast`/`max_slow`.
    pub fn new(spec: WorkloadSpec, fast: u64, slow: u64, max_fast: u64, max_slow: u64) -> Self {
        let mut min_bytes = KindMap::default();
        min_bytes[MemKind::Fast] = fast;
        min_bytes[MemKind::Slow] = slow;
        let mut max_bytes = KindMap::default();
        max_bytes[MemKind::Fast] = max_fast;
        max_bytes[MemKind::Slow] = max_slow;
        VmSetup {
            spec,
            min_bytes,
            max_bytes,
        }
    }

    /// Adds a Medium-tier reservation (`min` reserved, growable to `max`)
    /// for three-tier hosts.
    pub fn with_medium(mut self, min: u64, max: u64) -> Self {
        self.min_bytes[MemKind::Medium] = min;
        self.max_bytes[MemKind::Medium] = max;
        self
    }
}

/// Growth request chunk (simulated pages).
const GROW_CHUNK: u64 = 256;
/// Free-fraction threshold below which a guest asks the VMM for more.
const GROW_THRESHOLD: f64 = 0.04;

/// Every tier a grant can cover, fastest first. Both the single-host fleet
/// and the cluster iterate this — never a hard-coded `[Fast, Slow]` pair,
/// which is how Medium-tier grants used to leak on VM finish (they were
/// neither returned by `release_surplus` nor growable under pressure).
pub(crate) fn grant_kinds() -> [MemKind; 3] {
    MemKind::ALL
}

/// Bytes → simulated pages for tier `kind`. Fast and Slow floor at one
/// page — a machine or guest always has *some* of each, mirroring
/// `SimConfig::guest_frames_fast`/`_slow` — while Medium is genuinely
/// optional and maps zero bytes to zero pages.
pub(crate) fn tier_pages(cfg: &SimConfig, kind: MemKind, bytes: u64) -> u64 {
    let pages = bytes / cfg.scale / cfg.page_size;
    match kind {
        MemKind::Medium => pages,
        MemKind::Fast | MemKind::Slow => pages.max(1),
    }
}

/// The machine's tier sizes in simulated pages — the conservation target a
/// host's fair-share ledger is audited against.
pub(crate) fn machine_totals(cfg: &SimConfig) -> KindMap<u64> {
    KindMap::from_fn(|k| match k {
        MemKind::Fast => tier_pages(cfg, k, cfg.fast_bytes),
        MemKind::Medium => tier_pages(cfg, k, cfg.medium_bytes),
        MemKind::Slow => tier_pages(cfg, k, cfg.slow_bytes),
    })
}

/// One booted guest and its scheduling state.
pub(crate) struct VmState {
    pub(crate) id: GuestId,
    pub(crate) sim: SingleVmSim<AppWorkload>,
    pub(crate) min: KindMap<u64>,
    pub(crate) done: bool,
    /// Host-relative arrival offset: the co-scheduling key is
    /// `offset + sim.now()`, so a VM admitted mid-run sorts after the
    /// fleet's past. Zero for single-host fleets (all VMs boot at t=0).
    pub(crate) offset: Nanos,
    /// Fraction of resident pages re-dirtied per pre-copy round during an
    /// inter-host live migration — derived from the workload's write
    /// intensity and hot fraction at boot.
    pub(crate) dirty_rate: f64,
}

impl VmState {
    /// Builds and boot-balloons one guest: its frame space is its maximum
    /// reservation per tier, pages beyond the granted minimum start
    /// ballooned out, and its RNG stream derives from `seed_index` alone —
    /// the result is a pure function of the descriptor, safe to build on
    /// any [`Runner`] worker thread.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn boot(
        cfg: &SimConfig,
        policy: Policy,
        bw_share: f64,
        id: GuestId,
        seed_index: u64,
        setup: &VmSetup,
        min: KindMap<u64>,
        offset: Nanos,
    ) -> VmState {
        let vm_cfg = cfg
            .clone()
            .with_fast_bytes(setup.max_bytes[MemKind::Fast].max(cfg.page_size * cfg.scale))
            .with_slow_bytes(setup.max_bytes[MemKind::Slow].max(cfg.page_size * cfg.scale))
            .with_medium_bytes(setup.max_bytes[MemKind::Medium])
            .with_seed(cfg.seed.wrapping_add(seed_index.wrapping_mul(7919)));
        let workload = AppWorkload::new(setup.spec.clone(), cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(vm_cfg, policy, workload);
        sim.set_bandwidth_share(bw_share);
        for k in grant_kinds() {
            let max_pages = tier_pages(cfg, k, setup.max_bytes[k]);
            let ballooned = max_pages.saturating_sub(min[k]);
            let yielded = sim.yield_pages(k, ballooned);
            debug_assert_eq!(yielded, ballooned, "boot balloon must succeed");
        }
        let spec = &setup.spec;
        let dirty_rate = (spec.write_fraction.clamp(0.0, 1.0)
            * spec.hot_page_fraction.clamp(0.0, 1.0))
        .clamp(0.05, 0.75);
        VmState {
            id,
            sim,
            min,
            done: false,
            offset,
            dirty_rate,
        }
    }

    /// The co-scheduling key: host-relative simulated time.
    pub(crate) fn host_now(&self) -> Nanos {
        self.offset + self.sim.now()
    }
}

/// The per-host fleet mechanics: one fair-share ledger, the VM slots it
/// arbitrates, and the machine tier totals it conserves. `MultiVmSim`
/// wraps exactly one of these; a `Cluster` owns one per host, which is
/// what lets hosts step on separate [`Runner`] threads without sharing
/// ledger state.
pub(crate) struct FleetCore {
    pub(crate) fair: FairShare,
    pub(crate) vms: Vec<VmState>,
    /// Machine tier sizes (simulated pages) — the conservation target the
    /// fair-share ledger is audited against.
    pub(crate) totals: KindMap<u64>,
    /// Pages finished guests could not balloon back (pinned slab/net-buf
    /// residue of short yields). They stay granted — the ledger must keep
    /// agreeing with the kernels that own them — but are surfaced here
    /// rather than silently leaking from the free pool.
    pub(crate) stranded: u64,
}

impl FleetCore {
    pub(crate) fn new(share: SharePolicy, totals: KindMap<u64>) -> Self {
        FleetCore {
            fair: FairShare::new(share, totals),
            vms: Vec::new(),
            totals,
            stranded: 0,
        }
    }

    /// Live (not finished) VM count.
    pub(crate) fn live(&self) -> usize {
        self.vms.iter().filter(|v| !v.done).count()
    }

    /// Advances VM `i` one epoch. Returns `false` once it has finished,
    /// after releasing its surplus grant so the survivors can grow into it.
    pub(crate) fn step_vm(&mut self, i: usize) -> bool {
        let recoveries = self.vms[i].sim.recoveries();
        let alive = self.vms[i].sim.step();
        if self.vms[i].sim.recoveries() != recoveries {
            self.reconcile_reboot(i);
        }
        if !alive {
            self.vms[i].done = true;
            self.release_surplus(i);
            false
        } else {
            self.grow_if_pressured(i);
            true
        }
    }

    /// Re-inflates a guest's balloon after a crash-recovery reboot.
    ///
    /// [`SingleVmSim::recover`] builds a fresh kernel with its full tier
    /// reservations and an empty balloon — correct for a standalone VM,
    /// but in a fleet the fair-share ledger survived the crash (the
    /// memory never left the host), so the rebooted kernel must be
    /// squeezed back down to its granted allocation before the next
    /// audit compares the two.
    fn reconcile_reboot(&mut self, i: usize) {
        let alloc = self.fair.allocated(self.vms[i].id);
        for k in grant_kinds() {
            let vm = &mut self.vms[i];
            let owned = vm.sim.kernel().total_frames(k) - vm.sim.kernel().ballooned_pages(k);
            if owned > alloc[k] {
                vm.sim.yield_pages(k, owned - alloc[k]);
            }
        }
    }

    /// Dense co-scheduling: each step advances the live VM furthest behind
    /// in simulated time. Finished VMs leave the live-index list outright
    /// instead of being re-filtered on every step, so a mostly-done fleet
    /// scans only its stragglers. `live` stays in ascending index order,
    /// making the first minimum the lowest-index VM among ties — the same
    /// choice the full filtered scan made.
    pub(crate) fn drive_dense(&mut self, audited: bool, violations: &mut Vec<Violation>) {
        let mut live: Vec<usize> = (0..self.vms.len()).collect();
        while !live.is_empty() {
            let pos = live
                .iter()
                .enumerate()
                .min_by_key(|&(_, &i)| self.vms[i].sim.now())
                .map(|(p, _)| p)
                .expect("live is non-empty");
            let i = live[pos];
            if !self.step_vm(i) {
                live.remove(pos);
            }
            if audited {
                self.audit_ledger(violations);
            }
        }
    }

    /// Event co-scheduling: a min-heap keyed `(now, index)` replaces the
    /// per-step scan, so selecting the next VM costs `O(log live)` instead
    /// of `O(fleet)`. Keys go stale when a *donor*'s clock advances while
    /// it balloons pages to a neighbour; since clocks only move forward, a
    /// stale key always pops **early**, never late, and is lazily re-keyed
    /// at its true time. Every entry's key is therefore a lower bound on
    /// its VM's clock, so the first *verified* pop is exactly the dense
    /// scan's first minimum (lowest index among time ties — `Reverse`
    /// orders `(t, i)` tuples lexicographically). Finished VMs simply
    /// never re-enter the heap.
    pub(crate) fn drive_event(&mut self, audited: bool, violations: &mut Vec<Violation>) {
        let mut heap: BinaryHeap<Reverse<(Nanos, usize)>> = (0..self.vms.len())
            .map(|i| Reverse((self.vms[i].sim.now(), i)))
            .collect();
        while let Some(Reverse((t, i))) = heap.pop() {
            let now = self.vms[i].sim.now();
            if t != now {
                heap.push(Reverse((now, i)));
                continue;
            }
            if self.step_vm(i) {
                heap.push(Reverse((self.vms[i].sim.now(), i)));
            }
            if audited {
                self.audit_ledger(violations);
            }
        }
    }

    /// Bounded event co-scheduling for cluster rounds: advances every live
    /// VM whose host-relative clock sits before `deadline`, soonest first
    /// (lowest index among ties), with the same lazy re-keying as
    /// [`FleetCore::drive_event`]. Returns epochs stepped. Keys use
    /// [`VmState::host_now`] so a VM admitted mid-run sorts after the
    /// host's past rather than starving the incumbents.
    pub(crate) fn step_until(
        &mut self,
        deadline: Nanos,
        audited: bool,
        violations: &mut Vec<Violation>,
    ) -> u64 {
        let mut heap: BinaryHeap<Reverse<(Nanos, usize)>> = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.done)
            .map(|(i, v)| Reverse((v.host_now(), i)))
            .collect();
        let mut epochs = 0;
        while let Some(Reverse((t, i))) = heap.pop() {
            let now = self.vms[i].host_now();
            if t != now {
                heap.push(Reverse((now, i)));
                continue;
            }
            if t >= deadline {
                break;
            }
            epochs += 1;
            if self.step_vm(i) {
                heap.push(Reverse((self.vms[i].host_now(), i)));
            }
            if audited {
                self.audit_ledger(violations);
            }
        }
        epochs
    }

    /// One pass of the machine-level conservation audit: per-guest grants
    /// vs. what each kernel owns, and grants + free pool vs. tier totals.
    pub(crate) fn audit_ledger(&self, out: &mut Vec<Violation>) {
        let guests: Vec<(GuestId, &GuestKernel)> =
            self.vms.iter().map(|v| (v.id, v.sim.kernel())).collect();
        out.extend(audit_fair_share(&self.fair, &guests, &self.totals));
    }

    /// A finished VM returns everything above its minimum so others can
    /// use it — on *every* tier it holds grants on.
    ///
    /// When a yield comes back short (the guest's remaining pages are
    /// pinned slab/net-buf objects the balloon cannot take and the swap
    /// path cannot evict), the un-yielded residue **stays granted**: the
    /// guest's kernel still owns those frames, so releasing the grant
    /// anyway would desynchronize ledger from kernel and trip
    /// `audit_fair_share`'s guest-view check. The residue is counted in
    /// [`FleetCore::stranded`], returned to the caller, and the
    /// ledger/kernel agreement is asserted per tier so a partial yield can
    /// never drift the audit.
    pub(crate) fn release_surplus(&mut self, i: usize) -> u64 {
        let id = self.vms[i].id;
        let mut residue = 0;
        for k in grant_kinds() {
            let held = self.fair.allocated(id)[k];
            let extra = held.saturating_sub(self.vms[i].min[k]);
            if extra > 0 {
                let yielded = self.vms[i].sim.yield_pages(k, extra);
                debug_assert!(yielded <= extra, "guest ballooned more than asked");
                let returned = yielded.min(extra);
                self.fair.release(id, k, returned);
                residue += extra - returned;
                // Reconcile: grant and kernel ownership must agree on this
                // tier even after a partial yield.
                debug_assert_eq!(
                    self.fair.allocated(id)[k],
                    self.vms[i].sim.kernel().total_frames(k)
                        - self.vms[i].sim.kernel().ballooned_pages(k),
                    "ledger/kernel drift on {k} after releasing {returned} of {extra}",
                );
            }
        }
        self.stranded += residue;
        residue
    }

    pub(crate) fn grow_if_pressured(&mut self, i: usize) {
        for kind in grant_kinds() {
            let wants_kind = match kind {
                MemKind::Fast => self.vms[i].sim.policy() != Policy::SlowMemOnly,
                _ => true,
            };
            if !wants_kind || self.vms[i].sim.kernel().total_frames(kind) == 0 {
                continue;
            }
            let swapped = self.vms[i].sim.swapped_pages();
            let pressured = self.vms[i].sim.kernel().free_fraction(kind) < GROW_THRESHOLD
                || (kind == MemKind::Slow && swapped > 0);
            if !pressured {
                continue;
            }
            // A swapping guest asks for its real deficit, not a polite sip
            // — this is what lets a memory-hungry VM balloon a neighbour
            // all the way down under max-min (§5.5).
            let want = if kind == MemKind::Slow {
                GROW_CHUNK.max(swapped)
            } else {
                GROW_CHUNK
            };
            self.request_pages(i, kind, want);
        }
    }

    pub(crate) fn request_pages(&mut self, i: usize, kind: MemKind, pages: u64) {
        let id = self.vms[i].id;
        // Clamp to what the guest can still deflate.
        let ballooned = self.vms[i].sim.kernel().ballooned_pages(kind);
        let want = pages.min(ballooned);
        if want == 0 {
            return;
        }
        let mut demand = KindMap::default();
        demand[kind] = want;
        match self.fair.request(id, demand) {
            Grant::Granted => {
                self.vms[i].sim.accept_pages(kind, want);
            }
            Grant::NeedsReclaim(plan) => {
                let mut reclaimed_total = 0;
                for (donor, k, n) in plan {
                    let di = self
                        .vms
                        .iter()
                        .position(|v| v.id == donor)
                        .expect("donor registered");
                    let got = self.vms[di].sim.yield_pages(k, n);
                    if got > 0 {
                        self.fair.reclaim(donor, k, got);
                        reclaimed_total += got;
                    }
                }
                if reclaimed_total > 0 {
                    let grant = want.min(reclaimed_total);
                    let mut d = KindMap::default();
                    d[kind] = grant;
                    if matches!(self.fair.request(id, d), Grant::Granted) {
                        self.vms[i].sim.accept_pages(kind, grant);
                    }
                }
            }
            Grant::Denied => {}
        }
    }
}

/// The multi-VM engine.
pub struct MultiVmSim {
    cfg: SimConfig,
    core: FleetCore,
    /// Ledger-audit violations accumulated by step-driven runs (see
    /// [`MultiVmSim::step_fleet`]); drained by `into_results`.
    violations: Vec<Violation>,
}

impl MultiVmSim {
    /// Builds a co-execution: the machine has `cfg.fast_bytes` /
    /// `cfg.slow_bytes` (and optionally `cfg.medium_bytes`) total; each VM
    /// boots with its reserved minimum usable (the rest of its maximum
    /// ballooned out) and runs `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the reserved minima oversubscribe the machine.
    pub fn new(cfg: SimConfig, share: SharePolicy, policy: Policy, setups: Vec<VmSetup>) -> Self {
        MultiVmSim::new_with_jobs(cfg, share, policy, setups, 1)
    }

    /// As [`MultiVmSim::new`], building and boot-ballooning the guests on
    /// `jobs` worker threads.
    ///
    /// Registration with the fair-share ledger stays sequential in setup
    /// order — it is shared state. Everything after it is VM-local: each
    /// guest derives its RNG stream from its own descriptor seed, builds
    /// its kernel against its own maximum reservation, and inflates its
    /// boot balloon without touching the ledger. The [`Runner`]'s
    /// descriptor-order merge therefore makes the fleet byte-identical for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the reserved minima oversubscribe the machine.
    pub fn new_with_jobs(
        cfg: SimConfig,
        share: SharePolicy,
        policy: Policy,
        setups: Vec<VmSetup>,
        jobs: usize,
    ) -> Self {
        let totals = machine_totals(&cfg);
        let mut core = FleetCore::new(share, totals);
        let bw_share = 1.0 / setups.len().max(1) as f64;
        let mins: Vec<KindMap<u64>> = setups
            .iter()
            .map(|s| KindMap::from_fn(|k| tier_pages(&cfg, k, s.min_bytes[k]).min(totals[k])))
            .collect();
        for (i, min) in mins.iter().enumerate() {
            core.fair.register(GuestId(i as u32), *min);
        }
        let items: Vec<(usize, VmSetup, KindMap<u64>)> = setups
            .into_iter()
            .zip(mins)
            .enumerate()
            .map(|(i, (s, m))| (i, s, m))
            .collect();
        let cfg_ref = &cfg;
        core.vms = Runner::new(jobs).run(items, |(i, setup, min)| {
            VmState::boot(
                cfg_ref,
                policy,
                bw_share,
                GuestId(i as u32),
                i as u64,
                &setup,
                min,
                Nanos::ZERO,
            )
        });
        MultiVmSim {
            cfg,
            core,
            violations: Vec::new(),
        }
    }

    /// Runs every VM to completion, co-scheduled by simulated time, and
    /// returns their reports in setup order.
    ///
    /// # Panics
    ///
    /// With an explicit `SimConfig::audit` level set, panics if the run
    /// produced any violation — in the fair-share ledger or inside any
    /// guest's own sanitizer. Use [`MultiVmSim::run_audited`] to inspect
    /// violations without panicking.
    pub fn run(self) -> Vec<RunReport> {
        let audit = self.cfg.audit;
        let (reports, violations) = self.run_audited();
        if audit != AuditLevel::Off && !violations.is_empty() {
            let mut msg = format!(
                "invariant sanitizer ({} level) found {} violation(s) in multi-VM run:",
                audit,
                violations.len(),
            );
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
        reports
    }

    /// As [`MultiVmSim::run`], additionally returning every violation found
    /// (always empty when `SimConfig::effective_audit` is `Off`): the
    /// machine-level ledger conservation checks run after each scheduling
    /// step, followed by each guest's own collected violations.
    pub fn run_audited(mut self) -> (Vec<RunReport>, Vec<Violation>) {
        let audited = self.cfg.effective_audit().is_enabled();
        let mut violations = std::mem::take(&mut self.violations);
        match self.cfg.sched {
            SchedMode::Dense => self.core.drive_dense(audited, &mut violations),
            SchedMode::Event => self.core.drive_event(audited, &mut violations),
        }
        let reports = self.core.vms.iter().map(|v| v.sim.report()).collect();
        for vm in &self.core.vms {
            violations.extend_from_slice(vm.sim.violations());
        }
        (reports, violations)
    }

    /// Total simulated time of the longest-running VM, or `None` for an
    /// empty report set.
    ///
    /// Returning `Option` (rather than the old `Nanos::ZERO`) keeps the
    /// degenerate case out of downstream ratio helpers: a zero makespan
    /// fed into `RunReport::gain_percent_vs`-style comparisons reads as a
    /// *real* instantaneous runtime and silently produces 0% gains, which
    /// is indistinguishable from "no improvement".
    pub fn makespan(reports: &[RunReport]) -> Option<Nanos> {
        reports.iter().map(|r| r.runtime).max()
    }

    /// Convenience accessor for the shared configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Pages finished guests could not balloon back (pinned residue of
    /// short yields) — still granted, still owned by their kernels, but
    /// unavailable to survivors. See [`FleetCore::release_surplus`].
    pub fn stranded_pages(&self) -> u64 {
        self.core.stranded
    }
}


impl MultiVmSim {
    /// One scheduling step of the fleet: advances the live VM furthest
    /// behind in simulated time (ties to the lowest index) by one epoch —
    /// the dense scheduler's selection rule, which the event scheduler
    /// provably matches. Returns `false` once every VM has finished.
    ///
    /// This is the checkpointable driver: a loop over `step_fleet`
    /// produces the same fleet as [`MultiVmSim::run`], and the fleet can
    /// be [saved](MultiVmSim::save) between any two steps. Ledger-audit
    /// violations accumulate internally and come back from
    /// [`MultiVmSim::into_results`].
    pub fn step_fleet(&mut self) -> bool {
        let audited = self.cfg.effective_audit().is_enabled();
        let Some(i) = (0..self.core.vms.len())
            .filter(|&i| !self.core.vms[i].done)
            .min_by_key(|&i| self.core.vms[i].sim.now())
        else {
            return false;
        };
        self.core.step_vm(i);
        if audited {
            let mut violations = std::mem::take(&mut self.violations);
            self.core.audit_ledger(&mut violations);
            self.violations = violations;
        }
        true
    }

    /// Reports in setup order plus every violation found — the surface
    /// [`MultiVmSim::run_audited`] returns, for step-driven
    /// (checkpointable) runs.
    pub fn into_results(mut self) -> (Vec<RunReport>, Vec<Violation>) {
        let reports = self.core.vms.iter().map(|v| v.sim.report()).collect();
        let mut violations = std::mem::take(&mut self.violations);
        for vm in &self.core.vms {
            violations.extend_from_slice(vm.sim.violations());
        }
        (reports, violations)
    }

    /// Serializes the complete fleet — configuration, fair-share ledger,
    /// every VM engine and the accumulated violations — under a
    /// [`LAYER_FLEET`](crate::snapshot::LAYER_FLEET) header.
    pub fn save(&self) -> Vec<u8> {
        use hetero_sim::snap::Snap;
        let mut w = hetero_sim::snap::SnapWriter::new();
        hetero_sim::snap::write_header(&mut w, crate::snapshot::LAYER_FLEET);
        self.cfg.snap(&mut w);
        self.core.snap(&mut w);
        self.violations.snap(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a fleet from [`MultiVmSim::save`] bytes; the resumed run
    /// continues byte-identically. Fails loudly on a bad magic, version
    /// or layer, on truncation, and on trailing bytes.
    pub fn restore(bytes: &[u8]) -> Result<Self, hetero_sim::snap::SnapshotError> {
        use hetero_sim::snap::Snap;
        let mut r = hetero_sim::snap::SnapReader::new(bytes);
        hetero_sim::snap::read_header(&mut r, crate::snapshot::LAYER_FLEET)?;
        let fleet = MultiVmSim {
            cfg: Snap::unsnap(&mut r)?,
            core: Snap::unsnap(&mut r)?,
            violations: Snap::unsnap(&mut r)?,
        };
        r.finish()?;
        Ok(fleet)
    }
}

hetero_sim::impl_snap!(struct VmSetup { spec, min_bytes, max_bytes });

hetero_sim::impl_snap!(struct VmState { id, sim, min, done, offset, dirty_rate });

hetero_sim::impl_snap!(struct FleetCore { fair, vms, totals, stranded });

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_workloads::apps;
    use hetero_workloads::{AccessMix, Footprint};

    const GB: u64 = 1 << 30;
    const MB: u64 = 1 << 20;

    fn quick(spec: WorkloadSpec) -> WorkloadSpec {
        let mut s = spec;
        s.total_instructions /= 10;
        s
    }

    fn host_cfg() -> SimConfig {
        SimConfig::paper_default()
            .with_fast_bytes(4 * GB)
            .with_slow_bytes(8 * GB)
            .with_seed(11)
    }

    fn paper_setups() -> Vec<VmSetup> {
        vec![
            // Graphchi VM: <2*1GB fast, 1*2.5GB slow>, growable.
            VmSetup::new(quick(apps::graphchi()), GB, 5 * GB / 2, 2 * GB, 6 * GB),
            // Metis VM: <2*3GB fast, 1*2.5GB slow>, memory-hungry.
            VmSetup::new(quick(apps::metis()), 3 * GB, 5 * GB / 2, 4 * GB, 8 * GB),
        ]
    }

    #[test]
    fn both_vms_complete_under_drf() {
        let sim = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        );
        let reports = sim.run();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.epochs > 0, "{} never ran", r.app);
            assert!(!r.runtime.is_zero());
        }
    }

    #[test]
    fn contention_slows_vms_down_vs_solo() {
        let cfg = host_cfg();
        // Solo reference: the VM's *maximum* reservation with the whole
        // memory bandwidth to itself — sharing can never beat this.
        let solo = crate::engine::run_app(
            &cfg.clone().with_fast_bytes(2 * GB).with_slow_bytes(6 * GB),
            Policy::HeteroCoordinated,
            quick(apps::graphchi()),
        );
        let reports = MultiVmSim::new(
            cfg,
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        let shared = &reports[0];
        assert_eq!(shared.app, "Graphchi");
        assert!(
            shared.runtime >= solo.runtime,
            "sharing must cost something: shared {} vs solo {}",
            shared.runtime,
            solo.runtime
        );
    }

    #[test]
    fn drf_protects_the_low_share_vm_better_than_maxmin() {
        let drf = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        let maxmin = MultiVmSim::new(
            host_cfg(),
            SharePolicy::MaxMin,
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        // Graphchi (the low-dominant-share VM) should do no materially
        // worse under DRF (quick-mode runs carry some noise; the full
        // separation is shown by the Fig 13 experiment).
        assert!(
            drf[0].runtime <= maxmin[0].runtime.mul_f64(1.1),
            "DRF {} vs max-min {}",
            drf[0].runtime,
            maxmin[0].runtime
        );
    }

    #[test]
    fn makespan_is_the_longest_runtime() {
        let reports = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroLru,
            paper_setups(),
        )
        .run();
        let m = MultiVmSim::makespan(&reports).expect("two reports");
        assert!(reports.iter().all(|r| r.runtime <= m));
        assert!(reports.iter().any(|r| r.runtime == m));
    }

    #[test]
    fn makespan_of_nothing_is_none() {
        assert_eq!(MultiVmSim::makespan(&[]), None);
    }

    #[test]
    fn dense_and_event_schedulers_are_byte_identical() {
        let run = |sched: SchedMode| {
            MultiVmSim::new(
                host_cfg().with_sched(sched),
                SharePolicy::paper_drf(),
                Policy::HeteroCoordinated,
                paper_setups(),
            )
            .run()
        };
        let dense = run(SchedMode::Dense);
        let event = run(SchedMode::Event);
        assert_eq!(dense.len(), event.len());
        for (d, e) in dense.iter().zip(event.iter()) {
            assert_eq!(d.to_json(), e.to_json(), "schedulers must not diverge");
        }
    }

    #[test]
    fn parallel_boot_matches_sequential_boot() {
        let boot = |jobs: usize| {
            MultiVmSim::new_with_jobs(
                host_cfg(),
                SharePolicy::paper_drf(),
                Policy::HeteroCoordinated,
                paper_setups(),
                jobs,
            )
            .run()
        };
        let seq = boot(1);
        let par = boot(4);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_json(), b.to_json(), "thread count must not perturb the fleet");
        }
    }

    #[test]
    fn audited_run_matches_unaudited_and_is_clean() {
        let plain = MultiVmSim::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run();
        let (audited, violations) = MultiVmSim::new(
            host_cfg().with_audit(hetero_faults::AuditLevel::Epoch),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            paper_setups(),
        )
        .run_audited();
        assert_eq!(violations, Vec::new(), "multi-VM stack must audit clean");
        for (a, b) in plain.iter().zip(audited.iter()) {
            assert_eq!(a.to_json(), b.to_json(), "audit must not perturb runs");
        }
    }

    /// Regression for the `[Fast, Slow]` hard-coding: a finished VM's
    /// Medium-tier grant must come back to the free pool exactly like the
    /// other tiers (and be growable under pressure in the first place).
    #[test]
    fn finished_vm_returns_medium_grant() {
        let cfg = host_cfg().with_medium_bytes(2 * GB);
        let setups = vec![
            VmSetup::new(quick(apps::graphchi()), GB, 2 * GB, 2 * GB, 4 * GB)
                .with_medium(GB / 2, GB),
            VmSetup::new(quick(apps::metis()), GB, 2 * GB, 2 * GB, 4 * GB)
                .with_medium(GB / 2, GB),
        ];
        let mut sim = MultiVmSim::new(
            cfg,
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            setups,
        );
        let id = sim.core.vms[0].id;
        let min_med = sim.core.vms[0].min[MemKind::Medium];
        assert!(min_med > 0, "three-tier setup must register a Medium minimum");
        // Grow vm0's Medium grant above its reserved minimum through the
        // ledger path the fleet itself uses...
        sim.core.request_pages(0, MemKind::Medium, 64);
        let grown = sim.core.fair.allocated(id)[MemKind::Medium];
        assert!(grown > min_med, "Medium grant must be growable ({grown} vs {min_med})");
        // ...then finish it: the surplus must return to the free pool.
        sim.core.vms[0].done = true;
        sim.core.release_surplus(0);
        assert_eq!(
            sim.core.fair.allocated(id)[MemKind::Medium],
            min_med,
            "finished VM must return its Medium surplus"
        );
        let mut violations = Vec::new();
        sim.core.audit_ledger(&mut violations);
        assert_eq!(violations, Vec::new(), "ledger must audit clean after release");
    }

    /// A spec whose footprint is dominated by pinned slab objects: the
    /// balloon cannot take resident slab pages and the swap path only
    /// evicts anonymous heap, so a finished VM's yield comes back short.
    fn slab_pinned_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "SlabPinned",
            mpki: 5.0,
            cpi_base: 1.0,
            mlp: 2.0,
            threads: 1.0,
            clock_ghz: 2.67,
            total_instructions: 2_000_000_000,
            instructions_per_epoch: 50_000_000,
            footprint: Footprint {
                heap: 16 * MB,
                page_cache: 0,
                buffer_cache: 0,
                slab: 400 * MB,
                net_buf: 0,
            },
            access_mix: AccessMix {
                heap: 0.2,
                page_cache: 0.0,
                buffer_cache: 0.0,
                slab: 0.8,
                net_buf: 0.0,
            },
            hot_wss_bytes: 32 * MB,
            hot_access_fraction: 0.8,
            hot_page_fraction: 0.25,
            fresh_hot_fraction: 0.5,
            write_fraction: 0.3,
            heap_churn_per_sec: 0.0,
            io_churn_per_sec: 0.0,
            kernel_buf_churn_per_sec: 0.0,
            ramp_fraction: 0.5,
        }
    }

    /// Regression for the short-yield residue: when a finished VM cannot
    /// balloon its full surplus back, the un-yielded pages stay granted
    /// (they are still frame-backed in the guest), the ledger keeps
    /// agreeing with the kernel, and the residue is counted as stranded
    /// instead of silently leaking from the free pool.
    #[test]
    fn short_yield_leaves_ledger_consistent() {
        let cfg = SimConfig::paper_default()
            .with_fast_bytes(2 * GB)
            .with_slow_bytes(4 * GB)
            .with_seed(11);
        let setups = vec![VmSetup::new(
            slab_pinned_spec(),
            32 * MB,
            64 * MB,
            GB,
            2 * GB,
        )];
        let mut sim = MultiVmSim::new(
            cfg,
            SharePolicy::MaxMin,
            Policy::HeteroCoordinated,
            setups,
        );
        let mut violations = Vec::new();
        sim.core.drive_event(false, &mut violations);
        let vm = &sim.core.vms[0];
        assert!(vm.done, "workload must run to completion");
        assert!(
            sim.core.stranded > 0,
            "slab-pinned surplus must come back short and be counted"
        );
        // The residue stays granted *and* frame-backed: ledger == kernel
        // ownership on every tier.
        let alloc = sim.core.fair.allocated(vm.id);
        for k in grant_kinds() {
            let owned =
                vm.sim.kernel().total_frames(k) - vm.sim.kernel().ballooned_pages(k);
            assert_eq!(alloc[k], owned, "ledger/kernel drift on {k}");
        }
        assert!(
            alloc.total() > vm.min.total(),
            "the stranded residue should sit above the reserved minimum"
        );
        sim.core.audit_ledger(&mut violations);
        assert_eq!(violations, Vec::new(), "short yield must not drift the audit");
    }
}
