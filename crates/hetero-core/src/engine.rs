//! The single-VM simulation engine.
//!
//! Drives one guest kernel under one [`Policy`] against one workload,
//! epoch by epoch:
//!
//! 1. apply the epoch's page operations (frees/releases, then allocations,
//!    each placed by the policy's tier preference),
//! 2. price the epoch's wall time from placement: LLC-modelled misses split
//!    across tiers by heat-weighted residency, latency plus bandwidth
//!    dilation (fixed-point),
//! 3. run the policy's management machinery — statistics windows, LRU aging
//!    and watermark demotion, hotness scans, migrations — charging every
//!    scan, TLB flush, page walk and page copy at Table 6 / Fig 8 rates.
//!
//! The result is a [`RunReport`]; slowdowns and gains come from comparing
//! reports across policies, exactly as the paper compares runs.

use hetero_faults::{AuditLevel, EpochCosts, FaultInjector, FaultKind, Sanitizer, Violation};
use hetero_guest::kernel::{AllocFailed, GuestConfig, MigrateError};
use hetero_guest::page::{Gfn, Page, PageFlags, PageType, RMap};
use hetero_guest::pagecache::FileId;
use hetero_guest::{GuestKernel, SlabClass};
use hetero_mem::{MemKind, NodeParams, PersistDomain};
use hetero_sim::telemetry::{SpanId, Telemetry};
use hetero_sim::{Clock, CostCategory, EventKind, EventLog, Nanos, SimRng};
use hetero_workloads::spec::{EpochDemand, Workload};
use hetero_workloads::AppWorkload;

use crate::adaptive::IntervalController;
use crate::config::{SchedMode, SimConfig};
use crate::eventq::{EngineEvent, EventQueue};
use crate::metrics::RunReport;
use crate::policy::{Policy, Tracking};
use hetero_vmm::hotness::ScanOutcome;
use hetero_vmm::HotnessTracker;

/// A tier-preference chain (small, copyable — avoids borrowing the engine
/// while the kernel is borrowed mutably). Equality lets the bulk dispatch
/// run-length-group consecutive allocations with the same placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TierChain {
    kinds: [MemKind; 3],
    len: u8,
}

impl TierChain {
    fn new(kinds: &[MemKind]) -> Self {
        let mut arr = [MemKind::Slow; 3];
        arr[..kinds.len()].copy_from_slice(kinds);
        TierChain {
            kinds: arr,
            len: kinds.len() as u8,
        }
    }

    fn as_slice(&self) -> &[MemKind] {
        &self.kinds[..self.len as usize]
    }
}

/// File identity used for page-cache traffic.
const CACHE_FILE: FileId = FileId(1);
/// File identity used for buffer-cache traffic.
const BUFFER_FILE: FileId = FileId(2);
/// skbuff objects per network-buffer page (512 B objects in 4 KiB pages).
const NETBUF_OBJS_PER_PAGE: u64 = 8;
/// fs-metadata objects per slab page (256 B objects in 4 KiB pages).
const SLAB_OBJS_PER_PAGE: u64 = 16;
/// Fraction of NUMA-preferred allocations that land CPU-locally on the
/// SlowMem node (first-touch locality noise of stock NUMA management).
const NUMA_LOCAL_NOISE: f64 = 0.3;
/// Per-page bookkeeping cost of LRU aging.
const LRU_AGE_COST: Nanos = Nanos::from_nanos(150);
/// Slack (fraction of the resident target) that lazily reclaimed I/O pages
/// may occupy before the reclaim storm fires (§3.3's lazy baseline).
const LAZY_RECLAIM_SLACK: f64 = 0.25;
/// Disk service time for swapping one *simulated* page in (multi-VM
/// overcommit only — single-VM runs never swap).
const SWAP_SERVICE: Nanos = Nanos::from_micros(100);
/// Write heat above which an NVM-resident page counts as continuously
/// re-dirtied for the persistence domain: its stores outrun any write-behind
/// flusher, so it never ages clean. Matches the `> 50` write-hot threshold
/// `assign_heap_write_heats` assigns (read-mostly pages get `heat / 8 ≤ 31`).
const PERSIST_WRITE_HOT: u8 = 50;

/// One application run in progress.
pub struct SingleVmSim<W: Workload = AppWorkload> {
    cfg: SimConfig,
    policy: Policy,
    workload: W,
    kernel: GuestKernel,
    rng: SimRng,
    clock: Clock,
    tracker: HotnessTracker,
    /// Reused scan-outcome buffers (hot/cold candidate vectors keep their
    /// capacity across the run's scans instead of reallocating).
    scan_scratch: ScanOutcome,
    interval: IntervalController,
    next_scan: Nanos,
    next_window: Nanos,
    prioritized: Option<PageType>,
    fast_params: NodeParams,
    slow_params: NodeParams,
    medium_params: Option<NodeParams>,
    /// Fastest-first chain over the configured tiers.
    chain_fast_first: TierChain,
    /// Slow-only chain (no FastMem preference).
    chain_slow_only: TierChain,
    /// Slowest-first chain (lazy placement).
    chain_slow_first: TierChain,
    // Live-object registries (identities stable across migration).
    heap_chunks: std::collections::VecDeque<(u64, u64)>,
    /// Hot heap pages in allocation order (as virtual pages — stable across
    /// migration). Cooling pops from the front: the *oldest* hot data goes
    /// cold first, preserving the allocation-recency ↔ hotness correlation
    /// that makes on-demand placement effective (§2.2 Observation 3).
    hot_vpns: std::collections::VecDeque<u64>,
    /// Next instant the guest LRU may run a demotion batch.
    next_demote: Nanos,
    /// Pages the previous coordinated scan actually migrated (drives the
    /// yield-aware interval backoff).
    last_scan_yield: u64,
    /// Resume cursor (virtual page) for batched A/D harvest sweeps
    /// ([`Tracking::AccessBit`]): the next sweep continues where the last
    /// one ran out of budget, wrapping over the tracked ranges.
    ab_cursor: u64,
    /// Harvest scratch for A/D sweeps (`(gfn, accessed, dirty)` per
    /// visited mapped PTE); reused across scans, never snapshotted —
    /// always drained within one sweep.
    ab_harvest: Vec<(Gfn, bool, bool)>,
    cache_next: u64,
    cache_live: std::collections::VecDeque<u64>,
    cache_lazy: std::collections::VecDeque<u64>,
    buffer_next: u64,
    buffer_live: std::collections::VecDeque<u64>,
    buffer_lazy: std::collections::VecDeque<u64>,
    // Accumulators.
    misses_total: f64,
    epoch_misses: f64,
    /// Store misses served by the slow tier (endurance proxy, §4.3).
    slow_writes: f64,
    /// Heap pages pushed to disk by balloon pressure (multi-VM overcommit).
    swapped_heap: u64,
    /// Fraction of each node's bandwidth available to this VM (shared-host
    /// contention in multi-VM runs).
    bw_share: f64,
    scans: u64,
    scanned_pages: u64,
    epochs: u64,
    done: bool,
    /// Optional trace of what the run did (see `SimConfig::trace_events`).
    events: Option<EventLog>,
    /// Optional metrics/span sink (see `SimConfig::telemetry`). Purely
    /// observational: it never draws randomness or charges simulated time,
    /// so enabling it cannot change a run's results.
    telemetry: Option<Telemetry>,
    /// Optional deterministic fault injector (see `set_fault_injector`).
    injector: Option<FaultInjector>,
    /// FastMem is treated as unavailable this epoch (injected allocation
    /// failure): placement degrades to the slower tiers instead of failing.
    degraded: bool,
    /// Throttle multiplier from an active injected latency storm.
    storm_factor: f64,
    /// Invariant violations found by the per-step auditor
    /// (`SimConfig::audit_invariants`).
    violations: Vec<Violation>,
    /// The layered sanitizer, present when `SimConfig::effective_audit`
    /// is not `Off`. Observational only: it never draws randomness,
    /// charges the clock, or mutates guest state.
    sanitizer: Option<Sanitizer>,
    /// The engine's own running tally of migrations it successfully
    /// requested (every `charge_migration` call site). The sanitizer's
    /// differential oracle demands this equals `kernel.migrations` after
    /// every epoch — the engine may never charge for a migration the
    /// kernel didn't perform, nor the kernel move a page unbilled.
    migrations_tallied: u64,
    /// NVM persistence domain tracking per-frame flush state
    /// (`SimConfig::persist`). `None` when the flush policy is `Off`: in
    /// that mode the engine draws no extra randomness, charges no flush
    /// traffic and emits no persistence telemetry, so every export stays
    /// byte-identical to a build without the subsystem.
    persist: Option<PersistDomain>,
    /// Deadline-ordered timer queue driving [`SchedMode::Event`] dispatch.
    /// Unused (empty, zero-cost) under [`SchedMode::Dense`].
    timerq: EventQueue,
    /// Epochs whose management point had nothing due and no cold-ledger
    /// pressure, so the whole management phase was skipped.
    epochs_skipped: u64,
    /// Pages deactivated by LRU aging across the run (lazy cold-ledger
    /// walks and dense fallbacks both count here).
    aging_touches: u64,
    /// Scratch: frames of the most recent heap chunk, in VPN order
    /// (capacity reused across epochs).
    heap_gfns: Vec<Gfn>,
    /// Crash injected at the top of this epoch, consumed by `step` before
    /// any guest work runs.
    pending_crash: Option<FaultKind>,
    /// Crash→recover cycles performed so far.
    recoveries: u64,
    /// Frames reconstructed from surviving NVM across all recoveries.
    recovered_frames: u64,
    /// Frames lost to crashes: volatile-tier residents plus torn NVM writes.
    lost_frames: u64,
}

impl<W: Workload> SingleVmSim<W> {
    /// Prepares a run. The guest's tier reservations come from `cfg`;
    /// `FastMem-only` gets an effectively unlimited fast tier.
    pub fn new(cfg: SimConfig, policy: Policy, workload: W) -> Self {
        let medium_frames = match policy {
            Policy::FastMemOnly => 0,
            _ => cfg.guest_frames_medium(),
        };
        let mut kernel = GuestKernel::new(Self::guest_config(&cfg, policy));
        // The cold-page ledger lets LRU aging walk only the active lists
        // (and lets event dispatch prove an epoch's aging is a no-op)
        // instead of recounting the heap densely every epoch.
        kernel.configure_cold_ledger(cfg.lru_cold_heat);
        // A named device profile resolves each populated tier's latency and
        // read/write bandwidth from the registry; otherwise the Table-3
        // throttle factors apply (with the optional `nvm_slow` store
        // asymmetry). A three-tier profile's medium spec is only consulted
        // when `medium_bytes` actually populates the tier; a two-tier
        // profile under a three-tier capacity config keeps the throttle-
        // derived medium parameters.
        let profile_spec = cfg.tier_profile.map(hetero_mem::TierProfile::spec);
        let fast_params = match &profile_spec {
            Some(spec) => spec.fast.node_params(MemKind::Fast, cfg.fast_bytes.max(1)),
            None => NodeParams::new(MemKind::Fast, cfg.fast_bytes.max(1), cfg.fast_throttle),
        };
        let slow_params = match &profile_spec {
            Some(spec) => spec.slow.node_params(MemKind::Slow, cfg.slow_bytes.max(1)),
            None if cfg.nvm_slow => {
                NodeParams::nvm_like(MemKind::Slow, cfg.slow_bytes.max(1), cfg.slow_throttle)
            }
            None => NodeParams::new(MemKind::Slow, cfg.slow_bytes.max(1), cfg.slow_throttle),
        };
        let medium_params = (medium_frames > 0).then(|| {
            match profile_spec.as_ref().and_then(|s| s.tier(MemKind::Medium)) {
                Some(spec) => spec.node_params(MemKind::Medium, cfg.medium_bytes.max(1)),
                None => {
                    NodeParams::new(MemKind::Medium, cfg.medium_bytes.max(1), cfg.medium_throttle)
                }
            }
        });
        let (chain_fast_first, chain_slow_only, chain_slow_first) = if medium_frames > 0 {
            (
                TierChain::new(&[MemKind::Fast, MemKind::Medium, MemKind::Slow]),
                TierChain::new(&[MemKind::Slow, MemKind::Medium]),
                TierChain::new(&[MemKind::Slow, MemKind::Medium, MemKind::Fast]),
            )
        } else {
            (
                TierChain::new(&[MemKind::Fast, MemKind::Slow]),
                TierChain::new(&[MemKind::Slow]),
                TierChain::new(&[MemKind::Slow, MemKind::Fast]),
            )
        };
        let interval = IntervalController::new(
            cfg.scan_interval,
            cfg.adaptive_bounds.0,
            cfg.adaptive_bounds.1,
        );
        let mut sim = SingleVmSim {
            rng: SimRng::seed_from(cfg.seed),
            clock: Clock::new(),
            // Threshold 1: a page is promotion-hot when its access bit was
            // found set on the last visit — HeteroVisor promotes on recent
            // reference, and batched sweeps visit each page rarely.
            tracker: HotnessTracker::new(1),
            scan_scratch: ScanOutcome::default(),
            interval,
            next_scan: cfg.scan_interval,
            next_window: cfg.stats_window,
            prioritized: None,
            fast_params,
            slow_params,
            medium_params,
            chain_fast_first,
            chain_slow_only,
            chain_slow_first,
            heap_chunks: Default::default(),
            hot_vpns: Default::default(),
            next_demote: Nanos::ZERO,
            last_scan_yield: u64::MAX,
            ab_cursor: 0,
            ab_harvest: Vec::new(),
            cache_next: 0,
            cache_live: Default::default(),
            cache_lazy: Default::default(),
            buffer_next: 0,
            buffer_live: Default::default(),
            buffer_lazy: Default::default(),
            misses_total: 0.0,
            epoch_misses: 0.0,
            slow_writes: 0.0,
            swapped_heap: 0,
            bw_share: 1.0,
            scans: 0,
            scanned_pages: 0,
            epochs: 0,
            done: false,
            events: (cfg.trace_events > 0).then(|| EventLog::new(cfg.trace_events)),
            telemetry: cfg.telemetry.then(Telemetry::new),
            injector: None,
            degraded: false,
            storm_factor: 1.0,
            violations: Vec::new(),
            sanitizer: {
                let level = cfg.effective_audit();
                level.is_enabled().then(|| Sanitizer::new(level))
            },
            migrations_tallied: 0,
            persist: cfg
                .persist
                .is_enabled()
                .then(|| PersistDomain::new(cfg.persist)),
            timerq: EventQueue::new(),
            epochs_skipped: 0,
            aging_touches: 0,
            heap_gfns: Vec::new(),
            pending_crash: None,
            recoveries: 0,
            recovered_frames: 0,
            lost_frames: 0,
            kernel,
            workload,
            cfg,
            policy,
        };
        if sim.cfg.sched == SchedMode::Event {
            sim.arm_management_events();
        }
        sim
    }

    /// The guest's tier reservations for this config/policy pair — shared
    /// between initial boot ([`SingleVmSim::new`]) and the post-crash
    /// reboot in [`SingleVmSim::recover`], which must rebuild an identical
    /// (empty) kernel.
    fn guest_config(cfg: &SimConfig, policy: Policy) -> GuestConfig {
        let (fast_frames, slow_frames) = match policy {
            Policy::FastMemOnly => (
                cfg.guest_frames_fast() + cfg.guest_frames_slow() * 2,
                cfg.guest_frames_slow().min(64),
            ),
            _ => (cfg.guest_frames_fast(), cfg.guest_frames_slow()),
        };
        let medium_frames = match policy {
            Policy::FastMemOnly => 0,
            _ => cfg.guest_frames_medium(),
        };
        let mut frames = vec![(MemKind::Fast, fast_frames), (MemKind::Slow, slow_frames)];
        if medium_frames > 0 {
            frames.push((MemKind::Medium, medium_frames));
        }
        GuestConfig {
            frames,
            cpus: cfg.cpus,
            page_size: cfg.page_size,
        }
    }

    /// Read access to the guest kernel (tests, experiments).
    pub fn kernel(&self) -> &GuestKernel {
        &self.kernel
    }

    /// Simulated time so far.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// The policy driving this run.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Restricts this VM to a fraction of each node's bandwidth (multi-VM
    /// hosts share the memory channels).
    pub fn set_bandwidth_share(&mut self, share: f64) {
        self.bw_share = share.clamp(0.05, 1.0);
    }

    /// Heap pages currently on disk: swap-subsystem slots plus allocations
    /// that never found a frame under balloon pressure.
    pub fn swapped_pages(&self) -> u64 {
        self.kernel.swapped_pages() + self.swapped_heap
    }

    /// The run's event log, when tracing was enabled
    /// (`SimConfig::trace_events > 0`).
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// The run's telemetry sink (metrics registry + span trace), when
    /// enabled (`SimConfig::telemetry`).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    fn span_open(&mut self, label: &str) -> Option<SpanId> {
        let now = self.clock.now();
        self.telemetry.as_mut().map(|t| t.spans.open(label, now))
    }

    fn span_close(&mut self, id: Option<SpanId>) {
        if let Some(id) = id {
            let now = self.clock.now();
            if let Some(t) = self.telemetry.as_mut() {
                t.spans.close(id, now);
            }
        }
    }

    /// Arms deterministic fault injection for this run. The injector's
    /// decisions perturb allocation, throttling and migration; the engine
    /// responds by degrading placement rather than failing the step.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The armed injector (its trace records everything that fired).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Violations found by the invariant sanitizer. Empty unless
    /// `SimConfig::effective_audit` enables it — and, if the stack is
    /// healthy, empty even then. Stepping manually only *collects*
    /// violations; [`SingleVmSim::run`] is what fails loudly on them.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn trace(&mut self, kind: EventKind, detail: impl FnOnce() -> String) {
        if let Some(log) = self.events.as_mut() {
            log.emit(self.clock.now(), kind, detail());
        }
    }

    /// Balloon-back `n` pages of `kind` to the VMM, reclaiming in order of
    /// increasing pain: free pages, lingering I/O pages, then swapping cold
    /// heap pages to disk. Returns pages actually yielded.
    pub fn yield_pages(&mut self, kind: MemKind, n: u64) -> u64 {
        let mut got = self.kernel.balloon_inflate(kind, n);
        if got < n {
            self.force_reclaim_all();
            got += self.kernel.balloon_inflate(kind, n - got);
        }
        while got < n {
            // Swap out the coldest anonymous pages of this tier through the
            // guest swap subsystem (§4.2: the balloon "swap[s] pages to the
            // disk" once the LRU has nothing left to give).
            let victims = self.kernel.lru_candidates(kind, (n - got) as usize, |p| {
                p.page_type == PageType::HeapAnon
            });
            if victims.is_empty() {
                break;
            }
            let mut count = 0;
            for gfn in victims {
                if self.kernel.swap_out(gfn) {
                    count += 1;
                }
            }
            if count == 0 {
                break;
            }
            self.trace(EventKind::Swap, || format!("swapped out {count} pages"));
            self.clock
                .charge(CostCategory::IoWait, SWAP_SERVICE.saturating_mul(count));
            got += self.kernel.balloon_inflate(kind, n - got);
        }
        got
    }

    /// Accepts `n` pages of `kind` granted by the VMM (balloon deflation).
    /// Swapped-out heap pages fault back in first.
    pub fn accept_pages(&mut self, kind: MemKind, n: u64) -> u64 {
        let freed = self.kernel.balloon_deflate(kind, n);
        if kind == MemKind::Slow && freed > 0 {
            // Fault swapped pages back in, then retire any unbacked
            // allocations that never got frames.
            let chain = self.chain_slow_first;
            let back = self.kernel.swap_in_any(freed, chain.as_slice());
            if back > 0 {
                self.trace(EventKind::Swap, || format!("swapped in {back} pages"));
                self.clock
                    .charge(CostCategory::IoWait, SWAP_SERVICE.saturating_mul(back));
            }
            let unbacked = self.swapped_heap.min(freed - back);
            self.swapped_heap -= unbacked;
        }
        freed
    }

    /// Charges externally imposed work against this VM's clock — e.g. the
    /// pre-copy dirty rounds of an inter-host live migration, priced by the
    /// host through [`hetero_mem::cost::CostModel::migration_cost`]. The
    /// charge advances simulated time *and* the cost attribution together,
    /// so the sanitizer's cost-conservation check stays exact.
    pub fn charge_external(&mut self, category: CostCategory, t: Nanos) {
        self.clock.charge(category, t);
    }

    // ------------------------------------------------------------ placement

    /// The chain with FastMem struck out — degraded-placement mode while an
    /// injected allocation failure is active.
    fn without_fast(chain: TierChain) -> TierChain {
        let kinds: Vec<MemKind> = chain
            .as_slice()
            .iter()
            .copied()
            .filter(|&k| k != MemKind::Fast)
            .collect();
        if kinds.is_empty() {
            TierChain::new(&[MemKind::Slow])
        } else {
            TierChain::new(&kinds)
        }
    }

    fn preference(&mut self, page_type: PageType) -> TierChain {
        let chain = match self.policy {
            Policy::SlowMemOnly => self.chain_slow_only,
            Policy::FastMemOnly => self.chain_fast_first,
            Policy::Random => {
                if self.rng.chance(0.5) {
                    self.chain_fast_first
                } else {
                    self.chain_slow_first
                }
            }
            Policy::NumaPreferred => {
                // Stock NUMA management: FastMem preferred, but first-touch
                // locality places a share of allocations on the node local
                // to the allocating CPU (§5.3 discusses how existing NUMA
                // policies mis-place under heterogeneity).
                if self.rng.chance(NUMA_LOCAL_NOISE) {
                    self.chain_slow_first
                } else {
                    self.chain_fast_first
                }
            }
            Policy::HeapOd => {
                if page_type == PageType::HeapAnon {
                    self.chain_fast_first
                } else {
                    self.chain_slow_only
                }
            }
            Policy::HeapIoSlabOd | Policy::HeteroLru | Policy::HeteroCoordinated => {
                // Demand-based prioritization (§3.2): while FastMem is
                // plentiful every subsystem may allocate there; once scarce,
                // only the subsystem with the highest windowed miss ratio
                // keeps FastMem preference.
                let scarce =
                    self.kernel.free_fraction(MemKind::Fast) < self.cfg.fast_low_watermark * 2.0;
                if !scarce {
                    self.chain_fast_first
                } else {
                    match self.prioritized {
                        // No signal yet: admit everyone and let the window
                        // discover the neediest type.
                        None => self.chain_fast_first,
                        Some(t) if t == page_type => self.chain_fast_first,
                        Some(_) => self.chain_slow_only,
                    }
                }
            }
            // HeteroVisor's lazy placement: the guest is heterogeneity
            // blind; pages land wherever the VMM backs them first (SlowMem
            // until pressure), and only migration moves them up (§5.2).
            Policy::VmmExclusive => self.chain_slow_first,
        };
        if self.degraded {
            Self::without_fast(chain)
        } else {
            chain
        }
    }

    // --------------------------------------------------------------- epochs

    /// Consults the armed injector at the top of an epoch: advances its
    /// step, refreshes the storm multiplier, and decides whether FastMem
    /// placement is degraded this epoch. Defenses are traced as
    /// [`EventKind::Fault`] events.
    fn begin_fault_step(&mut self) {
        let prev_storm = self.storm_factor;
        self.degraded = false;
        self.storm_factor = 1.0;
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        inj.begin_step();
        let storm = inj.storm_factor();
        let degraded = inj.fail_alloc(MemKind::Fast);
        let power_loss = inj.host_power_loss();
        let guest_crash = inj.crash_guest_persist();
        self.storm_factor = storm;
        self.degraded = degraded;
        // Power loss dominates when both crash kinds fire the same epoch:
        // the host going dark subsumes the guest dying.
        if power_loss {
            self.pending_crash = Some(FaultKind::HostPowerLoss);
        } else if guest_crash {
            self.pending_crash = Some(FaultKind::GuestCrashPersist);
        }
        if degraded {
            self.trace(EventKind::Fault, || {
                "FastMem allocation failed; placement degraded to slower tiers".to_string()
            });
        }
        if storm > 1.0 && (prev_storm - storm).abs() > f64::EPSILON {
            self.trace(EventKind::Fault, || {
                format!("latency storm x{storm:.2} began")
            });
        }
    }

    /// Runs one epoch. Returns `false` when the workload completed.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        self.begin_fault_step();
        if let Some(kind) = self.pending_crash.take() {
            self.recover(kind);
        }
        let Some(demand) = self.workload.next_epoch(&mut self.rng) else {
            self.done = true;
            return false;
        };
        let epoch_start = self.clock.now();
        let epoch_span = self.span_open("epoch");
        let guest_span = self.span_open("guest-ops");
        self.apply_releases(&demand);
        self.apply_allocations(&demand);
        self.cool_heap();
        self.price_epoch(&demand);
        self.span_close(guest_span);
        match self.cfg.sched {
            SchedMode::Dense => {
                self.roll_stats_window();
                self.run_management();
            }
            SchedMode::Event => self.event_management(),
        }
        self.update_persistence();
        self.epochs += 1;
        self.span_close(epoch_span);
        if self.telemetry.is_some() {
            self.sample_telemetry(epoch_start);
        }
        self.audit_epoch();
        true
    }

    /// The management point under [`SchedMode::Event`]: drain the timer
    /// queue and run the (single, shared) management pass only when a
    /// management deadline has arrived or the cold ledger reports pending
    /// LRU work. Skipping is exact: when neither holds, the dense pass is
    /// provably a no-op — `roll_stats_window`'s window guard fails, LRU
    /// aging finds zero cold-active pages (zero cost via the ledger fast
    /// path), the demotion watermark check sees no shortage, and the
    /// tracking catch-up loop runs zero iterations. The only divergence is
    /// a telemetry-only `guest-lru` span the dense walk would open, which
    /// never touches results.
    fn event_management(&mut self) {
        let now = self.clock.now();
        // Per-epoch work — workload phase processing, fault-plan stepping,
        // persistence write-behind — is modelled as events due immediately,
        // so the queue's fired counter stays an honest measure of what each
        // epoch actually executed.
        self.timerq.arm(EngineEvent::PhaseChange, now);
        if self.injector.is_some() {
            self.timerq.arm(EngineEvent::FaultArm, now);
        }
        if self.persist.is_some() {
            self.timerq.arm(EngineEvent::PersistFlush, now);
        }
        let mut mgmt_due = false;
        while let Some(ev) = self.timerq.pop_due(now) {
            mgmt_due |= ev.is_management();
        }
        if mgmt_due || self.lru_pressure() {
            self.roll_stats_window();
            self.run_management();
            self.arm_management_events();
        } else {
            self.epochs_skipped += 1;
        }
    }

    /// True when the dense guest-LRU walk would do observable work right
    /// now: cold pages sit on the Fast active list (aging would deactivate
    /// and bill them), or the demotion window is open and a managed tier
    /// is below its low watermark.
    fn lru_pressure(&self) -> bool {
        if !self.policy.uses_guest_lru() {
            return false;
        }
        if self.kernel.cold_active(MemKind::Fast) > 0 {
            return true;
        }
        if self.clock.now() < self.next_demote {
            return false;
        }
        let managed = if self.medium_params.is_some() { 2 } else { 1 };
        MemKind::ALL[..managed].iter().any(|&tier| {
            let total = self.kernel.total_frames(tier);
            let low = (self.cfg.fast_low_watermark * total as f64) as u64;
            self.kernel.free_frames(tier) < low
        })
    }

    /// (Re-)arms the management deadlines after a management pass updated
    /// them. The demotion deadline is only armed while its hysteresis
    /// window is in the future — an expired window means demotion is purely
    /// watermark-driven, which [`SingleVmSim::lru_pressure`] watches.
    fn arm_management_events(&mut self) {
        self.timerq.arm(EngineEvent::StatsWindow, self.next_window);
        if self.effective_tracking() != Tracking::None {
            self.timerq.arm(EngineEvent::Scan, self.next_scan);
        }
        if self.policy.uses_guest_lru() && self.next_demote > self.clock.now() {
            self.timerq.arm(EngineEvent::Reclaim, self.next_demote);
        }
    }

    /// Events popped from the timer queue so far (Event mode only).
    pub fn events_fired(&self) -> u64 {
        self.timerq.fired()
    }

    /// Epochs whose management phase was skipped outright (Event mode only).
    pub fn epochs_skipped(&self) -> u64 {
        self.epochs_skipped
    }

    /// Runs every per-epoch sanitizer layer (no-op when auditing is off).
    /// The sanitizer is taken out of its slot for the call so it can borrow
    /// the kernel and tracker immutably while mutating its own state.
    fn audit_epoch(&mut self) {
        let Some(mut sanitizer) = self.sanitizer.take() else {
            return;
        };
        let swap = self.kernel.swap_map();
        let counters = [
            ("epochs", self.epochs),
            ("scans", self.scans),
            ("scanned_pages", self.scanned_pages),
            ("kernel_migrations", self.kernel.migrations),
            ("swap_outs", swap.swap_outs),
            ("swap_ins", swap.swap_ins),
            ("tracker_scans", self.tracker.total_scans()),
            ("tracker_scanned_frames", self.tracker.total_scanned_frames()),
        ];
        let costs = EpochCosts {
            epoch: self.epochs,
            now_ns: self.clock.now().as_nanos(),
            attributed_ns: self.clock.attributed().as_nanos(),
            engine_migrations: self.migrations_tallied,
            counters: &counters,
        };
        self.violations
            .extend(sanitizer.check_epoch(&self.kernel, Some(&self.tracker), &costs));
        self.sanitizer = Some(sanitizer);
    }

    /// `Paranoid` only: validates the scan outcome sitting in
    /// `scan_scratch` at the moment the scan produced it, before the
    /// epoch's migrations consume the candidates.
    fn audit_scan_outcome(&mut self) {
        let Some(sanitizer) = self.sanitizer.as_ref() else {
            return;
        };
        let found = sanitizer.check_scan_outcome(&self.kernel, &self.scan_scratch);
        self.violations.extend(found);
    }

    // ------------------------------------------------- persistence/recovery

    /// The NVM persistence domain, when `SimConfig::persist` enables one.
    pub fn persist_domain(&self) -> Option<&PersistDomain> {
        self.persist.as_ref()
    }

    /// Crash→recover cycles performed so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Frames reconstructed from surviving NVM across all recoveries.
    pub fn recovered_frames(&self) -> u64 {
        self.recovered_frames
    }

    /// Frames lost to crashes (volatile residents plus torn NVM writes).
    pub fn lost_frames(&self) -> u64 {
        self.lost_frames
    }

    /// End-of-epoch write-behind pass over the NVM tier: observes every
    /// SlowMem-resident frame's write activity, retires frames that left
    /// the tier, and charges the flush policy's `clflush`/`sfence` traffic
    /// for whatever the policy drains this epoch. A no-op (zero cost, zero
    /// telemetry, zero RNG draws) when the flush policy is `Off`.
    fn update_persistence(&mut self) {
        let Some(mut dom) = self.persist.take() else {
            return;
        };
        let mut resident: Vec<u64> = Vec::new();
        {
            let mm = self.kernel.memmap();
            for gfn in mm.iter_kind(MemKind::Slow) {
                let p = mm.page(gfn);
                if !p.is_present() {
                    continue;
                }
                resident.push(gfn.0);
                // Write-hot pages re-dirty faster than any flusher drains
                // them; a set dirty bit marks an unflushed buffered write
                // even on read-mostly pages.
                let written = p.write_heat > PERSIST_WRITE_HOT
                    || p.flags.contains(PageFlags::DIRTY);
                dom.observe(gfn.0, written);
            }
        }
        dom.retain_resident(&resident);
        let to_flush = dom.end_epoch(self.epochs);
        if to_flush > 0 {
            let span = self.span_open("persist-flush");
            let cost = self.cfg.costs.flush_cost(self.cfg.real_pages(to_flush));
            self.charge_management(cost);
            self.span_close(span);
        }
        self.persist = Some(dom);
    }

    /// Tears the stack down after a crash and reboots it from the NVM
    /// survivors, exactly as a post-crash kernel replaying its persistent
    /// tier would:
    ///
    /// * [`FaultKind::HostPowerLoss`] — the volatile tiers (FastMem and
    ///   MediumMem) vanish; NVM frames the flush policy had persisted
    ///   survive; unflushed NVM writes are torn and discarded. With
    ///   persistence off nothing is durable, so nothing survives.
    /// * [`FaultKind::GuestCrashPersist`] — the guest dies but the host
    ///   (and the CPU caches in front of the NVM DIMMs) stay up: every
    ///   NVM-resident frame survives, flushed or not.
    ///
    /// Disk state survives both kinds: swap slots are replayed into the
    /// rebooted kernel and unbacked heap allocations stay on swap. Slab,
    /// network-buffer, page-table and DMA pages are kernel-internal state
    /// that is rebuilt from scratch, never recovered. Survivors are
    /// replayed in ascending frame order and placed back on SlowMem, and
    /// the whole path draws no randomness — recovery is a pure function of
    /// the pre-crash state, so crashy runs stay byte-identical across
    /// repeats and `--jobs` counts.
    ///
    /// When auditing is enabled the sanitizer is re-seeded (a reboot resets
    /// its counter baselines) and run once against the recovered kernel:
    /// the [`hetero_faults::ShadowModel`] full walk is the recovery oracle,
    /// and any violation it reports — a residency drift, a broken
    /// page-cache bijection — is collected and fails the run loudly.
    pub fn recover(&mut self, kind: FaultKind) {
        let span = self.span_open("recovery");
        let torn_lost = !matches!(kind, FaultKind::GuestCrashPersist);
        // Which NVM frames survive the crash.
        let survivors: Vec<u64> = match (self.persist.as_mut(), torn_lost) {
            (Some(dom), torn) => dom.survivors(torn),
            (None, false) => {
                let mm = self.kernel.memmap();
                mm.iter_kind(MemKind::Slow)
                    .filter(|&g| mm.page(g).is_present())
                    .map(|g| g.0)
                    .collect()
            }
            (None, true) => Vec::new(),
        };
        // Snapshot the survivors' identities and the disk-resident swap
        // slots before the old kernel is dropped.
        let mut heap: Vec<(u8, u8)> = Vec::new();
        let mut cache: Vec<(u64, u8)> = Vec::new();
        let mut buffer: Vec<(u64, u8)> = Vec::new();
        let mut resident_before = 0u64;
        {
            let mm = self.kernel.memmap();
            for tier in MemKind::ALL {
                resident_before +=
                    mm.iter_kind(tier).filter(|&g| mm.page(g).is_present()).count() as u64;
            }
            for &f in &survivors {
                let p = mm.page(Gfn(f));
                if !p.is_present() {
                    continue;
                }
                match (p.page_type, p.rmap) {
                    (PageType::HeapAnon, RMap::Anon(_)) => heap.push((p.heat, p.write_heat)),
                    (PageType::PageCache, RMap::File(file, off)) if file == CACHE_FILE.0 => {
                        cache.push((off, p.heat));
                    }
                    (PageType::BufferCache, RMap::File(file, off)) if file == BUFFER_FILE.0 => {
                        buffer.push((off, p.heat));
                    }
                    // Kernel-internal pages (slab, netbuf, page tables,
                    // DMA) are rebuilt from scratch, not recovered.
                    _ => {}
                }
            }
        }
        let swap_slots: Vec<(u8, u8)> = self
            .kernel
            .swap_map()
            .iter()
            .map(|(_, e)| (e.heat, e.write_heat))
            .collect();
        // The balloon is host-side device state: the VMM's grant did not
        // change just because the guest rebooted, so the reservation must
        // be re-registered before the workload resumes or the rebooted
        // kernel would think it owns its full tier reservations while the
        // host ledger still records the smaller grant.
        let ballooned: [(MemKind, u64); 3] =
            MemKind::ALL.map(|k| (k, self.kernel.ballooned_pages(k)));
        let recovered = (heap.len() + cache.len() + buffer.len()) as u64;
        let lost = resident_before.saturating_sub(recovered);
        self.trace(EventKind::Fault, || {
            format!(
                "{kind}: {lost} resident frames lost, {recovered} NVM survivors, \
                 {} swap slots on disk",
                swap_slots.len()
            )
        });
        // Reboot: a fresh kernel with the same tier reservations, and
        // fresh volatile engine bookkeeping.
        self.kernel = GuestKernel::new(Self::guest_config(&self.cfg, self.policy));
        self.kernel.configure_cold_ledger(self.cfg.lru_cold_heat);
        self.heap_chunks.clear();
        self.hot_vpns.clear();
        self.cache_live.clear();
        self.cache_lazy.clear();
        self.buffer_live.clear();
        self.buffer_lazy.clear();
        // cache_next/buffer_next keep advancing: file offsets are stable
        // disk coordinates, and reusing one would alias a dead page.
        self.tracker = HotnessTracker::new(1);
        self.scan_scratch = ScanOutcome::default();
        self.prioritized = None;
        self.interval = IntervalController::new(
            self.cfg.scan_interval,
            self.cfg.adaptive_bounds.0,
            self.cfg.adaptive_bounds.1,
        );
        self.next_scan = self.clock.now() + self.cfg.scan_interval;
        self.next_window = self.clock.now() + self.cfg.stats_window;
        self.next_demote = self.clock.now();
        self.last_scan_yield = u64::MAX;
        self.ab_cursor = 0;
        self.ab_harvest.clear();
        if self.cfg.sched == SchedMode::Event {
            // Stale pre-crash deadlines in the heap are lazily dropped;
            // re-arming records the rebooted schedule.
            self.arm_management_events();
        }
        // Replay the disk-resident swap population first (the empty kernel
        // has frames to stage each page through), then the NVM survivors,
        // placed back where they survived: SlowMem.
        for &(h, wh) in &swap_slots {
            let Ok((vma, _)) = self.kernel.mmap_heap(1, [h], &[MemKind::Slow]) else {
                continue;
            };
            self.heap_chunks.push_back((vma.start, vma.pages));
            if let Some(gfn) = self.kernel.page_table().translate(vma.start) {
                if wh > 0 {
                    self.kernel.set_page_write_heat(gfn, wh);
                }
                let _ = self.kernel.swap_out(gfn);
            }
        }
        if !heap.is_empty() {
            if let Ok((vma, _)) = self.kernel.mmap_heap(
                heap.len() as u64,
                heap.iter().map(|&(h, _)| h),
                &[MemKind::Slow],
            ) {
                self.heap_chunks.push_back((vma.start, vma.pages));
                for (i, &(h, wh)) in heap.iter().enumerate() {
                    let vpn = vma.start + i as u64;
                    if wh > 0 {
                        if let Some(gfn) = self.kernel.page_table().translate(vpn) {
                            self.kernel.set_page_write_heat(gfn, wh);
                        }
                    }
                    if h > 50 && h < 200 {
                        self.hot_vpns.push_back(vpn);
                    }
                }
            }
        }
        for &(off, h) in &cache {
            if self.kernel.page_in(CACHE_FILE, off, h, &[MemKind::Slow]).is_ok() {
                self.cache_live.push_back(off);
            }
        }
        for &(off, h) in &buffer {
            if self
                .kernel
                .buffer_page_in(BUFFER_FILE, off, h, &[MemKind::Slow])
                .is_ok()
            {
                self.buffer_live.push_back(off);
            }
        }
        // Re-inflate the pre-crash balloon now that the survivors are
        // placed: they fit alongside the reservation before the crash, so
        // the fresh kernel always has the frames to give back.
        for (kind, n) in ballooned {
            if n > 0 {
                let got = self.kernel.balloon_inflate(kind, n);
                debug_assert_eq!(got, n, "post-reboot balloon must fit on {kind:?}");
            }
        }
        // The migration tally is a lifetime run statistic carried across
        // the reboot; the differential oracle demands the kernel counter
        // match the engine's bill.
        self.kernel.migrations = self.migrations_tallied;
        self.recoveries += 1;
        self.recovered_frames += recovered;
        self.lost_frames += lost;
        // Recovery time: one sequential scan over the whole NVM tier to
        // find survivors, then per-survivor page-table/page-cache rebuild
        // priced like a migration's walk + copy.
        let scanned = self.cfg.real_pages(self.kernel.total_frames(MemKind::Slow));
        let rebuilt = self.cfg.real_pages(recovered + swap_slots.len() as u64);
        let cost = self
            .cfg
            .costs
            .scan_per_page
            .saturating_mul(scanned)
            + self
                .cfg
                .costs
                .page_walk_per_page(rebuilt)
                .saturating_mul(rebuilt)
            + self
                .cfg
                .costs
                .page_move_per_page(rebuilt)
                .saturating_mul(rebuilt);
        self.charge_management(cost);
        self.trace(EventKind::Note, || {
            format!("recovery rebuilt {recovered} frames on SlowMem")
        });
        // Recovery oracle: reboot the sanitizer (fresh counter baselines)
        // and audit the recovered kernel immediately. Any violation here is
        // a recovery bug and fails the run loudly like every other finding.
        if self.sanitizer.is_some() {
            self.sanitizer = Some(Sanitizer::new(self.cfg.effective_audit()));
            self.audit_epoch();
        }
        self.span_close(span);
    }

    /// Samples the cumulative subsystem counters into the telemetry
    /// registry and records the epoch's simulated duration. `counter_set`
    /// keeps re-sampling idempotent; nothing here draws randomness or
    /// charges the clock.
    fn sample_telemetry(&mut self, epoch_start: Nanos) {
        let epoch_ns = self
            .clock
            .now()
            .checked_sub(epoch_start)
            .unwrap_or(Nanos::ZERO)
            .as_nanos();
        let epochs = self.epochs;
        let scans = self.scans;
        let scanned = self.scanned_pages;
        let misses = self.misses_total;
        let slow_writes = self.slow_writes;
        let scan_passes = self.tracker.total_scans();
        let scan_frames = self.tracker.total_scanned_frames();
        let tracked = self.tracker.tracked_pages() as u64;
        // Persistence/recovery counters are emitted only when the subsystem
        // is live, keeping disabled-mode exports byte-identical.
        let persist_stats = self.persist.as_ref().map(|d| {
            (
                d.flushes,
                d.fences,
                d.evict_flushes,
                d.torn_discards,
                d.dirty_frames(),
                d.flushed_frames(),
            )
        });
        let recovery_stats =
            (self.recoveries > 0).then_some((self.recoveries, self.recovered_frames, self.lost_frames));
        let Some(t) = self.telemetry.as_mut() else {
            return;
        };
        let reg = &mut t.registry;
        reg.observe("engine.epoch_ns", epoch_ns);
        reg.counter_set("engine.epochs", epochs);
        reg.counter_set("engine.scans", scans);
        reg.counter_set("engine.scanned_pages", scanned);
        reg.counter_set("engine.events_fired", self.timerq.fired());
        reg.counter_set("engine.epochs_skipped", self.epochs_skipped);
        reg.counter_set("engine.aging_touches", self.aging_touches);
        reg.gauge_set("engine.misses", misses);
        reg.gauge_set("engine.slow_writes", slow_writes);
        reg.counter_set("vmm.scan.passes", scan_passes);
        reg.counter_set("vmm.scan.frames", scan_frames);
        reg.counter_set("vmm.scan.tracked_pages", tracked);
        if let Some((flushes, fences, evict, torn, dirty, flushed)) = persist_stats {
            reg.counter_set("persist.flushes", flushes);
            reg.counter_set("persist.fences", fences);
            reg.counter_set("persist.evict_flushes", evict);
            reg.counter_set("persist.torn_discards", torn);
            reg.gauge_set("persist.dirty_frames", dirty as f64);
            reg.gauge_set("persist.flushed_frames", flushed as f64);
        }
        if let Some((recoveries, recovered, lost)) = recovery_stats {
            reg.counter_set("engine.recoveries", recoveries);
            reg.counter_set("engine.recovered_frames", recovered);
            reg.counter_set("engine.lost_frames", lost);
        }
        self.kernel.export_telemetry(reg);
    }

    /// Runs to completion and produces the report.
    ///
    /// # Panics
    ///
    /// With an explicit `SimConfig::audit` level set (not the legacy
    /// collect-only `audit_invariants` flag), panics on the first run whose
    /// sanitizer found any violation, listing every one. The run itself is
    /// driven to completion first, so the panic message reflects the whole
    /// violation history, not just the first epoch's.
    pub fn run(mut self) -> RunReport {
        while self.step() {}
        if self.cfg.audit != AuditLevel::Off && !self.violations.is_empty() {
            let mut msg = format!(
                "invariant sanitizer ({} level) found {} violation(s) in policy {} run:",
                self.cfg.audit,
                self.violations.len(),
                self.policy.name(),
            );
            for v in &self.violations {
                msg.push_str("\n  - ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
        self.report()
    }

    /// The report for the work done so far.
    pub fn report(&self) -> RunReport {
        RunReport::from_parts(
            self.policy.name(),
            self.workload.spec().name,
            &self.clock,
            self.misses_total,
            self.kernel.migrations,
            self.scans,
            self.scanned_pages,
            self.kernel.stats().overall_miss_ratio(),
            self.slow_writes,
            self.epochs,
            self.events.as_ref().map_or(0, EventLog::dropped),
        )
    }

    // ----------------------------------------------------------- page churn

    fn apply_releases(&mut self, d: &EpochDemand) {
        // Heap churn: unmap the oldest chunks ("frequently allocate and
        // release", §2.2). HeteroOS-LRU treats the region eagerly; plain
        // munmap frees either way.
        let mut to_free = d.heap_free;
        // Freed data that lives on swap just disappears from the swap file.
        let from_swap = self.swapped_heap.min(to_free);
        self.swapped_heap -= from_swap;
        to_free -= from_swap;
        while to_free > 0 {
            let Some((start, pages)) = self.heap_chunks.pop_front() else {
                break;
            };
            let take = pages.min(to_free);
            self.kernel.munmap(start, take);
            if take < pages {
                self.heap_chunks.push_front((start + take, pages - take));
            }
            to_free -= take;
        }
        // I/O completions: HeteroOS-LRU evicts released I/O pages from
        // FastMem immediately (§3.3); the lazy baselines leave them cached
        // until a reclaim storm.
        let eager = self
            .cfg
            .eager_io_override
            .unwrap_or(self.policy.uses_guest_lru());
        for _ in 0..d.cache_releases {
            let Some(off) = self.cache_live.pop_front() else {
                break;
            };
            self.release_io_page(CACHE_FILE, off, eager, true);
        }
        for _ in 0..d.buffer_releases {
            let Some(off) = self.buffer_live.pop_front() else {
                break;
            };
            self.release_io_page(BUFFER_FILE, off, eager, false);
        }
        self.lazy_reclaim_if_due();
        // Kernel objects free immediately (kfree) under every policy.
        if self.cfg.bulk_ops {
            self.kernel
                .slab_free_bulk(SlabClass::FsMeta, d.slab_frees * SLAB_OBJS_PER_PAGE);
            self.kernel
                .slab_free_bulk(SlabClass::Skbuff, d.netbuf_frees * NETBUF_OBJS_PER_PAGE);
        } else {
            for _ in 0..d.slab_frees * SLAB_OBJS_PER_PAGE {
                if !self.kernel.slab_free_any(SlabClass::FsMeta) {
                    break;
                }
            }
            for _ in 0..d.netbuf_frees * NETBUF_OBJS_PER_PAGE {
                if !self.kernel.slab_free_any(SlabClass::Skbuff) {
                    break;
                }
            }
        }
    }

    fn release_io_page(&mut self, file: FileId, off: u64, eager: bool, is_cache: bool) {
        if eager {
            self.kernel.drop_cache_page(file, off);
        } else {
            // Mark I/O complete (page goes inactive) and queue for the lazy
            // reclaimer.
            if let Some(gfn) = self.lookup_cached(file, off) {
                self.kernel.io_complete(gfn);
            }
            if is_cache {
                self.cache_lazy.push_back(off);
            } else {
                self.buffer_lazy.push_back(off);
            }
        }
    }

    fn lookup_cached(&mut self, file: FileId, off: u64) -> Option<Gfn> {
        self.kernel.cached_page(file, off)
    }

    fn lazy_reclaim_if_due(&mut self) {
        // Lazy baseline: released pages linger; once they exceed the slack,
        // a reclaim storm drops them all at once (§3.3's criticism).
        let slack = |target: usize| ((target as f64 * LAZY_RECLAIM_SLACK) as usize).max(16);
        if self.cache_lazy.len() > slack(self.cache_live.len().max(1)) {
            let q = std::mem::take(&mut self.cache_lazy);
            self.kernel.drop_cache_pages(CACHE_FILE, q);
            self.charge_management(Nanos::from_micros(200));
        }
        if self.buffer_lazy.len() > slack(self.buffer_live.len().max(1)) {
            let q = std::mem::take(&mut self.buffer_lazy);
            self.kernel.drop_cache_pages(BUFFER_FILE, q);
            self.charge_management(Nanos::from_micros(200));
        }
    }

    /// Registers a freshly mapped heap chunk: records the chunk, assigns
    /// write heats over its frames, and queues its transiently hot pages
    /// for cooling. The super-hot tier (255) is the stable working-set
    /// core and never cools; only transient fresh heat (96) enters the
    /// cooling queue.
    fn register_heap_chunk(&mut self, vma: &hetero_guest::vma::Vma, gfns: &[Gfn], heats: &[u8]) {
        self.heap_chunks.push_back((vma.start, vma.pages));
        self.assign_heap_write_heats(gfns, heats);
        for (i, &h) in heats.iter().enumerate() {
            if h > 50 && h < 200 {
                self.hot_vpns.push_back(vma.start + i as u64);
            }
        }
    }

    fn apply_allocations(&mut self, d: &EpochDemand) {
        if d.heap_alloc > 0 {
            let pref = self.preference(PageType::HeapAnon);
            let spec = self.workload.spec().clone();
            // During the ramp the footprint arrives with its steady-state
            // hot mix; churned allocations afterwards run hot — fresh
            // buffers are about to be used (temporal locality).
            let hot_p = if self.workload.progress() <= spec.ramp_fraction {
                spec.hot_page_fraction
            } else {
                spec.fresh_hot_fraction
            };
            let heats: Vec<u8> = (0..d.heap_alloc)
                .map(|_| spec.sample_heat_with(&mut self.rng, PageType::HeapAnon, hot_p))
                .collect();
            let mut gfns = std::mem::take(&mut self.heap_gfns);
            if self.cfg.app_hints {
                // §3.1's extended mmap() flag: the application maps its hot
                // buffers with an explicit FastMem hint and its cold data
                // with a SlowMem hint — two separate regions.
                let hot: Vec<u8> = heats.iter().copied().filter(|&h| h > 50).collect();
                let cold: Vec<u8> = heats.iter().copied().filter(|&h| h <= 50).collect();
                let hot_chain = if self.degraded {
                    Self::without_fast(self.chain_fast_first)
                } else {
                    self.chain_fast_first
                };
                let groups = [
                    (hot, hot_chain),
                    (cold, self.chain_slow_only),
                ];
                for (group, chain) in groups {
                    if group.is_empty() {
                        continue;
                    }
                    if let Ok((vma, _)) = self.kernel.mmap_heap_collect(
                        group.len() as u64,
                        group.iter().copied(),
                        chain.as_slice(),
                        &mut gfns,
                    ) {
                        self.register_heap_chunk(&vma, &gfns, &group);
                    }
                }
                self.heap_gfns = gfns;
                return self.apply_io_and_slab_allocations(d);
            }
            match self.kernel.mmap_heap_collect(
                d.heap_alloc,
                heats.iter().copied(),
                pref.as_slice(),
                &mut gfns,
            ) {
                Ok((vma, _)) => self.register_heap_chunk(&vma, &gfns, &heats),
                Err(AllocFailed { .. }) => {
                    // Total memory pressure: force the lazy queues out and
                    // retry once.
                    self.force_reclaim_all();
                    let heats: Vec<u8> = (0..d.heap_alloc)
                        .map(|_| spec.sample_heat_with(&mut self.rng, PageType::HeapAnon, hot_p))
                        .collect();
                    match self.kernel.mmap_heap_collect(
                        d.heap_alloc,
                        heats.iter().copied(),
                        pref.as_slice(),
                        &mut gfns,
                    ) {
                        Ok((vma, _)) => self.register_heap_chunk(&vma, &gfns, &heats),
                        Err(_) => {
                            // Memory truly exhausted (multi-VM balloon
                            // pressure): the pages live on swap instead.
                            self.swapped_heap += d.heap_alloc;
                        }
                    }
                }
            }
            self.heap_gfns = gfns;
        }
        self.apply_io_and_slab_allocations(d);
    }

    fn apply_io_and_slab_allocations(&mut self, d: &EpochDemand) {
        if self.cfg.bulk_ops {
            self.bulk_io_page_ins(true, d.cache_reads);
            self.bulk_io_page_ins(false, d.buffer_allocs);
            self.bulk_slab_allocs(SlabClass::FsMeta, PageType::Slab, d.slab_allocs * SLAB_OBJS_PER_PAGE);
            self.bulk_slab_allocs(
                SlabClass::Skbuff,
                PageType::NetBuf,
                d.netbuf_allocs * NETBUF_OBJS_PER_PAGE,
            );
            return;
        }
        // Scalar reference path: one placement decision and one kernel call
        // per object. Kept verbatim as the equivalence baseline the bulk
        // path is tested against (`with_bulk_ops(false)`).
        for _ in 0..d.cache_reads {
            let pref = self.preference(PageType::PageCache);
            let off = self.cache_next;
            self.cache_next += 1;
            if self.ensure_one_free() && self.kernel.page_in(CACHE_FILE, off, 224, pref.as_slice()).is_ok() {
                self.cache_live.push_back(off);
            }
        }
        for _ in 0..d.buffer_allocs {
            let pref = self.preference(PageType::BufferCache);
            let off = self.buffer_next;
            self.buffer_next += 1;
            if self.ensure_one_free()
                && self
                    .kernel
                    .buffer_page_in(BUFFER_FILE, off, 224, pref.as_slice())
                    .is_ok()
            {
                self.buffer_live.push_back(off);
            }
        }
        for _ in 0..d.slab_allocs * SLAB_OBJS_PER_PAGE {
            let pref = self.preference(PageType::Slab);
            let _ = self.kernel.slab_alloc(SlabClass::FsMeta, 224, pref.as_slice());
        }
        for _ in 0..d.netbuf_allocs * NETBUF_OBJS_PER_PAGE {
            let pref = self.preference(PageType::NetBuf);
            let _ = self.kernel.slab_alloc(SlabClass::Skbuff, 224, pref.as_slice());
        }
    }

    // ------------------------------------------------------- bulk dispatch
    //
    // The bulk path must be an *exact* semantic no-op versus the scalar
    // loops above: identical placement for every object, identical RNG draw
    // count, identical allocation statistics and event traces. Placement
    // decisions are therefore run-length grouped — one kernel call covers a
    // run of consecutive objects only when every object in the run is
    // guaranteed the same preference chain the scalar loop would compute.

    /// Computes the next run of consecutive objects sharing one preference
    /// chain. For RNG-driven policies this draws one chance per object
    /// (keeping the draw count identical to the scalar loop); the first
    /// draw that breaks the run is parked in `pending` for the next call.
    /// For demand-prioritized policies the run is bounded so the FastMem
    /// scarcity signal cannot flip inside it.
    fn next_pref_run(
        &mut self,
        page_type: PageType,
        remaining: u64,
        pending: &mut Option<TierChain>,
    ) -> (TierChain, u64) {
        debug_assert!(remaining > 0);
        match self.policy {
            Policy::Random | Policy::NumaPreferred => {
                let first = match pending.take() {
                    Some(chain) => chain,
                    None => self.preference(page_type),
                };
                let mut run = 1;
                while run < remaining {
                    let next = self.preference(page_type);
                    if next == first {
                        run += 1;
                    } else {
                        *pending = Some(next);
                        break;
                    }
                }
                (first, run)
            }
            Policy::HeapIoSlabOd | Policy::HeteroLru | Policy::HeteroCoordinated => {
                debug_assert!(pending.is_none(), "OD runs are state-derived");
                let chain = self.preference(page_type);
                let thr = self.cfg.fast_low_watermark * 2.0;
                if self.kernel.free_fraction(MemKind::Fast) < thr {
                    // Scarce, and allocations only consume frames, so the
                    // signal stays scarce for the whole remainder. (The one
                    // way back up — a reclaim storm — makes the dispatcher
                    // recompute runs.)
                    (chain, remaining)
                } else {
                    // Plentiful: placements may drain FastMem until the
                    // watermark trips. Each object consumes at most one
                    // Fast frame, so the first `free - min_free + 1`
                    // objects are guaranteed to still see a non-scarce
                    // tier exactly as the scalar loop would.
                    let total = self.kernel.total_frames(MemKind::Fast);
                    let free = self.kernel.free_frames(MemKind::Fast);
                    let mut min_free = (thr * total as f64).ceil() as u64;
                    // Settle f64 rounding edges against the exact predicate.
                    while (min_free as f64) / (total as f64) < thr {
                        min_free += 1;
                    }
                    while min_free > 0 && ((min_free - 1) as f64) / (total as f64) >= thr {
                        min_free -= 1;
                    }
                    debug_assert!(free >= min_free);
                    ((chain), (free - min_free + 1).min(remaining))
                }
            }
            // Static chains: one placement decision covers the epoch.
            Policy::SlowMemOnly
            | Policy::FastMemOnly
            | Policy::HeapOd
            | Policy::VmmExclusive => (self.preference(page_type), remaining),
        }
    }

    /// Bulk page-cache / buffer-cache reads: run-grouped placement, with
    /// sub-chunks sized so the scalar loop's `ensure_one_free` reclaim
    /// storm fires at exactly the same object index.
    fn bulk_io_page_ins(&mut self, is_cache: bool, n: u64) {
        let page_type = if is_cache {
            PageType::PageCache
        } else {
            PageType::BufferCache
        };
        let mut remaining = n;
        let mut pending: Option<TierChain> = None;
        while remaining > 0 {
            let (chain, run) = self.next_pref_run(page_type, remaining, &mut pending);
            remaining -= run;
            let mut run_left = run;
            while run_left > 0 {
                let free_total = self.kernel.free_frames(MemKind::Fast)
                    + self.kernel.free_frames(MemKind::Slow);
                if free_total == 0 {
                    // The next object trips the reclaim storm (its chain —
                    // computed before the storm, like the scalar loop's —
                    // is already fixed in `run`).
                    if !self.ensure_one_free() {
                        // Nothing reclaimable: the rest of the run is
                        // skipped, but offsets still advance.
                        self.advance_io_offsets(is_cache, run_left);
                        run_left = 0;
                        continue;
                    }
                    self.dispatch_io_chunk(is_cache, 1, chain);
                    run_left -= 1;
                    if self.policy.uses_demand_prioritization() && run_left > 0 {
                        // The storm refilled free lists, which may flip the
                        // scarcity signal: hand the rest back and recompute.
                        remaining += run_left;
                        run_left = 0;
                    }
                    continue;
                }
                // Within this chunk every object sees a free frame, so
                // `ensure_one_free` is a guaranteed no-op for all of them.
                let c = run_left.min(free_total);
                self.dispatch_io_chunk(is_cache, c, chain);
                run_left -= c;
            }
        }
    }

    /// Pages `count` consecutive offsets in with one kernel call and
    /// registers the successes as live. Placement failures form a suffix
    /// (nothing frees memory inside a chunk), so the success count is also
    /// the live prefix length — exactly the offsets the scalar loop would
    /// have recorded.
    fn dispatch_io_chunk(&mut self, is_cache: bool, count: u64, chain: TierChain) -> u64 {
        let (start, ok) = if is_cache {
            let start = self.cache_next;
            self.cache_next += count;
            let ok = self
                .kernel
                .page_in_many(CACHE_FILE, start, count, 224, chain.as_slice());
            (start, ok)
        } else {
            let start = self.buffer_next;
            self.buffer_next += count;
            let ok = self
                .kernel
                .buffer_page_in_many(BUFFER_FILE, start, count, 224, chain.as_slice());
            (start, ok)
        };
        let live = if is_cache {
            &mut self.cache_live
        } else {
            &mut self.buffer_live
        };
        live.extend(start..start + ok);
        ok
    }

    fn advance_io_offsets(&mut self, is_cache: bool, n: u64) {
        if is_cache {
            self.cache_next += n;
        } else {
            self.buffer_next += n;
        }
    }

    /// Bulk slab/netbuf object allocation: one kernel call per placement
    /// run. `GuestKernel::slab_alloc_bulk` internally replicates the scalar
    /// carve/fresh-page/failure sequence, including per-failure statistics.
    fn bulk_slab_allocs(&mut self, class: SlabClass, page_type: PageType, n: u64) {
        let mut remaining = n;
        let mut pending: Option<TierChain> = None;
        while remaining > 0 {
            let (chain, run) = self.next_pref_run(page_type, remaining, &mut pending);
            let _ = self.kernel.slab_alloc_bulk(class, run, 224, chain.as_slice());
            remaining -= run;
        }
    }

    /// Assigns per-page write heat to a freshly mapped heap chunk: a
    /// `write_fraction`-sized subset of the hot pages is write-hot (their
    /// stores dominate), the rest are read-mostly. This is the §4.3
    /// read/write-imbalance structure write-aware migration exploits.
    fn assign_heap_write_heats(&mut self, gfns: &[Gfn], heats: &[u8]) {
        let wf = self.workload.spec().write_fraction.clamp(0.0, 1.0);
        for (&gfn, &h) in gfns.iter().zip(heats) {
            let write_heat = if h > 50 && self.rng.chance(wf) {
                h // write-hot: stores track its access intensity
            } else {
                h / 8 // read-mostly
            };
            if write_heat > 0 {
                self.kernel.set_page_write_heat(gfn, write_heat);
            }
        }
    }

    /// Ages workload heat: fresh allocations run hot
    /// (`fresh_hot_fraction`), and this pass cools randomly chosen hot heap
    /// pages until the resident hot fraction settles back at
    /// `hot_page_fraction`. The resulting recency gradient is what lets
    /// on-demand recycling and LRU demotion separate hot from cold.
    /// Estimates the number of currently-hot resident heap pages from the
    /// tier-aggregate heat counters, inverting
    /// `heat ≈ hot·E[hot heat] + (pages−hot)·cold`. Saturates at zero when
    /// the aggregate sits at or below the all-cold floor `cold·pages`, so
    /// a fully cooled heap (or an empty one) reads as zero hot pages.
    fn hot_pages_estimate(heat: u64, pages: u64) -> u64 {
        let cold = hetero_workloads::WorkloadSpec::COLD_HEAT as u64;
        let hot_heat = hetero_workloads::WorkloadSpec::expected_hot_heat();
        Self::hot_pages_estimate_with(heat, pages, hot_heat, cold)
    }

    /// Core of [`Self::hot_pages_estimate`] with the heat anchors explicit.
    /// A degenerate spec whose expected hot heat sits at or below the cold
    /// floor leaves the inversion undefined (zero or negative denominator);
    /// dividing anyway sends `+inf` through the `as u64` cast and reads as
    /// `u64::MAX` hot pages. Guard it: such a heap has no detectable hot
    /// set, so the estimate is 0.
    fn hot_pages_estimate_with(heat: u64, pages: u64, hot_heat: f64, cold: u64) -> u64 {
        if hot_heat <= cold as f64 {
            return 0;
        }
        (heat.saturating_sub(cold * pages) as f64 / (hot_heat - cold as f64)) as u64
    }

    fn cool_heap(&mut self) {
        let spec = self.workload.spec();
        let target_frac = spec.hot_page_fraction;
        let mm = self.kernel.memmap();
        let pages = mm.resident_pages(PageType::HeapAnon);
        if pages == 0 {
            return;
        }
        let heat: u64 = MemKind::ALL
            .iter()
            .map(|&k| mm.heat_on(PageType::HeapAnon, k))
            .sum();
        let hot_now = Self::hot_pages_estimate(heat, pages);
        let target = (target_frac * pages as f64) as u64;
        // Each cooling pass is one hotness generation: pages cooled here
        // drop to the cold floor (a full `heatgen::decay` collapse), and
        // the ledger's generation stamp is what lazy consumers compare
        // against instead of re-walking the heap.
        self.kernel.bump_cold_generation();
        if hot_now <= target {
            return;
        }
        // Cool the *oldest* hot pages first (allocation-order FIFO): data
        // goes cold in the order it was produced.
        let mut to_cool = (hot_now - target).min(1024);
        while to_cool > 0 {
            let Some(vpn) = self.hot_vpns.pop_front() else {
                break;
            };
            let Some(gfn) = self.kernel.page_table().translate(vpn) else {
                continue; // already unmapped by churn
            };
            if self.kernel.memmap().page(gfn).heat > 50 {
                self.kernel.set_page_heat(gfn, hetero_workloads::WorkloadSpec::COLD_HEAT);
                self.kernel.set_page_write_heat(gfn, 1);
                to_cool -= 1;
            }
        }
    }

    fn ensure_one_free(&mut self) -> bool {
        if self.kernel.free_frames(MemKind::Fast) + self.kernel.free_frames(MemKind::Slow) == 0 {
            self.force_reclaim_all();
        }
        self.kernel.free_frames(MemKind::Fast) + self.kernel.free_frames(MemKind::Slow) > 0
    }

    fn force_reclaim_all(&mut self) {
        let q = std::mem::take(&mut self.cache_lazy);
        self.kernel.drop_cache_pages(CACHE_FILE, q);
        let q = std::mem::take(&mut self.buffer_lazy);
        self.kernel.drop_cache_pages(BUFFER_FILE, q);
    }

    // --------------------------------------------------------------- timing

    fn price_epoch(&mut self, d: &EpochDemand) {
        let spec = self.workload.spec();
        let miss_scale = self.cfg.llc.mpki_scale(spec.hot_wss_bytes);
        let misses = d.instructions as f64 * spec.miss_per_instruction() * miss_scale;
        // Split misses across tiers, per type, weighted by resident heat.
        let mm = self.kernel.memmap();
        let wf = spec.write_fraction.clamp(0.0, 1.0);
        // Per-tier (reads, writes): reads split by heat, writes by write
        // heat — write-hot pages concentrate stores the way §4.3's
        // read/write-imbalanced NVM workloads do. When no write heats have
        // been assigned, writes follow the read split.
        let mut reads = [0.0f64; 3];
        let mut writes = [0.0f64; 3];
        let tier_idx = |k: MemKind| k.tier() as usize;
        for t in PageType::ALL {
            let share = spec.access_mix.of(t);
            if share <= 0.0 {
                continue;
            }
            let m = misses * share;
            let heats = MemKind::ALL.map(|k| mm.heat_on(t, k) as f64);
            let wheats = MemKind::ALL.map(|k| mm.write_heat_on(t, k) as f64);
            let heat_total: f64 = heats.iter().sum();
            let wheat_total: f64 = wheats.iter().sum();
            if heat_total <= 0.0 {
                reads[tier_idx(MemKind::Slow)] += m * (1.0 - wf);
                writes[tier_idx(MemKind::Slow)] += m * wf;
                continue;
            }
            for i in 0..3 {
                reads[i] += m * (1.0 - wf) * heats[i] / heat_total;
                let wshare = if wheat_total > 0.0 {
                    wheats[i] / wheat_total
                } else {
                    heats[i] / heat_total
                };
                writes[i] += m * wf * wshare;
            }
        }
        self.slow_writes += writes[tier_idx(MemKind::Slow)];
        let threads = spec.threads.max(1.0);
        let compute_ns = d.instructions as f64 * spec.compute_ns_per_instruction() / threads;
        let keff = spec.mlp.max(1.0) * threads;
        // Roofline: the epoch is either latency-bound (misses stall the
        // threads) or bandwidth-bound (a node's channel is the bottleneck),
        // whichever is worse. This is what makes only the high-`threads`
        // batch engines sensitive to the B:y factor (Observation 1).
        let line_bytes = 64.0;
        let params = [
            Some(&self.fast_params),
            self.medium_params.as_ref(),
            Some(&self.slow_params),
        ];
        let mut lat_bound = compute_ns;
        let mut bw_bound: f64 = 0.0;
        // An injected latency storm dilates every node's latency and cuts
        // its usable bandwidth by the same factor for the storm's duration.
        let storm = self.storm_factor.max(1.0);
        for i in 0..3 {
            let Some(p) = params[i] else { continue };
            lat_bound += (reads[i] * p.load_latency.as_nanos() as f64
                + writes[i] * p.store_latency.as_nanos() as f64)
                * storm
                / keff;
            // Symmetric nodes keep the legacy single-rail formula verbatim
            // (bit-identical floats for every pre-existing config); profiles
            // with a read/write bandwidth split — Optane DC's 6.6 GB/s read
            // vs 2.3 GB/s write — serialize each direction on its own rail.
            let node_bw = if p.bandwidth_gbps == p.write_bandwidth_gbps {
                (reads[i] + writes[i]) * line_bytes * storm
                    / (p.bandwidth_gbps * self.bw_share)
            } else {
                (reads[i] * line_bytes / p.bandwidth_gbps
                    + writes[i] * line_bytes / p.write_bandwidth_gbps)
                    * storm
                    / self.bw_share
            };
            bw_bound = bw_bound.max(node_bw);
        }
        let total_ns = lat_bound.max(bw_bound);
        let compute = Nanos::from_nanos(compute_ns.round() as u64);
        let stall = Nanos::from_nanos((total_ns - compute_ns).max(0.0).round() as u64);
        self.clock.charge(CostCategory::Compute, compute);
        self.clock.charge(CostCategory::MemoryStall, stall);
        // Swapped-out heap pages fault in from disk when touched. The
        // swapped set is the coldest tail, so weight its traffic by cold
        // heat, and fault each page at most once per epoch.
        let swapped_total = self.kernel.swapped_pages() + self.swapped_heap;
        if swapped_total > 0 {
            let heap_misses = misses * spec.access_mix.heap;
            let resident_heat = MemKind::ALL
                .iter()
                .map(|&k| mm.heat_on(PageType::HeapAnon, k))
                .sum::<u64>() as f64;
            // The swap subsystem remembers real per-page heat; unbacked
            // allocations are assumed cold.
            let swap_heat = self.kernel.swapped_heat() as f64
                + self.swapped_heap as f64
                    * hetero_workloads::WorkloadSpec::COLD_HEAT as f64;
            let frac = swap_heat / (swap_heat + resident_heat.max(1.0));
            // Cold pages have reuse distances far beyond one epoch: once
            // faulted in, a page stays resident for many epochs (something
            // colder takes its place). Cap the per-epoch fault rate at a
            // fraction of the swapped set.
            let faults = (heap_misses * frac).min(swapped_total as f64 / 8.0);
            self.clock.charge(
                CostCategory::IoWait,
                SWAP_SERVICE.saturating_mul(faults.round() as u64),
            );
        }
        self.misses_total += misses;
        self.epoch_misses = misses;
    }

    // ----------------------------------------------------------- management

    fn roll_stats_window(&mut self) {
        if self.clock.now() < self.next_window {
            return;
        }
        self.next_window = self.clock.now() + self.cfg.stats_window;
        if self.policy.uses_demand_prioritization() {
            self.prioritized = self.kernel.stats().neediest_type();
        }
        self.kernel.roll_stats_window();
    }

    fn charge_management(&mut self, t: Nanos) {
        self.clock.charge(CostCategory::Management, t);
    }

    fn charge_scan(&mut self, sim_pages: u64) {
        let real = self.cfg.real_pages(sim_pages);
        self.scanned_pages += real;
        let mut scan = self.cfg.costs.scan_per_page.saturating_mul(real);
        let mut flush = self.cfg.costs.tlb_flush;
        if self.cfg.bare_metal {
            // §4.3: on bare metal the scanner runs inside the OS — no VM
            // exits, no grant-table walks, no hypervisor shoot-down relay.
            scan = scan.mul_f64(0.5);
            flush = flush.mul_f64(0.5);
        }
        self.clock.charge(CostCategory::HotnessScan, scan);
        self.clock.charge(CostCategory::TlbFlush, flush);
    }

    fn charge_migration(&mut self, sim_pages: u64, guest_checked: bool) {
        if sim_pages == 0 {
            return;
        }
        self.migrations_tallied += sim_pages;
        let real = self.cfg.real_pages(sim_pages);
        let walk = self
            .cfg
            .costs
            .page_walk_per_page(real)
            .saturating_mul(real);
        let copy = self
            .cfg
            .costs
            .page_move_per_page(real)
            .saturating_mul(real);
        self.clock.charge(CostCategory::PageWalk, walk);
        self.clock.charge(CostCategory::PageCopy, copy);
        self.clock
            .charge(CostCategory::TlbFlush, self.cfg.costs.tlb_flush);
        if guest_checked {
            let validity = self.cfg.costs.validity_cost(real);
            self.clock.charge(CostCategory::PageWalk, validity);
        }
    }

    fn run_management(&mut self) {
        if self.policy.uses_guest_lru() {
            self.run_guest_lru();
        }
        match self.effective_tracking() {
            Tracking::None => {}
            Tracking::FullVm => self.run_vmm_exclusive_tracking(),
            Tracking::Guided => self.run_coordinated_tracking(),
            Tracking::AccessBit => self.run_access_bit_tracking(),
        }
    }

    /// The tracking discipline actually in force: the policy's default,
    /// unless the config pins one (`SimConfig::with_tracking`, surfaced as
    /// `repro --tracking`).
    fn effective_tracking(&self) -> Tracking {
        self.cfg.tracking_override.unwrap_or(self.policy.tracking())
    }

    fn run_guest_lru(&mut self) {
        let lru_span = self.span_open("guest-lru");
        // Active monitoring: age cold pages out of the active lists.
        let aged = self.kernel.age_lru(
            MemKind::Fast,
            self.cfg.lru_age_batch,
            self.cfg.lru_cold_heat,
        );
        if aged > 0 {
            self.aging_touches += aged;
            self.charge_management(LRU_AGE_COST.saturating_mul(aged));
        }
        // Memory-type-specific threshold: demote inactive pages when a
        // tier runs low (§3.3). Demotion is *need-based* with hysteresis and
        // runs at most once per management window — the LRU tops up what
        // churn consumed instead of cycling the tier through migration.
        if self.clock.now() < self.next_demote {
            self.span_close(lru_span);
            return;
        }
        // Budget scales with elapsed windows (long epochs may span several).
        let windows = (self
            .clock
            .now()
            .checked_sub(self.next_demote)
            .unwrap_or(Nanos::ZERO)
            .ratio(self.cfg.stats_window) as u64)
            .clamp(0, 3)
            + 1;
        let managed = if self.medium_params.is_some() { 2 } else { 1 };
        let mut any = false;
        for &tier in &MemKind::ALL[..managed] {
            let total = self.kernel.total_frames(tier);
            let free = self.kernel.free_frames(tier);
            let low = (self.cfg.fast_low_watermark * total as f64) as u64;
            if free < low {
                any = true;
                let goal = low + low / 2;
                let needed =
                    (goal - free).min(self.cfg.sim_batch(self.cfg.demote_batch) * windows);
                let moved = if self.cfg.typed_demotion {
                    self.kernel.demote_inactive_typed(tier, needed)
                } else {
                    self.kernel.demote_inactive(tier, needed)
                };
                self.charge_migration(moved, true);
                if moved > 0 {
                    self.trace(EventKind::Migration, || {
                        format!("LRU demoted {moved} pages off {tier}")
                    });
                }
            }
        }
        if any {
            self.next_demote = self.clock.now() + self.cfg.stats_window;
        }
        self.span_close(lru_span);
    }

    /// Touch oracle shared by both tracking disciplines: a page reads as
    /// accessed with probability proportional to its heat, scaled by how
    /// much of the app's inter-scan activity the interval covers.
    fn touch_probability(interval: Nanos, page: &Page) -> f64 {
        // Saturating: a genuinely warm page (heat ≥ 64) is all but certain
        // to be touched within a 100 ms interval, so it never reads as a
        // demotion candidate; only the cold tail looks idle. Cold pages
        // still trip the bit occasionally (false hots), which is the
        // realistic noise budget-wasting blind trackers pay for.
        let intensity = interval.as_millis_f64() / 25.0;
        (page.heat as f64 / 255.0 * intensity).min(1.0)
    }

    fn run_vmm_exclusive_tracking(&mut self) {
        // Epochs can span several scan intervals; catch up (bounded) so the
        // fixed 100 ms cadence holds in simulated time.
        let mut fired = 0;
        while self.clock.now() >= self.next_scan && fired < 4 {
            self.next_scan += self.cfg.scan_interval;
            fired += 1;
            self.vmm_exclusive_scan_once();
        }
        if self.clock.now() >= self.next_scan {
            // Too far behind: resynchronise without unbounded catch-up.
            self.next_scan = self.clock.now() + self.cfg.scan_interval;
        }
    }

    fn vmm_exclusive_scan_once(&mut self) {
        let scan_span = self.span_open("vmm-decision");
        self.scans += 1;
        let batch = self.cfg.sim_batch(self.cfg.scan_batch);
        let interval = self.cfg.scan_interval;
        let mut rng = self.rng.fork();
        let mut oracle =
            move |p: &Page| rng.chance(Self::touch_probability(interval, p));
        self.tracker
            .scan_full_into(&self.kernel, &mut oracle, batch, &mut self.scan_scratch);
        self.audit_scan_outcome();
        let scanned = self.scan_scratch.scanned;
        self.charge_scan(scanned);
        let (hot_n, cold_n) = (
            self.scan_scratch.hot_candidates.len(),
            self.scan_scratch.cold_candidates.len(),
        );
        self.trace(EventKind::Scan, || {
            format!("full scan: {scanned} frames, {hot_n} hot / {cold_n} cold candidates")
        });
        // Promote hot pages, hottest first — multi-interval access-bit
        // history ranks pages by touch frequency. The VMM is blind to guest
        // page state, so it migrates forced — including soon-to-die pages.
        // The candidate vectors are taken out of the scratch and put back
        // afterwards so their capacity carries to the next scan.
        let budget = self.cfg.sim_batch(self.cfg.migrate_batch);
        let mut migrated = 0u64;
        let mut hot = std::mem::take(&mut self.scan_scratch.hot_candidates);
        hot.sort_by_key(|&g| std::cmp::Reverse(self.kernel.memmap().page(g).heat));
        let cold = std::mem::take(&mut self.scan_scratch.cold_candidates);
        let mut next_cold = 0usize;
        'promote: for &gfn in hot.iter().take(budget as usize) {
            if self.kernel.free_frames(MemKind::Fast) == 0 {
                // Make room by demoting a cold FastMem page first.
                let Some(&victim) = cold.get(next_cold) else {
                    break 'promote;
                };
                next_cold += 1;
                if self
                    .kernel
                    .migrate_page_forced(victim, MemKind::Slow)
                    .is_ok()
                {
                    migrated += 1;
                } else {
                    continue 'promote;
                }
            }
            if self.kernel.migrate_page_forced(gfn, MemKind::Fast).is_ok() {
                migrated += 1;
            }
        }
        self.scan_scratch.hot_candidates = hot;
        self.scan_scratch.cold_candidates = cold;
        self.charge_migration(migrated, false);
        if let Some(t) = self.telemetry.as_mut() {
            t.registry.observe("vmm.scan.frames_per_pass", scanned);
            t.registry.observe("vmm.migrate.pages_per_pass", migrated);
        }
        self.span_close(scan_span);
    }

    fn run_coordinated_tracking(&mut self) {
        let mut fired = 0;
        while self.clock.now() >= self.next_scan && fired < 4 {
            fired += 1;
            self.coordinated_scan_once();
        }
        if self.clock.now() >= self.next_scan {
            self.next_scan = self.clock.now() + self.interval.interval();
        }
    }

    fn coordinated_scan_once(&mut self) {
        let scan_span = self.span_open("vmm-decision");
        // Architectural hints: Eq. 1 adapts the interval from LLC-miss
        // movement (§4.1). On top of Eq. 1, a yield-aware backoff stretches
        // the interval when recent scans found little to migrate — the
        // operational form of "when [misses are] low, the interval is
        // longer": once the hot set is placed, tracking pays for itself
        // ever more rarely.
        if self.cfg.adaptive_interval {
            self.interval.observe(self.epoch_misses);
            if self.last_scan_yield.saturating_mul(4)
                < self.cfg.sim_batch(self.cfg.migrate_batch)
            {
                self.interval.back_off(1.5);
            }
            self.next_scan += self.interval.interval();
        } else {
            self.next_scan += self.cfg.scan_interval;
        }
        self.scans += 1;
        // The guest guides *what* to track: heap VMA ranges; short-lived
        // I/O pages and pinned types go on the exception list.
        let tracking = self
            .kernel
            .address_space()
            .ranges_of(hetero_guest::vma::VmaKind::Anon);
        let exceptions = [
            PageType::PageCache,
            PageType::BufferCache,
            PageType::NetBuf,
            PageType::PageTable,
            PageType::Dma,
        ];
        let batch = self.cfg.sim_batch(self.cfg.scan_batch);
        let interval = if self.cfg.adaptive_interval {
            self.interval.interval()
        } else {
            self.cfg.scan_interval
        };
        let mut rng = self.rng.fork();
        let mut oracle =
            move |p: &Page| rng.chance(Self::touch_probability(interval, p));
        if self.cfg.guided_tracking {
            self.tracker.scan_tracked_into(
                &self.kernel,
                &tracking,
                &exceptions,
                &mut oracle,
                batch,
                &mut self.scan_scratch,
            );
        } else {
            self.tracker
                .scan_full_into(&self.kernel, &mut oracle, batch, &mut self.scan_scratch);
        }
        self.audit_scan_outcome();
        let scanned = self.scan_scratch.scanned;
        self.charge_scan(scanned);
        let hot_n = self.scan_scratch.hot_candidates.len();
        self.trace(EventKind::Scan, || {
            format!("guided scan: {scanned} PTEs, {hot_n} hot candidates")
        });
        // Guest-side migration with §4.1 validity checks, hottest first.
        // In write-aware mode (§4.3 extension over NVM-like SlowMem), the
        // rank adds write heat weighted by the store/load asymmetry — a
        // write-hot page saves more per promoted byte.
        let budget = self.cfg.sim_batch(self.cfg.migrate_batch);
        let mut migrated = 0u64;
        let mut checked = 0u64;
        let mut hot = std::mem::take(&mut self.scan_scratch.hot_candidates);
        let store_bias = if self.cfg.write_aware {
            (self.slow_params.store_latency.as_nanos() as f64
                / self.slow_params.load_latency.as_nanos().max(1) as f64)
                - 1.0
        } else {
            0.0
        };
        hot.sort_by_key(|&g| {
            let p = self.kernel.memmap().page(g);
            std::cmp::Reverse(p.heat as u32 + (p.write_heat as f64 * store_bias) as u32)
        });
        for &gfn in hot.iter().take(budget as usize) {
            checked += 1;
            if self.kernel.free_frames(MemKind::Fast) == 0 {
                let moved = self.kernel.demote_inactive(MemKind::Fast, 1);
                migrated += moved;
                if self.kernel.free_frames(MemKind::Fast) == 0 {
                    break;
                }
            }
            let res = match self.injector.as_mut() {
                Some(inj) => inj.migrate_page(&mut self.kernel, gfn, MemKind::Fast),
                None => self.kernel.migrate_page(gfn, MemKind::Fast),
            };
            match res {
                Ok(_) => migrated += 1,
                Err(
                    MigrateError::MarkedForReclaim
                    | MigrateError::DirtyIo
                    | MigrateError::NotPresent
                    | MigrateError::AlreadyThere
                    | MigrateError::NotMigratable
                    // Transient (injected) failures resolve by themselves;
                    // the page stays a candidate for the next scan.
                    | MigrateError::Transient,
                ) => {}
                Err(MigrateError::TargetFull) => break,
            }
        }
        self.scan_scratch.hot_candidates = hot;
        // Validity checks are cheap page walks over the candidates.
        let validity = self.cfg.costs.validity_cost(self.cfg.real_pages(checked));
        self.clock.charge(CostCategory::PageWalk, validity);
        self.charge_migration(migrated, false);
        self.last_scan_yield = migrated;
        if migrated > 0 {
            self.trace(EventKind::Migration, || {
                format!("guest promoted {migrated} pages ({checked} checked)")
            });
        }
        if let Some(t) = self.telemetry.as_mut() {
            t.registry.observe("vmm.scan.frames_per_pass", scanned);
            t.registry.observe("vmm.migrate.pages_per_pass", migrated);
        }
        self.span_close(scan_span);
    }

    fn run_access_bit_tracking(&mut self) {
        let mut fired = 0;
        while self.clock.now() >= self.next_scan && fired < 4 {
            fired += 1;
            self.access_bit_scan_once();
        }
        if self.clock.now() >= self.next_scan {
            self.next_scan = self.clock.now() + self.interval.interval();
        }
    }

    /// One A/D-harvest pass (HMM-V-style page-table tracking). Unlike the
    /// oracle-driven disciplines, hotness comes from the page table itself:
    /// the inter-scan activity sets real accessed/dirty bits, and
    /// [`PageTable::scan_and_reset`] harvests them — access bits for heat,
    /// dirty bits for the write heat that the §4.3 write-aware rank
    /// consumes. Priced per PTE walked via [`CostModel::scan_per_page`].
    ///
    /// [`PageTable::scan_and_reset`]: hetero_guest::pagetable::PageTable::scan_and_reset
    /// [`CostModel::scan_per_page`]: hetero_mem::CostModel
    fn access_bit_scan_once(&mut self) {
        let scan_span = self.span_open("vmm-decision");
        // Same Eq. 1 adaptive cadence + yield-aware backoff as the
        // coordinated discipline.
        if self.cfg.adaptive_interval {
            self.interval.observe(self.epoch_misses);
            if self.last_scan_yield.saturating_mul(4)
                < self.cfg.sim_batch(self.cfg.migrate_batch)
            {
                self.interval.back_off(1.5);
            }
            self.next_scan += self.interval.interval();
        } else {
            self.next_scan += self.cfg.scan_interval;
        }
        self.scans += 1;
        let interval = if self.cfg.adaptive_interval {
            self.interval.interval()
        } else {
            self.cfg.scan_interval
        };
        // Sweep window: up to `batch` heap VPNs starting at the resume
        // cursor, wrapping across the anon ranges (BTreeMap order, so the
        // walk is deterministic at any `--jobs`).
        let mut ranges = self
            .kernel
            .address_space()
            .ranges_of(hetero_guest::vma::VmaKind::Anon);
        ranges.retain(|&(s, e)| e > s);
        if ranges.is_empty() {
            self.span_close(scan_span);
            return;
        }
        let total_vpns: u64 = ranges.iter().map(|&(s, e)| e - s).sum();
        let batch = self.cfg.sim_batch(self.cfg.scan_batch);
        let mut remaining = batch.min(total_vpns);
        let mut idx = ranges
            .iter()
            .position(|&(s, e)| self.ab_cursor >= s && self.ab_cursor < e)
            .or_else(|| ranges.iter().position(|&(s, _)| s > self.ab_cursor))
            .unwrap_or(0);
        let mut cur = if self.ab_cursor >= ranges[idx].0 && self.ab_cursor < ranges[idx].1 {
            self.ab_cursor
        } else {
            ranges[idx].0
        };
        let mut window: Vec<(u64, u64)> = Vec::new();
        while remaining > 0 {
            let (_, e) = ranges[idx];
            let take = (e - cur).min(remaining);
            window.push((cur, cur + take));
            remaining -= take;
            cur += take;
            if cur >= e {
                idx = (idx + 1) % ranges.len();
                cur = ranges[idx].0;
            }
        }
        self.ab_cursor = cur;
        // Inter-scan guest activity: the touch oracle drives real PTE bits.
        // A touched page dirties in proportion to its write heat, so the
        // dirty-bit channel sees the same store skew §4.3 describes.
        let mut rng = self.rng.fork();
        for &(lo, hi) in &window {
            for vpn in lo..hi {
                let Some(gfn) = self.kernel.page_table().translate(vpn) else {
                    continue;
                };
                let page = self.kernel.memmap().page(gfn);
                let p_touch = Self::touch_probability(interval, page);
                let w_ratio =
                    (page.write_heat as f64 / (page.heat as f64).max(1.0)).min(1.0);
                if !rng.chance(p_touch) {
                    continue;
                }
                let write = rng.chance(w_ratio);
                self.kernel.touch_page(vpn, write);
            }
        }
        // Harvest-and-reset. The closure records VPNs (it holds the page
        // table mutably); they resolve to frames right after, before the
        // heap can move anything.
        let mut harvest = std::mem::take(&mut self.ab_harvest);
        harvest.clear();
        let mut visited = 0u64;
        for &(lo, hi) in &window {
            visited += self.kernel.harvest_ad_range(lo, hi, |vpn, accessed, dirty| {
                harvest.push((Gfn(vpn), accessed, dirty));
            });
        }
        for entry in &mut harvest {
            entry.0 = self
                .kernel
                .page_table()
                .translate(entry.0 .0)
                .expect("harvested PTE is mapped");
        }
        self.tracker
            .scan_harvest_into(&self.kernel, &harvest, visited, &mut self.scan_scratch);
        self.ab_harvest = harvest;
        self.audit_scan_outcome();
        let scanned = self.scan_scratch.scanned;
        self.charge_scan(scanned);
        let hot_n = self.scan_scratch.hot_candidates.len();
        self.trace(EventKind::Scan, || {
            format!("A/D harvest: {scanned} PTEs, {hot_n} hot candidates")
        });
        // Guest-side migration with validity checks, as in the coordinated
        // discipline — but ranked purely from harvested history: access
        // bits for heat, dirty bits (weighted by the store/load asymmetry)
        // for write heat.
        let budget = self.cfg.sim_batch(self.cfg.migrate_batch);
        let mut migrated = 0u64;
        let mut checked = 0u64;
        let mut hot = std::mem::take(&mut self.scan_scratch.hot_candidates);
        let store_bias = if self.cfg.write_aware {
            (self.slow_params.store_latency.as_nanos() as f64
                / self.slow_params.load_latency.as_nanos().max(1) as f64)
                - 1.0
        } else {
            0.0
        };
        hot.sort_by_key(|&g| {
            let heat = self.tracker.history_bits(g).count_ones();
            let wheat = self.tracker.write_history_bits(g).count_ones();
            std::cmp::Reverse(heat + (wheat as f64 * store_bias) as u32)
        });
        for &gfn in hot.iter().take(budget as usize) {
            checked += 1;
            if self.kernel.free_frames(MemKind::Fast) == 0 {
                let moved = self.kernel.demote_inactive(MemKind::Fast, 1);
                migrated += moved;
                if self.kernel.free_frames(MemKind::Fast) == 0 {
                    break;
                }
            }
            let res = match self.injector.as_mut() {
                Some(inj) => inj.migrate_page(&mut self.kernel, gfn, MemKind::Fast),
                None => self.kernel.migrate_page(gfn, MemKind::Fast),
            };
            match res {
                Ok(_) => migrated += 1,
                Err(
                    MigrateError::MarkedForReclaim
                    | MigrateError::DirtyIo
                    | MigrateError::NotPresent
                    | MigrateError::AlreadyThere
                    | MigrateError::NotMigratable
                    | MigrateError::Transient,
                ) => {}
                Err(MigrateError::TargetFull) => break,
            }
        }
        self.scan_scratch.hot_candidates = hot;
        let validity = self.cfg.costs.validity_cost(self.cfg.real_pages(checked));
        self.clock.charge(CostCategory::PageWalk, validity);
        self.charge_migration(migrated, false);
        self.last_scan_yield = migrated;
        if migrated > 0 {
            self.trace(EventKind::Migration, || {
                format!("A/D tracker promoted {migrated} pages ({checked} checked)")
            });
        }
        if let Some(t) = self.telemetry.as_mut() {
            t.registry.observe("vmm.scan.frames_per_pass", scanned);
            t.registry.observe("vmm.migrate.pages_per_pass", migrated);
        }
        self.span_close(scan_span);
    }
}

/// Convenience: run `policy` over an [`AppWorkload`] built from `spec`.
pub fn run_app(cfg: &SimConfig, policy: Policy, spec: hetero_workloads::WorkloadSpec) -> RunReport {
    let workload = AppWorkload::new(spec, cfg.page_size, cfg.scale);
    SingleVmSim::new(cfg.clone(), policy, workload).run()
}


hetero_sim::impl_snap!(struct TierChain { kinds, len });

hetero_sim::impl_snap!(struct SingleVmSim {
    cfg,
    policy,
    workload,
    kernel,
    rng,
    clock,
    tracker,
    scan_scratch,
    interval,
    next_scan,
    next_window,
    prioritized,
    fast_params,
    slow_params,
    medium_params,
    chain_fast_first,
    chain_slow_only,
    chain_slow_first,
    heap_chunks,
    hot_vpns,
    next_demote,
    last_scan_yield,
    ab_cursor,
    ab_harvest,
    cache_next,
    cache_live,
    cache_lazy,
    buffer_next,
    buffer_live,
    buffer_lazy,
    misses_total,
    epoch_misses,
    slow_writes,
    swapped_heap,
    bw_share,
    scans,
    scanned_pages,
    epochs,
    done,
    events,
    telemetry,
    injector,
    degraded,
    storm_factor,
    violations,
    sanitizer,
    migrations_tallied,
    persist,
    timerq,
    epochs_skipped,
    aging_touches,
    heap_gfns,
    pending_crash,
    recoveries,
    recovered_frames,
    lost_frames,
});

impl SingleVmSim<AppWorkload> {
    /// Serializes the complete engine state — kernel, RNG stream, clock,
    /// tracker, event queue, fault injector, persistence domain and every
    /// counter — under a [`LAYER_SINGLE`](crate::snapshot::LAYER_SINGLE)
    /// header. A run resumed via [`SingleVmSim::restore`] continues
    /// byte-identically.
    pub fn save(&self) -> Vec<u8> {
        use hetero_sim::snap::Snap;
        let mut w = hetero_sim::snap::SnapWriter::new();
        hetero_sim::snap::write_header(&mut w, crate::snapshot::LAYER_SINGLE);
        self.snap(&mut w);
        w.into_bytes()
    }

    /// Rebuilds an engine from [`SingleVmSim::save`] bytes. Fails loudly
    /// on a bad magic, version or layer, on truncation, and on trailing
    /// bytes — never panics on malformed input.
    pub fn restore(bytes: &[u8]) -> Result<Self, hetero_sim::snap::SnapshotError> {
        let mut r = hetero_sim::snap::SnapReader::new(bytes);
        hetero_sim::snap::read_header(&mut r, crate::snapshot::LAYER_SINGLE)?;
        let sim = <Self as hetero_sim::snap::Snap>::unsnap(&mut r)?;
        r.finish()?;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_workloads::apps;

    fn quick_cfg() -> SimConfig {
        // Small, fast configuration for unit tests: 1/4 capacity ratio.
        SimConfig::paper_default()
            .with_capacity_ratio(1, 4)
            .with_seed(7)
    }

    fn short_spec(mut spec: hetero_workloads::WorkloadSpec) -> hetero_workloads::WorkloadSpec {
        spec.total_instructions /= 5;
        spec
    }

    #[test]
    fn fastmem_only_beats_slowmem_only() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::graphchi());
        let fast = run_app(&cfg, Policy::FastMemOnly, spec.clone());
        let slow = run_app(&cfg, Policy::SlowMemOnly, spec);
        assert!(
            slow.runtime > fast.runtime.saturating_mul(2),
            "slow {} vs fast {}",
            slow.runtime,
            fast.runtime
        );
    }

    #[test]
    fn heap_od_helps_heap_bound_apps() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::graphchi());
        let od = run_app(&cfg, Policy::HeapOd, spec.clone());
        let slow = run_app(&cfg, Policy::SlowMemOnly, spec);
        assert!(
            od.gain_percent_vs(&slow) > 20.0,
            "Heap-OD gain {:.1}%",
            od.gain_percent_vs(&slow)
        );
    }

    #[test]
    fn io_prioritization_helps_io_bound_apps() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::leveldb());
        let heap_od = run_app(&cfg, Policy::HeapOd, spec.clone());
        let io_od = run_app(&cfg, Policy::HeapIoSlabOd, spec);
        assert!(
            io_od.runtime < heap_od.runtime,
            "io-od {} vs heap-od {}",
            io_od.runtime,
            heap_od.runtime
        );
    }

    #[test]
    fn vmm_exclusive_pays_tracking_overhead() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::graphchi());
        let r = run_app(&cfg, Policy::VmmExclusive, spec);
        assert!(r.scans > 0, "tracking must run");
        assert!(r.scanned_pages > 0);
        assert!(
            r.overhead_percent() > 1.0,
            "overhead {:.2}%",
            r.overhead_percent()
        );
        assert!(r.migrations > 0, "hot pages must be promoted");
    }

    #[test]
    fn hetero_lru_migrates_without_vmm_scans() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::graphchi());
        let r = run_app(&cfg, Policy::HeteroLru, spec);
        assert_eq!(r.scans, 0, "no VMM tracking in guest-only mode");
        assert_eq!(r.scanned_pages, 0);
    }

    #[test]
    fn coordinated_scans_less_than_vmm_exclusive() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::graphchi());
        let coord = run_app(&cfg, Policy::HeteroCoordinated, spec.clone());
        let vmm = run_app(&cfg, Policy::VmmExclusive, spec);
        // Guided scans touch tracked ranges only; normalised per scan they
        // cover no more than the full-VM batches.
        assert!(coord.scans > 0);
        let per_scan_coord = coord.scanned_pages as f64 / coord.scans as f64;
        let per_scan_vmm = vmm.scanned_pages as f64 / vmm.scans as f64;
        assert!(
            per_scan_coord <= per_scan_vmm * 1.01,
            "guided {per_scan_coord:.0} vs full {per_scan_vmm:.0}"
        );
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::redis());
        let a = run_app(&cfg, Policy::HeteroLru, spec.clone());
        let b = run_app(&cfg, Policy::HeteroLru, spec);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.misses, b.misses);
    }

    #[test]
    fn alloc_miss_ratio_rises_as_fastmem_shrinks() {
        let spec = short_spec(apps::x_stream());
        let big = run_app(
            &quick_cfg().with_capacity_ratio(1, 2),
            Policy::HeapIoSlabOd,
            spec.clone(),
        );
        let small = run_app(
            &quick_cfg().with_capacity_ratio(1, 8),
            Policy::HeapIoSlabOd,
            spec,
        );
        assert!(
            small.fast_alloc_miss_ratio > big.fast_alloc_miss_ratio,
            "1/8 ratio {:.3} vs 1/2 ratio {:.3}",
            small.fast_alloc_miss_ratio,
            big.fast_alloc_miss_ratio
        );
    }

    #[test]
    fn tracing_captures_scans_and_migrations() {
        let cfg = SimConfig {
            trace_events: 64,
            ..quick_cfg()
        };
        let spec = short_spec(apps::graphchi());
        let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::HeteroCoordinated, wl);
        while sim.step() {}
        let log = sim.events().expect("tracing enabled");
        assert!(!log.is_empty());
        assert!(
            log.iter().any(|e| e.kind == hetero_sim::EventKind::Scan)
                || log.dropped() > 0,
            "scans should be traced"
        );
        // Untraced runs carry no log.
        let wl = AppWorkload::new(short_spec(apps::nginx()), 4096, 64);
        let sim = SingleVmSim::new(quick_cfg(), Policy::SlowMemOnly, wl);
        assert!(sim.events().is_none());
    }

    #[test]
    fn epoch_count_matches_workload() {
        let cfg = quick_cfg();
        let spec = short_spec(apps::nginx());
        let expected = spec.epochs();
        let r = run_app(&cfg, Policy::SlowMemOnly, spec);
        assert_eq!(r.epochs, expected);
    }

    #[test]
    fn hot_pages_estimate_boundaries() {
        let est = SingleVmSim::<AppWorkload>::hot_pages_estimate;
        let cold = hetero_workloads::WorkloadSpec::COLD_HEAT as u64;
        // No resident pages, no heat: nothing can be hot.
        assert_eq!(est(0, 0), 0);
        // Aggregate heat at or below the all-cold floor `cold·pages`
        // saturates at zero instead of underflowing.
        assert_eq!(est(cold * 100, 100), 0);
        assert_eq!(est(cold * 100 - 1, 100), 0);
        assert_eq!(est(0, 100), 0);
        // Above the floor the estimate grows with aggregate heat.
        let lo = est(cold * 100 + 1_000, 100);
        let hi = est(cold * 100 + 10_000, 100);
        assert!(hi > lo, "estimate must grow with heat: {lo} vs {hi}");
    }

    #[test]
    fn event_sched_matches_dense_sched() {
        for policy in [
            Policy::HeteroCoordinated,
            Policy::HeteroLru,
            Policy::VmmExclusive,
        ] {
            let spec = short_spec(apps::graphchi());
            let dense = run_app(
                &quick_cfg().with_sched(SchedMode::Dense),
                policy,
                spec.clone(),
            );
            let event = run_app(&quick_cfg().with_sched(SchedMode::Event), policy, spec);
            assert_eq!(
                dense.to_json(),
                event.to_json(),
                "{} reports must be byte-identical across schedulers",
                policy.name()
            );
        }
    }

    #[test]
    fn event_sched_skips_idle_management_epochs() {
        // VmmExclusive runs no guest LRU, so with the scan/window cadence
        // stretched past the ~570 ms epoch length the management point has
        // genuinely nothing to do most epochs.
        let mut cfg = quick_cfg().with_sched(SchedMode::Event);
        cfg.scan_interval = Nanos::from_secs(2);
        cfg.stats_window = Nanos::from_secs(2);
        let spec = short_spec(apps::graphchi());
        let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::VmmExclusive, wl);
        while sim.step() {}
        assert!(sim.events_fired() > 0, "queued deadlines must fire");
        assert!(
            sim.epochs_skipped() > 0,
            "a quiet run must skip some management epochs"
        );
    }

    #[test]
    fn engine_counters_are_observational_and_sampled() {
        // Telemetry (and the engine.* scheduler counters it samples) must
        // never perturb the run: the exported report is byte-identical
        // with the registry off and on.
        let run = |telemetry: bool| {
            let cfg = quick_cfg()
                .with_sched(SchedMode::Event)
                .with_telemetry(telemetry);
            let wl = AppWorkload::new(short_spec(apps::graphchi()), cfg.page_size, cfg.scale);
            let mut sim = SingleVmSim::new(cfg, Policy::HeteroCoordinated, wl);
            while sim.step() {}
            sim
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(
            off.report().to_json(),
            on.report().to_json(),
            "telemetry must not perturb the run"
        );
        assert!(off.telemetry().is_none());
        let reg = &on.telemetry().expect("registry was enabled").registry;
        assert_eq!(reg.counter("engine.events_fired"), on.events_fired());
        assert_eq!(reg.counter("engine.epochs_skipped"), on.epochs_skipped());
        assert!(
            reg.counter("engine.events_fired") > 0,
            "an event-mode run must fire deadlines"
        );
    }

    #[test]
    fn eager_persistence_flushes_and_costs_time() {
        let spec = short_spec(apps::graphchi());
        let cfg = quick_cfg().with_persist(hetero_mem::FlushPolicy::Eager);
        let wl = AppWorkload::new(spec.clone(), cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::HeapOd, wl);
        while sim.step() {}
        let dom = sim.persist_domain().expect("eager policy arms the domain");
        assert!(dom.flushes > 0, "NVM residents must be flushed");
        assert!(dom.fences > 0);
        let eager = sim.report();
        let off = run_app(&quick_cfg(), Policy::HeapOd, spec);
        assert!(
            eager.runtime >= off.runtime,
            "flush traffic cannot make the run faster: {} vs {}",
            eager.runtime,
            off.runtime
        );
    }

    #[test]
    fn crash_recovery_is_deterministic_and_audit_clean() {
        let run = || {
            let cfg = quick_cfg()
                .with_persist(hetero_mem::FlushPolicy::EpochBatched)
                .with_audit(AuditLevel::Epoch);
            let spec = short_spec(apps::redis());
            let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
            let mut sim = SingleVmSim::new(cfg, Policy::HeteroLru, wl);
            sim.set_fault_injector(FaultInjector::new(
                hetero_faults::FaultPlan::power_loss(11, 0.05),
            ));
            while sim.step() {}
            assert!(
                sim.violations().is_empty(),
                "recovery oracle found: {:?}",
                sim.violations()
            );
            assert!(sim.recoveries() > 0, "the armed crash must fire");
            let trace = sim.fault_injector().unwrap().trace().to_text();
            (sim.report(), trace)
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(ta, tb, "fault traces must be byte-identical");
    }

    #[test]
    fn guest_crash_preserves_nvm_power_loss_without_persistence_loses_all() {
        let slow_resident = |sim: &SingleVmSim| -> u64 {
            let mm = sim.kernel().memmap();
            mm.iter_kind(MemKind::Slow)
                .filter(|&g| mm.page(g).is_present())
                .count() as u64
        };
        // Guest crash with NVM survival: SlowMem residents are rebuilt.
        let cfg = quick_cfg()
            .with_persist(hetero_mem::FlushPolicy::Eager)
            .with_audit(AuditLevel::Epoch);
        let spec = short_spec(apps::graphchi());
        let wl = AppWorkload::new(spec.clone(), cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::SlowMemOnly, wl);
        for _ in 0..20 {
            if !sim.step() {
                break;
            }
        }
        assert!(slow_resident(&sim) > 0, "workload must populate SlowMem");
        sim.recover(hetero_faults::FaultKind::GuestCrashPersist);
        assert!(sim.recovered_frames() > 0, "NVM residents survive a guest crash");
        assert!(slow_resident(&sim) > 0);
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
        // Power loss with persistence off: nothing is durable.
        let cfg = quick_cfg().with_audit(AuditLevel::Epoch);
        let wl = AppWorkload::new(spec, cfg.page_size, cfg.scale);
        let mut sim = SingleVmSim::new(cfg, Policy::SlowMemOnly, wl);
        for _ in 0..20 {
            if !sim.step() {
                break;
            }
        }
        sim.recover(hetero_faults::FaultKind::HostPowerLoss);
        assert_eq!(sim.recovered_frames(), 0, "no flush policy, no survivors");
        assert!(sim.lost_frames() > 0);
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
    }

    #[test]
    fn hot_pages_estimate_guards_degenerate_heat_anchors() {
        let cold = hetero_workloads::WorkloadSpec::COLD_HEAT as u64;
        // Degenerate spec: expected hot heat *equals* the cold floor. The
        // unguarded inversion divides by zero, sends +inf through the
        // `as u64` cast, and reports u64::MAX hot pages.
        assert_eq!(
            SingleVmSim::<AppWorkload>::hot_pages_estimate_with(10_000, 100, cold as f64, cold),
            0
        );
        // Hot heat *below* cold (negative denominator) must also clamp.
        assert_eq!(
            SingleVmSim::<AppWorkload>::hot_pages_estimate_with(10_000, 100, 1.0, cold),
            0
        );
        // A fully cooled heap (aggregate at the all-cold floor) reads zero.
        assert_eq!(
            SingleVmSim::<AppWorkload>::hot_pages_estimate_with(cold * 100, 100, 143.7, cold),
            0
        );
        // Sanity: the healthy anchors still invert: 50 hot pages at heat
        // 143.7 over a 100-page heap.
        let heat = (50.0 * 143.7) as u64 + 50 * cold;
        let est = SingleVmSim::<AppWorkload>::hot_pages_estimate_with(heat, 100, 143.7, cold);
        assert!((49..=51).contains(&est), "estimate {est} should be ~50");
    }
}
