//! Run results and derived figures-of-merit.

use hetero_sim::export::{json_f64, json_string};
use hetero_sim::{Clock, CostCategory, Nanos};

/// The result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy and application names (for table rendering).
    pub policy: &'static str,
    /// Application name.
    pub app: &'static str,
    /// End-to-end runtime.
    pub runtime: Nanos,
    /// Time attribution (compute, stalls, management categories).
    pub breakdown: Vec<(CostCategory, Nanos)>,
    /// Total LLC misses served by memory.
    pub misses: f64,
    /// Completed page migrations (promotions + demotions), simulated pages.
    pub migrations: u64,
    /// Hotness scans performed.
    pub scans: u64,
    /// Real (4 KiB) pages examined by scans.
    pub scanned_pages: u64,
    /// Cumulative FastMem allocation miss ratio (Fig 10 metric).
    pub fast_alloc_miss_ratio: f64,
    /// Average memory stall per miss, in nanoseconds.
    pub avg_miss_latency_ns: f64,
    /// Achieved memory bandwidth in GB/s (Fig 7 metric).
    pub achieved_bandwidth_gbps: f64,
    /// Store misses served by the slow tier — the §4.3 endurance proxy
    /// (each is one cache-line write into NVM).
    pub slow_writes: f64,
    /// Epochs executed.
    pub epochs: u64,
    /// Trace events evicted from the bounded event log (0 when tracing was
    /// off or the log never overflowed) — a non-zero value warns that the
    /// retained trace is a suffix, not the whole story.
    pub events_dropped: u64,
}

impl RunReport {
    /// Assembles a report from engine state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        policy: &'static str,
        app: &'static str,
        clock: &Clock,
        misses: f64,
        migrations: u64,
        scans: u64,
        scanned_pages: u64,
        fast_alloc_miss_ratio: f64,
        slow_writes: f64,
        epochs: u64,
        events_dropped: u64,
    ) -> Self {
        let runtime = clock.now();
        let stall = clock.spent(CostCategory::MemoryStall);
        let avg_miss_latency_ns = if misses > 0.0 {
            stall.as_nanos() as f64 / misses
        } else {
            0.0
        };
        let achieved_bandwidth_gbps = if runtime.is_zero() {
            0.0
        } else {
            misses * 64.0 / runtime.as_nanos() as f64
        };
        RunReport {
            policy,
            app,
            runtime,
            breakdown: clock.breakdown().collect(),
            misses,
            migrations,
            scans,
            scanned_pages,
            fast_alloc_miss_ratio,
            avg_miss_latency_ns,
            achieved_bandwidth_gbps,
            slow_writes,
            epochs,
            events_dropped,
        }
    }

    /// Time spent in one category.
    pub fn spent(&self, category: CostCategory) -> Nanos {
        self.breakdown
            .iter()
            .find(|(c, _)| *c == category)
            .map(|&(_, t)| t)
            .unwrap_or(Nanos::ZERO)
    }

    /// Total tiering-management overhead.
    pub fn overhead(&self) -> Nanos {
        self.breakdown
            .iter()
            .filter(|(c, _)| c.is_overhead())
            .map(|&(_, t)| t)
            .sum()
    }

    /// Management overhead as a percentage of runtime (Fig 8 y-axis).
    ///
    /// A zero-runtime report (an experiment that never stepped) yields
    /// `0.0` rather than a NaN/degenerate ratio.
    pub fn overhead_percent(&self) -> f64 {
        if self.runtime.is_zero() {
            return 0.0;
        }
        self.overhead().ratio(self.runtime) * 100.0
    }

    /// Performance gain over a baseline, in percent (Fig 9/11/13 y-axis):
    /// `(T_base / T_self − 1) × 100`.
    ///
    /// Degenerate comparisons — either runtime zero — yield `0.0` (no
    /// measurable gain), not `-100%` or an infinity.
    pub fn gain_percent_vs(&self, baseline: &RunReport) -> f64 {
        if self.runtime.is_zero() || baseline.runtime.is_zero() {
            return 0.0;
        }
        (baseline.runtime.ratio(self.runtime) - 1.0) * 100.0
    }

    /// Slowdown factor relative to a baseline (Fig 1/2/3 y-axis):
    /// `T_self / T_base`.
    ///
    /// Degenerate comparisons — either runtime zero — yield `0.0` so a
    /// broken baseline is visible in a table rather than poisoning it
    /// with NaN/inf.
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        if self.runtime.is_zero() || baseline.runtime.is_zero() {
            return 0.0;
        }
        self.runtime.ratio(baseline.runtime)
    }

    /// Average miss latency converted to core cycles (Fig 6 y-axis).
    pub fn avg_miss_latency_cycles(&self, clock_ghz: f64) -> f64 {
        self.avg_miss_latency_ns * clock_ghz
    }

    /// Renders the report as a JSON object (serde-free; see
    /// [`hetero_sim::export`]).
    ///
    /// Times are raw nanosecond integers; the cost breakdown becomes an
    /// object keyed by category display name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"policy\": {},\n", json_string(self.policy)));
        out.push_str(&format!("  \"app\": {},\n", json_string(self.app)));
        out.push_str(&format!(
            "  \"runtime_ns\": {},\n",
            self.runtime.as_nanos()
        ));
        out.push_str("  \"breakdown_ns\": {");
        for (i, (cat, t)) in self.breakdown.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {}",
                json_string(&cat.to_string()),
                t.as_nanos()
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"misses\": {},\n", json_f64(self.misses)));
        out.push_str(&format!("  \"migrations\": {},\n", self.migrations));
        out.push_str(&format!("  \"scans\": {},\n", self.scans));
        out.push_str(&format!("  \"scanned_pages\": {},\n", self.scanned_pages));
        out.push_str(&format!(
            "  \"fast_alloc_miss_ratio\": {},\n",
            json_f64(self.fast_alloc_miss_ratio)
        ));
        out.push_str(&format!(
            "  \"avg_miss_latency_ns\": {},\n",
            json_f64(self.avg_miss_latency_ns)
        ));
        out.push_str(&format!(
            "  \"achieved_bandwidth_gbps\": {},\n",
            json_f64(self.achieved_bandwidth_gbps)
        ));
        out.push_str(&format!(
            "  \"slow_writes\": {},\n",
            json_f64(self.slow_writes)
        ));
        out.push_str(&format!(
            "  \"overhead_percent\": {},\n",
            json_f64(self.overhead_percent())
        ));
        out.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        out.push_str(&format!("  \"events_dropped\": {}\n", self.events_dropped));
        out.push('}');
        out
    }
}


hetero_sim::impl_snap!(struct RunReport {
    policy,
    app,
    runtime,
    breakdown,
    misses,
    migrations,
    scans,
    scanned_pages,
    fast_alloc_miss_ratio,
    avg_miss_latency_ns,
    achieved_bandwidth_gbps,
    slow_writes,
    epochs,
    events_dropped,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn report(runtime_ms: u64, stall_ms: u64, misses: f64) -> RunReport {
        let mut clock = Clock::new();
        clock.charge(
            CostCategory::Compute,
            Nanos::from_millis(runtime_ms - stall_ms),
        );
        clock.charge(CostCategory::MemoryStall, Nanos::from_millis(stall_ms));
        RunReport::from_parts("p", "a", &clock, misses, 0, 0, 0, 0.0, 0.0, 10, 0)
    }

    #[test]
    fn gain_and_slowdown_are_inverse_views() {
        let fast = report(100, 20, 1e6);
        let slow = report(300, 200, 1e6);
        assert!((slow.slowdown_vs(&fast) - 3.0).abs() < 1e-9);
        assert!((fast.gain_percent_vs(&slow) - 200.0).abs() < 1e-9);
        assert!((slow.gain_percent_vs(&slow)).abs() < 1e-9);
    }

    #[test]
    fn avg_latency_derives_from_stall() {
        let r = report(100, 50, 1e6);
        // 50 ms stall over 1e6 misses = 50 ns/miss.
        assert!((r.avg_miss_latency_ns - 50.0).abs() < 1e-9);
        assert!((r.avg_miss_latency_cycles(2.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_derives_from_misses() {
        let r = report(100, 50, 1e6);
        // 64 MB over 100 ms = 0.64 GB/s.
        assert!((r.achieved_bandwidth_gbps - 0.64).abs() < 1e-9);
    }

    #[test]
    fn zero_runtime_ratios_are_guarded_both_directions() {
        let zero = {
            let clock = Clock::new();
            RunReport::from_parts("p", "a", &clock, 0.0, 0, 0, 0, 0.0, 0.0, 0, 0)
        };
        let normal = report(100, 20, 1e6);

        // Zero self-runtime: the raw formula would report -100% gain and a
        // 0/T "speedup"; both directions must degrade to 0.0 instead.
        assert_eq!(zero.gain_percent_vs(&normal), 0.0);
        assert_eq!(normal.gain_percent_vs(&zero), 0.0);
        assert_eq!(zero.slowdown_vs(&normal), 0.0);
        assert_eq!(normal.slowdown_vs(&zero), 0.0);
        assert_eq!(zero.overhead_percent(), 0.0);
        assert!(zero.gain_percent_vs(&zero).is_finite());
        assert!(zero.slowdown_vs(&zero).is_finite());
    }

    #[test]
    fn report_json_is_valid_and_carries_key_figures() {
        let r = report(100, 50, 1e6);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"policy\": \"p\""));
        assert!(json.contains("\"runtime_ns\": 100000000"));
        assert!(json.contains("\"misses\": 1000000"));
        assert!(json.contains("\"memory-stall\": 50000000"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn overhead_percent_with_management_time() {
        let mut clock = Clock::new();
        clock.charge(CostCategory::Compute, Nanos::from_millis(80));
        clock.charge(CostCategory::HotnessScan, Nanos::from_millis(15));
        clock.charge(CostCategory::PageCopy, Nanos::from_millis(5));
        let r = RunReport::from_parts("p", "a", &clock, 0.0, 0, 0, 0, 0.0, 0.0, 1, 0);
        assert!((r.overhead_percent() - 20.0).abs() < 1e-9);
        assert_eq!(r.spent(CostCategory::HotnessScan), Nanos::from_millis(15));
        assert_eq!(r.avg_miss_latency_ns, 0.0, "no misses, no latency");
    }
}
