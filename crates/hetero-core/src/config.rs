//! Simulation configuration.

use std::fmt;
use std::str::FromStr;

use hetero_faults::AuditLevel;
use hetero_mem::{CostModel, FlushPolicy, LlcModel, ThrottleConfig, TierProfile};
use hetero_sim::Nanos;

use crate::policy::Tracking;

/// How the epoch engine schedules its periodic management work.
///
/// Both modes produce **byte-identical** reports, traces and exports for
/// the same configuration (pinned by `tests/sched_equivalence.rs`); they
/// differ only in wall-clock cost. `Dense` re-evaluates every subsystem's
/// internal guard every epoch; `Event` keeps each subsystem's next
/// deadline in an [`EventQueue`](crate::eventq::EventQueue) and skips the
/// management phase outright when nothing is due.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Walk every management subsystem every epoch (the reference
    /// scheduler; each subsystem no-ops off its own internal guard).
    Dense,
    /// Event-driven: management runs only when a queued deadline has
    /// arrived or the cold-page ledger reports pending LRU aging work.
    #[default]
    Event,
}

impl fmt::Display for SchedMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedMode::Dense => write!(f, "dense"),
            SchedMode::Event => write!(f, "event"),
        }
    }
}

impl FromStr for SchedMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(SchedMode::Dense),
            "event" => Ok(SchedMode::Event),
            other => Err(format!("unknown sched mode '{other}' (expected dense or event)")),
        }
    }
}

/// Full configuration of one simulated guest + policy run.
///
/// Defaults reproduce the paper's evaluation platform (§5.1): 16 cores,
/// 8 GB SlowMem at `(L:5, B:9)`, FastMem capacity varied per experiment,
/// 16 MB LLC, 100 ms hotness-scan interval over 32 K-page batches.
///
/// Capacities are expressed at **paper scale** (bytes); the engine divides
/// them by [`SimConfig::scale`], with each simulated page standing for
/// `scale` real 4 KiB pages. Management costs are converted back to real
/// pages before being charged, so Table 6 / Fig 8 economics are preserved.
///
/// # Examples
///
/// ```
/// use hetero_core::SimConfig;
///
/// let cfg = SimConfig::paper_default().with_fast_bytes(1 << 30);
/// assert_eq!(cfg.fast_bytes, 1 << 30);
/// assert!(cfg.guest_frames_fast() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// FastMem capacity in bytes (paper scale).
    pub fast_bytes: u64,
    /// SlowMem capacity in bytes (paper scale).
    pub slow_bytes: u64,
    /// MediumMem capacity in bytes (0 = two-tier, the paper's core design;
    /// non-zero enables the §4.3 multi-level extension).
    pub medium_bytes: u64,
    /// FastMem timing.
    pub fast_throttle: ThrottleConfig,
    /// SlowMem timing.
    pub slow_throttle: ThrottleConfig,
    /// MediumMem timing (conventional DRAM between 3D-stacked and NVM).
    pub medium_throttle: ThrottleConfig,
    /// Last-level cache model.
    pub llc: LlcModel,
    /// Simulated page size in bytes.
    pub page_size: u64,
    /// Scale divisor: one simulated page = `scale` real pages.
    pub scale: u64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Management cost model (Table 6 anchors).
    pub costs: CostModel,
    /// Guest vCPUs.
    pub cpus: usize,
    /// Hotness-scan interval (VMM-exclusive fixed; coordinated initial).
    pub scan_interval: Nanos,
    /// Pages (real 4 KiB) examined per scan.
    pub scan_batch: u64,
    /// Maximum pages (real 4 KiB) migrated per interval.
    pub migrate_batch: u64,
    /// Maximum pages (real 4 KiB) the guest LRU demotes per management
    /// window. Fig 12 reports HeteroOS-LRU moving only ~0.1 M pages over a
    /// full run — an order of magnitude below the tracker-driven policies.
    pub demote_batch: u64,
    /// FastMem free fraction below which HeteroOS-LRU demotes (§3.3
    /// memory-type-specific threshold).
    pub fast_low_watermark: f64,
    /// Heat below which an active page is aged to the inactive list.
    pub lru_cold_heat: u8,
    /// LRU pages examined per epoch for aging.
    pub lru_age_batch: usize,
    /// Statistics window for demand-based prioritization (§3.2: 100 ms).
    pub stats_window: Nanos,
    /// Adaptive-interval clamp (coordinated, §5.4: 50 ms – 1 s).
    pub adaptive_bounds: (Nanos, Nanos),
    /// Ablation: disable Eq. 1 interval adaptation (fixed `scan_interval`).
    pub adaptive_interval: bool,
    /// Ablation: when `false`, the coordinated policy scans the full VM
    /// instead of the guest-supplied tracking list.
    pub guided_tracking: bool,
    /// Ablation: force eager (`Some(true)`) or lazy (`Some(false)`) release
    /// of completed I/O pages regardless of policy.
    pub eager_io_override: Option<bool>,
    /// §4.3 extension: page-type-specific demotion — anonymous pages step
    /// down one tier at a time, released I/O pages drop straight to the
    /// slowest tier. Identical to plain demotion on two-tier machines.
    pub typed_demotion: bool,
    /// §4.3 extension: model the slow tier as NVM with the Table 1 store
    /// asymmetry (stores cost 2× loads) instead of symmetric throttled
    /// DRAM.
    pub nvm_slow: bool,
    /// §4.3 extension: write-aware coordinated migration — promote
    /// write-heavy SlowMem pages first, keeping read-heavy pages behind
    /// (only meaningful with `nvm_slow`).
    pub write_aware: bool,
    /// §4.3 extension: non-virtualized deployment — hotness tracking and
    /// fair sharing run inside the OS, so scans and TLB shoot-downs skip
    /// the hypervisor's world switches and grant bookkeeping (modelled as
    /// half the Table-6 scan/flush cost).
    pub bare_metal: bool,
    /// Capacity of the run's event log (0 disables tracing). Events are
    /// available through `SingleVmSim::events` after/while running.
    pub trace_events: usize,
    /// §3.1 extension: applications pass explicit FastMem placement hints
    /// for their hot buffers (the extended `mmap()` flag). HeteroOS does
    /// not depend on this; the `ext-hints` experiment quantifies how much
    /// transparency leaves on the table.
    pub app_hints: bool,
    /// Dispatch epoch demand through the guest kernel's bulk entry points
    /// (one call per run of identically-placed objects) instead of one call
    /// per object. Semantically a no-op — the scalar path is retained as the
    /// equivalence reference for tests; traces and metrics are byte-identical
    /// either way.
    pub bulk_ops: bool,
    /// Run the cross-layer invariant auditor after every engine step,
    /// collecting typed violation reports (`SingleVmSim::violations`).
    /// Costs a full memmap walk per step — meant for chaos/fault runs and
    /// debugging, not performance experiments.
    ///
    /// Legacy switch: equivalent to `audit = AuditLevel::Epoch` (see
    /// [`SimConfig::effective_audit`]); kept so chaos harnesses that only
    /// *collect* violations keep working unchanged.
    pub audit_invariants: bool,
    /// Invariant-sanitizer level (`Off`/`Epoch`/`Paranoid`). Observational
    /// only — every exported byte (report, traces, telemetry) is identical
    /// across levels; non-`Off` levels make `SingleVmSim::run` and
    /// `MultiVmSim::run` panic on the first violation instead of silently
    /// continuing.
    pub audit: AuditLevel,
    /// Collect structured telemetry — a named metrics registry plus
    /// hierarchical sim-time spans (`SingleVmSim::telemetry`). Purely
    /// observational: RNG draw order, clock charges, the `RunReport` and
    /// the event trace are byte-identical with it on or off. Off by
    /// default (zero cost).
    pub telemetry: bool,
    /// Management scheduler: `Event` (the default) runs scans, reclaim
    /// windows and statistics rolls off a deterministic event queue and
    /// skips idle epochs; `Dense` re-walks every subsystem every epoch.
    /// Byte-identical output either way — only wall-clock differs.
    pub sched: SchedMode,
    /// NVM persistence domain write-behind policy for the slow tier
    /// (crash-consistency). `Off` (the default) maintains no persistence
    /// state and charges nothing — runs are byte-identical to builds
    /// without the subsystem. Any other policy tracks per-frame
    /// dirty/flushed state, charges `clflush`/`sfence` costs through
    /// [`CostModel::flush_cost`], and makes `HostPowerLoss` /
    /// `GuestCrashPersist` faults survivable via `SingleVmSim::recover`.
    pub persist: FlushPolicy,
    /// Named device-profile tier topology (`repro --tier-profile`). `None`
    /// (the default) keeps the throttle-derived Table-3 node parameters;
    /// `Some(profile)` resolves each populated tier's latency and
    /// read/write bandwidth from the registry instead (the
    /// [`TierProfile`] docs list the profiles). The medium tier still
    /// activates only when `medium_bytes > 0`.
    pub tier_profile: Option<TierProfile>,
    /// Hotness-tracking override (`repro --tracking`). `None` (the
    /// default) uses the policy's own discipline
    /// ([`Policy::tracking`](crate::Policy::tracking));
    /// `Some(Tracking::AccessBit)` swaps the scan source to page-table
    /// A/D harvests while keeping the rest of the policy intact.
    pub tracking_override: Option<Tracking>,
}

impl SimConfig {
    /// The paper's single-VM evaluation defaults (§5.1).
    pub fn paper_default() -> Self {
        SimConfig {
            fast_bytes: 2 << 30,
            slow_bytes: 8 << 30,
            medium_bytes: 0,
            fast_throttle: ThrottleConfig::fast_mem(),
            slow_throttle: ThrottleConfig::slow_mem_default(),
            medium_throttle: ThrottleConfig::from_factors(2.0, 2.0),
            llc: LlcModel::testbed(),
            page_size: 4096,
            scale: 64,
            seed: 42,
            costs: CostModel::default(),
            cpus: 16,
            scan_interval: Nanos::from_millis(100),
            // §5.4 evaluates VMM-exclusive with "hot page scan of 16K
            // guest-VM pages in a 100 msec interval"; Fig 8 sweeps a 32 K
            // batch explicitly.
            scan_batch: 16 * 1024,
            // Table 6 prices a migrated page at ~69 µs (walk + copy), and
            // Fig 8/12's migration volumes (0.1–3 M pages over multi-minute
            // runs) imply a sustainable rate of ~2.5 K real pages/second —
            // 256 pages per 100 ms interval (~18 ms of migration time).
            migrate_batch: 256,
            demote_batch: 64,
            fast_low_watermark: 0.08,
            lru_cold_heat: 48,
            lru_age_batch: 256,
            stats_window: Nanos::from_millis(100),
            adaptive_bounds: (Nanos::from_millis(50), Nanos::from_secs(1)),
            adaptive_interval: true,
            guided_tracking: true,
            eager_io_override: None,
            typed_demotion: true,
            nvm_slow: false,
            write_aware: false,
            bare_metal: false,
            trace_events: 0,
            app_hints: false,
            bulk_ops: true,
            audit_invariants: false,
            audit: AuditLevel::Off,
            telemetry: false,
            sched: SchedMode::Event,
            persist: FlushPolicy::Off,
            tier_profile: None,
            tracking_override: None,
        }
    }

    /// Sets FastMem capacity (paper scale).
    pub fn with_fast_bytes(mut self, bytes: u64) -> Self {
        self.fast_bytes = bytes;
        self
    }

    /// Sets SlowMem capacity (paper scale).
    pub fn with_slow_bytes(mut self, bytes: u64) -> Self {
        self.slow_bytes = bytes;
        self
    }

    /// Enables the three-tier extension with a MediumMem of `bytes`.
    pub fn with_medium_bytes(mut self, bytes: u64) -> Self {
        self.medium_bytes = bytes;
        self
    }

    /// Sets SlowMem timing.
    pub fn with_slow_throttle(mut self, t: ThrottleConfig) -> Self {
        self.slow_throttle = t;
        self
    }

    /// Sets the LLC model (Fig 1 vs Fig 2 platform).
    pub fn with_llc(mut self, llc: LlcModel) -> Self {
        self.llc = llc;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hotness-scan interval.
    pub fn with_scan_interval(mut self, interval: Nanos) -> Self {
        self.scan_interval = interval;
        self
    }

    /// Selects bulk (default) or per-object scalar demand dispatch.
    pub fn with_bulk_ops(mut self, on: bool) -> Self {
        self.bulk_ops = on;
        self
    }

    /// Enables the per-step invariant auditor.
    pub fn with_audit_invariants(mut self, on: bool) -> Self {
        self.audit_invariants = on;
        self
    }

    /// Sets the invariant-sanitizer level.
    pub fn with_audit(mut self, level: AuditLevel) -> Self {
        self.audit = level;
        self
    }

    /// The level the sanitizer actually runs at: `audit` when set, else
    /// `Epoch` when the legacy `audit_invariants` flag is on, else `Off`.
    pub fn effective_audit(&self) -> AuditLevel {
        if self.audit != AuditLevel::Off {
            self.audit
        } else if self.audit_invariants {
            AuditLevel::Epoch
        } else {
            AuditLevel::Off
        }
    }

    /// Toggles structured telemetry (metrics registry + spans).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Selects the NVM persistence write-behind policy.
    pub fn with_persist(mut self, policy: FlushPolicy) -> Self {
        self.persist = policy;
        self
    }

    /// Selects the management scheduler (`Dense` reference walker or the
    /// default event-driven skipper).
    pub fn with_sched(mut self, sched: SchedMode) -> Self {
        self.sched = sched;
        self
    }

    /// Selects a named device-profile tier topology (`None` restores the
    /// throttle-derived defaults).
    pub fn with_tier_profile(mut self, profile: Option<TierProfile>) -> Self {
        self.tier_profile = profile;
        self
    }

    /// Overrides the hotness-tracking discipline (`None` restores the
    /// policy's own choice).
    pub fn with_tracking(mut self, tracking: Option<Tracking>) -> Self {
        self.tracking_override = tracking;
        self
    }

    /// Sets the FastMem:SlowMem capacity ratio the way the paper states it
    /// ("1/8 ratio" = FastMem is 1/8 of SlowMem).
    pub fn with_capacity_ratio(mut self, num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "ratio must be positive");
        self.fast_bytes = self.slow_bytes * num / den;
        self
    }

    /// Simulated guest frames on FastMem.
    pub fn guest_frames_fast(&self) -> u64 {
        (self.fast_bytes / self.scale / self.page_size).max(1)
    }

    /// Simulated guest frames on SlowMem.
    pub fn guest_frames_slow(&self) -> u64 {
        (self.slow_bytes / self.scale / self.page_size).max(1)
    }

    /// Simulated guest frames on MediumMem (0 when not configured).
    pub fn guest_frames_medium(&self) -> u64 {
        self.medium_bytes / self.scale / self.page_size
    }

    /// Real 4 KiB pages represented by one simulated page.
    pub fn granule(&self) -> u64 {
        self.scale * self.page_size / 4096
    }

    /// Converts a simulated page count to real pages for cost charging.
    pub fn real_pages(&self, sim_pages: u64) -> u64 {
        sim_pages * self.granule()
    }

    /// Simulated pages corresponding to a real-page batch parameter.
    pub fn sim_batch(&self, real_pages: u64) -> u64 {
        (real_pages / self.granule()).max(1)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default()
    }
}


hetero_sim::impl_snap!(enum SchedMode {
    0 => Dense {},
    1 => Event {},
});

hetero_sim::impl_snap!(struct SimConfig {
    fast_bytes,
    slow_bytes,
    medium_bytes,
    fast_throttle,
    slow_throttle,
    medium_throttle,
    llc,
    page_size,
    scale,
    seed,
    costs,
    cpus,
    scan_interval,
    scan_batch,
    migrate_batch,
    demote_batch,
    fast_low_watermark,
    lru_cold_heat,
    lru_age_batch,
    stats_window,
    adaptive_bounds,
    adaptive_interval,
    guided_tracking,
    eager_io_override,
    typed_demotion,
    nvm_slow,
    write_aware,
    bare_metal,
    trace_events,
    app_hints,
    bulk_ops,
    audit_invariants,
    audit,
    telemetry,
    sched,
    persist,
    tier_profile,
    tracking_override,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let c = SimConfig::paper_default();
        assert_eq!(c.slow_bytes, 8 << 30);
        assert_eq!(c.scan_interval, Nanos::from_millis(100));
        assert_eq!(c.scan_batch, 16 * 1024); // §5.4's stated VMM-exclusive config
        assert_eq!(c.cpus, 16);
        assert_eq!(c.llc.size_bytes(), 16 << 20);
    }

    #[test]
    fn capacity_ratio_divides_slow() {
        let c = SimConfig::paper_default().with_capacity_ratio(1, 8);
        assert_eq!(c.fast_bytes, 1 << 30);
        let c = SimConfig::paper_default().with_capacity_ratio(1, 2);
        assert_eq!(c.fast_bytes, 4 << 30);
    }

    #[test]
    fn granule_and_conversions_roundtrip() {
        let c = SimConfig::paper_default();
        assert_eq!(c.granule(), 64);
        assert_eq!(c.real_pages(10), 640);
        assert_eq!(c.sim_batch(32 * 1024), 512);
        assert_eq!(c.sim_batch(1), 1, "batches never round to zero");
    }

    #[test]
    fn frame_counts_scale() {
        let c = SimConfig::paper_default();
        assert_eq!(c.guest_frames_slow(), (8u64 << 30) / 64 / 4096);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_rejected() {
        SimConfig::paper_default().with_capacity_ratio(0, 8);
    }

    #[test]
    fn sched_defaults_to_event_and_parses() {
        let c = SimConfig::paper_default();
        assert_eq!(c.sched, SchedMode::Event);
        assert_eq!(c.with_sched(SchedMode::Dense).sched, SchedMode::Dense);
        assert_eq!("dense".parse::<SchedMode>(), Ok(SchedMode::Dense));
        assert_eq!("event".parse::<SchedMode>(), Ok(SchedMode::Event));
        assert!("wheel".parse::<SchedMode>().is_err());
        assert_eq!(SchedMode::Event.to_string(), "event");
        assert_eq!(SchedMode::Dense.to_string(), "dense");
    }

    #[test]
    fn tier_profile_and_tracking_default_off() {
        let c = SimConfig::paper_default();
        assert_eq!(c.tier_profile, None);
        assert_eq!(c.tracking_override, None);
        let c = c
            .with_tier_profile(Some(TierProfile::OptaneDc))
            .with_tracking(Some(Tracking::AccessBit));
        assert_eq!(c.tier_profile, Some(TierProfile::OptaneDc));
        assert_eq!(c.tracking_override, Some(Tracking::AccessBit));
        assert_eq!(c.with_tier_profile(None).tier_profile, None);
    }

    #[test]
    fn persistence_defaults_off() {
        let c = SimConfig::paper_default();
        assert_eq!(c.persist, FlushPolicy::Off);
        assert_eq!(
            c.with_persist(FlushPolicy::EpochBatched).persist,
            FlushPolicy::EpochBatched
        );
    }

    #[test]
    fn effective_audit_unifies_legacy_flag() {
        let c = SimConfig::paper_default();
        assert_eq!(c.effective_audit(), AuditLevel::Off);
        assert_eq!(
            c.clone().with_audit_invariants(true).effective_audit(),
            AuditLevel::Epoch
        );
        assert_eq!(
            c.clone().with_audit(AuditLevel::Paranoid).effective_audit(),
            AuditLevel::Paranoid
        );
        // The explicit level wins over the legacy flag.
        assert_eq!(
            c.with_audit_invariants(true)
                .with_audit(AuditLevel::Paranoid)
                .effective_audit(),
            AuditLevel::Paranoid
        );
    }
}
