//! The architectural-hint interval controller (Equation 1, §4.1).
//!
//! Software cannot see whether page accesses hit or miss the processor
//! cache, so migrating "hot" pages during a cache-friendly phase wastes
//! migration cost. HeteroOS monitors the LLC-miss counter the VMM exports
//! and adapts the hotness-tracking interval:
//!
//! ```text
//! ΔLLCMiss = (LLCMissᵢ − LLCMissᵢ₋₁) / LLCMissᵢ₋₁
//! Interval = Interval − ΔLLCMiss × Interval
//! ```
//!
//! Rising misses shorten the interval (track/migrate more eagerly); falling
//! misses lengthen it.

use hetero_sim::Nanos;

/// Eq. 1 controller with clamping.
///
/// # Examples
///
/// ```
/// use hetero_core::adaptive::IntervalController;
/// use hetero_sim::Nanos;
///
/// let mut c = IntervalController::new(
///     Nanos::from_millis(100),
///     Nanos::from_millis(50),
///     Nanos::from_secs(1),
/// );
/// c.observe(1000.0);
/// c.observe(2000.0); // misses doubled → interval shrinks
/// assert!(c.interval() < Nanos::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IntervalController {
    interval: Nanos,
    min: Nanos,
    max: Nanos,
    prev_misses: Option<f64>,
}

impl IntervalController {
    /// Creates a controller starting at `initial`, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `min` is zero.
    pub fn new(initial: Nanos, min: Nanos, max: Nanos) -> Self {
        assert!(min <= max, "min interval exceeds max");
        assert!(!min.is_zero(), "min interval must be non-zero");
        IntervalController {
            interval: initial.max(min).min(max),
            min,
            max,
            prev_misses: None,
        }
    }

    /// Current tracking interval.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Feeds one epoch's LLC-miss count; applies Eq. 1.
    pub fn observe(&mut self, llc_misses: f64) {
        if let Some(prev) = self.prev_misses {
            if prev > 0.0 {
                let delta = (llc_misses - prev) / prev;
                // Interval = Interval − Δ × Interval, clamped. A clamp on Δ
                // keeps a single spike from zeroing the interval.
                let factor = (1.0 - delta).clamp(0.25, 4.0);
                self.interval = self.interval.mul_f64(factor).max(self.min).min(self.max);
            }
        }
        self.prev_misses = Some(llc_misses);
    }

    /// Resets miss history (phase boundary).
    pub fn reset(&mut self) {
        self.prev_misses = None;
    }

    /// Multiplies the interval by `factor` (≥ 1), clamped to the maximum —
    /// used by yield-aware backoff when tracking stops finding work.
    pub fn back_off(&mut self, factor: f64) {
        self.interval = self.interval.mul_f64(factor.max(1.0)).min(self.max);
    }
}


hetero_sim::impl_snap!(struct IntervalController { interval, min, max, prev_misses });

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> IntervalController {
        IntervalController::new(
            Nanos::from_millis(100),
            Nanos::from_millis(50),
            Nanos::from_secs(1),
        )
    }

    #[test]
    fn first_observation_changes_nothing() {
        let mut c = controller();
        c.observe(5000.0);
        assert_eq!(c.interval(), Nanos::from_millis(100));
    }

    #[test]
    fn rising_misses_shorten_interval() {
        let mut c = controller();
        c.observe(1000.0);
        c.observe(1500.0);
        assert!(c.interval() < Nanos::from_millis(100));
    }

    #[test]
    fn falling_misses_lengthen_interval() {
        let mut c = controller();
        c.observe(1000.0);
        c.observe(500.0);
        assert!(c.interval() > Nanos::from_millis(100));
    }

    #[test]
    fn interval_respects_clamps() {
        let mut c = controller();
        // Steadily exploding misses pin the interval at the minimum.
        let mut misses = 1.0;
        for _ in 0..50 {
            c.observe(misses);
            misses *= 10.0;
            assert!(c.interval() >= Nanos::from_millis(50));
        }
        assert_eq!(c.interval(), Nanos::from_millis(50));
        // Steadily collapsing misses stretch it to the maximum.
        for _ in 0..50 {
            c.observe(misses);
            misses /= 10.0;
        }
        assert_eq!(c.interval(), Nanos::from_secs(1));
    }

    #[test]
    fn zero_previous_misses_is_safe() {
        let mut c = controller();
        c.observe(0.0);
        c.observe(100.0);
        assert_eq!(c.interval(), Nanos::from_millis(100));
    }

    #[test]
    fn reset_forgets_history() {
        let mut c = controller();
        c.observe(100.0);
        c.reset();
        c.observe(1e9); // would have been a huge delta
        assert_eq!(c.interval(), Nanos::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "min interval")]
    fn inverted_bounds_rejected() {
        IntervalController::new(
            Nanos::from_millis(100),
            Nanos::from_secs(2),
            Nanos::from_secs(1),
        );
    }
}
