//! Rack-scale cluster simulation: many hosts, dynamic VM arrivals, and
//! inter-host pre-copy live migration.
//!
//! HeteroOS argues heterogeneous-memory management has to be co-designed
//! up to the datacenter layer; this module is that layer. A [`Cluster`]
//! owns many hosts, each a complete single-machine fleet — its own
//! FastMem/SlowMem (and optionally Medium) pools and its own fair-share
//! ledger ([`crate::multivm::FleetCore`]). Sharding the ledger per host is
//! what unlocks parallel stepping: within a scheduling round the hosts
//! share nothing, so they fan out across the deterministic [`Runner`]
//! (fixed pool, descriptor-order merge) and a 1,000-VM fleet steps
//! byte-identically at any `--jobs` count.
//!
//! Time advances in fixed *rounds* (a barrier-synchronous design): at each
//! round boundary the cluster admits due arrivals (consolidation: the
//! least-loaded feasible host wins), retires finished VMs, and runs the
//! migration policy; between boundaries every host steps its own VMs
//! event-driven up to the round deadline. Arrivals come from a seeded
//! Poisson process on a *dedicated* RNG stream (so the arrival pattern
//! never perturbs any guest's workload stream) or from an explicit trace.
//!
//! Live migration follows the classic pre-copy protocol: iterative rounds
//! copy the dirty set while the VM keeps running, the dirty set shrinking
//! by the workload's write intensity each round, then a final
//! stop-and-copy moves the remainder. Every round is priced through the
//! existing [`CostModel`] migration prices (Table 6 anchors) and charged
//! to the migrating VM's clock; the ledger transfer debits the source
//! host and credits the destination exactly, which the extended sanitizer
//! ([`hetero_faults::audit_cluster`]) re-proves every round.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use hetero_faults::{audit_cluster, AuditLevel, FaultInjector, FaultPlan, HostLedgerView, Violation};
use hetero_mem::cost::MigrationBatch;
use hetero_mem::kind::KindMap;
use hetero_sim::export::json_string;
use hetero_sim::runner::Runner;
use hetero_sim::{CostCategory, Nanos, SimRng};
use hetero_vmm::drf::{Grant, GuestId};
use hetero_vmm::SharePolicy;

use crate::config::SimConfig;
use crate::metrics::RunReport;
use crate::multivm::{grant_kinds, machine_totals, tier_pages, FleetCore, VmSetup, VmState};
use crate::policy::Policy;

/// Salt for the arrival process's dedicated RNG stream — arrivals must
/// never share a stream with any guest workload, or admitting one more VM
/// would perturb every other VM's behaviour.
const ARRIVAL_STREAM_SALT: u64 = 0xA881_57A1_1CC0_FFEE;

/// How VMs arrive at the cluster.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// A Poisson process: `count` arrivals with exponential inter-arrival
    /// times of the given mean, each drawing its template uniformly from
    /// the spec's template list. Drawn from a dedicated seeded stream.
    Poisson {
        /// Mean inter-arrival time.
        mean_interarrival: Nanos,
        /// Total arrivals over the run.
        count: usize,
    },
    /// Trace-driven: explicit `(arrival time, template index)` pairs.
    /// Entries need not be sorted; the cluster sorts them (stably) by time.
    Trace(Vec<(Nanos, usize)>),
}

/// CLI-level selector between the arrival modes (`repro cluster
/// --arrival {poisson,trace}`); the experiment driver supplies the mean,
/// count, and trace content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalMode {
    /// Seeded Poisson arrivals (the default).
    #[default]
    Poisson,
    /// The experiment's built-in deterministic trace.
    Trace,
}

impl fmt::Display for ArrivalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalMode::Poisson => write!(f, "poisson"),
            ArrivalMode::Trace => write!(f, "trace"),
        }
    }
}

impl FromStr for ArrivalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalMode::Poisson),
            "trace" => Ok(ArrivalMode::Trace),
            other => Err(format!(
                "unknown arrival mode '{other}' (expected poisson|trace)"
            )),
        }
    }
}

/// Knobs of the consolidation / live-migration policy.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPolicy {
    /// Minimum fractional-occupancy gap between the most- and least-loaded
    /// host before a migration is attempted.
    pub imbalance_threshold: f64,
    /// Migrations attempted per scheduling round.
    pub max_per_round: usize,
    /// Pre-copy rounds before the protocol forces stop-and-copy.
    pub max_precopy_rounds: u32,
    /// Dirty-set size (simulated pages) at which pre-copy stops early and
    /// the final stop-and-copy transfers the remainder.
    pub stop_copy_pages: u64,
    /// Rounds a freshly migrated VM is pinned to its new host. Without a
    /// cooldown a VM whose move does not settle the imbalance would
    /// ping-pong every round, paying migration cost each time and never
    /// making forward progress.
    pub cooldown_rounds: u64,
}

impl Default for MigrationPolicy {
    fn default() -> Self {
        MigrationPolicy {
            imbalance_threshold: 0.15,
            max_per_round: 1,
            max_precopy_rounds: 8,
            stop_copy_pages: 64,
            cooldown_rounds: 4,
        }
    }
}

/// A whole-cluster scenario: the host count, the VM templates arrivals
/// draw from, the arrival process, the scheduling quantum, and the
/// migration policy.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of hosts; each gets the full `SimConfig` machine shape.
    pub hosts: usize,
    /// VM templates the arrival process instantiates.
    pub templates: Vec<VmSetup>,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Scheduling-round length: hosts step independently between
    /// boundaries; arrivals, departures, and migrations happen at them.
    pub quantum: Nanos,
    /// Consolidation / live-migration knobs.
    pub migration: MigrationPolicy,
    /// Per-epoch host-power-loss probability armed on every admitted
    /// guest (`0.0` = no fault injection). Each guest's injector is
    /// seeded from the config seed and its own guest id, so the chaos —
    /// like everything else — is byte-identical at any `jobs` count.
    pub fault_rate: f64,
}

/// One inter-host live migration, as exported in the migration trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Cluster time of the round that performed the migration.
    pub at: Nanos,
    /// The migrated guest.
    pub vm: u32,
    /// Source host index.
    pub from: u32,
    /// Destination host index.
    pub to: u32,
    /// Pre-copy rounds performed (including the final stop-and-copy).
    pub precopy_rounds: u32,
    /// Simulated pages copied across all rounds.
    pub pages_copied: u64,
    /// Total copy cost across every round, at `CostModel` prices — the
    /// bandwidth the migration consumed.
    pub cost: Nanos,
    /// The final stop-and-copy round's cost — the only part the guest is
    /// paused for, charged to its clock as `PageCopy` time.
    pub downtime: Nanos,
}

impl MigrationRecord {
    /// Serde-free JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at_ns\": {}, \"vm\": {}, \"from\": {}, \"to\": {}, \"precopy_rounds\": {}, \"pages_copied\": {}, \"cost_ns\": {}, \"downtime_ns\": {}}}",
            self.at.as_nanos(),
            self.vm,
            self.from,
            self.to,
            self.precopy_rounds,
            self.pages_copied,
            self.cost.as_nanos(),
            self.downtime.as_nanos()
        )
    }
}

/// Per-host occupancy telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostReport {
    /// Host index.
    pub host: u32,
    /// VMs admitted (placed or migrated in) over the run.
    pub vms_admitted: u64,
    /// Peak simultaneously-live VM count.
    pub peak_live: u64,
    /// Guest epochs stepped on this host.
    pub epochs: u64,
    /// Ledger pages granted at the end of the run (normally zero: every
    /// VM has departed).
    pub final_consumed: u64,
}

/// Cluster-wide telemetry: arrivals, departures, migrations, occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    /// Host count.
    pub hosts: u32,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// VMs admitted.
    pub arrivals: u64,
    /// VMs retired after completing their workload.
    pub departures: u64,
    /// Admission attempts deferred to a later round (no feasible host).
    pub deferrals: u64,
    /// Arrivals rejected outright (reservation larger than an empty host).
    pub rejected: u64,
    /// Inter-host live migrations performed.
    pub migrations: u64,
    /// Pre-copy rounds summed over all migrations.
    pub precopy_rounds: u64,
    /// Simulated pages copied by migrations.
    pub pages_copied: u64,
    /// Total migration copy cost (bandwidth), at `CostModel` prices.
    pub migration_cost: Nanos,
    /// Total stop-and-copy downtime charged to migrated guests.
    pub migration_downtime: Nanos,
    /// Pages finished guests could not balloon back before departure.
    pub stranded_pages: u64,
    /// Guest epochs stepped across the cluster.
    pub epochs: u64,
    /// Cluster time when the last VM finished.
    pub makespan: Nanos,
    /// Per-host occupancy.
    pub per_host: Vec<HostReport>,
}

impl ClusterReport {
    /// Serde-free JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"hosts\": {},\n", self.hosts));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"arrivals\": {},\n", self.arrivals));
        out.push_str(&format!("  \"departures\": {},\n", self.departures));
        out.push_str(&format!("  \"deferrals\": {},\n", self.deferrals));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"migrations\": {},\n", self.migrations));
        out.push_str(&format!("  \"precopy_rounds\": {},\n", self.precopy_rounds));
        out.push_str(&format!("  \"pages_copied\": {},\n", self.pages_copied));
        out.push_str(&format!(
            "  \"migration_cost_ns\": {},\n",
            self.migration_cost.as_nanos()
        ));
        out.push_str(&format!(
            "  \"migration_downtime_ns\": {},\n",
            self.migration_downtime.as_nanos()
        ));
        out.push_str(&format!("  \"stranded_pages\": {},\n", self.stranded_pages));
        out.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        out.push_str(&format!("  \"makespan_ns\": {},\n", self.makespan.as_nanos()));
        out.push_str("  \"per_host\": [");
        for (i, h) in self.per_host.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"host\": {}, \"vms_admitted\": {}, \"peak_live\": {}, \"epochs\": {}, \"final_consumed\": {}}}",
                h.host, h.vms_admitted, h.peak_live, h.epochs, h.final_consumed
            ));
        }
        out.push_str("]\n}");
        out
    }
}

/// Everything a cluster run produces: the cluster-wide report, the
/// per-VM run reports (ascending guest id), and the migration trace.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Cluster-wide telemetry.
    pub report: ClusterReport,
    /// `(guest id, report)` for every VM that ran, ascending by id.
    pub vm_reports: Vec<(u32, RunReport)>,
    /// Every inter-host migration, in execution order.
    pub migrations: Vec<MigrationRecord>,
}

impl ClusterOutcome {
    /// Serde-free JSON document combining report, migration trace, and a
    /// per-VM summary — the byte-identity surface the determinism gates
    /// diff across `--jobs` counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"cluster\": ");
        out.push_str(&self.report.to_json());
        out.push_str(",\n\"migrations\": [");
        for (i, m) in self.migrations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&m.to_json());
        }
        out.push_str("],\n\"vms\": [");
        for (i, (id, r)) in self.vm_reports.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"vm\": {}, \"app\": {}, \"runtime_ns\": {}, \"epochs\": {}, \"migrations\": {}, \"breakdown_pagecopy_ns\": {}}}",
                id,
                json_string(r.app),
                r.runtime.as_nanos(),
                r.epochs,
                r.migrations,
                r.breakdown
                    .iter()
                    .find(|(c, _)| *c == CostCategory::PageCopy)
                    .map(|(_, t)| t.as_nanos())
                    .unwrap_or(0)
            ));
        }
        out.push_str("]\n}");
        out
    }
}

/// One host: a complete single-machine fleet plus its telemetry.
struct HostState {
    core: FleetCore,
    vms_admitted: u64,
    peak_live: u64,
    epochs: u64,
}

/// The rack-scale cluster engine. See the module docs for the design.
pub struct Cluster {
    cfg: SimConfig,
    policy: Policy,
    spec: ClusterSpec,
    jobs: usize,
    hosts: Vec<HostState>,
    /// Remaining arrivals, ascending by time.
    pending: VecDeque<(Nanos, usize)>,
    /// Host tier capacity, shared by every host.
    host_totals: KindMap<u64>,
    next_guest: u32,
    now: Nanos,
    rounds: u64,
    arrivals: u64,
    departures: u64,
    deferrals: u64,
    rejected: u64,
    makespan: Nanos,
    migrations: Vec<MigrationRecord>,
    finished: Vec<(u32, RunReport)>,
    /// Guest id → round of its last migration (cooldown bookkeeping).
    cooldowns: std::collections::BTreeMap<u32, u64>,
    /// Violations accumulated across rounds; drained by [`Cluster::finish`].
    violations: Vec<Violation>,
}

impl Cluster {
    /// Builds a cluster of `spec.hosts` identical hosts (each shaped by
    /// `cfg`'s machine parameters) sharing one arrival schedule. `share`
    /// picks each host's fair-share discipline; `policy` is the guest
    /// placement policy every VM runs; `jobs` is the Runner thread count
    /// for host stepping (0 = available parallelism).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no hosts, no templates, or a trace entry
    /// referencing a template that does not exist.
    pub fn new(
        cfg: SimConfig,
        share: SharePolicy,
        policy: Policy,
        spec: ClusterSpec,
        jobs: usize,
    ) -> Self {
        assert!(spec.hosts > 0, "a cluster needs at least one host");
        assert!(
            !spec.templates.is_empty(),
            "the arrival process needs at least one VM template"
        );
        let host_totals = machine_totals(&cfg);
        let hosts = (0..spec.hosts)
            .map(|_| HostState {
                core: FleetCore::new(share, host_totals),
                vms_admitted: 0,
                peak_live: 0,
                epochs: 0,
            })
            .collect();
        let pending = Self::schedule(&spec, cfg.seed);
        Cluster {
            cfg,
            policy,
            spec,
            jobs,
            hosts,
            pending,
            host_totals,
            next_guest: 0,
            now: Nanos::ZERO,
            rounds: 0,
            arrivals: 0,
            departures: 0,
            deferrals: 0,
            rejected: 0,
            makespan: Nanos::ZERO,
            migrations: Vec::new(),
            finished: Vec::new(),
            cooldowns: std::collections::BTreeMap::new(),
            violations: Vec::new(),
        }
    }

    /// Materializes the arrival schedule. Poisson arrivals draw from a
    /// dedicated stream salted off the config seed; traces are sorted
    /// stably by time.
    fn schedule(spec: &ClusterSpec, seed: u64) -> VecDeque<(Nanos, usize)> {
        match &spec.arrivals {
            ArrivalProcess::Poisson {
                mean_interarrival,
                count,
            } => {
                let mut rng = SimRng::seed_from(seed ^ ARRIVAL_STREAM_SALT);
                let mean = mean_interarrival.as_nanos() as f64;
                // Accumulate in integer nanos, stochastically rounding
                // each gap. A running f64 sum loses ulp precision as it
                // grows — past 2^53 ns (~104 days) it can only represent
                // even nano counts, so long schedules quantized and
                // drifted. Per-gap rounding keeps every arrival exact at
                // any horizon, and `stochastic_round` keeps it
                // mean-preserving.
                let mut t = 0u64;
                (0..*count)
                    .map(|_| {
                        let gap = rng.next_exponential(mean);
                        t = t.saturating_add(rng.stochastic_round(gap));
                        let tmpl = rng.next_range(0, spec.templates.len() as u64) as usize;
                        (Nanos::from_nanos(t), tmpl)
                    })
                    .collect()
            }
            ArrivalProcess::Trace(entries) => {
                for &(_, tmpl) in entries {
                    assert!(
                        tmpl < spec.templates.len(),
                        "trace references template {tmpl} of {}",
                        spec.templates.len()
                    );
                }
                let mut sorted = entries.clone();
                sorted.sort_by_key(|&(t, _)| t);
                sorted.into()
            }
        }
    }

    /// Runs the cluster to completion (every admitted VM finished, every
    /// scheduled arrival handled).
    ///
    /// # Panics
    ///
    /// With an explicit `SimConfig::audit` level set, panics if the run
    /// produced any violation. Use [`Cluster::run_audited`] to inspect
    /// violations without panicking.
    pub fn run(self) -> ClusterOutcome {
        let audit = self.cfg.audit;
        let (outcome, violations) = self.run_audited();
        if audit != AuditLevel::Off && !violations.is_empty() {
            let mut msg = format!(
                "invariant sanitizer ({} level) found {} violation(s) in cluster run:",
                audit,
                violations.len(),
            );
            for v in &violations {
                msg.push_str("\n  - ");
                msg.push_str(&v.to_string());
            }
            panic!("{msg}");
        }
        outcome
    }

    /// As [`Cluster::run`], additionally returning every violation found
    /// (always empty when `SimConfig::effective_audit` is `Off`): each
    /// host's per-epoch ledger audit, every guest's own sanitizer, and the
    /// cluster-boundary conservation audit after every round.
    pub fn run_audited(mut self) -> (ClusterOutcome, Vec<Violation>) {
        while self.step_round() {}
        self.finish()
    }

    /// Whether the cluster still has work: pending arrivals or live VMs.
    pub fn is_active(&self) -> bool {
        !self.pending.is_empty() || self.hosts.iter().any(|h| h.core.live() > 0)
    }

    /// Advances the cluster one scheduling round: admits due arrivals,
    /// steps every host to the round deadline, retires finished VMs,
    /// retries arrivals those retirements may have made feasible, and
    /// runs the migration policy. Returns `false` (without advancing
    /// time) once nothing is pending and no VM is live.
    ///
    /// This is the checkpointable driver: a loop over `step_round`
    /// produces the same cluster as [`Cluster::run`], and the cluster can
    /// be [saved](Cluster::save) between any two rounds. Violations
    /// accumulate internally and come back from [`Cluster::finish`].
    pub fn step_round(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        let audited = self.cfg.effective_audit().is_enabled();
        let mut violations = std::mem::take(&mut self.violations);
        let round_end = self.now + self.spec.quantum;
        self.rounds += 1;
        let deferred = self.admit_arrivals(round_end);
        self.step_hosts(round_end, audited, &mut violations);
        self.retire_departures(&mut violations);
        // Second admission pass: a retirement that just freed capacity
        // can place an arrival deferred earlier in this same round —
        // without it, such an arrival waited a full quantum next to an
        // idle host. Only the still-infeasible remainder counts as
        // deferred and re-queues for the next round, ahead of any
        // later-scheduled arrivals at the same instant.
        let still_deferred = self.admit_batch(deferred);
        self.deferrals += still_deferred.len() as u64;
        for &(_, tmpl) in still_deferred.iter().rev() {
            self.pending.push_front((round_end, tmpl));
        }
        self.balance();
        if audited {
            self.audit_cluster_boundary(&mut violations);
        }
        self.violations = violations;
        self.now = round_end;
        true
    }

    /// Collects the outcome of a finished (or abandoned) step-driven run:
    /// the cluster report, per-VM reports ascending by id, the migration
    /// trace, and every violation accumulated across rounds.
    pub fn finish(mut self) -> (ClusterOutcome, Vec<Violation>) {
        self.finished.sort_by_key(|&(id, _)| id);
        let report = self.report();
        let outcome = ClusterOutcome {
            report,
            vm_reports: std::mem::take(&mut self.finished),
            migrations: std::mem::take(&mut self.migrations),
        };
        (outcome, std::mem::take(&mut self.violations))
    }

    /// Pops every arrival due before `round_end` and runs one admission
    /// pass over them. Returns the arrivals that found no feasible host —
    /// the round loop retries them after retirements free capacity, and
    /// re-queues whatever still does not fit.
    fn admit_arrivals(&mut self, round_end: Nanos) -> Vec<(Nanos, usize)> {
        let mut due = Vec::new();
        while let Some(&(t, tmpl)) = self.pending.front() {
            if t >= round_end {
                break;
            }
            self.pending.pop_front();
            due.push((t, tmpl));
        }
        self.admit_batch(due)
    }

    /// One admission pass: places each arrival onto the least-loaded
    /// feasible host (ties break to the lower host index). Reservations
    /// larger than an empty host are rejected outright (they can never
    /// fit); arrivals with no feasible host right now are returned, in
    /// order, for the caller to retry or defer. Placement decisions are
    /// sequential — they touch the shared ledgers — but the booting of
    /// the admitted VMs is embarrassingly parallel and fans out across
    /// the Runner.
    fn admit_batch(&mut self, due: Vec<(Nanos, usize)>) -> Vec<(Nanos, usize)> {
        /// A placement decision handed to the parallel boot phase:
        /// `(host, template, id, seed, min reservation, arrival, bw share)`.
        type Placement = (usize, usize, GuestId, u64, KindMap<u64>, Nanos, f64);
        let mut boots: Vec<Placement> = Vec::new();
        let mut deferred: Vec<(Nanos, usize)> = Vec::new();
        for (t, tmpl) in due {
            let setup = &self.spec.templates[tmpl];
            let min = KindMap::from_fn(|k| tier_pages(&self.cfg, k, setup.min_bytes[k]));
            if grant_kinds()
                .into_iter()
                .any(|k| min[k] > self.host_totals[k])
            {
                // Larger than an empty host: will never fit anywhere.
                self.rejected += 1;
                continue;
            }
            let Some(host) = self.place(min) else {
                // Feasible in principle — the caller decides whether to
                // retry this round or defer to the next.
                deferred.push((t, tmpl));
                continue;
            };
            let id = GuestId(self.next_guest);
            self.next_guest += 1;
            self.arrivals += 1;
            self.hosts[host].core.fair.register(id, min);
            self.hosts[host].vms_admitted += 1;
            let live = self.hosts[host].core.live() as u64 + 1;
            self.hosts[host].peak_live = self.hosts[host].peak_live.max(live);
            let bw_share = 1.0 / live as f64;
            boots.push((host, tmpl, id, u64::from(id.0), min, t, bw_share));
        }
        let cfg = &self.cfg;
        let policy = self.policy;
        let templates = &self.spec.templates;
        let booted = Runner::new(self.jobs).run(boots, |(host, tmpl, id, seed, min, t, bw)| {
            (
                host,
                VmState::boot(cfg, policy, bw, id, seed, &templates[tmpl], min, t),
            )
        });
        for (host, mut vm) in booted {
            if self.spec.fault_rate > 0.0 {
                let plan_seed = self.cfg.seed ^ u64::from(vm.id.0).wrapping_mul(0x9E37);
                vm.sim.set_fault_injector(FaultInjector::new(FaultPlan::power_loss(
                    plan_seed,
                    self.spec.fault_rate,
                )));
            }
            self.hosts[host].core.vms.push(vm);
        }
        deferred
    }

    /// The least-loaded host with room for `min` on every tier, or `None`.
    fn place(&self, min: KindMap<u64>) -> Option<usize> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| grant_kinds().into_iter().all(|k| h.core.fair.free(k) >= min[k]))
            .min_by(|(ai, a), (bi, b)| {
                Self::load_of(a)
                    .partial_cmp(&Self::load_of(b))
                    .expect("loads are finite")
                    .then(ai.cmp(bi))
            })
            .map(|(i, _)| i)
    }

    /// Fractional occupancy of a host: granted pages over capacity.
    fn load_of(h: &HostState) -> f64 {
        let total = h.core.totals.total();
        if total == 0 {
            0.0
        } else {
            h.core.fair.consumed().total() as f64 / total as f64
        }
    }

    /// Steps every host independently to the round deadline on the
    /// Runner. Hosts share nothing inside a round — per-host ledgers are
    /// the whole point — so descriptor-order merge keeps the result
    /// byte-identical for any thread count.
    fn step_hosts(&mut self, round_end: Nanos, audited: bool, violations: &mut Vec<Violation>) {
        let hosts = std::mem::take(&mut self.hosts);
        let stepped = Runner::new(self.jobs).run(hosts, |mut h| {
            let mut v = Vec::new();
            let epochs = h.core.step_until(round_end, audited, &mut v);
            h.epochs += epochs;
            (h, v)
        });
        for (h, v) in stepped {
            self.hosts.push(h);
            violations.extend(v);
        }
    }

    /// Retires every VM that finished its workload: collects its report,
    /// folds its sanitizer violations in, and unregisters it from its
    /// host's ledger (departure returns the full grant — reserved minimum
    /// and any stranded residue — to the free pool).
    fn retire_departures(&mut self, violations: &mut Vec<Violation>) {
        for host in &mut self.hosts {
            let mut i = 0;
            while i < host.core.vms.len() {
                if host.core.vms[i].done {
                    let vm = host.core.vms.remove(i);
                    let end = vm.offset + vm.sim.now();
                    self.makespan = self.makespan.max(end);
                    violations.extend_from_slice(vm.sim.violations());
                    self.finished.push((vm.id.0, vm.sim.report()));
                    host.core.fair.unregister(vm.id).expect("departing VM is registered");
                    self.departures += 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    /// The consolidation policy: when the load gap between the most- and
    /// least-loaded hosts exceeds the threshold, live-migrate the largest
    /// movable VM from the former to the latter. At most
    /// `max_per_round` migrations per round, all sequential — migration
    /// transfers ledger state between hosts.
    fn balance(&mut self) {
        for _ in 0..self.spec.migration.max_per_round {
            let Some((src, dst)) = self.pick_imbalance() else {
                return;
            };
            let Some(vi) = self.pick_candidate(src, dst) else {
                return;
            };
            self.migrate(src, dst, vi);
        }
    }

    /// The `(most loaded, least loaded)` host pair, if the gap clears the
    /// imbalance threshold.
    fn pick_imbalance(&self) -> Option<(usize, usize)> {
        let loads: Vec<f64> = self.hosts.iter().map(Self::load_of).collect();
        let src = (0..loads.len()).max_by(|&a, &b| {
            loads[a]
                .partial_cmp(&loads[b])
                .expect("loads are finite")
                .then(b.cmp(&a)) // ties to the LOWER index
        })?;
        let dst = (0..loads.len()).min_by(|&a, &b| {
            loads[a]
                .partial_cmp(&loads[b])
                .expect("loads are finite")
                .then(a.cmp(&b))
        })?;
        if src == dst || loads[src] - loads[dst] < self.spec.migration.imbalance_threshold {
            return None;
        }
        Some((src, dst))
    }

    /// The largest live VM on `src` whose full allocation fits `dst`'s
    /// free pool (ties to the lower VM index), subject to two guards that
    /// keep the policy from thrashing:
    ///
    /// * **strict improvement** — after the move the destination must
    ///   still be less loaded than the source was before it (all hosts
    ///   share one capacity, so raw page counts compare directly); a
    ///   symmetric swap that merely relocates the imbalance is skipped,
    /// * **cooldown** — a VM migrated within the last
    ///   `cooldown_rounds` rounds is pinned to its host.
    fn pick_candidate(&self, src: usize, dst: usize) -> Option<usize> {
        let fair_src = &self.hosts[src].core.fair;
        let fair_dst = &self.hosts[dst].core.fair;
        let src_consumed = fair_src.consumed().total();
        let dst_consumed = fair_dst.consumed().total();
        self.hosts[src]
            .core
            .vms
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.done && !self.on_cooldown(v.id.0))
            .map(|(i, v)| (fair_src.allocated(v.id), i))
            .filter(|(alloc, _)| {
                grant_kinds()
                    .into_iter()
                    .all(|k| fair_dst.free(k) >= alloc[k])
                    && dst_consumed + alloc.total() < src_consumed
            })
            .max_by(|(a, ai), (b, bi)| a.total().cmp(&b.total()).then(bi.cmp(ai)))
            .map(|(_, i)| i)
    }

    /// Whether the guest migrated too recently to move again.
    fn on_cooldown(&self, vm: u32) -> bool {
        self.cooldowns
            .get(&vm)
            .is_some_and(|&r| self.rounds < r + self.spec.migration.cooldown_rounds)
    }

    /// Pre-copy live migration of `src`'s VM `vi` to `dst`.
    ///
    /// Iterative pre-copy: round 1 copies the full resident set; each
    /// later round copies what the still-running guest re-dirtied
    /// (`dirty_rate` of the previous round, from its write intensity),
    /// until the dirty set undershoots `stop_copy_pages` or the round
    /// budget runs out; the final round is the stop-and-copy. Every round
    /// is priced by [`CostModel::migration_cost`] on *real* (unscaled)
    /// pages; the summed price is the migration's bandwidth cost in the
    /// cluster telemetry, and the final round's price — the only phase
    /// the guest is paused for — is charged to the VM's clock as
    /// `PageCopy` downtime, showing up in its own runtime breakdown.
    ///
    /// The ledger transfer debits the source completely (`unregister`)
    /// and credits the destination exactly — reserved minimum via
    /// `register`, growth via `request` — so both host audits and the
    /// cluster-boundary audit stay conserved through the move.
    fn migrate(&mut self, src: usize, dst: usize, vi: usize) {
        let id = self.hosts[src].core.vms[vi].id;
        let min = self.hosts[src].core.vms[vi].min;
        let dirty_rate = self.hosts[src].core.vms[vi].dirty_rate;
        let alloc = self.hosts[src].core.fair.allocated(id);
        let resident = alloc.total();
        let policy = self.spec.migration;
        let mut dirty = resident;
        let mut rounds = 0u32;
        let mut copied = 0u64;
        let mut cost = Nanos::ZERO;
        let downtime;
        loop {
            rounds += 1;
            copied += dirty;
            let round_cost = self
                .cfg
                .costs
                .migration_cost(MigrationBatch::new(self.cfg.real_pages(dirty)));
            cost += round_cost;
            if dirty <= policy.stop_copy_pages || rounds >= policy.max_precopy_rounds {
                downtime = round_cost;
                break;
            }
            dirty = ((dirty as f64) * dirty_rate).ceil() as u64;
        }
        self.hosts[src].core.vms[vi]
            .sim
            .charge_external(CostCategory::PageCopy, downtime);
        // Ledger transfer: debit source fully, credit destination exactly.
        let freed = self.hosts[src].core.fair.unregister(id).expect("migrating VM is registered");
        debug_assert_eq!(freed, alloc, "source debit must match the allocation");
        self.hosts[dst].core.fair.register(id, min);
        let growth = KindMap::from_fn(|k| alloc[k] - min[k]);
        if growth.total() > 0 {
            let grant = self.hosts[dst].core.fair.request(id, growth);
            assert!(
                matches!(grant, Grant::Granted),
                "candidate fit was checked against the destination free pool"
            );
        }
        let vm = self.hosts[src].core.vms.remove(vi);
        self.hosts[dst].vms_admitted += 1;
        let live = self.hosts[dst].core.live() as u64 + 1;
        self.hosts[dst].peak_live = self.hosts[dst].peak_live.max(live);
        self.hosts[dst].core.vms.push(vm);
        self.cooldowns.insert(id.0, self.rounds);
        self.migrations.push(MigrationRecord {
            at: self.now,
            vm: id.0,
            from: src as u32,
            to: dst as u32,
            precopy_rounds: rounds,
            pages_copied: copied,
            cost,
            downtime,
        });
    }

    /// The cluster-boundary conservation audit over every host ledger.
    fn audit_cluster_boundary(&self, violations: &mut Vec<Violation>) {
        let views: Vec<HostLedgerView<'_>> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostLedgerView {
                host: i as u32,
                fair: &h.core.fair,
                guests: h.core.vms.iter().map(|v| (v.id, v.sim.kernel())).collect(),
                totals: h.core.totals,
            })
            .collect();
        violations.extend(audit_cluster(&views));
    }

    fn report(&self) -> ClusterReport {
        ClusterReport {
            hosts: self.hosts.len() as u32,
            rounds: self.rounds,
            arrivals: self.arrivals,
            departures: self.departures,
            deferrals: self.deferrals,
            rejected: self.rejected,
            migrations: self.migrations.len() as u64,
            precopy_rounds: self.migrations.iter().map(|m| u64::from(m.precopy_rounds)).sum(),
            pages_copied: self.migrations.iter().map(|m| m.pages_copied).sum(),
            migration_cost: self
                .migrations
                .iter()
                .fold(Nanos::ZERO, |acc, m| acc + m.cost),
            migration_downtime: self
                .migrations
                .iter()
                .fold(Nanos::ZERO, |acc, m| acc + m.downtime),
            stranded_pages: self.hosts.iter().map(|h| h.core.stranded).sum(),
            epochs: self.hosts.iter().map(|h| h.epochs).sum(),
            makespan: self.makespan,
            per_host: self
                .hosts
                .iter()
                .enumerate()
                .map(|(i, h)| HostReport {
                    host: i as u32,
                    vms_admitted: h.vms_admitted,
                    peak_live: h.peak_live,
                    epochs: h.epochs,
                    final_consumed: h.core.fair.consumed().total(),
                })
                .collect(),
        }
    }
}

/// Mean fractional host occupancy implied by a report — a convenience for
/// experiment tables.
pub fn mean_peak_live(report: &ClusterReport) -> f64 {
    if report.per_host.is_empty() {
        return 0.0;
    }
    let sum: u64 = report.per_host.iter().map(|h| h.peak_live).sum();
    sum as f64 / report.per_host.len() as f64
}


hetero_sim::impl_snap!(enum ArrivalProcess {
    0 => Poisson { mean_interarrival, count },
    1 => Trace(entries),
});

hetero_sim::impl_snap!(struct MigrationPolicy {
    imbalance_threshold,
    max_per_round,
    max_precopy_rounds,
    stop_copy_pages,
    cooldown_rounds,
});

hetero_sim::impl_snap!(struct ClusterSpec {
    hosts,
    templates,
    arrivals,
    quantum,
    migration,
    fault_rate,
});

hetero_sim::impl_snap!(struct MigrationRecord {
    at,
    vm,
    from,
    to,
    precopy_rounds,
    pages_copied,
    cost,
    downtime,
});

hetero_sim::impl_snap!(struct HostState { core, vms_admitted, peak_live, epochs });

impl Cluster {
    /// Serializes the complete cluster state — every host fleet (each VM
    /// engine included), the pending arrival queue, scheduler counters,
    /// migration trace, finished reports, cooldowns and accumulated
    /// violations — under a
    /// [`LAYER_CLUSTER`](crate::snapshot::LAYER_CLUSTER) header.
    ///
    /// `jobs` is a host resource, not simulation state: it is not
    /// captured, and [`Cluster::restore`] takes it as a parameter (the
    /// run is byte-identical at any thread count anyway).
    pub fn save(&self) -> Vec<u8> {
        use hetero_sim::snap::Snap;
        let mut w = hetero_sim::snap::SnapWriter::new();
        hetero_sim::snap::write_header(&mut w, crate::snapshot::LAYER_CLUSTER);
        self.cfg.snap(&mut w);
        self.policy.snap(&mut w);
        self.spec.snap(&mut w);
        self.hosts.snap(&mut w);
        self.pending.snap(&mut w);
        self.host_totals.snap(&mut w);
        self.next_guest.snap(&mut w);
        self.now.snap(&mut w);
        self.rounds.snap(&mut w);
        self.arrivals.snap(&mut w);
        self.departures.snap(&mut w);
        self.deferrals.snap(&mut w);
        self.rejected.snap(&mut w);
        self.makespan.snap(&mut w);
        self.migrations.snap(&mut w);
        self.finished.snap(&mut w);
        self.cooldowns.snap(&mut w);
        self.violations.snap(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a cluster from [`Cluster::save`] bytes; the resumed run
    /// continues byte-identically. Fails loudly on a bad magic, version
    /// or layer, on truncation, and on trailing bytes — never panics on
    /// malformed input.
    pub fn restore(bytes: &[u8], jobs: usize) -> Result<Self, hetero_sim::snap::SnapshotError> {
        use hetero_sim::snap::Snap;
        let mut r = hetero_sim::snap::SnapReader::new(bytes);
        hetero_sim::snap::read_header(&mut r, crate::snapshot::LAYER_CLUSTER)?;
        let cluster = Cluster {
            cfg: Snap::unsnap(&mut r)?,
            policy: Snap::unsnap(&mut r)?,
            spec: Snap::unsnap(&mut r)?,
            jobs,
            hosts: Snap::unsnap(&mut r)?,
            pending: Snap::unsnap(&mut r)?,
            host_totals: Snap::unsnap(&mut r)?,
            next_guest: Snap::unsnap(&mut r)?,
            now: Snap::unsnap(&mut r)?,
            rounds: Snap::unsnap(&mut r)?,
            arrivals: Snap::unsnap(&mut r)?,
            departures: Snap::unsnap(&mut r)?,
            deferrals: Snap::unsnap(&mut r)?,
            rejected: Snap::unsnap(&mut r)?,
            makespan: Snap::unsnap(&mut r)?,
            migrations: Snap::unsnap(&mut r)?,
            finished: Snap::unsnap(&mut r)?,
            cooldowns: Snap::unsnap(&mut r)?,
            violations: Snap::unsnap(&mut r)?,
        };
        r.finish()?;
        Ok(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_workloads::{apps, WorkloadSpec};

    const GB: u64 = 1 << 30;
    const MB: u64 = 1 << 20;

    fn tiny(spec: WorkloadSpec) -> WorkloadSpec {
        let mut s = spec;
        s.total_instructions /= 200;
        s
    }

    fn host_cfg() -> SimConfig {
        SimConfig::paper_default()
            .with_fast_bytes(4 * GB)
            .with_slow_bytes(8 * GB)
            .with_seed(11)
    }

    fn templates() -> Vec<VmSetup> {
        vec![
            VmSetup::new(tiny(apps::graphchi()), GB, 2 * GB, 2 * GB, 4 * GB),
            VmSetup::new(tiny(apps::nginx()), 512 * MB, GB, GB, 2 * GB),
        ]
    }

    fn spec(hosts: usize, count: usize) -> ClusterSpec {
        ClusterSpec {
            hosts,
            templates: templates(),
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: Nanos::from_millis(50),
                count,
            },
            quantum: Nanos::from_millis(100),
            migration: MigrationPolicy::default(),
            fault_rate: 0.0,
        }
    }

    #[test]
    fn arrival_mode_parses_and_displays() {
        for mode in [ArrivalMode::Poisson, ArrivalMode::Trace] {
            assert_eq!(mode.to_string().parse::<ArrivalMode>(), Ok(mode));
        }
        assert!("burst".parse::<ArrivalMode>().is_err());
    }

    #[test]
    fn every_arrival_departs() {
        let cluster = Cluster::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            spec(3, 8),
            1,
        );
        let outcome = cluster.run();
        assert_eq!(outcome.report.arrivals, 8);
        assert_eq!(outcome.report.departures, 8);
        assert_eq!(outcome.report.rejected, 0);
        assert_eq!(outcome.vm_reports.len(), 8);
        assert!(outcome.report.epochs > 0);
        assert!(!outcome.report.makespan.is_zero());
        // Every ledger drained at the end.
        for h in &outcome.report.per_host {
            assert_eq!(h.final_consumed, 0, "host{} still holds grants", h.host);
        }
        // Guest ids are dense and ascending.
        let ids: Vec<u32> = outcome.vm_reports.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn placement_prefers_least_loaded_feasible_host() {
        // Two hosts; a trace admitting two VMs at t=0 must split them.
        let mut s = spec(2, 0);
        s.arrivals = ArrivalProcess::Trace(vec![
            (Nanos::ZERO, 0),
            (Nanos::ZERO, 0),
        ]);
        let cluster = Cluster::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            s,
            1,
        );
        let outcome = cluster.run();
        assert_eq!(outcome.report.arrivals, 2);
        let admitted: Vec<u64> = outcome.report.per_host.iter().map(|h| h.vms_admitted).collect();
        assert_eq!(admitted, vec![1, 1], "consolidation must spread equal loads");
    }

    #[test]
    fn oversized_reservations_are_rejected_and_counted() {
        let mut s = spec(2, 0);
        // A reservation larger than an entire host, plus a normal VM.
        s.templates.push(VmSetup::new(
            tiny(apps::nginx()),
            64 * GB,
            64 * GB,
            64 * GB,
            64 * GB,
        ));
        s.arrivals = ArrivalProcess::Trace(vec![(Nanos::ZERO, 2), (Nanos::ZERO, 1)]);
        let outcome = Cluster::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            s,
            1,
        )
        .run();
        assert_eq!(outcome.report.rejected, 1);
        assert_eq!(outcome.report.arrivals, 1);
        assert_eq!(outcome.report.departures, 1);
    }

    /// A trace engineered to need a live migration: a short-lived blocker
    /// reserves host 0 entirely, forcing both long-running VMs onto
    /// host 1; when the blocker departs, host 0 sits empty against a
    /// packed host 1 and the balancer must move one VM across.
    fn imbalanced_spec() -> ClusterSpec {
        ClusterSpec {
            hosts: 2,
            templates: vec![
                // Long-running, grows to most of a host.
                VmSetup::new(tiny(apps::graphchi()), GB, 3 * GB, 2 * GB, 6 * GB),
                // Short-lived blocker whose reservation fills a host.
                VmSetup::new(
                    {
                        let mut s = tiny(apps::nginx());
                        s.total_instructions /= 8;
                        s
                    },
                    4 * GB,
                    8 * GB,
                    4 * GB,
                    8 * GB,
                ),
            ],
            arrivals: ArrivalProcess::Trace(vec![
                (Nanos::ZERO, 1),
                (Nanos::ZERO, 0),
                (Nanos::ZERO, 0),
            ]),
            quantum: Nanos::from_millis(100),
            migration: MigrationPolicy {
                imbalance_threshold: 0.10,
                ..MigrationPolicy::default()
            },
            fault_rate: 0.0,
        }
    }

    #[test]
    fn imbalance_triggers_precopy_migration_with_cost() {
        let outcome = Cluster::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            imbalanced_spec(),
            1,
        )
        .run();
        assert!(
            outcome.report.migrations >= 1,
            "imbalanced trace must migrate: {}",
            outcome.report.to_json()
        );
        let m = &outcome.migrations[0];
        assert!(m.precopy_rounds >= 1);
        assert!(m.pages_copied > 0);
        assert!(!m.cost.is_zero(), "migration must be priced");
        assert_eq!(outcome.report.migration_cost.as_nanos(),
            outcome.migrations.iter().map(|m| m.cost.as_nanos()).sum::<u64>());
        // The migrated VM paid for its own move as PageCopy time.
        let (_, migrated) = outcome
            .vm_reports
            .iter()
            .find(|&&(id, _)| id == m.vm)
            .expect("migrated VM reported");
        assert!(!m.downtime.is_zero() && m.downtime <= m.cost);
        let pagecopy = migrated
            .breakdown
            .iter()
            .find(|(c, _)| *c == CostCategory::PageCopy)
            .map(|(_, t)| *t)
            .unwrap_or(Nanos::ZERO);
        assert!(
            pagecopy >= m.downtime,
            "VM breakdown {pagecopy} must include the stop-and-copy downtime {}",
            m.downtime
        );
    }

    #[test]
    fn audited_cluster_is_clean_and_byte_identical_to_unaudited() {
        let run = |audit: AuditLevel| {
            Cluster::new(
                host_cfg().with_audit(audit),
                SharePolicy::paper_drf(),
                Policy::HeteroCoordinated,
                imbalanced_spec(),
                1,
            )
            .run_audited()
        };
        let (plain, none) = run(AuditLevel::Off);
        assert_eq!(none, Vec::new());
        let (audited, violations) = run(AuditLevel::Epoch);
        assert_eq!(violations, Vec::new(), "cluster must audit clean");
        assert_eq!(
            plain.to_json(),
            audited.to_json(),
            "audit must not perturb the run"
        );
    }

    #[test]
    fn jobs_do_not_change_a_cluster_byte() {
        let run = |jobs: usize| {
            Cluster::new(
                host_cfg().with_audit(AuditLevel::Epoch),
                SharePolicy::paper_drf(),
                Policy::HeteroCoordinated,
                spec(4, 12),
                jobs,
            )
            .run()
            .to_json()
        };
        assert_eq!(run(1), run(4), "host sharding must be thread-count invariant");
    }

    #[test]
    fn mean_peak_live_is_zero_for_empty_report() {
        let outcome = Cluster::new(
            host_cfg(),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            spec(2, 0),
            1,
        )
        .run();
        assert_eq!(outcome.report.arrivals, 0);
        assert!(mean_peak_live(&outcome.report) >= 0.0);
        let empty = ClusterReport {
            per_host: Vec::new(),
            ..outcome.report
        };
        assert_eq!(mean_peak_live(&empty), 0.0);
    }
    #[test]
    fn poisson_schedule_accumulates_integer_nanos() {
        // Regression: the schedule used to accumulate arrival times in an
        // f64 running sum. Past 2^53 ns the ulp is 2 ns, so every arrival
        // landed on an even nanosecond and gaps quantized. 4096 arrivals
        // at a one-hour mean push the horizon to ~1.5e16 ns, well past
        // 2^53 (~9.0e15): integer accumulation must still produce odd
        // timestamps out there, and stay sorted.
        let spec = ClusterSpec {
            hosts: 1,
            templates: vec![VmSetup::new(
                apps::redis(),
                64 * MB,
                128 * MB,
                256 * MB,
                512 * MB,
            )],
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: Nanos::from_secs(3600),
                count: 4096,
            },
            quantum: Nanos::from_millis(50),
            migration: MigrationPolicy::default(),
            fault_rate: 0.0,
        };
        let schedule = Cluster::schedule(&spec, 42);
        assert!(
            schedule.iter().zip(schedule.iter().skip(1)).all(|(a, b)| a.0 <= b.0),
            "arrival times must be nondecreasing"
        );
        let past_2_53: Vec<u64> = schedule
            .iter()
            .map(|&(t, _)| t.as_nanos())
            .filter(|&t| t > (1u64 << 53))
            .collect();
        assert!(
            past_2_53.len() > 1000,
            "schedule must cross 2^53 ns to exercise the regression \
             (got {} arrivals past it)",
            past_2_53.len()
        );
        assert!(
            past_2_53.iter().any(|t| t % 2 == 1),
            "f64 accumulation quantizes to even nanos past 2^53; integer \
             accumulation must keep odd timestamps"
        );
    }

    #[test]
    fn arrival_deferred_by_full_host_places_when_a_retirement_frees_room() {
        // One host, fully reserved by a short-lived blocker admitted at
        // t=0. A second VM arrives inside round 1, cannot fit, and the
        // blocker finishes within the same (generously long) round. The
        // second admission pass must place it in round 1 — before the fix
        // it waited a full quantum next to an idle host and was counted
        // as a deferral.
        let blocker = {
            let mut s = apps::redis();
            // A handful of epochs: finishes well inside the first round.
            s.total_instructions = s.instructions_per_epoch * 4;
            s
        };
        let follower = {
            let mut s = apps::nginx();
            s.total_instructions = s.instructions_per_epoch * 8;
            s
        };
        let cfg = SimConfig::paper_default()
            .with_fast_bytes(2 * GB)
            .with_slow_bytes(4 * GB)
            .with_seed(7);
        // The blocker reserves the entire host on every tier.
        let spec = ClusterSpec {
            hosts: 1,
            templates: vec![
                VmSetup::new(blocker, 2 * GB, 2 * GB, 4 * GB, 4 * GB),
                VmSetup::new(follower, 32 * MB, 64 * MB, 128 * MB, 256 * MB),
            ],
            arrivals: ArrivalProcess::Trace(vec![
                (Nanos::ZERO, 0),
                (Nanos::from_millis(1), 1),
            ]),
            // Long enough that the blocker certainly retires in round 1.
            quantum: Nanos::from_secs(30),
            migration: MigrationPolicy::default(),
            fault_rate: 0.0,
        };
        let outcome = Cluster::new(
            cfg,
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            spec,
            1,
        )
        .run();
        let r = &outcome.report;
        assert_eq!(r.arrivals, 2, "both VMs must be admitted");
        assert_eq!(r.departures, 2, "both VMs must finish");
        assert_eq!(r.rejected, 0);
        assert_eq!(
            r.deferrals, 0,
            "the retirement frees the host within round 1, so the same-round \
             second admission pass must place the follower without a deferral"
        );
    }
}
