//! Cluster determinism matrix.
//!
//! The cluster's contract is the same one the single-host engines pin:
//! `jobs` is a pure performance lever. Sharding hosts across worker
//! threads must never change a single exported byte — not the cluster
//! report, not a per-VM summary, not the migration trace. This matrix
//! pins that across policies and seeds with the epoch-level invariant
//! sanitizer armed (so runs that "agree" by corrupting shared state the
//! same way twice still get caught), exercises the trace-driven arrival
//! mode with a guaranteed live migration, and soaks the whole fleet with
//! seeded guest crashes to prove the chaos is thread-count-invariant too.

use hetero_core::cluster::{ArrivalProcess, Cluster, ClusterSpec, MigrationPolicy};
use hetero_core::multivm::VmSetup;
use hetero_core::{AuditLevel, Policy, SimConfig};
use hetero_mem::FlushPolicy;
use hetero_sim::Nanos;
use hetero_vmm::SharePolicy;
use hetero_workloads::{apps, WorkloadSpec};

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

/// Guest-LRU, coordinated and VMM-only management exercise disjoint
/// engine paths inside every host.
const POLICIES: [Policy; 3] = [
    Policy::HeteroCoordinated,
    Policy::HeteroLru,
    Policy::VmmExclusive,
];

const SEEDS: [u64; 3] = [7, 42, 1009];

fn quick(mut spec: WorkloadSpec) -> WorkloadSpec {
    spec.total_instructions /= 160;
    spec
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig::paper_default()
        .with_fast_bytes(4 * GB)
        .with_slow_bytes(8 * GB)
        .with_seed(seed)
        .with_audit(AuditLevel::Epoch)
}

/// A small Poisson fleet: three hosts, two templates, eighteen arrivals.
fn poisson_spec() -> ClusterSpec {
    ClusterSpec {
        hosts: 3,
        templates: vec![
            VmSetup::new(quick(apps::graphchi()), 512 * MB, GB, GB, 2 * GB),
            VmSetup::new(quick(apps::nginx()), 128 * MB, 256 * MB, 512 * MB, GB),
        ],
        arrivals: ArrivalProcess::Poisson {
            mean_interarrival: Nanos::from_millis(20),
            count: 18,
        },
        quantum: Nanos::from_millis(50),
        migration: MigrationPolicy {
            imbalance_threshold: 0.10,
            ..MigrationPolicy::default()
        },
        fault_rate: 0.0,
    }
}

/// A trace that forces a live migration: a short-lived blocker reserves
/// one host entirely, both long-running VMs land on the other, and the
/// balancer must move one across once the blocker departs.
fn migration_trace_spec() -> ClusterSpec {
    ClusterSpec {
        hosts: 2,
        templates: vec![
            VmSetup::new(quick(apps::graphchi()), GB, 3 * GB, 2 * GB, 6 * GB),
            VmSetup::new(
                {
                    let mut s = quick(apps::nginx());
                    s.total_instructions /= 8;
                    s
                },
                4 * GB,
                8 * GB,
                4 * GB,
                8 * GB,
            ),
        ],
        arrivals: ArrivalProcess::Trace(vec![
            (Nanos::ZERO, 1),
            (Nanos::ZERO, 0),
            (Nanos::ZERO, 0),
        ]),
        quantum: Nanos::from_millis(100),
        migration: MigrationPolicy {
            imbalance_threshold: 0.10,
            ..MigrationPolicy::default()
        },
        fault_rate: 0.0,
    }
}

fn run_json(policy: Policy, seed: u64, spec: ClusterSpec, jobs: usize) -> String {
    // `run` panics on any sanitizer violation with an explicit audit level
    // set, so a clean return is also a clean cluster-boundary audit.
    Cluster::new(cfg(seed), SharePolicy::paper_drf(), policy, spec, jobs)
        .run()
        .to_json()
}

#[test]
fn poisson_matrix_is_byte_identical_across_jobs() {
    for policy in POLICIES {
        for seed in SEEDS {
            let seq = run_json(policy, seed, poisson_spec(), 1);
            let par = run_json(policy, seed, poisson_spec(), 4);
            assert_eq!(seq, par, "policy {policy:?} seed {seed} diverged");
        }
    }
}

#[test]
fn seeds_actually_change_the_run() {
    let a = run_json(Policy::HeteroCoordinated, SEEDS[0], poisson_spec(), 1);
    let b = run_json(Policy::HeteroCoordinated, SEEDS[1], poisson_spec(), 1);
    assert_ne!(a, b, "different seeds must produce different fleets");
}

#[test]
fn trace_mode_migrates_and_is_byte_identical_across_jobs() {
    for seed in SEEDS {
        let outcome = Cluster::new(
            cfg(seed),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            migration_trace_spec(),
            1,
        )
        .run();
        assert!(
            outcome.report.migrations >= 1,
            "seed {seed}: engineered imbalance must live-migrate"
        );
        let m = &outcome.migrations[0];
        assert!(m.pages_copied > 0 && !m.cost.is_zero() && !m.downtime.is_zero());
        let par = Cluster::new(
            cfg(seed),
            SharePolicy::paper_drf(),
            Policy::HeteroCoordinated,
            migration_trace_spec(),
            4,
        )
        .run();
        assert_eq!(outcome.to_json(), par.to_json(), "seed {seed} diverged");
    }
}

/// Chaos soak: every guest armed with seeded power-loss crashes over the
/// write-behind NVM tier. The crashes must fire (a fault-free run exports
/// different bytes) and the whole chaotic fleet must still be
/// thread-count-invariant and audit-clean.
#[test]
fn chaos_fleet_with_faults_armed_is_byte_identical_across_jobs() {
    let chaotic = |fault_rate: f64, jobs: usize, seed: u64| {
        let mut spec = poisson_spec();
        spec.fault_rate = fault_rate;
        Cluster::new(
            cfg(seed).with_persist(FlushPolicy::EpochBatched),
            SharePolicy::paper_drf(),
            Policy::HeteroLru,
            spec,
            jobs,
        )
        .run()
        .to_json()
    };
    for seed in SEEDS {
        let seq = chaotic(0.05, 1, seed);
        let par = chaotic(0.05, 4, seed);
        assert_eq!(seq, par, "seed {seed}: chaos diverged across jobs");
        let calm = chaotic(0.0, 1, seed);
        assert_ne!(seq, calm, "seed {seed}: faults never fired — soak is vacuous");
    }
}
