//! Checkpoint/restore differential matrix.
//!
//! The tentpole contract: a run resumed from a mid-run snapshot finishes
//! **byte-identically** to an uninterrupted one — same reports, same
//! JSON exports, same final snapshot bytes. Pinned here across:
//!
//! * three policies × three seeds on the single-VM scenario,
//! * the fleet scenario at `jobs ∈ {1, 4}` (boot fan-out only),
//! * the rack-scale cluster at `jobs ∈ {1, 4}` with a mid-run round
//!   checkpoint, comparing the full outcome JSON and migration trace,
//! * a chaos leg with latency storms and power losses armed, snapshotted
//!   mid-storm — the resumed fault trace and recovery state must match
//!   byte for byte,
//! * the failure modes: flipped version byte, wrong layer, truncation —
//!   each a descriptive `Err`, never a panic.

use hetero_core::experiments::checkpoint::{cluster_sim, fleet_sim, single_sim};
use hetero_core::experiments::ExpOptions;
use hetero_core::multivm::MultiVmSim;
use hetero_core::{Cluster, Policy, SimConfig, SingleVmSim, Tracking};
use hetero_faults::{FaultInjector, FaultPlan};
use hetero_mem::TierProfile;
use hetero_sim::snap::SnapshotError;
use hetero_workloads::{apps, AppWorkload};

const GB: u64 = 1 << 30;

/// `expect_err` without requiring `Debug` on the (large) sim types.
fn must_fail<T>(result: Result<T, SnapshotError>, what: &str) -> SnapshotError {
    match result {
        Ok(_) => panic!("{what}: snapshot unexpectedly restored"),
        Err(e) => e,
    }
}

const POLICIES: [Policy; 3] = [
    Policy::HeteroCoordinated,
    Policy::HeteroLru,
    Policy::SlowMemOnly,
];
const SEEDS: [u64; 3] = [11, 42, 77];

fn quick_with_seed(seed: u64) -> ExpOptions {
    let mut opts = ExpOptions::quick();
    opts.seed = seed;
    opts
}

#[test]
fn single_vm_resume_matrix_is_byte_identical() {
    for policy in POLICIES {
        for seed in SEEDS {
            let opts = quick_with_seed(seed);
            let mut straight = single_sim(&opts, policy);
            let mut total = 0u64;
            while straight.step() {
                total += 1;
            }
            assert!(total >= 2, "{policy:?}/{seed}: run too short to checkpoint");

            let mut first = single_sim(&opts, policy);
            for _ in 0..total / 2 {
                assert!(first.step(), "{policy:?}/{seed}: checkpoint past the end");
            }
            let snap = first.save();
            drop(first);
            let mut resumed = SingleVmSim::restore(&snap)
                .unwrap_or_else(|e| panic!("{policy:?}/{seed}: restore failed: {e}"));
            while resumed.step() {}

            assert_eq!(
                straight.report(),
                resumed.report(),
                "{policy:?}/{seed}: resumed report diverged"
            );
            assert_eq!(
                straight.report().to_json(),
                resumed.report().to_json(),
                "{policy:?}/{seed}: resumed JSON export diverged"
            );
            assert_eq!(
                straight.save(),
                resumed.save(),
                "{policy:?}/{seed}: final snapshot bytes diverged"
            );
        }
    }
}

#[test]
fn fleet_resume_is_byte_identical_and_jobs_invariant() {
    let opts = quick_with_seed(42);
    let mut straight = fleet_sim(&opts, Policy::HeteroCoordinated);
    let mut total = 0u64;
    while straight.step_fleet() {
        total += 1;
    }
    assert!(total >= 2);
    let straight_final = straight.save();
    let (straight_reports, _) = straight.into_results();

    for jobs in [1usize, 4] {
        let mut jopts = opts;
        jopts.jobs = jobs;
        let mut first = fleet_sim(&jopts, Policy::HeteroCoordinated);
        for _ in 0..total / 2 {
            assert!(first.step_fleet(), "jobs={jobs}: checkpoint past the end");
        }
        let snap = first.save();
        let mut resumed = MultiVmSim::restore(&snap)
            .unwrap_or_else(|e| panic!("jobs={jobs}: restore failed: {e}"));
        while resumed.step_fleet() {}
        assert_eq!(
            resumed.save(),
            straight_final,
            "jobs={jobs}: final fleet snapshot diverged"
        );
        let (reports, _) = resumed.into_results();
        assert_eq!(reports, straight_reports, "jobs={jobs}: reports diverged");
    }
}

#[test]
fn cluster_resume_matrix_is_byte_identical_across_jobs() {
    let opts = quick_with_seed(42);
    // Uninterrupted reference via the same step-driven path `run()` wraps.
    let straight = cluster_sim(&opts);
    let (reference, _) = {
        let mut c = straight;
        while c.step_round() {}
        c.finish()
    };
    let reference_json = reference.to_json();
    assert!(
        !reference.migrations.is_empty(),
        "scenario must exercise live migration for the trace comparison"
    );

    for jobs in [1usize, 4] {
        let mut jopts = opts;
        jopts.jobs = jobs;
        let mut first = cluster_sim(&jopts);
        // Checkpoint mid-run: a handful of rounds in, with the run alive.
        for _ in 0..3 {
            assert!(first.step_round(), "jobs={jobs}: checkpoint past the end");
        }
        let snap = first.save();
        drop(first);
        // Restore with the *other* jobs count: thread count is a
        // restore-time parameter, never part of the snapshot.
        let other = if jobs == 1 { 4 } else { 1 };
        let mut resumed = Cluster::restore(&snap, other)
            .unwrap_or_else(|e| panic!("jobs={jobs}: restore failed: {e}"));
        while resumed.step_round() {}
        let (outcome, _) = resumed.finish();
        assert_eq!(
            outcome.to_json(),
            reference_json,
            "jobs={jobs}->{other}: resumed cluster outcome diverged"
        );
        assert_eq!(
            outcome.migrations, reference.migrations,
            "jobs={jobs}->{other}: migration trace diverged"
        );
    }
}

/// A three-tier single-VM scenario: same shape as `single_sim`, plus a
/// 2 GiB Medium tier running the Table-1 trio device profile.
fn three_tier_sim(opts: &ExpOptions, policy: Policy) -> SingleVmSim<AppWorkload> {
    let cfg = SimConfig::paper_default()
        .with_capacity_ratio(1, 4)
        .with_medium_bytes(2 * GB)
        .with_tier_profile(Some(TierProfile::Table1Trio))
        .with_seed(opts.seed)
        .with_audit(opts.audit)
        .with_sched(opts.sched);
    // Same run-length scaling `opts.tune` applies for `--quick`.
    let mut spec = apps::redis();
    spec.total_instructions /= 8;
    let workload = AppWorkload::new(spec, cfg.page_size, cfg.scale);
    SingleVmSim::new(cfg, policy, workload)
}

/// Tier-topology legs: the `--tier-profile optane-dc --tracking
/// access-bit` scenario (A/D harvest state — shift registers, scan
/// cursor, pending harvest buffer — must all survive the snapshot) and a
/// three-tier machine with a live Medium tier. Both must resume from a
/// mid-run checkpoint byte-identically, same as every other leg.
#[test]
fn tier_profile_legs_resume_byte_identically() {
    let optane = |opts: &ExpOptions| {
        let mut o = *opts;
        o.tier_profile = Some(TierProfile::OptaneDc);
        o.tracking = Some(Tracking::AccessBit);
        single_sim(&o, Policy::HeteroCoordinated)
    };
    let three_tier = |opts: &ExpOptions| three_tier_sim(opts, Policy::HeteroCoordinated);
    type Leg<'a> = (&'a str, &'a dyn Fn(&ExpOptions) -> SingleVmSim<AppWorkload>);
    let legs: [Leg; 2] = [
        ("optane-dc/access-bit", &optane),
        ("three-tier", &three_tier),
    ];
    for (name, build) in legs {
        for seed in SEEDS {
            let opts = quick_with_seed(seed);
            let mut straight = build(&opts);
            let mut total = 0u64;
            while straight.step() {
                total += 1;
            }
            assert!(total >= 2, "{name}/{seed}: run too short to checkpoint");

            let mut first = build(&opts);
            for _ in 0..total / 2 {
                assert!(first.step(), "{name}/{seed}: checkpoint past the end");
            }
            let snap = first.save();
            drop(first);
            let mut resumed = SingleVmSim::restore(&snap)
                .unwrap_or_else(|e| panic!("{name}/{seed}: restore failed: {e}"));
            while resumed.step() {}

            assert_eq!(
                straight.report(),
                resumed.report(),
                "{name}/{seed}: resumed report diverged"
            );
            assert_eq!(
                straight.save(),
                resumed.save(),
                "{name}/{seed}: final snapshot bytes diverged"
            );
        }
    }
}

/// A plan that keeps latency storms mostly on and pulls the plug often
/// enough that recovery machinery runs well within a quick run.
fn stormy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        latency_storm: 0.40,
        storm_max_factor: 6.0,
        storm_max_epochs: 8,
        host_power_loss: 0.05,
        ..FaultPlan::quiescent(seed)
    }
}

#[test]
fn checkpoint_under_armed_faults_resumes_identically() {
    let opts = quick_with_seed(42);
    let mut straight = single_sim(&opts, Policy::HeteroCoordinated);
    straight.set_fault_injector(FaultInjector::new(stormy_plan(7)));
    let mut total = 0u64;
    while straight.step() {
        total += 1;
    }
    assert!(total >= 3, "chaos run too short to checkpoint mid-storm");
    let straight_trace = straight
        .fault_injector()
        .expect("injector stays armed")
        .trace()
        .to_text();
    assert!(
        straight_trace.contains("latency-storm"),
        "plan must actually fire storms:\n{straight_trace}"
    );
    assert!(
        straight_trace.contains("host-power-loss"),
        "plan must actually pull the plug:\n{straight_trace}"
    );
    let straight_final = straight.save();
    let straight_report = straight.report();

    // Checkpoint at two different depths — with storms armed at 40% per
    // step and storms lasting up to 8 epochs, at least one of these lands
    // inside an active storm window.
    for cut in [total / 3, 2 * total / 3] {
        let mut first = single_sim(&opts, Policy::HeteroCoordinated);
        first.set_fault_injector(FaultInjector::new(stormy_plan(7)));
        for _ in 0..cut {
            assert!(first.step(), "cut={cut}: checkpoint past the end");
        }
        let snap = first.save();
        drop(first);
        let mut resumed = SingleVmSim::restore(&snap)
            .unwrap_or_else(|e| panic!("cut={cut}: restore failed: {e}"));
        while resumed.step() {}
        assert_eq!(
            resumed.report(),
            straight_report,
            "cut={cut}: chaos report diverged"
        );
        assert_eq!(
            resumed
                .fault_injector()
                .expect("injector survives the snapshot")
                .trace()
                .to_text(),
            straight_trace,
            "cut={cut}: fault trace diverged after resume"
        );
        assert_eq!(
            resumed.save(),
            straight_final,
            "cut={cut}: final chaos snapshot bytes diverged"
        );
    }
}

#[test]
fn flipped_version_byte_is_rejected_cleanly() {
    let opts = quick_with_seed(42);
    let mut sim = single_sim(&opts, Policy::HeteroCoordinated);
    assert!(sim.step());
    let mut bytes = sim.save();
    // Header layout: 4 magic bytes, then the little-endian u32 version.
    bytes[4] ^= 0xFF;
    let err = must_fail(SingleVmSim::restore(&bytes), "flipped version");
    let msg = err.to_string();
    assert!(msg.contains("version"), "undescriptive error: {msg}");
}

#[test]
fn wrong_layer_snapshot_is_rejected_cleanly() {
    let opts = quick_with_seed(42);
    let mut fleet = fleet_sim(&opts, Policy::HeteroCoordinated);
    assert!(fleet.step_fleet());
    let fleet_bytes = fleet.save();

    let err = must_fail(Cluster::restore(&fleet_bytes, 1), "fleet bytes as cluster");
    assert!(err.to_string().contains("layer"), "{err}");
    let err = must_fail(SingleVmSim::restore(&fleet_bytes), "fleet bytes as single VM");
    assert!(err.to_string().contains("layer"), "{err}");
}

#[test]
fn truncated_and_garbage_snapshots_are_rejected_cleanly() {
    let opts = quick_with_seed(42);
    let mut sim = single_sim(&opts, Policy::HeteroCoordinated);
    assert!(sim.step());
    let bytes = sim.save();

    // Every proper prefix must fail loud — never panic, never succeed.
    for cut in [0, 3, 4, 8, 9, bytes.len() / 2, bytes.len() - 1] {
        let err = must_fail(SingleVmSim::restore(&bytes[..cut]), "truncated snapshot");
        let msg = err.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("magic"),
            "cut={cut}: undescriptive error: {msg}"
        );
    }

    // Garbage with the wrong magic is identified as such.
    let err = must_fail(SingleVmSim::restore(b"notasnap-at-all"), "garbage");
    assert!(err.to_string().contains("magic"), "{err}");

    // Trailing junk after a valid payload is also an error.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 7]);
    let err = must_fail(SingleVmSim::restore(&padded), "trailing bytes");
    assert!(err.to_string().contains("trailing"), "{err}");
}
